// Gap bridging: detect connectivity islands and repair them with a few
// well-placed APs - the fix §4 proposes for cities fractured by rivers,
// parks, and highways (Washington D.C. in the paper).
//
// Usage:  ./build/examples/gap_bridging [profile-name]   (default: washington_dc)
#include <iostream>

#include "core/evaluation.hpp"
#include "mesh/ap_network.hpp"
#include "mesh/islands.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"
#include "viz/svg.hpp"

using namespace citymesh;

namespace {

double reachability_of(const osmx::City& city, const mesh::ApNetwork& net,
                       std::size_t pairs, std::uint64_t seed) {
  geo::Rng rng{seed};
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < pairs; ++i) {
    const auto a = static_cast<osmx::BuildingId>(rng.uniform_int(city.building_count()));
    const auto b = static_cast<osmx::BuildingId>(rng.uniform_int(city.building_count()));
    const auto ap_a = net.representative_ap(city, a);
    const auto ap_b = net.representative_ap(city, b);
    if (ap_a && ap_b && net.connected(*ap_a, *ap_b)) ++reachable;
  }
  return static_cast<double>(reachable) / static_cast<double>(pairs);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string profile_name = argc > 1 ? argv[1] : "washington_dc";
  const auto city = osmx::generate_city(osmx::profile_by_name(profile_name));
  const auto net = mesh::place_aps(city, {});

  std::cout << "== gap bridging: " << city.name() << " ==\n";
  const auto before = mesh::analyze_islands(net);
  std::cout << "before: " << net.ap_count() << " APs in " << before.island_count
            << " islands; largest holds " << viz::fmt(before.largest_fraction * 100, 1)
            << "% of APs\n";
  std::cout << "island sizes (top 5):";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, before.sizes.size()); ++i) {
    std::cout << ' ' << before.sizes[i];
  }
  std::cout << '\n';

  const double reach_before = reachability_of(city, net, 1000, 1);
  std::cout << "building-pair reachability: " << viz::fmt(reach_before, 3) << '\n';

  if (before.island_count <= 1) {
    std::cout << "city is already fully connected - nothing to bridge\n";
    return 0;
  }

  // Plan and apply bridges.
  const auto plan = mesh::plan_bridges(net, /*target_islands=*/1, /*max_new_aps=*/64);
  std::cout << "\nbridge plan: " << plan.new_aps.size()
            << " new APs (well-placed chains across the gaps)\n";
  for (std::size_t i = 0; i < plan.new_aps.size(); ++i) {
    std::cout << "  AP at (" << viz::fmt(plan.new_aps[i].x, 0) << ", "
              << viz::fmt(plan.new_aps[i].y, 0) << ")\n";
    if (i == 9 && plan.new_aps.size() > 10) {
      std::cout << "  ... and " << plan.new_aps.size() - 10 << " more\n";
      break;
    }
  }

  const auto bridged = mesh::apply_bridges(net, plan);
  const auto after = mesh::analyze_islands(bridged);
  const double reach_after = reachability_of(city, bridged, 1000, 1);

  std::cout << "\nafter: " << bridged.ap_count() << " APs; largest island now holds "
            << viz::fmt(after.largest_fraction * 100, 1) << "% of APs\n"
            << "building-pair reachability: " << viz::fmt(reach_before, 3) << " -> "
            << viz::fmt(reach_after, 3) << '\n';

  // Render the before/after picture.
  viz::SvgScene scene{city.extent(), 1000.0};
  for (const auto& water : city.water()) scene.add_polygon(water, "#a8c8e8");
  for (const auto& b : city.buildings()) scene.add_polygon(b.footprint, "#dddddd");
  for (const auto& ap : net.aps()) scene.add_circle(ap.position, 1.0, "#7f7f7f", 0.6);
  for (const auto& p : plan.new_aps) scene.add_circle(p, 5.0, "#d62728");
  scene.add_text({20, city.extent().max.y - 30},
                 "red: proposed bridge APs across connectivity gaps");
  if (scene.write_file("gap_bridging.svg")) {
    std::cout << "wrote gap_bridging.svg\n";
  }
  return 0;
}
