// Disaster-scenario walkthrough: the paper's motivating use case (§2).
//
// A storm has cut backhaul connectivity across the city. CityMesh keeps
// intra-city messaging alive:
//   - residents exchange "are you safe?" check-ins (sealed, store-and-forward),
//   - an urgent evacuation notice triggers postbox push notifications,
//   - a compromised neighborhood (the paper's security discussion) swallows
//     traffic, and senders observe which destinations stop confirming.
//
// Build & run:  ./build/examples/disaster_messaging
#include <iostream>
#include <vector>

#include "core/network.hpp"
#include "cryptox/sealed.hpp"
#include "geo/rng.hpp"
#include "osmx/citygen.hpp"

using namespace citymesh;

namespace {

struct Resident {
  std::string name;
  cryptox::KeyPair keys;
  core::BuildingId home;
  core::PostboxInfo postbox_info;
  std::shared_ptr<core::Postbox> postbox;
};

std::span<const std::uint8_t> as_bytes(const std::vector<std::uint8_t>& v) {
  return {v.data(), v.size()};
}

}  // namespace

int main() {
  const osmx::City city = osmx::generate_city(osmx::profile_by_name("boston"));
  core::CityMeshNetwork network{city, {}};
  std::cout << "== CityMesh disaster drill: " << city.name() << " ==\n"
            << city.building_count() << " buildings, " << network.aps().ap_count()
            << " APs, backhaul assumed down\n\n";

  // --- Provision residents scattered across town (postboxes exchanged
  // out-of-band before the outage, e.g. as QR codes).
  geo::Rng rng{7};
  std::vector<Resident> residents;
  const std::vector<std::string> names{"ana", "ben", "cho", "dia", "eli", "fay"};
  // Homes are drawn from the main connectivity island: residents north of
  // the Charles are simply out of CityMesh's reach (that is the
  // gap_bridging example's problem to solve).
  const auto main_island = network.aps().components().largest();
  for (std::size_t i = 0; i < names.size(); ++i) {
    Resident r{names[i], cryptox::KeyPair::from_seed(100 + i), 0, {}, nullptr};
    // Find a building with APs (for the postbox) on the main island.
    while (!r.postbox) {
      r.home = static_cast<core::BuildingId>(rng.uniform_int(city.building_count()));
      const auto ap = network.aps().representative_ap(city, r.home);
      if (!ap || network.aps().components().component_of[*ap] != main_island) continue;
      r.postbox_info = core::PostboxInfo::for_key(r.keys, r.home);
      r.postbox = network.register_postbox(r.postbox_info);
    }
    residents.push_back(std::move(r));
  }

  // --- Round 1: everyone checks on the next person in the list.
  std::cout << "-- round 1: safety check-ins --\n";
  int delivered = 0;
  for (std::size_t i = 0; i < residents.size(); ++i) {
    const auto& from = residents[i];
    const auto& to = residents[(i + 1) % residents.size()];
    const auto sealed = cryptox::seal(from.keys, to.postbox_info.public_key,
                                      from.name + ": are you safe?", 1000 + i);
    const auto blob = sealed.serialize();
    const auto outcome = network.send(from.home, to.postbox_info, as_bytes(blob));
    std::cout << "  " << from.name << " -> " << to.name << ": "
              << (outcome.delivered ? "delivered" : "NOT delivered") << " ("
              << outcome.transmissions << " broadcasts)\n";
    if (outcome.delivered) ++delivered;
  }
  std::cout << "  " << delivered << "/" << residents.size() << " check-ins arrived\n\n";

  // --- Round 2: urgent evacuation notice with push notification.
  std::cout << "-- round 2: urgent evacuation notice (push) --\n";
  auto& coordinator = residents[0];
  auto& downstream = residents[3];
  downstream.postbox->set_push_handler([&](const core::StoredMessage& m) {
    std::cout << "  [push] " << downstream.name
              << "'s postbox pushed message id " << m.message_id << " immediately\n";
  });
  const auto notice =
      cryptox::seal(coordinator.keys, downstream.postbox_info.public_key,
                    "EVACUATE zone 3 - shelter at the armory", 5555);
  core::SendOptions urgent;
  urgent.urgent = true;
  const auto notice_blob = notice.serialize();
  const auto urgent_outcome = network.send(coordinator.home, downstream.postbox_info,
                                           as_bytes(notice_blob), urgent);
  std::cout << "  notice " << (urgent_outcome.delivered ? "delivered" : "LOST") << "\n\n";

  // --- Everyone reads their mail.
  std::cout << "-- mailboxes --\n";
  for (auto& r : residents) {
    const auto mail = r.postbox->retrieve();
    for (const auto& stored : mail) {
      const auto parsed = cryptox::SealedMessage::deserialize(stored.sealed_payload);
      if (!parsed) continue;
      if (const auto text = cryptox::unseal_text(r.keys, *parsed)) {
        std::cout << "  " << r.name << " reads: \"" << *text << "\"\n";
      }
    }
  }

  // --- Round 3: a compromised neighborhood drops packets silently.
  std::cout << "\n-- round 3: compromised neighborhood --\n";
  const auto& victim = residents[1];
  // Compromise a band of buildings around the city's vertical midline; the
  // conduit between far-apart residents must cross it.
  std::size_t compromised = 0;
  const double mid_lo = city.extent().center().x - 120.0;
  const double mid_hi = city.extent().center().x + 120.0;
  for (const auto& b : city.buildings()) {
    if (b.centroid.x > mid_lo && b.centroid.x < mid_hi) {
      network.compromise_building(b.id, core::AgentBehavior::kCompromisedDrop);
      ++compromised;
    }
  }
  std::cout << "  " << compromised << " buildings compromised (silent packet drop)\n";
  // A sender whose conduit crosses the wall observes non-delivery.
  const auto west = residents[4];
  const auto sealed = cryptox::seal(west.keys, victim.postbox_info.public_key,
                                    "did this get through?", 777);
  const auto blob = sealed.serialize();
  const auto blocked = network.send(west.home, victim.postbox_info, as_bytes(blob));
  std::cout << "  " << west.name << " -> " << victim.name << " across the wall: "
            << (blocked.delivered ? "delivered (route avoided the wall)"
                                  : "blocked by compromised nodes")
            << '\n'
            << "  (the paper's agenda asks for routing that finds clean paths;\n"
            << "   detecting and routing around compromised regions is future work)\n";
  return 0;
}
