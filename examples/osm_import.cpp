// Import real OpenStreetMap building data and run CityMesh over it.
//
// Usage:  ./build/examples/osm_import [extract.osm]
//
// Without an argument the example runs on a small embedded OSM XML snippet
// (a block of buildings) so it works offline; pass any OSM XML extract whose
// ways carry `building=*` tags to route over a real neighborhood.
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/network.hpp"
#include "osmx/osm_xml.hpp"
#include "viz/ascii.hpp"

using namespace citymesh;

namespace {

// A hand-written block: 6 buildings in two rows, ~25 m apart, around
// (42.36, -71.09). Enough structure for a route with one conduit.
constexpr std::string_view kEmbeddedOsm = R"(<?xml version="1.0"?>
<osm version="0.6">
  <node id="1"  lat="42.36000" lon="-71.09000"/>
  <node id="2"  lat="42.36000" lon="-71.08975"/>
  <node id="3"  lat="42.36018" lon="-71.08975"/>
  <node id="4"  lat="42.36018" lon="-71.09000"/>
  <node id="11" lat="42.36000" lon="-71.08940"/>
  <node id="12" lat="42.36000" lon="-71.08915"/>
  <node id="13" lat="42.36018" lon="-71.08915"/>
  <node id="14" lat="42.36018" lon="-71.08940"/>
  <node id="21" lat="42.36000" lon="-71.08880"/>
  <node id="22" lat="42.36000" lon="-71.08855"/>
  <node id="23" lat="42.36018" lon="-71.08855"/>
  <node id="24" lat="42.36018" lon="-71.08880"/>
  <node id="31" lat="42.36040" lon="-71.09000"/>
  <node id="32" lat="42.36040" lon="-71.08975"/>
  <node id="33" lat="42.36058" lon="-71.08975"/>
  <node id="34" lat="42.36058" lon="-71.09000"/>
  <node id="41" lat="42.36040" lon="-71.08940"/>
  <node id="42" lat="42.36040" lon="-71.08915"/>
  <node id="43" lat="42.36058" lon="-71.08915"/>
  <node id="44" lat="42.36058" lon="-71.08940"/>
  <node id="51" lat="42.36040" lon="-71.08880"/>
  <node id="52" lat="42.36040" lon="-71.08855"/>
  <node id="53" lat="42.36058" lon="-71.08855"/>
  <node id="54" lat="42.36058" lon="-71.08880"/>
  <way id="100"><nd ref="1"/><nd ref="2"/><nd ref="3"/><nd ref="4"/><nd ref="1"/>
    <tag k="building" v="residential"/></way>
  <way id="101"><nd ref="11"/><nd ref="12"/><nd ref="13"/><nd ref="14"/><nd ref="11"/>
    <tag k="building" v="residential"/></way>
  <way id="102"><nd ref="21"/><nd ref="22"/><nd ref="23"/><nd ref="24"/><nd ref="21"/>
    <tag k="building" v="residential"/></way>
  <way id="103"><nd ref="31"/><nd ref="32"/><nd ref="33"/><nd ref="34"/><nd ref="31"/>
    <tag k="building" v="commercial"/></way>
  <way id="104"><nd ref="41"/><nd ref="42"/><nd ref="43"/><nd ref="44"/><nd ref="41"/>
    <tag k="building" v="commercial"/></way>
  <way id="105"><nd ref="51"/><nd ref="52"/><nd ref="53"/><nd ref="54"/><nd ref="51"/>
    <tag k="building" v="commercial"/></way>
</osm>)";

}  // namespace

int main(int argc, char** argv) {
  osmx::City city;
  if (argc > 1) {
    std::ifstream file{argv[1]};
    if (!file) {
      std::cerr << "cannot open " << argv[1] << '\n';
      return 1;
    }
    city = osmx::load_osm_xml(file, argv[1]);
  } else {
    std::cout << "(no extract given - using the embedded sample block)\n";
    city = osmx::load_osm_xml_string(kEmbeddedOsm, "embedded-block");
  }

  std::cout << "loaded " << city.building_count() << " buildings from "
            << city.name() << '\n';
  if (city.building_count() < 2) {
    std::cerr << "need at least two buildings with building=* tags\n";
    return 1;
  }
  std::cout << "extent: " << viz::fmt(city.extent().width(), 0) << " x "
            << viz::fmt(city.extent().height(), 0) << " m, total footprint "
            << viz::fmt(city.total_building_area(), 0) << " m^2\n";

  // Dense placement so even a small block forms a mesh.
  core::NetworkConfig config;
  config.placement.density_per_m2 = 1.0 / 60.0;
  core::CityMeshNetwork network{city, config};
  std::cout << "mesh: " << network.aps().ap_count() << " APs, "
            << network.aps().components().count << " island(s)\n";

  // Route between the two most distant buildings.
  core::BuildingId src = 0;
  core::BuildingId dst = 0;
  double best = -1.0;
  for (const auto& a : city.buildings()) {
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(a.centroid, b.centroid);
      if (d > best) {
        best = d;
        src = a.id;
        dst = b.id;
      }
    }
  }
  std::cout << "routing between the two most distant buildings (" << viz::fmt(best, 0)
            << " m apart)\n";

  const auto bob = cryptox::KeyPair::from_seed(9);
  const auto info = core::PostboxInfo::for_key(bob, dst);
  if (!network.register_postbox(info)) {
    std::cerr << "destination building drew no APs; increase density\n";
    return 1;
  }
  static constexpr std::string_view kMsg = "hello from real map data";
  const auto outcome = network.send(
      src, info,
      {reinterpret_cast<const std::uint8_t*>(kMsg.data()), kMsg.size()});

  std::cout << "route found: " << (outcome.route_found ? "yes" : "no") << '\n';
  if (outcome.route_found) {
    std::cout << "  " << outcome.route.buildings.size() << " buildings -> "
              << outcome.route.waypoints.size() << " waypoints, "
              << outcome.header_bits << "-bit header\n"
              << "  delivered: " << (outcome.delivered ? "yes" : "no") << " with "
              << outcome.transmissions << " broadcasts\n";
  }
  return 0;
}
