// Inter-city relay: a federation of DFNs (the paper's §1 agenda question
// about connecting population centers, e.g. via satellite links).
//
// Three cities run independent CityMesh deployments. Boston and Cambridge
// gateways share a microwave link across the river; Cambridge reaches
// Washington D.C. over a satellite bounce. A message from a Boston sender to
// a D.C. postbox relays: mesh -> microwave -> mesh -> satellite -> mesh.
//
// Usage:  ./build/examples/intercity_relay
#include <iostream>

#include "apps/federation.hpp"
#include "cryptox/sealed.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

using namespace citymesh;

int main() {
  const auto boston = osmx::generate_city(osmx::profile_by_name("boston"));
  const auto cambridge = osmx::generate_city(osmx::profile_by_name("cambridge"));
  const auto dc = osmx::generate_city(osmx::profile_by_name("washington_dc"));

  apps::Federation fed;
  core::NetworkConfig cfg;  // paper defaults per region
  const auto r_boston = fed.add_region("boston", boston, cfg);
  const auto r_cambridge = fed.add_region("cambridge", cambridge, cfg);
  const auto r_dc = fed.add_region("washington_dc", dc, cfg);
  std::cout << "== federation of " << fed.region_count() << " city meshes ==\n"
            << "  boston: " << fed.network(r_boston).aps().ap_count() << " APs\n"
            << "  cambridge: " << fed.network(r_cambridge).aps().ap_count() << " APs\n"
            << "  washington_dc: " << fed.network(r_dc).aps().ap_count() << " APs\n\n";

  // Gateways: pick central, AP-rich buildings in each city.
  const auto central_building = [](const osmx::City& city) {
    core::BuildingId best = 0;
    double best_d = 1e18;
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(b.centroid, city.extent().center());
      if (d < best_d) {
        best_d = d;
        best = b.id;
      }
    }
    return best;
  };
  const bool microwave_ok = fed.add_link({.region_a = r_boston,
                                          .region_b = r_cambridge,
                                          .gateway_a = central_building(boston),
                                          .gateway_b = central_building(cambridge),
                                          .latency_s = 0.002,
                                          .loss_probability = 0.0});
  const bool satellite_ok = fed.add_link({.region_a = r_cambridge,
                                          .region_b = r_dc,
                                          .gateway_a = central_building(cambridge),
                                          .gateway_b = central_building(dc),
                                          .latency_s = 0.27,
                                          .loss_probability = 0.0});
  std::cout << "links: boston<->cambridge microwave " << (microwave_ok ? "up" : "DOWN")
            << ", cambridge<->washington_dc satellite " << (satellite_ok ? "up" : "DOWN")
            << "\n\n";
  if (!microwave_ok || !satellite_ok) return 1;

  // Endpoints: a sender in Boston, a postbox in D.C. (same island as its
  // gateway - the Potomac split is a *local* problem the gateway placement
  // must respect).
  const auto alice = cryptox::KeyPair::from_seed(1);
  const auto bob = cryptox::KeyPair::from_seed(2);
  auto& dc_net = fed.network(r_dc);
  const auto dc_gateway_ap = dc_net.aps().representative_ap(dc, central_building(dc));
  core::BuildingId bob_home = 0;
  double far = 0.0;
  for (const auto& b : dc.buildings()) {
    const auto ap = dc_net.aps().representative_ap(dc, b.id);
    if (!ap || !dc_gateway_ap || !dc_net.aps().connected(*dc_gateway_ap, *ap)) continue;
    const double d = geo::distance(b.centroid, dc.building(central_building(dc)).centroid);
    if (d > far) {
      far = d;
      bob_home = b.id;
    }
  }

  apps::FederatedAddress src{r_boston, core::PostboxInfo::for_key(alice, 15)};
  apps::FederatedAddress dst{r_dc, core::PostboxInfo::for_key(bob, bob_home)};
  const auto box = fed.register_postbox(dst);
  if (!box) {
    std::cerr << "could not register the D.C. postbox\n";
    return 1;
  }

  const auto sealed =
      cryptox::seal(alice, dst.postbox.public_key, "boston checking in on d.c.", 7);
  const auto blob = sealed.serialize();
  const auto outcome = fed.send(src, dst, {blob.data(), blob.size()});

  std::cout << "-- boston -> washington_dc relay --\n  region path:";
  for (const auto& r : outcome.region_path) std::cout << ' ' << r;
  std::cout << "\n  delivered: " << (outcome.delivered ? "yes" : "no") << '\n'
            << "  end-to-end latency: " << viz::fmt(outcome.latency_s * 1000.0, 1)
            << " ms (incl. 272 ms of link bounces)\n"
            << "  mesh broadcasts across all legs: " << outcome.mesh_transmissions
            << '\n';

  if (outcome.delivered) {
    const auto mail = box->retrieve();
    const auto parsed = cryptox::SealedMessage::deserialize(mail.at(0).sealed_payload);
    if (parsed) {
      if (const auto text = cryptox::unseal_text(bob, *parsed)) {
        std::cout << "  bob reads: \"" << *text << "\" (sealed across all three meshes)\n";
      }
    }
  }
  return outcome.delivered ? 0 : 1;
}
