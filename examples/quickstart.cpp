// Quickstart: send one end-to-end encrypted message across a CityMesh.
//
// Walks the four steps of the paper's §3 workflow on a small generated city:
//   1. Bob provisions a postbox and shares its info out-of-band.
//   2. Alice seals a message and plans a building route to Bob's postbox.
//   3. The conduit flood carries it across the AP mesh (event-simulated).
//   4. Bob retrieves and decrypts.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>
#include <limits>

#include "core/network.hpp"
#include "cryptox/sealed.hpp"
#include "osmx/citygen.hpp"

using namespace citymesh;

int main() {
  // --- A city. Profiles model real urban structure; "cambridge" is compact.
  const osmx::City city = osmx::generate_city(osmx::profile_by_name("cambridge"));
  std::cout << "city: " << city.name() << " with " << city.building_count()
            << " buildings\n";

  // --- The network: AP placement + building graph + event simulator.
  core::NetworkConfig config;  // paper defaults: 50 m range, 1 AP / 200 m^2
  core::CityMeshNetwork network{city, config};
  std::cout << "mesh: " << network.aps().ap_count() << " APs, "
            << network.aps().graph().edge_count() << " links\n";

  // --- Step 1: identities and Bob's postbox. Homes are picked by location
  // (the southern edge of Cambridge is across the river, so corner ids may
  // be on a disconnected bank).
  const auto alice = cryptox::KeyPair::from_seed(1);
  const auto bob = cryptox::KeyPair::from_seed(2);
  const auto building_near = [&city](double fx, double fy) {
    const geo::Point target{city.extent().min.x + fx * city.extent().width(),
                            city.extent().min.y + fy * city.extent().height()};
    core::BuildingId best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(b.centroid, target);
      if (d < best_d) {
        best_d = d;
        best = b.id;
      }
    }
    return best;
  };
  const core::BuildingId alice_home = building_near(0.2, 0.35);
  const core::BuildingId bob_home = building_near(0.8, 0.75);

  const auto postbox_info = core::PostboxInfo::for_key(bob, bob_home);
  const auto postbox = network.register_postbox(postbox_info);
  if (!postbox) {
    std::cerr << "Bob's building has no APs - pick another building\n";
    return 1;
  }
  std::cout << "bob's postbox id: " << postbox_info.id.hex().substr(0, 16) << "...\n";

  // --- Step 2: seal and send.
  const auto sealed = cryptox::seal(alice, postbox_info.public_key,
                                    "Hi Bob - the mesh works!", /*ephemeral_seed=*/42);
  const auto outcome = network.send(alice_home, postbox_info, sealed.serialize());

  // --- Step 3: what happened on the air.
  if (!outcome.route_found) {
    std::cerr << "no building route between the homes\n";
    return 1;
  }
  std::cout << "route: " << outcome.route.buildings.size() << " buildings, compressed to "
            << outcome.route.waypoints.size() << " waypoints ("
            << outcome.header_bits << "-bit header)\n";
  std::cout << "delivered: " << (outcome.delivered ? "yes" : "no") << ", "
            << outcome.transmissions << " broadcasts";
  if (const auto oh = outcome.overhead()) {
    std::cout << " (" << *oh << "x the ideal unicast path)";
  }
  std::cout << '\n';

  // --- Step 4: Bob retrieves and decrypts.
  for (const auto& stored : postbox->retrieve()) {
    const auto parsed = cryptox::SealedMessage::deserialize(stored.sealed_payload);
    if (!parsed) continue;
    if (const auto text = cryptox::unseal_text(bob, *parsed)) {
      std::cout << "bob reads: \"" << *text << "\" (from "
                << parsed->sender_id.hex().substr(0, 16) << "...)\n";
    }
  }
  return outcome.delivered ? 0 : 1;
}
