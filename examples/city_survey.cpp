// Run the §2-style wardriving survey over any city profile and print the
// Table-1 summary plus Figure-1 CDFs for that city.
//
// Usage:  ./build/examples/city_survey [profile-name]
//         (default "boston"; see `osmx::default_profiles()` for the list)
#include <iostream>

#include "geo/stats.hpp"
#include "measure/survey.hpp"
#include "measure/survey_stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

using namespace citymesh;

int main(int argc, char** argv) {
  const std::string profile_name = argc > 1 ? argv[1] : "boston";
  osmx::CityProfile profile;
  try {
    profile = osmx::profile_by_name(profile_name);
  } catch (const std::out_of_range&) {
    std::cerr << "unknown profile '" << profile_name << "'. available:";
    for (const auto& p : osmx::default_profiles()) std::cerr << ' ' << p.name;
    std::cerr << '\n';
    return 1;
  }

  const auto city = osmx::generate_city(profile);
  std::cout << "surveying " << city.name() << " (" << city.building_count()
            << " buildings, " << viz::fmt(city.extent().width() / 1000.0, 1) << " x "
            << viz::fmt(city.extent().height() / 1000.0, 1) << " km)\n";

  const auto datasets = measure::run_survey(city, {});
  if (datasets.empty()) {
    std::cout << "this profile has no labeled survey regions\n";
    return 0;
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& d : datasets) {
    rows.push_back({d.name, std::to_string(d.measurement_count()),
                    std::to_string(d.unique_aps())});
  }
  const auto all = measure::merge_datasets(datasets);
  rows.push_back({"all", std::to_string(all.measurement_count()),
                  std::to_string(all.unique_aps())});
  viz::print_table(std::cout, "Survey summary (Table-1 style)",
                   {"Dataset", "# Measurements", "# Unique APs"}, rows);

  std::vector<viz::CdfSeries> macs;
  std::vector<viz::CdfSeries> spreads;
  for (const auto& d : datasets) {
    macs.push_back({d.name, measure::macs_per_measurement(d)});
    spreads.push_back({d.name, measure::spread_per_ap(d)});
  }
  viz::print_cdf(std::cout, "CDF: MACs per measurement (Figure-1a style)", macs,
                 "# MAC addresses");
  viz::print_cdf(std::cout, "CDF: per-AP spread (Figure-1b style)", spreads,
                 "spread (m)");

  std::cout << "\nImplied transmission radii (median spread / 2):\n";
  for (auto& s : spreads) {
    std::cout << "  " << s.label << ": " << viz::fmt(geo::median(s.values) / 2.0, 1)
              << " m\n";
  }
  return 0;
}
