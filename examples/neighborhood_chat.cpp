// Neighborhood chat: the Messenger application layer end to end.
//
// Four neighbors exchange contact cards (out-of-band, before the outage),
// then chat over the mesh during one: short check-ins, a long message that
// fragments across several packets, and a reliable (acked) delivery. All
// content is sealed end-to-end; the mesh only ever carries ciphertext.
//
// Usage:  ./build/examples/neighborhood_chat
#include <iostream>

#include "apps/messenger.hpp"
#include "geo/rng.hpp"
#include "osmx/citygen.hpp"

using namespace citymesh;

int main() {
  osmx::CityProfile profile;
  profile.name = "chat-town";
  profile.width_m = 1200;
  profile.height_m = 1000;
  profile.park_fraction = 0.0;
  profile.seed = 12;
  const auto city = osmx::generate_city(profile);

  core::NetworkConfig cfg;
  cfg.placement.density_per_m2 = 1.0 / 120.0;
  core::CityMeshNetwork net{city, cfg};
  std::cout << "== neighborhood chat over " << city.name() << " ==\n"
            << net.aps().ap_count() << " APs; all payloads sealed end-to-end\n\n";

  // --- Four neighbors, scattered; reliable mode for Dana (she's furthest).
  const auto building_for = [&](double fx, double fy) {
    core::BuildingId best = 0;
    double best_d = 1e18;
    const geo::Point target{city.extent().width() * fx, city.extent().height() * fy};
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(b.centroid, target);
      if (d < best_d) {
        best_d = d;
        best = b.id;
      }
    }
    return best;
  };

  apps::Messenger amy{net, cryptox::KeyPair::from_seed(1), building_for(0.15, 0.2)};
  apps::Messenger ben{net, cryptox::KeyPair::from_seed(2), building_for(0.8, 0.25)};
  apps::Messenger cam{net, cryptox::KeyPair::from_seed(3), building_for(0.2, 0.8)};
  apps::MessengerConfig reliable;
  reliable.reliable = true;
  apps::Messenger dana{net, cryptox::KeyPair::from_seed(4), building_for(0.85, 0.85),
                       reliable};
  for (auto* m : {&amy, &ben, &cam, &dana}) {
    if (!m->online()) {
      std::cerr << "a messenger failed to register its postbox\n";
      return 1;
    }
  }

  // Contact cards exchanged while the internet was still up.
  const auto introduce = [](apps::Messenger& a, const std::string& a_name,
                            apps::Messenger& b, const std::string& b_name) {
    a.add_contact(b_name, b.postbox_info());
    b.add_contact(a_name, a.postbox_info());
  };
  introduce(amy, "amy", ben, "ben");
  introduce(amy, "amy", cam, "cam");
  introduce(amy, "amy", dana, "dana");
  introduce(ben, "ben", cam, "cam");
  introduce(ben, "ben", dana, "dana");
  introduce(cam, "cam", dana, "dana");

  // --- Short check-ins.
  std::cout << "-- check-ins --\n";
  const auto report1 = amy.send_text("ben", "power's out here, you ok?");
  const auto report2 = ben.send_text("amy", "all fine. water's still running.");
  std::cout << "  amy->ben: " << (report1.complete() ? "delivered" : "FAILED") << " ("
            << report1.transmissions << " tx)\n"
            << "  ben->amy: " << (report2.complete() ? "delivered" : "FAILED") << '\n';
  for (const auto& m : ben.check_mail()) {
    std::cout << "  ben reads from " << m.from << ": \"" << m.text << "\"\n";
  }
  for (const auto& m : amy.check_mail()) {
    std::cout << "  amy reads from " << m.from << ": \"" << m.text << "\"\n";
  }

  // --- A long message fragments transparently.
  std::cout << "\n-- long message (fragmentation) --\n";
  std::string supplies = "supply inventory: ";
  for (int i = 0; i < 60; ++i) {
    supplies += "item-" + std::to_string(i) + " (qty " + std::to_string(i % 9) + "), ";
  }
  const auto report3 = cam.send_text("amy", supplies);
  std::cout << "  cam->amy: " << report3.fragments << " fragments, "
            << (report3.complete() ? "all delivered" : "INCOMPLETE") << '\n';
  const auto amy_mail = amy.check_mail();
  std::cout << "  amy reassembled " << amy_mail.size() << " message(s) ("
            << (amy_mail.size() == 1 && amy_mail[0].text == supplies ? "content intact"
                                                                     : "MISMATCH")
            << ")\n";

  // --- Reliable (acked) delivery from the far corner.
  std::cout << "\n-- reliable send (ack + width escalation) --\n";
  const auto report4 = dana.send_text("cam", "meet at the school at noon");
  std::cout << "  dana->cam: " << (report4.complete() ? "delivered" : "FAILED")
            << ", acknowledged: " << (report4.acknowledged ? "yes" : "no") << '\n';
  for (const auto& m : cam.check_mail()) {
    std::cout << "  cam reads from " << m.from << ": \"" << m.text << "\"\n";
  }
  return 0;
}
