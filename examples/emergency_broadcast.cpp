// Emergency geo-broadcast + reliable delivery walkthrough.
//
// Three of the paper's target applications in one scenario:
//   1. The city's emergency authority publishes a *signed* evacuation
//      bulletin to every postbox within a radius of a landmark building
//      (§1's "emergency broadcast messages"). Residents verify the Ed25519
//      signature offline against the authority id they saved before the
//      outage - and reject a rogue issuer's forgery.
//   2. A medic sends a supply request to the depot with `send_reliable`:
//      the destination acks along the reversed conduit, and the sender
//      escalates the conduit width until the ack arrives.
//
// Usage:  ./build/examples/emergency_broadcast [profile-name]  (default boston)
#include <iostream>

#include "apps/bulletin.hpp"
#include "core/network.hpp"
#include "cryptox/sealed.hpp"
#include "geo/rng.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

using namespace citymesh;

int main(int argc, char** argv) {
  const std::string profile = argc > 1 ? argv[1] : "boston";
  const auto city = osmx::generate_city(osmx::profile_by_name(profile));
  core::NetworkConfig cfg;
  cfg.building_suppression = true;  // the reduced-overhead protocol variant
  core::CityMeshNetwork net{city, cfg};
  std::cout << "== emergency broadcast drill: " << city.name() << " ==\n"
            << net.aps().ap_count() << " APs, suppression on\n\n";

  // Residents with postboxes scattered around the landmark (the "city hall"
  // building at the center of downtown) and further out.
  const auto landmark = [&] {
    core::BuildingId best = 0;
    double best_d = 1e18;
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(b.centroid, city.extent().center());
      if (d < best_d) {
        best_d = d;
        best = b.id;
      }
    }
    return best;
  }();

  geo::Rng rng{31};
  struct Resident {
    std::shared_ptr<core::Postbox> box;
    double distance_m;
  };
  std::vector<Resident> residents;
  int seed = 400;
  std::size_t near = 0;
  std::size_t anywhere = 0;
  while (near < 6 || anywhere < 6) {
    const auto b = static_cast<core::BuildingId>(rng.uniform_int(city.building_count()));
    const double d =
        geo::distance(city.building(b).centroid, city.building(landmark).centroid);
    const bool want_near = near < 6;
    if (want_near && d > 350.0) continue;   // recruit the first six downtown
    if (!want_near && d < 500.0) continue;  // and the rest well outside
    const auto keys = cryptox::KeyPair::from_seed(seed++);
    if (auto box = net.register_postbox(core::PostboxInfo::for_key(keys, b))) {
      residents.push_back({box, d});
      (want_near ? near : anywhere) += 1;
    }
  }

  // --- 1. A signed evacuation bulletin around the landmark. Residents
  // trusted the city authority's id (hash of its verify key) before the
  // outage; a rogue issuer signs convincingly but is rejected offline.
  constexpr double kRadius = 400.0;
  auto authority = apps::BulletinAuthority::from_seed(2026);
  auto rogue = apps::BulletinAuthority::from_seed(666);

  const auto bc = apps::publish_bulletin(
      net, authority, landmark, apps::Severity::kEvacuate, landmark,
      static_cast<std::uint32_t>(kRadius), "EVACUATION",
      "flooding expected, move to high ground");
  std::cout << "-- signed bulletin, radius " << kRadius << " m around the landmark --\n"
            << "  transmissions: " << bc.transmissions << '\n'
            << "  postboxes reached: " << bc.postboxes_reached << '\n';

  // A rogue authority floods a fake all-clear over the same region.
  apps::publish_bulletin(net, rogue, landmark, apps::Severity::kAdvisory, landmark,
                         static_cast<std::uint32_t>(kRadius), "all clear",
                         "return home (FAKE)");

  std::size_t inside = 0, inside_reached = 0, outside_reached = 0;
  std::size_t verified = 0, rejected = 0;
  for (const auto& r : residents) {
    // Every device runs its own verifier with its own replay floor.
    apps::BulletinVerifier verifier;
    verifier.trust(authority.id());
    const bool in = r.distance_m <= kRadius;
    const auto mail = r.box->retrieve();
    inside += in;
    inside_reached += (in && !mail.empty());
    outside_reached += (!in && !mail.empty());
    for (const auto& stored : mail) {
      const auto [result, bulletin] = verifier.accept(stored.sealed_payload);
      if (result == apps::BulletinVerifier::Result::kAccepted) {
        ++verified;
      } else {
        ++rejected;
      }
    }
  }
  std::cout << "  residents inside radius reached: " << inside_reached << "/" << inside
            << "; outside reached: " << outside_reached << " (should be 0)\n"
            << "  bulletins verified: " << verified << ", rejected (rogue/replay): "
            << rejected << "\n\n";

  // --- 2. Reliable supply request with ack + width escalation.
  const auto medic = cryptox::KeyPair::from_seed(777);
  const auto depot = cryptox::KeyPair::from_seed(778);
  // Medic near the landmark, depot across town.
  const core::BuildingId medic_home = landmark;
  core::BuildingId depot_home = 0;
  double far = 0.0;
  for (const auto& b : city.buildings()) {
    const double d = geo::distance(b.centroid, city.building(landmark).centroid);
    if (d > far && net.aps().representative_ap(city, b.id) &&
        net.aps().connected(*net.aps().representative_ap(city, landmark),
                            *net.aps().representative_ap(city, b.id))) {
      far = d;
      depot_home = b.id;
    }
  }
  const auto medic_info = core::PostboxInfo::for_key(medic, medic_home);
  const auto depot_info = core::PostboxInfo::for_key(depot, depot_home);
  net.register_postbox(medic_info);
  net.register_postbox(depot_info);

  const auto sealed = cryptox::seal(medic, depot_info.public_key,
                                    "need insulin + bandages at the landmark", 99);
  const auto blob = sealed.serialize();
  const auto reliable = net.send_reliable(medic_home, depot_info,
                                          {blob.data(), blob.size()}, medic_info);
  std::cout << "-- reliable supply request to the depot (" << viz::fmt(far, 0)
            << " m away) --\n"
            << "  attempts: " << reliable.attempts << '\n'
            << "  delivered: " << (reliable.delivered ? "yes" : "no") << '\n'
            << "  acknowledged: " << (reliable.acknowledged ? "yes" : "no") << '\n';
  for (std::size_t i = 0; i < reliable.tries.size(); ++i) {
    const auto& t = reliable.tries[i];
    std::cout << "    try " << i + 1 << ": W=" << t.route.conduit_width_m << " m, "
              << t.transmissions << " tx, delivered=" << t.delivered
              << ", ack=" << t.ack_received << '\n';
  }
  return reliable.acknowledged ? 0 : 1;
}
