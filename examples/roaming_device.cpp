// Roaming device walkthrough: the full §3 step 4 mobility story.
//
// Bob's postbox lives at his home building; his phone does not. As he moves
// through the city it attaches wherever it is, checks in (location update),
// and pulls pending mail: the home postbox agent relays everything over the
// mesh to wherever Bob currently is, where only his device can decrypt it.
//
// Usage:  ./build/examples/roaming_device
#include <iostream>

#include "apps/device.hpp"
#include "cryptox/sealed.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

using namespace citymesh;

int main() {
  osmx::CityProfile profile;
  profile.name = "roam-town";
  profile.width_m = 1400;
  profile.height_m = 1100;
  profile.park_fraction = 0.0;
  profile.seed = 9;
  const auto city = osmx::generate_city(profile);

  core::NetworkConfig cfg;
  cfg.placement.density_per_m2 = 1.0 / 120.0;
  core::CityMeshNetwork net{city, cfg};
  std::cout << "== roaming device over " << city.name() << " ("
            << net.aps().ap_count() << " APs) ==\n\n";

  const auto building_near = [&](double fx, double fy) {
    core::BuildingId best = 0;
    double best_d = 1e18;
    const geo::Point target{city.extent().width() * fx, city.extent().height() * fy};
    for (const auto& b : city.buildings()) {
      const double d = geo::distance(b.centroid, target);
      if (d < best_d) {
        best_d = d;
        best = b.id;
      }
    }
    return best;
  };

  // Bob's home is in the north-east; Alice lives in the south-west.
  apps::MobileDevice bob{net, cryptox::KeyPair::from_seed(2), building_near(0.85, 0.85)};
  const auto alice = cryptox::KeyPair::from_seed(1);
  const auto alice_home = building_near(0.15, 0.15);
  if (!bob.online()) {
    std::cerr << "bob's home has no APs\n";
    return 1;
  }
  std::cout << "bob's postbox: building " << bob.home() << " (north-east)\n";

  // While Bob is out, Alice sends two sealed messages to his *postbox*.
  for (const std::string_view text :
       {"water main broke on elm st", "shelter opens at 6pm"}) {
    const auto sealed = cryptox::seal(alice, bob.home_info().public_key, text, 40 + text.size());
    const auto blob = sealed.serialize();
    const auto sent = net.send(alice_home, bob.home_info(), {blob.data(), blob.size()});
    std::cout << "alice -> bob's postbox: " << (sent.delivered ? "stored" : "LOST")
              << " (\"" << text << "\")\n";
  }

  // Bob wanders: clinic (center), then the shelter (south-west).
  std::cout << "\nbob moves to the clinic (center) and checks in...\n";
  if (!bob.move_to(building_near(0.5, 0.5))) {
    std::cerr << "  attach failed\n";
    return 1;
  }
  auto sync = bob.sync();
  std::cout << "  sync: " << sync.forwarded << " message(s) relayed "
            << "from home to building " << bob.location() << '\n';
  for (const auto& text : sync.texts) std::cout << "  bob reads: \"" << text << "\"\n";

  // New mail lands at home after the sync; the next stop picks it up.
  const auto late = cryptox::seal(alice, bob.home_info().public_key,
                                  "bring your documents", 99);
  const auto late_blob = late.serialize();
  net.send(alice_home, bob.home_info(), {late_blob.data(), late_blob.size()});

  std::cout << "\nbob moves to the shelter (south-west) and checks in...\n";
  if (!bob.move_to(building_near(0.2, 0.2))) {
    std::cerr << "  attach failed\n";
    return 1;
  }
  sync = bob.sync();
  std::cout << "  sync: " << sync.forwarded << " message(s) relayed\n";
  for (const auto& text : sync.texts) std::cout << "  bob reads: \"" << text << "\"\n";

  std::cout << "\n(the mesh only ever carried ciphertext; the home postbox\n"
            << " learned bob's location from his check-ins and forwarded mail\n"
            << " without being able to read it)\n";
  return 0;
}
