# Empty dependencies file for test_cryptox.
# This may be replaced when dependencies are built.
