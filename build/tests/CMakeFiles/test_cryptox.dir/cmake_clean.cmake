file(REMOVE_RECURSE
  "CMakeFiles/test_cryptox.dir/test_cryptox.cpp.o"
  "CMakeFiles/test_cryptox.dir/test_cryptox.cpp.o.d"
  "test_cryptox"
  "test_cryptox.pdb"
  "test_cryptox[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cryptox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
