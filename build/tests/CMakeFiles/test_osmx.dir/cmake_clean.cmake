file(REMOVE_RECURSE
  "CMakeFiles/test_osmx.dir/test_osmx.cpp.o"
  "CMakeFiles/test_osmx.dir/test_osmx.cpp.o.d"
  "test_osmx"
  "test_osmx.pdb"
  "test_osmx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_osmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
