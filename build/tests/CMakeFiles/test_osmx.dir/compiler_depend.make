# Empty compiler generated dependencies file for test_osmx.
# This may be replaced when dependencies are built.
