
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/test_core.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/test_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/routing/CMakeFiles/citymesh_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/citymesh_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/citymesh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/citymesh_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/cryptox/CMakeFiles/citymesh_cryptox.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/citymesh_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/citymesh_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/citymesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/graphx/CMakeFiles/citymesh_graphx.dir/DependInfo.cmake"
  "/root/repo/build/src/osmx/CMakeFiles/citymesh_osmx.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/citymesh_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
