# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_geo[1]_include.cmake")
include("/root/repo/build/tests/test_graphx[1]_include.cmake")
include("/root/repo/build/tests/test_wire[1]_include.cmake")
include("/root/repo/build/tests/test_cryptox[1]_include.cmake")
include("/root/repo/build/tests/test_osmx[1]_include.cmake")
include("/root/repo/build/tests/test_mesh[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_measure[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
