file(REMOVE_RECURSE
  "CMakeFiles/disaster_messaging.dir/disaster_messaging.cpp.o"
  "CMakeFiles/disaster_messaging.dir/disaster_messaging.cpp.o.d"
  "disaster_messaging"
  "disaster_messaging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_messaging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
