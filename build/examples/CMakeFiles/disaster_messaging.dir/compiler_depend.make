# Empty compiler generated dependencies file for disaster_messaging.
# This may be replaced when dependencies are built.
