# Empty compiler generated dependencies file for gap_bridging.
# This may be replaced when dependencies are built.
