file(REMOVE_RECURSE
  "CMakeFiles/gap_bridging.dir/gap_bridging.cpp.o"
  "CMakeFiles/gap_bridging.dir/gap_bridging.cpp.o.d"
  "gap_bridging"
  "gap_bridging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gap_bridging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
