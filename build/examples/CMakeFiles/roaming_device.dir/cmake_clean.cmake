file(REMOVE_RECURSE
  "CMakeFiles/roaming_device.dir/roaming_device.cpp.o"
  "CMakeFiles/roaming_device.dir/roaming_device.cpp.o.d"
  "roaming_device"
  "roaming_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roaming_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
