# Empty compiler generated dependencies file for roaming_device.
# This may be replaced when dependencies are built.
