file(REMOVE_RECURSE
  "CMakeFiles/osm_import.dir/osm_import.cpp.o"
  "CMakeFiles/osm_import.dir/osm_import.cpp.o.d"
  "osm_import"
  "osm_import.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osm_import.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
