# Empty compiler generated dependencies file for osm_import.
# This may be replaced when dependencies are built.
