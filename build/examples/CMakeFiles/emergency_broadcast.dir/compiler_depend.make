# Empty compiler generated dependencies file for emergency_broadcast.
# This may be replaced when dependencies are built.
