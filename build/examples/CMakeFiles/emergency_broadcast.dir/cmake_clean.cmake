file(REMOVE_RECURSE
  "CMakeFiles/emergency_broadcast.dir/emergency_broadcast.cpp.o"
  "CMakeFiles/emergency_broadcast.dir/emergency_broadcast.cpp.o.d"
  "emergency_broadcast"
  "emergency_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emergency_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
