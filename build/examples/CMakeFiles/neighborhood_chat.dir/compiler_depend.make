# Empty compiler generated dependencies file for neighborhood_chat.
# This may be replaced when dependencies are built.
