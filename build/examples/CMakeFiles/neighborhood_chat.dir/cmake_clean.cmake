file(REMOVE_RECURSE
  "CMakeFiles/neighborhood_chat.dir/neighborhood_chat.cpp.o"
  "CMakeFiles/neighborhood_chat.dir/neighborhood_chat.cpp.o.d"
  "neighborhood_chat"
  "neighborhood_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neighborhood_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
