# Empty dependencies file for intercity_relay.
# This may be replaced when dependencies are built.
