file(REMOVE_RECURSE
  "CMakeFiles/intercity_relay.dir/intercity_relay.cpp.o"
  "CMakeFiles/intercity_relay.dir/intercity_relay.cpp.o.d"
  "intercity_relay"
  "intercity_relay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intercity_relay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
