# Empty dependencies file for city_survey.
# This may be replaced when dependencies are built.
