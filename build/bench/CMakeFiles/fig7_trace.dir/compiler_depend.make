# Empty compiler generated dependencies file for fig7_trace.
# This may be replaced when dependencies are built.
