# Empty dependencies file for table1_measurements.
# This may be replaced when dependencies are built.
