file(REMOVE_RECURSE
  "CMakeFiles/table1_measurements.dir/table1_measurements.cpp.o"
  "CMakeFiles/table1_measurements.dir/table1_measurements.cpp.o.d"
  "table1_measurements"
  "table1_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
