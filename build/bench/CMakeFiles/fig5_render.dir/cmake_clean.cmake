file(REMOVE_RECURSE
  "CMakeFiles/fig5_render.dir/fig5_render.cpp.o"
  "CMakeFiles/fig5_render.dir/fig5_render.cpp.o.d"
  "fig5_render"
  "fig5_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
