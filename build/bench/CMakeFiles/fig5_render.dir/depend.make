# Empty dependencies file for fig5_render.
# This may be replaced when dependencies are built.
