file(REMOVE_RECURSE
  "CMakeFiles/fig1_cdfs.dir/fig1_cdfs.cpp.o"
  "CMakeFiles/fig1_cdfs.dir/fig1_cdfs.cpp.o.d"
  "fig1_cdfs"
  "fig1_cdfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_cdfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
