# Empty dependencies file for fig1_cdfs.
# This may be replaced when dependencies are built.
