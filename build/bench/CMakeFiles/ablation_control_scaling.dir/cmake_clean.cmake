file(REMOVE_RECURSE
  "CMakeFiles/ablation_control_scaling.dir/ablation_control_scaling.cpp.o"
  "CMakeFiles/ablation_control_scaling.dir/ablation_control_scaling.cpp.o.d"
  "ablation_control_scaling"
  "ablation_control_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_control_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
