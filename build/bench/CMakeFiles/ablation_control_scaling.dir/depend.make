# Empty dependencies file for ablation_control_scaling.
# This may be replaced when dependencies are built.
