# Empty dependencies file for header_stats.
# This may be replaced when dependencies are built.
