file(REMOVE_RECURSE
  "CMakeFiles/header_stats.dir/header_stats.cpp.o"
  "CMakeFiles/header_stats.dir/header_stats.cpp.o.d"
  "header_stats"
  "header_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/header_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
