file(REMOVE_RECURSE
  "CMakeFiles/ablation_width.dir/ablation_width.cpp.o"
  "CMakeFiles/ablation_width.dir/ablation_width.cpp.o.d"
  "ablation_width"
  "ablation_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
