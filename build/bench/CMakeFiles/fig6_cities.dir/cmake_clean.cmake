file(REMOVE_RECURSE
  "CMakeFiles/fig6_cities.dir/fig6_cities.cpp.o"
  "CMakeFiles/fig6_cities.dir/fig6_cities.cpp.o.d"
  "fig6_cities"
  "fig6_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
