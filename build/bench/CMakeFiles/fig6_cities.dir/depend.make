# Empty dependencies file for fig6_cities.
# This may be replaced when dependencies are built.
