file(REMOVE_RECURSE
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cpp.o"
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cpp.o.d"
  "fig6_confidence"
  "fig6_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
