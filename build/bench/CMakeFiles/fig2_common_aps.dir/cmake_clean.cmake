file(REMOVE_RECURSE
  "CMakeFiles/fig2_common_aps.dir/fig2_common_aps.cpp.o"
  "CMakeFiles/fig2_common_aps.dir/fig2_common_aps.cpp.o.d"
  "fig2_common_aps"
  "fig2_common_aps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_common_aps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
