# Empty dependencies file for fig2_common_aps.
# This may be replaced when dependencies are built.
