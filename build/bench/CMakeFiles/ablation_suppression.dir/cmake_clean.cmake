file(REMOVE_RECURSE
  "CMakeFiles/ablation_suppression.dir/ablation_suppression.cpp.o"
  "CMakeFiles/ablation_suppression.dir/ablation_suppression.cpp.o.d"
  "ablation_suppression"
  "ablation_suppression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_suppression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
