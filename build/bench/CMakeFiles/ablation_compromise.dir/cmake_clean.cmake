file(REMOVE_RECURSE
  "CMakeFiles/ablation_compromise.dir/ablation_compromise.cpp.o"
  "CMakeFiles/ablation_compromise.dir/ablation_compromise.cpp.o.d"
  "ablation_compromise"
  "ablation_compromise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compromise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
