# Empty dependencies file for ablation_compromise.
# This may be replaced when dependencies are built.
