file(REMOVE_RECURSE
  "CMakeFiles/citymesh_cli.dir/citymesh_cli.cpp.o"
  "CMakeFiles/citymesh_cli.dir/citymesh_cli.cpp.o.d"
  "citymesh"
  "citymesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
