# Empty compiler generated dependencies file for citymesh_cli.
# This may be replaced when dependencies are built.
