# Empty compiler generated dependencies file for citymesh_routing.
# This may be replaced when dependencies are built.
