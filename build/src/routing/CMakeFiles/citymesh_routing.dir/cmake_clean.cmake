file(REMOVE_RECURSE
  "CMakeFiles/citymesh_routing.dir/baselines.cpp.o"
  "CMakeFiles/citymesh_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/citymesh_routing.dir/control_overhead.cpp.o"
  "CMakeFiles/citymesh_routing.dir/control_overhead.cpp.o.d"
  "libcitymesh_routing.a"
  "libcitymesh_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
