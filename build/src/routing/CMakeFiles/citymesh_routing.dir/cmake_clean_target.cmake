file(REMOVE_RECURSE
  "libcitymesh_routing.a"
)
