# Empty compiler generated dependencies file for citymesh_sim.
# This may be replaced when dependencies are built.
