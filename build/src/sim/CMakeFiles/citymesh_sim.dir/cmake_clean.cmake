file(REMOVE_RECURSE
  "CMakeFiles/citymesh_sim.dir/simulator.cpp.o"
  "CMakeFiles/citymesh_sim.dir/simulator.cpp.o.d"
  "libcitymesh_sim.a"
  "libcitymesh_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
