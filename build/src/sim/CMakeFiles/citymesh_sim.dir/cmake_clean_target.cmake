file(REMOVE_RECURSE
  "libcitymesh_sim.a"
)
