file(REMOVE_RECURSE
  "CMakeFiles/citymesh_viz.dir/ascii.cpp.o"
  "CMakeFiles/citymesh_viz.dir/ascii.cpp.o.d"
  "CMakeFiles/citymesh_viz.dir/svg.cpp.o"
  "CMakeFiles/citymesh_viz.dir/svg.cpp.o.d"
  "libcitymesh_viz.a"
  "libcitymesh_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
