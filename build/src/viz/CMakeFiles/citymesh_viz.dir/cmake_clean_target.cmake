file(REMOVE_RECURSE
  "libcitymesh_viz.a"
)
