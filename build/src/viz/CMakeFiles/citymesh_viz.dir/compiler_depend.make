# Empty compiler generated dependencies file for citymesh_viz.
# This may be replaced when dependencies are built.
