# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("geo")
subdirs("graphx")
subdirs("wire")
subdirs("cryptox")
subdirs("osmx")
subdirs("mesh")
subdirs("sim")
subdirs("routing")
subdirs("core")
subdirs("apps")
subdirs("measure")
subdirs("viz")
