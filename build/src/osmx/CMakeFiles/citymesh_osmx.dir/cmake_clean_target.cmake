file(REMOVE_RECURSE
  "libcitymesh_osmx.a"
)
