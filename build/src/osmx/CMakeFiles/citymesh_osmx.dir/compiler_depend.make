# Empty compiler generated dependencies file for citymesh_osmx.
# This may be replaced when dependencies are built.
