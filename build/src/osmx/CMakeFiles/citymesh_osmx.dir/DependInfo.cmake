
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/osmx/building.cpp" "src/osmx/CMakeFiles/citymesh_osmx.dir/building.cpp.o" "gcc" "src/osmx/CMakeFiles/citymesh_osmx.dir/building.cpp.o.d"
  "/root/repo/src/osmx/citygen.cpp" "src/osmx/CMakeFiles/citymesh_osmx.dir/citygen.cpp.o" "gcc" "src/osmx/CMakeFiles/citymesh_osmx.dir/citygen.cpp.o.d"
  "/root/repo/src/osmx/osm_xml.cpp" "src/osmx/CMakeFiles/citymesh_osmx.dir/osm_xml.cpp.o" "gcc" "src/osmx/CMakeFiles/citymesh_osmx.dir/osm_xml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
