file(REMOVE_RECURSE
  "CMakeFiles/citymesh_osmx.dir/building.cpp.o"
  "CMakeFiles/citymesh_osmx.dir/building.cpp.o.d"
  "CMakeFiles/citymesh_osmx.dir/citygen.cpp.o"
  "CMakeFiles/citymesh_osmx.dir/citygen.cpp.o.d"
  "CMakeFiles/citymesh_osmx.dir/osm_xml.cpp.o"
  "CMakeFiles/citymesh_osmx.dir/osm_xml.cpp.o.d"
  "libcitymesh_osmx.a"
  "libcitymesh_osmx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_osmx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
