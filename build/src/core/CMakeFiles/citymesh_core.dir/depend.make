# Empty dependencies file for citymesh_core.
# This may be replaced when dependencies are built.
