file(REMOVE_RECURSE
  "CMakeFiles/citymesh_core.dir/ap_agent.cpp.o"
  "CMakeFiles/citymesh_core.dir/ap_agent.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/building_graph.cpp.o"
  "CMakeFiles/citymesh_core.dir/building_graph.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/conduit.cpp.o"
  "CMakeFiles/citymesh_core.dir/conduit.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/evaluation.cpp.o"
  "CMakeFiles/citymesh_core.dir/evaluation.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/network.cpp.o"
  "CMakeFiles/citymesh_core.dir/network.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/postbox.cpp.o"
  "CMakeFiles/citymesh_core.dir/postbox.cpp.o.d"
  "CMakeFiles/citymesh_core.dir/route_planner.cpp.o"
  "CMakeFiles/citymesh_core.dir/route_planner.cpp.o.d"
  "libcitymesh_core.a"
  "libcitymesh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
