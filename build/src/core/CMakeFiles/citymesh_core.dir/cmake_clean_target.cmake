file(REMOVE_RECURSE
  "libcitymesh_core.a"
)
