
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ap_agent.cpp" "src/core/CMakeFiles/citymesh_core.dir/ap_agent.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/ap_agent.cpp.o.d"
  "/root/repo/src/core/building_graph.cpp" "src/core/CMakeFiles/citymesh_core.dir/building_graph.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/building_graph.cpp.o.d"
  "/root/repo/src/core/conduit.cpp" "src/core/CMakeFiles/citymesh_core.dir/conduit.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/conduit.cpp.o.d"
  "/root/repo/src/core/evaluation.cpp" "src/core/CMakeFiles/citymesh_core.dir/evaluation.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/evaluation.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/citymesh_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/network.cpp.o.d"
  "/root/repo/src/core/postbox.cpp" "src/core/CMakeFiles/citymesh_core.dir/postbox.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/postbox.cpp.o.d"
  "/root/repo/src/core/route_planner.cpp" "src/core/CMakeFiles/citymesh_core.dir/route_planner.cpp.o" "gcc" "src/core/CMakeFiles/citymesh_core.dir/route_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graphx/CMakeFiles/citymesh_graphx.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/citymesh_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/cryptox/CMakeFiles/citymesh_cryptox.dir/DependInfo.cmake"
  "/root/repo/build/src/osmx/CMakeFiles/citymesh_osmx.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/citymesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/citymesh_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
