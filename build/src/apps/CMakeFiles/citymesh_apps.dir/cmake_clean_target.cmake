file(REMOVE_RECURSE
  "libcitymesh_apps.a"
)
