# Empty dependencies file for citymesh_apps.
# This may be replaced when dependencies are built.
