file(REMOVE_RECURSE
  "CMakeFiles/citymesh_apps.dir/bulletin.cpp.o"
  "CMakeFiles/citymesh_apps.dir/bulletin.cpp.o.d"
  "CMakeFiles/citymesh_apps.dir/device.cpp.o"
  "CMakeFiles/citymesh_apps.dir/device.cpp.o.d"
  "CMakeFiles/citymesh_apps.dir/federation.cpp.o"
  "CMakeFiles/citymesh_apps.dir/federation.cpp.o.d"
  "CMakeFiles/citymesh_apps.dir/messenger.cpp.o"
  "CMakeFiles/citymesh_apps.dir/messenger.cpp.o.d"
  "libcitymesh_apps.a"
  "libcitymesh_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
