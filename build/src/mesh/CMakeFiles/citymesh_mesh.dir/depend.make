# Empty dependencies file for citymesh_mesh.
# This may be replaced when dependencies are built.
