
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mesh/ap_network.cpp" "src/mesh/CMakeFiles/citymesh_mesh.dir/ap_network.cpp.o" "gcc" "src/mesh/CMakeFiles/citymesh_mesh.dir/ap_network.cpp.o.d"
  "/root/repo/src/mesh/islands.cpp" "src/mesh/CMakeFiles/citymesh_mesh.dir/islands.cpp.o" "gcc" "src/mesh/CMakeFiles/citymesh_mesh.dir/islands.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graphx/CMakeFiles/citymesh_graphx.dir/DependInfo.cmake"
  "/root/repo/build/src/osmx/CMakeFiles/citymesh_osmx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
