file(REMOVE_RECURSE
  "CMakeFiles/citymesh_mesh.dir/ap_network.cpp.o"
  "CMakeFiles/citymesh_mesh.dir/ap_network.cpp.o.d"
  "CMakeFiles/citymesh_mesh.dir/islands.cpp.o"
  "CMakeFiles/citymesh_mesh.dir/islands.cpp.o.d"
  "libcitymesh_mesh.a"
  "libcitymesh_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
