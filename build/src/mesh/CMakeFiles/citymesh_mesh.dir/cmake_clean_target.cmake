file(REMOVE_RECURSE
  "libcitymesh_mesh.a"
)
