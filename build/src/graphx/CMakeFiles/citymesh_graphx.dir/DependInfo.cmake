
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graphx/graph.cpp" "src/graphx/CMakeFiles/citymesh_graphx.dir/graph.cpp.o" "gcc" "src/graphx/CMakeFiles/citymesh_graphx.dir/graph.cpp.o.d"
  "/root/repo/src/graphx/shortest_path.cpp" "src/graphx/CMakeFiles/citymesh_graphx.dir/shortest_path.cpp.o" "gcc" "src/graphx/CMakeFiles/citymesh_graphx.dir/shortest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
