file(REMOVE_RECURSE
  "libcitymesh_graphx.a"
)
