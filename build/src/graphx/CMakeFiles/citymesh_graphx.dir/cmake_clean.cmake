file(REMOVE_RECURSE
  "CMakeFiles/citymesh_graphx.dir/graph.cpp.o"
  "CMakeFiles/citymesh_graphx.dir/graph.cpp.o.d"
  "CMakeFiles/citymesh_graphx.dir/shortest_path.cpp.o"
  "CMakeFiles/citymesh_graphx.dir/shortest_path.cpp.o.d"
  "libcitymesh_graphx.a"
  "libcitymesh_graphx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_graphx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
