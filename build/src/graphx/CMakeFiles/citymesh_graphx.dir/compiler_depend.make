# Empty compiler generated dependencies file for citymesh_graphx.
# This may be replaced when dependencies are built.
