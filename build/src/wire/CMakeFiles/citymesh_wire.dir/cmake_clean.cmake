file(REMOVE_RECURSE
  "CMakeFiles/citymesh_wire.dir/bitio.cpp.o"
  "CMakeFiles/citymesh_wire.dir/bitio.cpp.o.d"
  "CMakeFiles/citymesh_wire.dir/packet.cpp.o"
  "CMakeFiles/citymesh_wire.dir/packet.cpp.o.d"
  "libcitymesh_wire.a"
  "libcitymesh_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
