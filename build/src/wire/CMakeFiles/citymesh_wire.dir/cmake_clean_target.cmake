file(REMOVE_RECURSE
  "libcitymesh_wire.a"
)
