# Empty compiler generated dependencies file for citymesh_wire.
# This may be replaced when dependencies are built.
