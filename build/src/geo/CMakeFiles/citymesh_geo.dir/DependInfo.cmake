
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geometry.cpp" "src/geo/CMakeFiles/citymesh_geo.dir/geometry.cpp.o" "gcc" "src/geo/CMakeFiles/citymesh_geo.dir/geometry.cpp.o.d"
  "/root/repo/src/geo/projection.cpp" "src/geo/CMakeFiles/citymesh_geo.dir/projection.cpp.o" "gcc" "src/geo/CMakeFiles/citymesh_geo.dir/projection.cpp.o.d"
  "/root/repo/src/geo/spatial_grid.cpp" "src/geo/CMakeFiles/citymesh_geo.dir/spatial_grid.cpp.o" "gcc" "src/geo/CMakeFiles/citymesh_geo.dir/spatial_grid.cpp.o.d"
  "/root/repo/src/geo/stats.cpp" "src/geo/CMakeFiles/citymesh_geo.dir/stats.cpp.o" "gcc" "src/geo/CMakeFiles/citymesh_geo.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
