# Empty compiler generated dependencies file for citymesh_geo.
# This may be replaced when dependencies are built.
