file(REMOVE_RECURSE
  "CMakeFiles/citymesh_geo.dir/geometry.cpp.o"
  "CMakeFiles/citymesh_geo.dir/geometry.cpp.o.d"
  "CMakeFiles/citymesh_geo.dir/projection.cpp.o"
  "CMakeFiles/citymesh_geo.dir/projection.cpp.o.d"
  "CMakeFiles/citymesh_geo.dir/spatial_grid.cpp.o"
  "CMakeFiles/citymesh_geo.dir/spatial_grid.cpp.o.d"
  "CMakeFiles/citymesh_geo.dir/stats.cpp.o"
  "CMakeFiles/citymesh_geo.dir/stats.cpp.o.d"
  "libcitymesh_geo.a"
  "libcitymesh_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
