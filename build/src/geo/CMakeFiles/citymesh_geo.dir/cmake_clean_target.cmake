file(REMOVE_RECURSE
  "libcitymesh_geo.a"
)
