# Empty dependencies file for citymesh_measure.
# This may be replaced when dependencies are built.
