
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/measure/survey.cpp" "src/measure/CMakeFiles/citymesh_measure.dir/survey.cpp.o" "gcc" "src/measure/CMakeFiles/citymesh_measure.dir/survey.cpp.o.d"
  "/root/repo/src/measure/survey_stats.cpp" "src/measure/CMakeFiles/citymesh_measure.dir/survey_stats.cpp.o" "gcc" "src/measure/CMakeFiles/citymesh_measure.dir/survey_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/osmx/CMakeFiles/citymesh_osmx.dir/DependInfo.cmake"
  "/root/repo/build/src/mesh/CMakeFiles/citymesh_mesh.dir/DependInfo.cmake"
  "/root/repo/build/src/graphx/CMakeFiles/citymesh_graphx.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
