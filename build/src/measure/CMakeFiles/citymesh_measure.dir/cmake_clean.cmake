file(REMOVE_RECURSE
  "CMakeFiles/citymesh_measure.dir/survey.cpp.o"
  "CMakeFiles/citymesh_measure.dir/survey.cpp.o.d"
  "CMakeFiles/citymesh_measure.dir/survey_stats.cpp.o"
  "CMakeFiles/citymesh_measure.dir/survey_stats.cpp.o.d"
  "libcitymesh_measure.a"
  "libcitymesh_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
