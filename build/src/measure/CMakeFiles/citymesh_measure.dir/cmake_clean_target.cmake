file(REMOVE_RECURSE
  "libcitymesh_measure.a"
)
