
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cryptox/chacha20.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/chacha20.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/chacha20.cpp.o.d"
  "/root/repo/src/cryptox/ed25519.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/ed25519.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/ed25519.cpp.o.d"
  "/root/repo/src/cryptox/identity.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/identity.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/identity.cpp.o.d"
  "/root/repo/src/cryptox/sealed.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sealed.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sealed.cpp.o.d"
  "/root/repo/src/cryptox/sha256.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sha256.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sha256.cpp.o.d"
  "/root/repo/src/cryptox/sha512.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sha512.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/sha512.cpp.o.d"
  "/root/repo/src/cryptox/x25519.cpp" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/x25519.cpp.o" "gcc" "src/cryptox/CMakeFiles/citymesh_cryptox.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geo/CMakeFiles/citymesh_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
