file(REMOVE_RECURSE
  "libcitymesh_cryptox.a"
)
