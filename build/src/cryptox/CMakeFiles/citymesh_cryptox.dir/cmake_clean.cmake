file(REMOVE_RECURSE
  "CMakeFiles/citymesh_cryptox.dir/chacha20.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/chacha20.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/ed25519.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/ed25519.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/identity.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/identity.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/sealed.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/sealed.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/sha256.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/sha256.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/sha512.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/sha512.cpp.o.d"
  "CMakeFiles/citymesh_cryptox.dir/x25519.cpp.o"
  "CMakeFiles/citymesh_cryptox.dir/x25519.cpp.o.d"
  "libcitymesh_cryptox.a"
  "libcitymesh_cryptox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/citymesh_cryptox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
