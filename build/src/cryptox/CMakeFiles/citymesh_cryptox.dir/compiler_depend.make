# Empty compiler generated dependencies file for citymesh_cryptox.
# This may be replaced when dependencies are built.
