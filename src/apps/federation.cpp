#include "apps/federation.hpp"

#include <limits>
#include <queue>

namespace citymesh::apps {

std::size_t Federation::add_region(std::string name, const osmx::City& city,
                                   const core::NetworkConfig& config) {
  regions_.push_back(std::make_unique<Region>(std::move(name), city, config));
  gateways_.emplace_back();
  links_.emplace_back();
  return regions_.size() - 1;
}

std::optional<std::size_t> Federation::ensure_gateway(std::size_t region,
                                                      osmx::BuildingId building) {
  auto& gateways = gateways_.at(region);
  for (std::size_t i = 0; i < gateways.size(); ++i) {
    if (gateways[i].building == building) return i;
  }
  Gateway gw;
  gw.building = building;
  const auto keys = cryptox::KeyPair::from_seed(next_gateway_seed_++);
  gw.info = core::PostboxInfo::for_key(keys, building);
  gw.postbox = regions_[region]->network.register_postbox(gw.info);
  if (!gw.postbox) return std::nullopt;
  gateways.push_back(std::move(gw));
  return gateways.size() - 1;
}

bool Federation::add_link(const RegionLink& link) {
  if (link.region_a >= regions_.size() || link.region_b >= regions_.size() ||
      link.region_a == link.region_b) {
    return false;
  }
  const auto ga = ensure_gateway(link.region_a, link.gateway_a);
  const auto gb = ensure_gateway(link.region_b, link.gateway_b);
  if (!ga || !gb) return false;
  links_[link.region_a].push_back(
      {link.region_b, *ga, *gb, link.latency_s, link.loss_probability});
  links_[link.region_b].push_back(
      {link.region_a, *gb, *ga, link.latency_s, link.loss_probability});
  return true;
}

std::shared_ptr<core::Postbox> Federation::register_postbox(
    const FederatedAddress& address) {
  if (address.region >= regions_.size()) return nullptr;
  return regions_[address.region]->network.register_postbox(address.postbox);
}

FederatedOutcome Federation::send(const FederatedAddress& from,
                                  const FederatedAddress& to,
                                  std::span<const std::uint8_t> payload) {
  FederatedOutcome outcome;
  if (from.region >= regions_.size() || to.region >= regions_.size()) return outcome;

  // --- Region-level route: BFS over the link graph, remembering the link
  // taken into each region.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> prev_region(regions_.size(), kNone);
  std::vector<const Link*> via_link(regions_.size(), nullptr);
  std::vector<bool> visited(regions_.size(), false);
  std::queue<std::size_t> frontier;
  visited[from.region] = true;
  frontier.push(from.region);
  while (!frontier.empty()) {
    const std::size_t r = frontier.front();
    frontier.pop();
    if (r == to.region) break;
    for (const Link& link : links_[r]) {
      if (visited[link.peer_region]) continue;
      visited[link.peer_region] = true;
      prev_region[link.peer_region] = r;
      via_link[link.peer_region] = &link;
      frontier.push(link.peer_region);
    }
  }
  if (!visited[to.region]) return outcome;

  // Reconstruct the region path and the inbound link per hop.
  std::vector<std::size_t> path;
  for (std::size_t r = to.region; r != kNone; r = prev_region[r]) path.push_back(r);
  std::reverse(path.begin(), path.end());
  for (const std::size_t r : path) outcome.region_path.push_back(regions_[r]->name);

  // --- Walk the legs. Within a region we go from the current building to
  // either the next hop's outbound gateway or (in the final region) the
  // destination postbox.
  outcome.route_found = true;  // falsified below if any leg cannot route
  osmx::BuildingId current_building = from.postbox.building;
  for (std::size_t hop = 0; hop < path.size(); ++hop) {
    const std::size_t region = path[hop];
    auto& net = regions_[region]->network;
    const bool last = hop + 1 == path.size();

    if (last) {
      const auto leg = net.send(current_building, to.postbox, payload);
      outcome.mesh_transmissions += leg.transmissions;
      outcome.latency_s += leg.delivery_time_s;
      outcome.route_found = outcome.route_found && leg.route_found;
      outcome.delivered = leg.delivered;
      return outcome;
    }

    // The link that carries us out of `region` toward path[hop+1]. BFS set
    // via_link[next] while scanning links_[region], so the record's indices
    // are local to this region (gateway_index) and the next
    // (peer_gateway_index).
    const Link* outbound = via_link[path[hop + 1]];
    const Gateway& local_gateway = gateways_[region][outbound->gateway_index];
    const Gateway& remote_gateway = gateways_[path[hop + 1]][outbound->peer_gateway_index];

    // Leg A: mesh from the current building to the local gateway postbox
    // (skip when we are already at the gateway building).
    if (current_building != local_gateway.building) {
      const auto leg = net.send(current_building, local_gateway.info, payload);
      outcome.mesh_transmissions += leg.transmissions;
      outcome.latency_s += leg.delivery_time_s;
      outcome.route_found = outcome.route_found && leg.route_found;
      if (!leg.delivered) return outcome;
    }

    // Leg B: the long-haul link.
    outcome.latency_s += outbound->latency_s;
    if (outbound->loss_probability > 0.0 && rng_.chance(outbound->loss_probability)) {
      return outcome;  // link dropped the relay; no end-to-end retransmit yet
    }
    current_building = remote_gateway.building;
  }
  return outcome;  // unreachable: the loop returns from the last hop
}

}  // namespace citymesh::apps
