// Inter-network of DFNs (§1: "how do we form an inter-network of DFNs
// across regions?" and "what role ... should technologies such as satellite
// networks serve ... to connect between population centers").
//
// A Federation stitches independent city meshes together through *gateway*
// buildings joined by long-haul region links (satellite terminals, restored
// point-to-point fiber, HF relays). A federated send is a chain of legs:
//
//   sender --CityMesh--> local gateway --link--> remote gateway --CityMesh-->
//   ... --CityMesh--> destination postbox
//
// Each intra-city leg runs the full event simulation of that region's mesh;
// the long-haul links are modeled analytically (latency + loss draw), since
// their physics is nothing like the Wi-Fi substrate. Inter-region routing is
// hop-count BFS over the region graph — small (tens of cities), so no
// scalability machinery is warranted.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/network.hpp"

namespace citymesh::apps {

/// One direction-less long-haul link between two regions' gateways.
struct RegionLink {
  std::size_t region_a = 0;
  std::size_t region_b = 0;
  osmx::BuildingId gateway_a = 0;  ///< gateway building in region_a
  osmx::BuildingId gateway_b = 0;  ///< gateway building in region_b
  double latency_s = 0.25;         ///< one-way (satellite bounce ~ 0.25 s)
  double loss_probability = 0.0;   ///< per-traversal loss
};

/// A federated address: which region, which postbox.
struct FederatedAddress {
  std::size_t region = 0;
  core::PostboxInfo postbox;
};

struct FederatedOutcome {
  bool route_found = false;   ///< a region path + all local routes exist
  bool delivered = false;
  double latency_s = 0.0;     ///< mesh legs' delivery times + link latencies
  std::size_t mesh_transmissions = 0;  ///< summed over all intra-city legs
  std::vector<std::string> region_path;  ///< region names traversed
};

class Federation {
 public:
  /// Add a region. The city must outlive the federation. Returns its index.
  std::size_t add_region(std::string name, const osmx::City& city,
                         const core::NetworkConfig& config);

  /// Join two regions' gateways. The gateway buildings get infrastructure
  /// postboxes registered automatically; returns false when either gateway
  /// building has no APs (no registration possible).
  bool add_link(const RegionLink& link);

  std::size_t region_count() const { return regions_.size(); }
  const std::string& region_name(std::size_t index) const {
    return regions_.at(index)->name;
  }
  core::CityMeshNetwork& network(std::size_t region) {
    return regions_.at(region)->network;
  }

  /// Register a recipient postbox in its region's mesh.
  std::shared_ptr<core::Postbox> register_postbox(const FederatedAddress& address);

  /// Send a payload across the federation.
  FederatedOutcome send(const FederatedAddress& from, const FederatedAddress& to,
                        std::span<const std::uint8_t> payload);

 private:
  struct Region {
    std::string name;
    core::CityMeshNetwork network;
    Region(std::string n, const osmx::City& city, const core::NetworkConfig& cfg)
        : name(std::move(n)), network(city, cfg) {}
  };
  struct Gateway {
    osmx::BuildingId building = 0;
    core::PostboxInfo info;
    std::shared_ptr<core::Postbox> postbox;
  };
  struct Link {
    std::size_t peer_region;
    std::size_t gateway_index;       ///< into gateways_[this region]
    std::size_t peer_gateway_index;  ///< into gateways_[peer region]
    double latency_s;
    double loss_probability;
  };

  /// Gateway postbox in `region` for `building`, creating it if absent;
  /// nullopt when the building has no APs.
  std::optional<std::size_t> ensure_gateway(std::size_t region,
                                            osmx::BuildingId building);

  std::vector<std::unique_ptr<Region>> regions_;
  std::vector<std::vector<Gateway>> gateways_;  ///< per region
  std::vector<std::vector<Link>> links_;        ///< adjacency per region
  geo::Rng rng_{0xFEDE};
  std::uint64_t next_gateway_seed_ = 0xA11CE;
};

}  // namespace citymesh::apps
