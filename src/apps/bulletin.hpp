// Signed emergency bulletins — the paper's "emergency broadcast messages"
// application (§1), hardened with its own security principle: bulletins are
// Ed25519-signed by an authority whose *identity is the hash of its verify
// key*, distributed out-of-band before the outage (on paper, in the
// firmware, on a poster in city hall). Any device can verify a bulletin
// offline — no certificate authority, no connectivity beyond the mesh.
//
// Transport is the geo-broadcast primitive: the serialized signed bulletin
// floods a disc around a center building and lands in every postbox there.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/network.hpp"
#include "cryptox/ed25519.hpp"
#include "cryptox/sha256.hpp"

namespace citymesh::apps {

enum class Severity : std::uint8_t {
  kAdvisory = 0,
  kWarning = 1,
  kEvacuate = 2,
};

std::string_view to_string(Severity s);

/// A signed, self-certifying emergency bulletin.
struct Bulletin {
  std::uint32_t sequence = 0;        ///< authority-local monotonic counter
  double issued_at_s = 0.0;          ///< simulation time of issue
  Severity severity = Severity::kAdvisory;
  osmx::BuildingId center = 0;       ///< geographic anchor
  std::uint32_t radius_m = 0;
  std::string title;
  std::string body;
  cryptox::Ed25519PublicKey authority{};  ///< issuer's verify key
  cryptox::Ed25519Signature signature{};

  /// Byte serialization (signature covers everything before it).
  std::vector<std::uint8_t> serialize() const;
  static std::optional<Bulletin> deserialize(std::span<const std::uint8_t> bytes);

  /// The digest the authority signs.
  std::vector<std::uint8_t> signed_bytes() const;

  /// Verify the embedded signature against the embedded authority key.
  /// (Whether that *authority* is trusted is the verifier's separate check.)
  bool signature_valid() const;

  bool operator==(const Bulletin&) const = default;
};

/// Issuer side: holds the signing key and a sequence counter.
class BulletinAuthority {
 public:
  explicit BulletinAuthority(cryptox::Ed25519KeyPair keys) : keys_(std::move(keys)) {}
  static BulletinAuthority from_seed(std::uint64_t seed) {
    return BulletinAuthority{cryptox::Ed25519KeyPair::from_seed(seed)};
  }

  const cryptox::Ed25519PublicKey& public_key() const { return keys_.public_key(); }
  /// Self-certifying authority id = SHA-256(verify key).
  cryptox::Digest256 id() const { return cryptox::Sha256::hash(keys_.public_key()); }

  /// Create and sign a bulletin (assigns the next sequence number).
  Bulletin issue(Severity severity, osmx::BuildingId center, std::uint32_t radius_m,
                 std::string title, std::string body, double issued_at_s);

 private:
  cryptox::Ed25519KeyPair keys_;
  std::uint32_t next_sequence_ = 1;
};

/// Receiver side: verifies bulletins against a set of trusted authority ids
/// and enforces per-authority sequence monotonicity (anti-replay).
class BulletinVerifier {
 public:
  /// Trust an authority by its self-certifying id.
  void trust(const cryptox::Digest256& authority_id);

  enum class Result : std::uint8_t {
    kAccepted,
    kMalformed,
    kBadSignature,
    kUntrustedAuthority,
    kReplayed,  ///< sequence not newer than the last accepted one
  };

  /// Validate a received serialized bulletin; on acceptance returns the
  /// parsed bulletin and updates the replay floor.
  std::pair<Result, std::optional<Bulletin>> accept(std::span<const std::uint8_t> bytes);

 private:
  struct DigestHash {
    std::size_t operator()(const cryptox::Digest256& d) const {
      std::size_t h = 0;
      for (int i = 0; i < 8; ++i) h = (h << 8) | d[i];
      return h;
    }
  };
  std::unordered_set<cryptox::Digest256, DigestHash> trusted_;
  std::unordered_map<std::string, std::uint32_t> last_sequence_;  // by authority hex
};

/// Issue + geo-broadcast a bulletin through the network in one call.
core::BroadcastOutcome publish_bulletin(core::CityMeshNetwork& network,
                                        BulletinAuthority& authority,
                                        osmx::BuildingId from_building,
                                        Severity severity, osmx::BuildingId center,
                                        std::uint32_t radius_m, std::string title,
                                        std::string body);

}  // namespace citymesh::apps
