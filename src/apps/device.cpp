#include "apps/device.hpp"

namespace citymesh::apps {

MobileDevice::MobileDevice(core::CityMeshNetwork& network, cryptox::KeyPair identity,
                           osmx::BuildingId home_building)
    : network_(&network),
      identity_(std::move(identity)),
      home_info_(core::PostboxInfo::for_key(identity_, home_building)),
      home_box_(network.register_postbox(home_info_)),
      current_building_(home_building),
      current_box_(home_box_) {}

bool MobileDevice::move_to(osmx::BuildingId building) {
  if (!online()) return false;
  const auto temp_info = core::PostboxInfo::for_key(identity_, building);
  auto box = network_->register_postbox(temp_info);
  if (!box) return false;  // no APs there; stay attached where we were
  current_building_ = building;
  current_box_ = std::move(box);
  if (building == home_info_.building) return true;
  return network_->send_location_update(home_info_, building).delivered;
}

void MobileDevice::collect_from(const std::shared_ptr<core::Postbox>& box,
                                SyncResult& out) {
  for (const auto& stored : box->retrieve()) {
    if (stored.flags &
        static_cast<std::uint8_t>(citymesh::wire::PacketFlag::kLocationUpdate)) {
      continue;
    }
    const auto sealed = cryptox::SealedMessage::deserialize(stored.sealed_payload);
    if (!sealed) continue;
    if (const auto text = cryptox::unseal_text(identity_, *sealed)) {
      out.texts.push_back(*text);
    }
  }
}

MobileDevice::SyncResult MobileDevice::sync() {
  SyncResult result;
  if (!online()) return result;
  if (current_building_ != home_info_.building) {
    const auto temp_info = core::PostboxInfo::for_key(identity_, current_building_);
    result.forwarded = network_->forward_pending(home_info_, temp_info);
  }
  collect_from(current_box_, result);
  return result;
}

}  // namespace citymesh::apps
