// Peer-to-peer messaging — the paper's headline fallback application
// ("short peer-to-peer messaging ... to check on the safety of family and
// friends"), built entirely on the public CityMesh API.
//
// The Messenger owns one identity, registers its postbox, keeps a contact
// book (PostboxInfo exchanged out-of-band, §3 step 1), seals every message
// to the recipient's key, and fragments payloads larger than the mesh MTU
// into numbered chunks that the receiving side reassembles before
// decryption. Optionally sends reliably (ack + conduit-width escalation).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "cryptox/sealed.hpp"

namespace citymesh::apps {

struct MessengerConfig {
  /// Maximum payload bytes per mesh packet before fragmentation kicks in.
  std::size_t mtu_bytes = 900;
  /// Use ack + width escalation for every outgoing fragment.
  bool reliable = false;
  std::uint64_t seed = 77;  ///< stream-id / ephemeral-seal randomness
};

/// A decrypted incoming message.
struct ReceivedMessage {
  std::string from;  ///< contact name, or sender id hex prefix if unknown
  cryptox::SelfCertifyingId sender_id{};
  std::string text;
  bool urgent = false;
  double received_at_s = 0.0;
};

/// Outcome of one logical send (possibly many fragments).
struct SendReport {
  bool contact_known = false;
  std::size_t fragments = 0;
  std::size_t fragments_delivered = 0;
  std::size_t transmissions = 0;
  bool acknowledged = false;  ///< all fragments acked (reliable mode only)
  bool complete() const { return contact_known && fragments_delivered == fragments; }
};

class Messenger {
 public:
  /// Binds the identity to a postbox in `home`. online() reports whether
  /// registration succeeded (the building must have APs).
  Messenger(core::CityMeshNetwork& network, cryptox::KeyPair identity,
            osmx::BuildingId home, MessengerConfig config = {});

  bool online() const { return postbox_ != nullptr; }
  const core::PostboxInfo& postbox_info() const { return info_; }
  const cryptox::KeyPair& identity() const { return identity_; }

  /// Register a peer (out-of-band exchange).
  void add_contact(std::string name, core::PostboxInfo info);
  std::optional<core::PostboxInfo> contact(const std::string& name) const;

  /// Seal, fragment, and send `text` to a named contact.
  SendReport send_text(const std::string& contact_name, std::string_view text,
                       bool urgent = false);

  /// Drain the postbox: reassemble fragments, verify + decrypt, and return
  /// completed messages (incomplete fragment sets are held for later).
  std::vector<ReceivedMessage> check_mail();

  /// Fragment streams still waiting for missing chunks.
  std::size_t pending_reassemblies() const { return reassembly_.size(); }

 private:
  core::CityMeshNetwork* network_;
  cryptox::KeyPair identity_;
  core::PostboxInfo info_;
  std::shared_ptr<core::Postbox> postbox_;
  MessengerConfig config_;
  geo::Rng rng_;
  std::map<std::string, core::PostboxInfo> contacts_;

  struct Reassembly {
    std::uint16_t total = 0;
    std::map<std::uint16_t, std::vector<std::uint8_t>> chunks;
    double first_seen_s = 0.0;
  };
  std::map<std::uint32_t, Reassembly> reassembly_;  // by stream id

  std::optional<ReceivedMessage> finish_blob(std::span<const std::uint8_t> blob,
                                             bool urgent, double at_s);
};

// ---- Fragment wire format (internal, exposed for tests) -------------------

constexpr std::uint8_t kFragmentMagic = 0xCF;
constexpr std::size_t kFragmentHeaderBytes = 1 + 1 + 4 + 2 + 2;  // magic ver stream idx total

struct Fragment {
  std::uint32_t stream_id = 0;
  std::uint16_t index = 0;
  std::uint16_t total = 1;
  std::vector<std::uint8_t> chunk;
};

std::vector<std::uint8_t> encode_fragment(const Fragment& f);
std::optional<Fragment> decode_fragment(std::span<const std::uint8_t> bytes);

/// Split a blob into MTU-sized fragments under a fresh stream id.
std::vector<Fragment> fragment_blob(std::span<const std::uint8_t> blob,
                                    std::size_t mtu_bytes, std::uint32_t stream_id);

}  // namespace citymesh::apps
