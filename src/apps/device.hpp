// A mobile device roaming the mesh (§3 step 4's dynamics, end to end).
//
// The paper's model: Bob's *postbox* stays at a fixed building; his *device*
// moves. Whenever the device checks in from a new building it (a) registers
// a temporary postbox there under the same identity, (b) sends a location
// update home so the home postbox knows where to push urgent mail, and (c)
// can pull pending mail: the home postbox agent forwards everything to the
// device's current building over the mesh, where the device decrypts it.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"
#include "cryptox/sealed.hpp"

namespace citymesh::apps {

class MobileDevice {
 public:
  /// Bind the identity to its home postbox. online() is false when the home
  /// building has no APs.
  MobileDevice(core::CityMeshNetwork& network, cryptox::KeyPair identity,
               osmx::BuildingId home_building);

  bool online() const { return home_box_ != nullptr; }
  osmx::BuildingId home() const { return home_info_.building; }
  osmx::BuildingId location() const { return current_building_; }
  const core::PostboxInfo& home_info() const { return home_info_; }

  /// Travel to a building: attach there (temporary postbox) and send a
  /// location update home. Returns false when the new building has no APs
  /// or the location update could not be delivered (the device is then
  /// attached but its home postbox has a stale location).
  bool move_to(osmx::BuildingId building);

  struct SyncResult {
    std::size_t forwarded = 0;  ///< messages the home postbox relayed here
    std::vector<std::string> texts;  ///< successfully decrypted payloads
  };

  /// Pull pending mail from home to the current location and decrypt it.
  /// At home this reads the home postbox directly (no mesh traffic).
  SyncResult sync();

 private:
  void collect_from(const std::shared_ptr<core::Postbox>& box, SyncResult& out);

  core::CityMeshNetwork* network_;
  cryptox::KeyPair identity_;
  core::PostboxInfo home_info_;
  std::shared_ptr<core::Postbox> home_box_;
  osmx::BuildingId current_building_ = 0;
  std::shared_ptr<core::Postbox> current_box_;
};

}  // namespace citymesh::apps
