#include "apps/messenger.hpp"

#include <algorithm>

namespace citymesh::apps {

std::vector<std::uint8_t> encode_fragment(const Fragment& f) {
  std::vector<std::uint8_t> out;
  out.reserve(kFragmentHeaderBytes + f.chunk.size());
  out.push_back(kFragmentMagic);
  out.push_back(1);  // version
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(f.stream_id >> (8 * i)));
  out.push_back(static_cast<std::uint8_t>(f.index));
  out.push_back(static_cast<std::uint8_t>(f.index >> 8));
  out.push_back(static_cast<std::uint8_t>(f.total));
  out.push_back(static_cast<std::uint8_t>(f.total >> 8));
  out.insert(out.end(), f.chunk.begin(), f.chunk.end());
  return out;
}

std::optional<Fragment> decode_fragment(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kFragmentHeaderBytes) return std::nullopt;
  if (bytes[0] != kFragmentMagic || bytes[1] != 1) return std::nullopt;
  Fragment f;
  for (int i = 0; i < 4; ++i) f.stream_id |= static_cast<std::uint32_t>(bytes[2 + i]) << (8 * i);
  f.index = static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
  f.total = static_cast<std::uint16_t>(bytes[8] | (bytes[9] << 8));
  if (f.total == 0 || f.index >= f.total) return std::nullopt;
  f.chunk.assign(bytes.begin() + kFragmentHeaderBytes, bytes.end());
  return f;
}

std::vector<Fragment> fragment_blob(std::span<const std::uint8_t> blob,
                                    std::size_t mtu_bytes, std::uint32_t stream_id) {
  if (mtu_bytes <= kFragmentHeaderBytes) {
    throw std::invalid_argument{"fragment_blob: mtu smaller than fragment header"};
  }
  const std::size_t chunk_size = mtu_bytes - kFragmentHeaderBytes;
  const std::size_t total =
      std::max<std::size_t>(1, (blob.size() + chunk_size - 1) / chunk_size);
  if (total > UINT16_MAX) throw std::invalid_argument{"fragment_blob: blob too large"};

  std::vector<Fragment> out;
  out.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    Fragment f;
    f.stream_id = stream_id;
    f.index = static_cast<std::uint16_t>(i);
    f.total = static_cast<std::uint16_t>(total);
    const std::size_t begin = i * chunk_size;
    const std::size_t end = std::min(blob.size(), begin + chunk_size);
    f.chunk.assign(blob.begin() + begin, blob.begin() + end);
    out.push_back(std::move(f));
  }
  return out;
}

Messenger::Messenger(core::CityMeshNetwork& network, cryptox::KeyPair identity,
                     osmx::BuildingId home, MessengerConfig config)
    : network_(&network),
      identity_(std::move(identity)),
      info_(core::PostboxInfo::for_key(identity_, home)),
      postbox_(network.register_postbox(info_)),
      config_(config),
      rng_(config.seed ^ identity_.id().tag()) {}

void Messenger::add_contact(std::string name, core::PostboxInfo info) {
  contacts_[std::move(name)] = info;
}

std::optional<core::PostboxInfo> Messenger::contact(const std::string& name) const {
  const auto it = contacts_.find(name);
  if (it == contacts_.end()) return std::nullopt;
  return it->second;
}

SendReport Messenger::send_text(const std::string& contact_name, std::string_view text,
                                bool urgent) {
  SendReport report;
  const auto peer = contact(contact_name);
  if (!peer) return report;
  report.contact_known = true;

  const auto sealed = cryptox::seal(identity_, peer->public_key, text, rng_.next());
  const auto blob = sealed.serialize();
  const auto fragments =
      fragment_blob(blob, config_.mtu_bytes, static_cast<std::uint32_t>(rng_.next()));
  report.fragments = fragments.size();

  bool all_acked = true;
  for (const auto& fragment : fragments) {
    const auto payload = encode_fragment(fragment);
    if (config_.reliable) {
      const auto reliable = network_->send_reliable(info_.building, *peer, payload, info_);
      for (const auto& attempt : reliable.tries) report.transmissions += attempt.transmissions;
      if (reliable.delivered) ++report.fragments_delivered;
      all_acked = all_acked && reliable.acknowledged;
    } else {
      core::SendOptions opts;
      opts.urgent = urgent;
      const auto outcome = network_->send(info_.building, *peer, payload, opts);
      report.transmissions += outcome.transmissions;
      if (outcome.delivered) ++report.fragments_delivered;
      all_acked = false;
    }
  }
  report.acknowledged = config_.reliable && all_acked;
  return report;
}

std::optional<ReceivedMessage> Messenger::finish_blob(std::span<const std::uint8_t> blob,
                                                      bool urgent, double at_s) {
  const auto sealed = cryptox::SealedMessage::deserialize(blob);
  if (!sealed) return std::nullopt;
  const auto text = cryptox::unseal_text(identity_, *sealed);
  if (!text) return std::nullopt;

  ReceivedMessage msg;
  msg.sender_id = sealed->sender_id;
  msg.text = *text;
  msg.urgent = urgent;
  msg.received_at_s = at_s;
  msg.from = sealed->sender_id.hex().substr(0, 12);
  for (const auto& [name, info] : contacts_) {
    if (info.id == sealed->sender_id) {
      msg.from = name;
      break;
    }
  }
  return msg;
}

std::vector<ReceivedMessage> Messenger::check_mail() {
  std::vector<ReceivedMessage> out;
  if (!postbox_) return out;
  for (const auto& stored : postbox_->retrieve()) {
    const auto fragment = decode_fragment(stored.sealed_payload);
    if (!fragment) {
      // Not fragment-framed (e.g. an ack or a raw-API message): try to
      // interpret the payload as one complete sealed blob.
      if (auto msg = finish_blob(stored.sealed_payload, stored.urgent, stored.stored_at_s)) {
        out.push_back(std::move(*msg));
      }
      continue;
    }
    auto& entry = reassembly_[fragment->stream_id];
    if (entry.chunks.empty()) {
      entry.total = fragment->total;
      entry.first_seen_s = stored.stored_at_s;
    }
    if (fragment->total != entry.total) continue;  // inconsistent stream: drop
    entry.chunks[fragment->index] = fragment->chunk;
    if (entry.chunks.size() == entry.total) {
      std::vector<std::uint8_t> blob;
      for (auto& [index, chunk] : entry.chunks) {
        blob.insert(blob.end(), chunk.begin(), chunk.end());
      }
      if (auto msg = finish_blob(blob, stored.urgent, stored.stored_at_s)) {
        out.push_back(std::move(*msg));
      }
      reassembly_.erase(fragment->stream_id);
    }
  }
  return out;
}

}  // namespace citymesh::apps
