#include "apps/bulletin.hpp"

#include <cstring>

namespace citymesh::apps {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void put_string(std::vector<std::uint8_t>& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > data_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
    return true;
  }
  bool f64(double& v) {
    if (pos_ + 8 > data_.size()) return false;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
    std::memcpy(&v, &bits, 8);
    return true;
  }
  bool byte(std::uint8_t& v) {
    if (pos_ >= data_.size()) return false;
    v = data_[pos_++];
    return true;
  }
  bool string(std::string& s, std::uint32_t max_len = 1 << 20) {
    std::uint32_t len = 0;
    if (!u32(len) || len > max_len || pos_ + len > data_.size()) return false;
    s.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return true;
  }
  template <std::size_t N>
  bool bytes(std::array<std::uint8_t, N>& out) {
    if (pos_ + N > data_.size()) return false;
    std::memcpy(out.data(), data_.data() + pos_, N);
    pos_ += N;
    return true;
  }
  bool at_end() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string_view to_string(Severity s) {
  switch (s) {
    case Severity::kAdvisory: return "advisory";
    case Severity::kWarning: return "warning";
    case Severity::kEvacuate: return "evacuate";
  }
  return "unknown";
}

std::vector<std::uint8_t> Bulletin::signed_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(64 + title.size() + body.size());
  put_u32(out, sequence);
  put_f64(out, issued_at_s);
  out.push_back(static_cast<std::uint8_t>(severity));
  put_u32(out, center);
  put_u32(out, radius_m);
  put_string(out, title);
  put_string(out, body);
  out.insert(out.end(), authority.begin(), authority.end());
  return out;
}

std::vector<std::uint8_t> Bulletin::serialize() const {
  auto out = signed_bytes();
  out.insert(out.end(), signature.begin(), signature.end());
  return out;
}

std::optional<Bulletin> Bulletin::deserialize(std::span<const std::uint8_t> bytes) {
  Cursor cur{bytes};
  Bulletin b;
  std::uint8_t severity_byte = 0;
  if (!cur.u32(b.sequence) || !cur.f64(b.issued_at_s) || !cur.byte(severity_byte) ||
      !cur.u32(b.center) || !cur.u32(b.radius_m) || !cur.string(b.title) ||
      !cur.string(b.body) || !cur.bytes(b.authority) || !cur.bytes(b.signature) ||
      !cur.at_end()) {
    return std::nullopt;
  }
  if (severity_byte > static_cast<std::uint8_t>(Severity::kEvacuate)) return std::nullopt;
  b.severity = static_cast<Severity>(severity_byte);
  return b;
}

bool Bulletin::signature_valid() const {
  return cryptox::ed25519_verify(authority, signed_bytes(), signature);
}

Bulletin BulletinAuthority::issue(Severity severity, osmx::BuildingId center,
                                  std::uint32_t radius_m, std::string title,
                                  std::string body, double issued_at_s) {
  Bulletin b;
  b.sequence = next_sequence_++;
  b.issued_at_s = issued_at_s;
  b.severity = severity;
  b.center = center;
  b.radius_m = radius_m;
  b.title = std::move(title);
  b.body = std::move(body);
  b.authority = keys_.public_key();
  b.signature = keys_.sign(b.signed_bytes());
  return b;
}

void BulletinVerifier::trust(const cryptox::Digest256& authority_id) {
  trusted_.insert(authority_id);
}

std::pair<BulletinVerifier::Result, std::optional<Bulletin>> BulletinVerifier::accept(
    std::span<const std::uint8_t> bytes) {
  auto parsed = Bulletin::deserialize(bytes);
  if (!parsed) return {Result::kMalformed, std::nullopt};
  const auto authority_id = cryptox::Sha256::hash(parsed->authority);
  if (!trusted_.contains(authority_id)) {
    return {Result::kUntrustedAuthority, std::nullopt};
  }
  if (!parsed->signature_valid()) return {Result::kBadSignature, std::nullopt};
  const std::string key = cryptox::to_hex(authority_id);
  if (const auto it = last_sequence_.find(key);
      it != last_sequence_.end() && parsed->sequence <= it->second) {
    return {Result::kReplayed, std::nullopt};
  }
  last_sequence_[key] = parsed->sequence;
  return {Result::kAccepted, std::move(parsed)};
}

core::BroadcastOutcome publish_bulletin(core::CityMeshNetwork& network,
                                        BulletinAuthority& authority,
                                        osmx::BuildingId from_building,
                                        Severity severity, osmx::BuildingId center,
                                        std::uint32_t radius_m, std::string title,
                                        std::string body) {
  const Bulletin bulletin =
      authority.issue(severity, center, radius_m, std::move(title), std::move(body),
                      network.simulator().now());
  const auto payload = bulletin.serialize();
  return network.broadcast(from_building, center, static_cast<double>(radius_m),
                           payload, severity >= Severity::kWarning);
}

}  // namespace citymesh::apps
