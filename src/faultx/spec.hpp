// A small line-oriented text format for scenario specs, so disaster scripts
// can be checked into a repo or passed to the CLI without recompiling.
//
//   # comments and blank lines are skipped
//   name downtown-blackout
//   seed 7
//   blackout rect 400 400 1200 1200 at 10 restore 300 stages 3 every 60
//   blackout poly 0 0 500 0 500 500 at 20
//   churn frac 0.15 up 200 down 80 from 0 to 900
//   brownout axis x width 200 from 100 duration 400
//   degrade rect 0 0 800 800 loss 0.4 from 50 to 600
//   checkpoints 0 60 120 300 600
//
// Region clauses: `rect X0 Y0 X1 Y1` (axis-aligned) or `poly x1 y1 x2 y2
// ... xn yn` (>= 3 vertices). Trailing clauses of an event line are
// optional and may appear in any order.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "faultx/scenario.hpp"

namespace citymesh::faultx {

struct ParsedScenario {
  Scenario scenario;
  /// From the optional `checkpoints` line (ascending not enforced).
  std::vector<sim::SimTime> checkpoints;
};

/// Parse a scenario spec. On failure returns nullopt and, when `error` is
/// non-null, a one-line description naming the offending line.
std::optional<ParsedScenario> parse_scenario(std::istream& in,
                                             std::string* error = nullptr);

/// Convenience: parse from a string (tests, inline CLI specs).
std::optional<ParsedScenario> parse_scenario(const std::string& text,
                                             std::string* error = nullptr);

}  // namespace citymesh::faultx
