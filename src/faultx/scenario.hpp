// Disaster scenarios: scripted, time-varying AP failures (src/faultx).
//
// The paper's premise is that CityMesh is a *fallback* for when
// infrastructure fails (§1), yet the base simulator evaluates static,
// fully-healthy meshes. This module makes the failure itself first-class: a
// `Scenario` is a declarative script of fault events — regional blackouts
// with staged restoration, random up/down churn, a rolling brownout front,
// degraded-link regions — that `compile()` expands into a deterministic,
// time-sorted timeline of atomic `FaultAction`s against a concrete AP
// placement. The engine (engine.hpp) then feeds that timeline into the
// discrete-event simulation, either live (scheduled into the simulator) or
// as a checkpoint cursor for scenario evaluation (scenario_eval.hpp).
//
// Everything stochastic (churn inter-arrival times, restoration-stage
// assignment) draws from one geo::Rng seeded by Scenario::seed, so the same
// scenario against the same mesh always yields the identical timeline.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geo/geometry.hpp"
#include "mesh/ap_network.hpp"
#include "sim/simulator.hpp"

namespace citymesh::faultx {

// --------------------------------------------------------------- events ---

/// A power-outage polygon: every AP inside goes down at `at_s`. With
/// `restore_at_s` set, the affected APs come back in `restore_stages`
/// shuffled groups, one group every `stage_interval_s` (grid operators
/// restore feeders one by one, not a whole district at once).
struct BlackoutEvent {
  geo::Polygon region;
  sim::SimTime at_s = 0.0;
  std::optional<sim::SimTime> restore_at_s;
  std::size_t restore_stages = 1;
  sim::SimTime stage_interval_s = 60.0;
};

/// Random per-AP flapping: a sampled fraction of APs alternates exponential
/// up/down periods inside [start_s, end_s] (brownouts, overloaded circuits,
/// people power-cycling routers). The window closes with every affected AP
/// restored, so churn composes cleanly with other events.
struct ChurnEvent {
  double ap_fraction = 0.1;
  sim::SimTime mean_up_s = 300.0;
  sim::SimTime mean_down_s = 120.0;
  sim::SimTime start_s = 0.0;
  sim::SimTime end_s = 600.0;
};

/// A rolling outage front: a dead band of width `front_width_m` sweeps the
/// mesh's extent along one axis over [start_s, start_s + duration_s]. APs go
/// down as the front reaches them and come back once it has passed (a
/// cascading grid failure that restores behind itself).
struct BrownoutEvent {
  bool sweep_x = true;  ///< front moves along x (a vertical line); else y
  double front_width_m = 150.0;
  sim::SimTime start_s = 0.0;
  sim::SimTime duration_s = 300.0;
};

/// Degraded-link mode: links with an endpoint inside the region suffer
/// `extra_loss` on top of the medium's base loss within [start_s, end_s]
/// (interference, partial power, storm conditions).
struct DegradedLinkEvent {
  geo::Polygon region;
  double extra_loss = 0.3;
  sim::SimTime start_s = 0.0;
  sim::SimTime end_s = 600.0;
};

/// A declarative disaster script. Deterministic in (scenario, mesh): all
/// randomness comes from `seed`.
struct Scenario {
  std::string name = "scenario";
  std::vector<BlackoutEvent> blackouts;
  std::vector<ChurnEvent> churn;
  std::vector<BrownoutEvent> brownouts;
  std::vector<DegradedLinkEvent> degraded_links;
  std::uint64_t seed = 2024;
};

// ------------------------------------------------------ compiled timeline ---

enum class FaultKind : std::uint8_t {
  kApDown,
  kApUp,
  kRegionDegrade,  ///< activate degraded-link region `region`
  kRegionRestore,  ///< deactivate it
};

/// One atomic state change at one instant of simulated time.
struct FaultAction {
  sim::SimTime time = 0.0;
  FaultKind kind = FaultKind::kApDown;
  mesh::ApId ap = 0;          ///< kApDown / kApUp
  std::uint32_t region = 0;   ///< index into CompiledScenario::regions
};

/// A degraded-link region referenced by the timeline.
struct DegradedRegionSpec {
  geo::Polygon region;
  double extra_loss = 0.0;
};

/// The fully-expanded, time-sorted timeline for one scenario against one AP
/// placement. Equal-time actions keep their expansion order (stable sort),
/// so replaying the timeline is deterministic event by event.
struct CompiledScenario {
  std::string name;
  std::vector<FaultAction> actions;
  std::vector<DegradedRegionSpec> regions;
  /// Outage polygons (blackout regions) retained for rendering overlays.
  std::vector<geo::Polygon> outage_regions;
  sim::SimTime horizon_s = 0.0;     ///< time of the last action
  std::size_t aps_affected = 0;     ///< distinct APs the timeline touches
};

/// Expand a scenario against a concrete placement. Deterministic: the same
/// (scenario, mesh) pair always produces the identical action list.
CompiledScenario compile(const Scenario& scenario, const mesh::ApNetwork& aps);

}  // namespace citymesh::faultx
