#include "faultx/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "geo/rng.hpp"

namespace citymesh::faultx {

namespace {

/// Exponential inter-arrival draw with the given mean (clamped away from 0
/// so a degenerate mean cannot stall the expansion loop).
sim::SimTime exponential(geo::Rng& rng, sim::SimTime mean_s) {
  const double u = rng.uniform();  // [0, 1)
  return std::max(1e-6, mean_s) * -std::log1p(-u);
}

/// APs whose position lies inside the polygon, in id order.
std::vector<mesh::ApId> members_of(const geo::Polygon& region,
                                   const mesh::ApNetwork& aps) {
  std::vector<mesh::ApId> members;
  const auto bounds = region.bounds();
  for (const auto& ap : aps.aps()) {
    if (bounds && !bounds->contains(ap.position)) continue;
    if (region.contains(ap.position)) members.push_back(ap.id);
  }
  return members;
}

void expand_blackout(const BlackoutEvent& event, const mesh::ApNetwork& aps,
                     geo::Rng& rng, CompiledScenario& out) {
  std::vector<mesh::ApId> members = members_of(event.region, aps);
  for (const mesh::ApId id : members) {
    out.actions.push_back({event.at_s, FaultKind::kApDown, id, 0});
  }
  out.outage_regions.push_back(event.region);
  if (!event.restore_at_s || members.empty()) return;

  // Staged restoration: shuffle the members once, then bring stage g back at
  // restore_at + g * interval. A single stage restores everything at once.
  for (std::size_t i = members.size(); i > 1; --i) {
    std::swap(members[i - 1], members[rng.uniform_int(i)]);
  }
  const std::size_t stages = std::max<std::size_t>(1, event.restore_stages);
  const std::size_t per_stage = (members.size() + stages - 1) / stages;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const std::size_t stage = i / per_stage;
    const sim::SimTime at =
        *event.restore_at_s + static_cast<double>(stage) * event.stage_interval_s;
    out.actions.push_back({at, FaultKind::kApUp, members[i], 0});
  }
}

void expand_churn(const ChurnEvent& event, const mesh::ApNetwork& aps,
                  geo::Rng& rng, CompiledScenario& out) {
  const std::size_t n = aps.ap_count();
  const auto count = static_cast<std::size_t>(
      std::llround(std::clamp(event.ap_fraction, 0.0, 1.0) * static_cast<double>(n)));
  if (count == 0 || event.end_s <= event.start_s) return;

  // Sample `count` distinct APs (partial Fisher-Yates over the id range).
  std::vector<mesh::ApId> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = static_cast<mesh::ApId>(i);
  for (std::size_t i = 0; i < count; ++i) {
    std::swap(ids[i], ids[i + rng.uniform_int(n - i)]);
  }

  for (std::size_t i = 0; i < count; ++i) {
    const mesh::ApId id = ids[i];
    sim::SimTime t = event.start_s + exponential(rng, event.mean_up_s);
    while (t < event.end_s) {
      out.actions.push_back({t, FaultKind::kApDown, id, 0});
      const sim::SimTime up_at =
          std::min(t + exponential(rng, event.mean_down_s), event.end_s);
      out.actions.push_back({up_at, FaultKind::kApUp, id, 0});
      t = up_at + exponential(rng, event.mean_up_s);
    }
  }
}

void expand_brownout(const BrownoutEvent& event, const mesh::ApNetwork& aps,
                     CompiledScenario& out) {
  if (aps.ap_count() == 0 || event.duration_s <= 0.0) return;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& ap : aps.aps()) {
    const double c = event.sweep_x ? ap.position.x : ap.position.y;
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  const double span = hi - lo;
  const double half = event.front_width_m * 0.5;
  const sim::SimTime end = event.start_s + event.duration_s;
  for (const auto& ap : aps.aps()) {
    const double c = event.sweep_x ? ap.position.x : ap.position.y;
    // Front position moves lo -> hi linearly over the duration; the AP is
    // dead while |c - front| <= half. Degenerate span: one simultaneous dip.
    sim::SimTime t_down = event.start_s;
    sim::SimTime t_up = end;
    if (span > 0.0) {
      t_down = event.start_s + (c - half - lo) / span * event.duration_s;
      t_up = event.start_s + (c + half - lo) / span * event.duration_s;
      t_down = std::clamp(t_down, event.start_s, end);
      t_up = std::clamp(t_up, event.start_s, end);
      if (t_up <= t_down) continue;  // front never covers this AP
    }
    out.actions.push_back({t_down, FaultKind::kApDown, ap.id, 0});
    out.actions.push_back({t_up, FaultKind::kApUp, ap.id, 0});
  }
}

}  // namespace

CompiledScenario compile(const Scenario& scenario, const mesh::ApNetwork& aps) {
  CompiledScenario out;
  out.name = scenario.name;
  geo::Rng rng{scenario.seed};

  for (const auto& event : scenario.blackouts) expand_blackout(event, aps, rng, out);
  for (const auto& event : scenario.churn) expand_churn(event, aps, rng, out);
  for (const auto& event : scenario.brownouts) expand_brownout(event, aps, out);
  for (const auto& event : scenario.degraded_links) {
    const auto region = static_cast<std::uint32_t>(out.regions.size());
    out.regions.push_back({event.region, event.extra_loss});
    out.actions.push_back({event.start_s, FaultKind::kRegionDegrade, 0, region});
    out.actions.push_back({event.end_s, FaultKind::kRegionRestore, 0, region});
  }

  std::stable_sort(out.actions.begin(), out.actions.end(),
                   [](const FaultAction& a, const FaultAction& b) {
                     return a.time < b.time;
                   });

  std::unordered_set<mesh::ApId> touched;
  for (const FaultAction& action : out.actions) {
    out.horizon_s = std::max(out.horizon_s, action.time);
    if (action.kind == FaultKind::kApDown || action.kind == FaultKind::kApUp) {
      touched.insert(action.ap);
    }
  }
  out.aps_affected = touched.size();
  return out;
}

}  // namespace citymesh::faultx
