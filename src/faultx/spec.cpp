#include "faultx/spec.hpp"

#include <charconv>
#include <istream>
#include <sstream>

namespace citymesh::faultx {

namespace {

/// Token cursor over one spec line.
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {}

  bool done() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const { return tokens_[pos_]; }
  std::string take() { return tokens_[pos_++]; }

  /// Consume `keyword` if it is next.
  bool accept(std::string_view keyword) {
    if (done() || tokens_[pos_] != keyword) return false;
    ++pos_;
    return true;
  }

  bool number(double& out) {
    if (done()) return false;
    const std::string& s = tokens_[pos_];
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
    ++pos_;
    return true;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

/// `rect X0 Y0 X1 Y1` or `poly x1 y1 ... xn yn` (n >= 3).
bool parse_region(Cursor& cur, geo::Polygon& out) {
  if (cur.accept("rect")) {
    double x0, y0, x1, y1;
    if (!cur.number(x0) || !cur.number(y0) || !cur.number(x1) || !cur.number(y1)) {
      return false;
    }
    out = geo::Polygon::rectangle({{std::min(x0, x1), std::min(y0, y1)},
                                   {std::max(x0, x1), std::max(y0, y1)}});
    return true;
  }
  if (cur.accept("poly")) {
    std::vector<geo::Point> vertices;
    double x, y;
    while (cur.number(x)) {
      if (!cur.number(y)) return false;
      vertices.push_back({x, y});
    }
    if (vertices.size() < 3) return false;
    out = geo::Polygon{std::move(vertices)};
    return true;
  }
  return false;
}

bool parse_blackout(Cursor& cur, Scenario& scenario) {
  BlackoutEvent event;
  if (!parse_region(cur, event.region)) return false;
  double restore = 0.0, stages = 0.0, every = 0.0, at = 0.0;
  while (!cur.done()) {
    if (cur.accept("at")) {
      if (!cur.number(at)) return false;
      event.at_s = at;
    } else if (cur.accept("restore")) {
      if (!cur.number(restore)) return false;
      event.restore_at_s = restore;
    } else if (cur.accept("stages")) {
      if (!cur.number(stages) || stages < 1) return false;
      event.restore_stages = static_cast<std::size_t>(stages);
    } else if (cur.accept("every")) {
      if (!cur.number(every)) return false;
      event.stage_interval_s = every;
    } else {
      return false;
    }
  }
  scenario.blackouts.push_back(std::move(event));
  return true;
}

bool parse_churn(Cursor& cur, Scenario& scenario) {
  ChurnEvent event;
  double v = 0.0;
  while (!cur.done()) {
    if (cur.accept("frac")) {
      if (!cur.number(v)) return false;
      event.ap_fraction = v;
    } else if (cur.accept("up")) {
      if (!cur.number(v)) return false;
      event.mean_up_s = v;
    } else if (cur.accept("down")) {
      if (!cur.number(v)) return false;
      event.mean_down_s = v;
    } else if (cur.accept("from")) {
      if (!cur.number(v)) return false;
      event.start_s = v;
    } else if (cur.accept("to")) {
      if (!cur.number(v)) return false;
      event.end_s = v;
    } else {
      return false;
    }
  }
  scenario.churn.push_back(event);
  return true;
}

bool parse_brownout(Cursor& cur, Scenario& scenario) {
  BrownoutEvent event;
  double v = 0.0;
  while (!cur.done()) {
    if (cur.accept("axis")) {
      if (cur.done()) return false;
      const std::string axis = cur.take();
      if (axis != "x" && axis != "y") return false;
      event.sweep_x = axis == "x";
    } else if (cur.accept("width")) {
      if (!cur.number(v)) return false;
      event.front_width_m = v;
    } else if (cur.accept("from")) {
      if (!cur.number(v)) return false;
      event.start_s = v;
    } else if (cur.accept("duration")) {
      if (!cur.number(v)) return false;
      event.duration_s = v;
    } else {
      return false;
    }
  }
  scenario.brownouts.push_back(event);
  return true;
}

bool parse_degrade(Cursor& cur, Scenario& scenario) {
  DegradedLinkEvent event;
  if (!parse_region(cur, event.region)) return false;
  double v = 0.0;
  while (!cur.done()) {
    if (cur.accept("loss")) {
      if (!cur.number(v) || v < 0.0 || v > 1.0) return false;
      event.extra_loss = v;
    } else if (cur.accept("from")) {
      if (!cur.number(v)) return false;
      event.start_s = v;
    } else if (cur.accept("to")) {
      if (!cur.number(v)) return false;
      event.end_s = v;
    } else {
      return false;
    }
  }
  scenario.degraded_links.push_back(std::move(event));
  return true;
}

bool parse_line(Cursor& cur, ParsedScenario& out) {
  if (cur.accept("name")) {
    if (cur.done()) return false;
    out.scenario.name = cur.take();
    return cur.done();
  }
  if (cur.accept("seed")) {
    double v = 0.0;
    if (!cur.number(v) || v < 0.0) return false;
    out.scenario.seed = static_cast<std::uint64_t>(v);
    return cur.done();
  }
  if (cur.accept("checkpoints")) {
    double v = 0.0;
    while (cur.number(v)) out.checkpoints.push_back(v);
    return cur.done() && !out.checkpoints.empty();
  }
  if (cur.accept("blackout")) return parse_blackout(cur, out.scenario);
  if (cur.accept("churn")) return parse_churn(cur, out.scenario);
  if (cur.accept("brownout")) return parse_brownout(cur, out.scenario);
  if (cur.accept("degrade")) return parse_degrade(cur, out.scenario);
  return false;
}

}  // namespace

std::optional<ParsedScenario> parse_scenario(std::istream& in, std::string* error) {
  ParsedScenario out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens{line};
    std::vector<std::string> parts;
    for (std::string tok; tokens >> tok;) parts.push_back(std::move(tok));
    if (parts.empty()) continue;

    Cursor cur{std::move(parts)};
    if (!parse_line(cur, out)) {
      if (error) {
        *error = "scenario spec: cannot parse line " + std::to_string(line_no) +
                 ": " + line;
      }
      return std::nullopt;
    }
  }
  return out;
}

std::optional<ParsedScenario> parse_scenario(const std::string& text,
                                             std::string* error) {
  std::istringstream in{text};
  return parse_scenario(in, error);
}

}  // namespace citymesh::faultx
