// Scenario overlay rendering: the Fig-5/Fig-7 city render plus the disaster
// state — outage polygons, dead APs, surviving links, and (optionally) the
// route and rebroadcast trace of one delivery attempt skirting the blackout.
#pragma once

#include <span>
#include <string>

#include "core/network.hpp"
#include "faultx/scenario.hpp"

namespace citymesh::faultx {

struct ScenarioRenderOptions {
  double pixel_width = 1000.0;
  bool draw_links = true;  ///< surviving AP-graph links (slow for huge cities)
};

/// Render the network's *current* fault state to an SVG file. `outages` are
/// drawn as hatched overlay polygons (pass CompiledScenario::outage_regions
/// and/or degraded-region polygons). When `trace` carries a send outcome
/// collected with SendOptions::collect_trace, its planned route is drawn as
/// a polyline through the waypoint buildings and its rebroadcasting APs are
/// highlighted, so a detour around (or a failure at) the blackout edge is
/// visible. Returns false on I/O failure.
bool render_scenario_svg(const core::CityMeshNetwork& network,
                         std::span<const geo::Polygon> outages,
                         const core::SendOutcome* trace, const std::string& path,
                         const ScenarioRenderOptions& options = {});

}  // namespace citymesh::faultx
