// Scenario engine: drives a compiled fault timeline against a live network.
//
// Two replay modes over the same timeline:
//   - install(): every action is scheduled into the network's own
//     sim::Simulator at its absolute time, so faults unfold *during* message
//     floods — an AP can die with packets in flight (the medium drops its
//     rx/tx live). This is the mode the end-to-end scenario benches use.
//   - apply_until(t): a cursor that applies all actions with time <= t
//     immediately. The checkpoint-evaluation harness uses this so the
//     network state is frozen while a checkpoint's measurement sends run
//     (each send advances simulated time; installed events would smear the
//     scenario across the measurement).
// Use one mode per engine instance; mixing them would double-apply actions.
#pragma once

#include <optional>
#include <vector>

#include "core/network.hpp"
#include "faultx/scenario.hpp"

namespace citymesh::faultx {

class ScenarioEngine {
 public:
  ScenarioEngine(core::CityMeshNetwork& network, CompiledScenario compiled)
      : net_(&network),
        compiled_(std::move(compiled)),
        region_handles_(compiled_.regions.size()) {}

  /// Convenience: compile `scenario` against the network's own placement.
  ScenarioEngine(core::CityMeshNetwork& network, const Scenario& scenario)
      : ScenarioEngine(network, compile(scenario, network.aps())) {}

  /// Live mode: schedule the whole timeline into the network's simulator.
  /// Actions already due (time <= now) are applied immediately.
  void install();

  /// Checkpoint mode: apply every action with time <= t. Monotonic cursor —
  /// calling with a smaller t than before is a no-op.
  void apply_until(sim::SimTime t);

  /// Apply the remainder of the timeline.
  void apply_all() { apply_until(sim::kForever); }

  const CompiledScenario& scenario() const { return compiled_; }
  std::size_t applied() const { return applied_; }

 private:
  void apply(const FaultAction& action);

  core::CityMeshNetwork* net_;
  CompiledScenario compiled_;
  /// Lazily-created network degraded-region handles, per compiled region.
  std::vector<std::optional<std::size_t>> region_handles_;
  std::size_t cursor_ = 0;
  std::size_t applied_ = 0;
};

}  // namespace citymesh::faultx
