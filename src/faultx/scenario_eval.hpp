// Checkpointed scenario evaluation: how routing degrades — and recovers —
// while a disaster unfolds.
//
// Replays the Fig-6 reachability/deliverability protocol
// (core::evaluate_snapshot) at a series of scenario times. Between
// checkpoints the fault timeline advances via the engine's cursor; during a
// checkpoint the fault state is frozen so the measurement reads one
// consistent network (each measurement send advances simulated time, and
// letting installed fault events fire mid-measurement would smear the
// scenario across it). The snapshot seed is fixed across checkpoints, so
// every checkpoint re-measures the same building pairs — the curves show the
// scenario's effect, not sampling noise.
#pragma once

#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "faultx/scenario.hpp"

namespace citymesh::faultx {

struct ScenarioEvalConfig {
  /// Scenario times to measure at, ascending. Empty = measure only at t=0.
  std::vector<sim::SimTime> checkpoints;
  core::SnapshotConfig snapshot;
};

struct ScenarioTrace {
  std::string scenario;
  std::size_t actions_total = 0;    ///< compiled timeline length
  std::size_t aps_affected = 0;     ///< distinct APs the scenario touches
  std::vector<core::NetworkSnapshot> snapshots;  ///< one per checkpoint
};

/// Run the scenario against the network, measuring at each checkpoint.
/// Deterministic in (network seeds, scenario seed, snapshot seed).
ScenarioTrace evaluate_scenario(core::CityMeshNetwork& network,
                                const Scenario& scenario,
                                const ScenarioEvalConfig& config);

}  // namespace citymesh::faultx
