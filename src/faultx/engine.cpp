#include "faultx/engine.hpp"

#include "obsx/trace.hpp"

namespace citymesh::faultx {

void ScenarioEngine::apply(const FaultAction& action) {
  ++applied_;
  obsx::TraceBuffer& trace = net_->trace();
  switch (action.kind) {
    case FaultKind::kApDown:
      net_->set_ap_status(action.ap, core::ApStatus::kDown);
      trace.record(obsx::TraceKind::kApDown, action.time,
                   static_cast<std::uint32_t>(action.ap), 0);
      break;
    case FaultKind::kApUp:
      net_->set_ap_status(action.ap, core::ApStatus::kUp);
      trace.record(obsx::TraceKind::kApUp, action.time,
                   static_cast<std::uint32_t>(action.ap), 0);
      break;
    case FaultKind::kRegionDegrade: {
      auto& handle = region_handles_.at(action.region);
      if (handle) {
        net_->set_degraded_region_active(*handle, true);
      } else {
        const auto& spec = compiled_.regions.at(action.region);
        handle = net_->add_degraded_region(spec.region, spec.extra_loss);
      }
      trace.record(obsx::TraceKind::kRegionDegrade, action.time, obsx::kTraceNone,
                   0, static_cast<std::uint32_t>(action.region));
      break;
    }
    case FaultKind::kRegionRestore: {
      const auto& handle = region_handles_.at(action.region);
      if (handle) net_->set_degraded_region_active(*handle, false);
      trace.record(obsx::TraceKind::kRegionRestore, action.time, obsx::kTraceNone,
                   0, static_cast<std::uint32_t>(action.region));
      break;
    }
  }
}

void ScenarioEngine::install() {
  sim::Simulator& sim = net_->simulator();
  for (std::size_t i = cursor_; i < compiled_.actions.size(); ++i) {
    const FaultAction& action = compiled_.actions[i];
    if (action.time <= sim.now()) {
      apply(action);
    } else {
      sim.schedule_at(action.time, [this, i] { apply(compiled_.actions[i]); });
    }
  }
  cursor_ = compiled_.actions.size();
}

void ScenarioEngine::apply_until(sim::SimTime t) {
  while (cursor_ < compiled_.actions.size() && compiled_.actions[cursor_].time <= t) {
    apply(compiled_.actions[cursor_]);
    ++cursor_;
  }
}

}  // namespace citymesh::faultx
