#include "faultx/scenario_eval.hpp"

#include "faultx/engine.hpp"

namespace citymesh::faultx {

ScenarioTrace evaluate_scenario(core::CityMeshNetwork& network,
                                const Scenario& scenario,
                                const ScenarioEvalConfig& config) {
  ScenarioEngine engine{network, scenario};

  ScenarioTrace trace;
  trace.scenario = engine.scenario().name;
  trace.actions_total = engine.scenario().actions.size();
  trace.aps_affected = engine.scenario().aps_affected;

  std::vector<sim::SimTime> checkpoints = config.checkpoints;
  if (checkpoints.empty()) checkpoints.push_back(0.0);

  for (const sim::SimTime at : checkpoints) {
    engine.apply_until(at);
    core::NetworkSnapshot snap = core::evaluate_snapshot(network, config.snapshot);
    snap.at_s = at;  // report scenario time, not drifting simulator time
    trace.snapshots.push_back(snap);
  }
  return trace;
}

}  // namespace citymesh::faultx
