#include "faultx/render.hpp"

#include "viz/svg.hpp"

namespace citymesh::faultx {

bool render_scenario_svg(const core::CityMeshNetwork& network,
                         std::span<const geo::Polygon> outages,
                         const core::SendOutcome* trace, const std::string& path,
                         const ScenarioRenderOptions& options) {
  const osmx::City& city = network.city();
  const mesh::ApNetwork& aps = network.aps();
  viz::SvgScene scene{city.extent(), options.pixel_width};

  // The Fig-5b night-mode base: dark fabric so the fault overlay pops.
  scene.add_polygon(geo::Polygon::rectangle(city.extent()), "#1a1a2e");
  for (const auto& water : city.water()) scene.add_polygon(water, "#274060");
  for (const auto& b : city.buildings()) {
    scene.add_polygon(b.footprint, "#5b2333", "none", 0.0, 0.9);
  }

  // Surviving links only — a dead AP's links vanish with it.
  if (options.draw_links) {
    for (const auto& ap : aps.aps()) {
      if (!network.ap_up(ap.id)) continue;
      for (const auto& e : aps.graph().neighbors(ap.id)) {
        if (e.to < ap.id || !network.ap_up(e.to)) continue;
        scene.add_line(ap.position, aps.ap(e.to).position, "#888888", 0.5, 0.5);
      }
    }
  }

  // Outage polygons above the fabric, below the AP markers.
  for (const auto& region : outages) {
    scene.add_polygon(region, "#e67e22", "#e67e22", 1.5, 0.22, "7 4");
  }
  for (const auto& region : network.degraded_regions()) {
    if (!region.active) continue;
    scene.add_polygon(region.region, "#f1c40f", "#f1c40f", 1.5, 0.18, "3 3");
  }

  for (const auto& ap : aps.aps()) {
    if (network.ap_up(ap.id)) {
      scene.add_circle(ap.position, 1.4, "#ffffff", 0.9);
    } else {
      scene.add_cross(ap.position, 2.2, "#e74c3c", 1.0, 0.9);
    }
  }

  if (trace && trace->route_found) {
    std::vector<geo::Point> waypoints;
    waypoints.reserve(trace->route.waypoints.size());
    for (const core::BuildingId b : trace->route.waypoints) {
      waypoints.push_back(city.building(b).centroid);
    }
    scene.add_polyline(waypoints, "#3498db", 2.5, 0.9);
    for (const mesh::ApId id : trace->rebroadcast_aps) {
      scene.add_circle(aps.ap(id).position, 2.0, "#2ecc71", 0.9);
    }
    if (!waypoints.empty()) {
      scene.add_circle(waypoints.front(), 5.0, "#3498db", 0.9);
      scene.add_circle(waypoints.back(), 5.0,
                       trace->delivered ? "#2ecc71" : "#e74c3c", 0.9);
    }
    const geo::Point label{city.extent().min.x + city.extent().width() * 0.02,
                           city.extent().max.y - city.extent().height() * 0.03};
    scene.add_text(label,
                   trace->delivered ? "delivered around the outage"
                                    : "delivery severed by the outage",
                   15.0, "#eeeeee");
  }

  return scene.write_file(path);
}

}  // namespace citymesh::faultx
