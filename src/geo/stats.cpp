#include "geo/stats.hpp"

#include <algorithm>
#include <cmath>

namespace citymesh::geo {

double quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  std::vector<CdfPoint> out;
  out.reserve(values.size());
  const double n = static_cast<double>(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.push_back({values[i], static_cast<double>(i + 1) / n});
  }
  return out;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace citymesh::geo
