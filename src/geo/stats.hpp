// Small descriptive-statistics helpers shared by the measurement study and
// the benchmark harnesses (quantiles, CDF extraction, histogram binning).
#pragma once

#include <cstddef>
#include <vector>

namespace citymesh::geo {

/// Quantile of `values` (q in [0,1]) using linear interpolation between
/// order statistics. The input need not be sorted; a copy is sorted.
/// Returns 0 for empty input.
double quantile(std::vector<double> values, double q);

/// Median shorthand.
inline double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

/// One (x, F(x)) step of an empirical CDF.
struct CdfPoint {
  double value;
  double fraction;  ///< P(X <= value)
};

/// Empirical CDF of `values` as sorted steps (one per sample).
std::vector<CdfPoint> empirical_cdf(std::vector<double> values);

/// Running mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace citymesh::geo
