// Deterministic pseudo-random number generation.
//
// Every stochastic step in CityMesh (city generation, AP placement, pair
// sampling, packet jitter) draws from an explicitly-seeded Rng so that runs
// are reproducible. xoshiro256** is used for generation and splitmix64 for
// seeding, both public-domain algorithms by Blackman & Vigna.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace citymesh::geo {

/// splitmix64 step; used to expand a single seed into a full state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __extension__ using u128 = unsigned __int128;
    u128 m = static_cast<u128>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<u128>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double normal() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    has_spare_ = true;
    return u * f;
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive an independent child generator (for per-subsystem streams).
  Rng fork(std::uint64_t stream) {
    std::uint64_t sm = next() ^ (stream * 0x9e3779b97f4a7c15ULL + 0x1234567);
    Rng child{0};
    for (auto& s : child.state_) s = splitmix64(sm);
    return child;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace citymesh::geo
