#include "geo/projection.hpp"

#include <cmath>
#include <numbers>

namespace citymesh::geo {

namespace {
constexpr double kDegToRad = std::numbers::pi / 180.0;
}

Projection::Projection(LatLon origin)
    : origin_(origin), cos_lat_(std::cos(origin.lat * kDegToRad)) {}

Point Projection::to_local(LatLon ll) const {
  const double dlat = (ll.lat - origin_.lat) * kDegToRad;
  const double dlon = (ll.lon - origin_.lon) * kDegToRad;
  return {kEarthRadiusM * dlon * cos_lat_, kEarthRadiusM * dlat};
}

LatLon Projection::to_latlon(Point p) const {
  const double dlat = p.y / kEarthRadiusM;
  const double dlon = p.x / (kEarthRadiusM * cos_lat_);
  return {origin_.lat + dlat / kDegToRad, origin_.lon + dlon / kDegToRad};
}

}  // namespace citymesh::geo
