// Equirectangular projection between WGS-84 lat/lon and the local planar
// frame in meters.
//
// CityMesh operates at city scale (a few km), where an equirectangular
// projection anchored at a reference latitude is accurate to well under the
// Wi-Fi transmission range. Real OSM extracts are projected through this on
// load; synthetic cities are generated directly in meters.
#pragma once

#include "geo/point.hpp"

namespace citymesh::geo {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Projects lat/lon to a local tangent plane anchored at an origin.
class Projection {
 public:
  /// Mean Earth radius (IUGG), meters.
  static constexpr double kEarthRadiusM = 6371008.8;

  explicit Projection(LatLon origin);

  /// Lat/lon -> local meters (x east, y north).
  Point to_local(LatLon ll) const;

  /// Local meters -> lat/lon.
  LatLon to_latlon(Point p) const;

  LatLon origin() const { return origin_; }

 private:
  LatLon origin_;
  double cos_lat_;
};

}  // namespace citymesh::geo
