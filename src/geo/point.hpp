// Basic 2D vector/point types used throughout CityMesh.
//
// All coordinates in the simulation are expressed in a local planar frame in
// meters (see projection.hpp for the lat/lon mapping). Keeping the planar
// math in one small value type lets every other module reason in meters.
#pragma once

#include <cmath>
#include <compare>
#include <iosfwd>

namespace citymesh::geo {

/// A point (or displacement) in the local planar frame, in meters.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend constexpr Point operator*(Point a, double s) { return {a.x * s, a.y * s}; }
  friend constexpr Point operator*(double s, Point a) { return a * s; }
  friend constexpr Point operator/(Point a, double s) { return {a.x / s, a.y / s}; }
  friend constexpr bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }

  Point& operator+=(Point b) { x += b.x; y += b.y; return *this; }
  Point& operator-=(Point b) { x -= b.x; y -= b.y; return *this; }
};

/// Dot product of two displacement vectors.
constexpr double dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the 3D cross product; >0 when b is counter-clockwise of a.
constexpr double cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Squared Euclidean norm (cheaper than norm() when only comparing).
constexpr double norm2(Point a) { return dot(a, a); }

/// Euclidean norm in meters.
inline double norm(Point a) { return std::sqrt(norm2(a)); }

/// Squared distance between two points, in m^2.
constexpr double distance2(Point a, Point b) { return norm2(b - a); }

/// Euclidean distance between two points, in meters.
inline double distance(Point a, Point b) { return norm(b - a); }

/// Unit vector in the direction of `a`; returns {0,0} for the zero vector.
inline Point normalized(Point a) {
  const double n = norm(a);
  return n > 0.0 ? a / n : Point{};
}

/// Perpendicular (rotated +90 degrees, counter-clockwise).
constexpr Point perp(Point a) { return {-a.y, a.x}; }

/// Linear interpolation: lerp(a, b, 0) == a, lerp(a, b, 1) == b.
constexpr Point lerp(Point a, Point b, double t) { return a + (b - a) * t; }

std::ostream& operator<<(std::ostream& os, Point p);

}  // namespace citymesh::geo
