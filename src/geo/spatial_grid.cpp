#include "geo/spatial_grid.hpp"

#include <cmath>
#include <stdexcept>

namespace citymesh::geo {

SpatialGrid::SpatialGrid(double cell_size) : cell_size_(cell_size) {
  if (cell_size <= 0.0) throw std::invalid_argument{"SpatialGrid: cell_size must be > 0"};
}

SpatialGrid::SpatialGrid(double cell_size, const std::vector<Point>& points)
    : SpatialGrid(cell_size) {
  points_.reserve(points.size());
  for (std::uint32_t i = 0; i < points.size(); ++i) insert(i, points[i]);
}

SpatialGrid::CellKey SpatialGrid::cell_of(Point p) const {
  return {static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
          static_cast<std::int64_t>(std::floor(p.y / cell_size_))};
}

void SpatialGrid::insert(std::uint32_t id, Point p) {
  cells_[cell_of(p)].push_back(id);
  points_[id] = p;
}

void SpatialGrid::for_each_in_radius(
    Point center, double radius,
    const std::function<void(std::uint32_t, Point)>& fn) const {
  if (radius < 0.0) return;
  const CellKey lo = cell_of({center.x - radius, center.y - radius});
  const CellKey hi = cell_of({center.x + radius, center.y + radius});
  const double r2 = radius * radius;
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const auto it = cells_.find({cx, cy});
      if (it == cells_.end()) continue;
      for (const std::uint32_t id : it->second) {
        const Point p = points_.at(id);
        if (distance2(p, center) <= r2) fn(id, p);
      }
    }
  }
}

std::vector<std::uint32_t> SpatialGrid::query_radius(Point center, double radius) const {
  std::vector<std::uint32_t> out;
  for_each_in_radius(center, radius,
                     [&out](std::uint32_t id, Point) { out.push_back(id); });
  return out;
}

std::vector<std::uint32_t> SpatialGrid::query_rect(const Rect& r) const {
  std::vector<std::uint32_t> out;
  const CellKey lo = cell_of(r.min);
  const CellKey hi = cell_of(r.max);
  for (std::int64_t cy = lo.cy; cy <= hi.cy; ++cy) {
    for (std::int64_t cx = lo.cx; cx <= hi.cx; ++cx) {
      const auto it = cells_.find({cx, cy});
      if (it == cells_.end()) continue;
      for (const std::uint32_t id : it->second) {
        if (r.contains(points_.at(id))) out.push_back(id);
      }
    }
  }
  return out;
}

}  // namespace citymesh::geo
