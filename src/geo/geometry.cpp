#include "geo/geometry.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace citymesh::geo {

std::ostream& operator<<(std::ostream& os, Point p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

double point_segment_distance(Point p, const Segment& s) {
  const Point d = s.b - s.a;
  const double len2 = norm2(d);
  if (len2 == 0.0) return distance(p, s.a);
  const double t = std::clamp(dot(p - s.a, d) / len2, 0.0, 1.0);
  return distance(p, s.a + d * t);
}

namespace {

// Orientation of the triplet (a, b, c): >0 counter-clockwise, <0 clockwise.
double orient(Point a, Point b, Point c) { return cross(b - a, c - a); }

bool on_segment(Point p, const Segment& s) {
  return std::min(s.a.x, s.b.x) <= p.x && p.x <= std::max(s.a.x, s.b.x) &&
         std::min(s.a.y, s.b.y) <= p.y && p.y <= std::max(s.a.y, s.b.y);
}

}  // namespace

bool segments_intersect(const Segment& s1, const Segment& s2) {
  const double d1 = orient(s2.a, s2.b, s1.a);
  const double d2 = orient(s2.a, s2.b, s1.b);
  const double d3 = orient(s1.a, s1.b, s2.a);
  const double d4 = orient(s1.a, s1.b, s2.b);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && on_segment(s1.a, s2)) return true;
  if (d2 == 0 && on_segment(s1.b, s2)) return true;
  if (d3 == 0 && on_segment(s2.a, s1)) return true;
  if (d4 == 0 && on_segment(s2.b, s1)) return true;
  return false;
}

std::optional<Rect> Rect::bounding(std::span<const Point> pts) {
  if (pts.empty()) return std::nullopt;
  Rect r{pts[0], pts[0]};
  for (const Point p : pts) {
    r.min.x = std::min(r.min.x, p.x);
    r.min.y = std::min(r.min.y, p.y);
    r.max.x = std::max(r.max.x, p.x);
    r.max.y = std::max(r.max.y, p.y);
  }
  return r;
}

OrientedRect::OrientedRect(Point from, Point to, double width)
    : from_(from), to_(to), length_(distance(from, to)), width_(width) {
  if (width < 0.0) throw std::invalid_argument{"OrientedRect: negative width"};
  axis_ = length_ > 0.0 ? (to - from) / length_ : Point{1.0, 0.0};
  normal_ = perp(axis_);
}

bool OrientedRect::contains(Point p) const {
  // Micrometer tolerance: endpoints computed as dot(to-from, axis) can land
  // one ulp past length_, and a waypoint centroid must always test inside
  // the conduit that ends on it.
  constexpr double kEps = 1e-6;
  const Point d = p - from_;
  const double along = dot(d, axis_);
  if (along < -kEps || along > length_ + kEps) return false;
  const double across = dot(d, normal_);
  return std::abs(across) <= width_ * 0.5 + kEps;
}

double OrientedRect::centerline_distance(Point p) const {
  return point_segment_distance(p, Segment{from_, to_});
}

std::vector<Point> OrientedRect::corners() const {
  const Point half = normal_ * (width_ * 0.5);
  return {from_ - half, to_ - half, to_ + half, from_ + half};
}

Rect OrientedRect::bounds() const {
  const auto cs = corners();
  return *Rect::bounding(cs);
}

Polygon::Polygon(std::vector<Point> vertices) : vertices_(std::move(vertices)) {
  // Drop an explicit closing vertex if present.
  if (vertices_.size() >= 2 && vertices_.front() == vertices_.back()) {
    vertices_.pop_back();
  }
}

double Polygon::signed_area() const {
  if (empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[(i + 1) % vertices_.size()];
    acc += cross(a, b);
  }
  return acc * 0.5;
}

Point Polygon::centroid() const {
  if (vertices_.empty()) return {};
  const double a = signed_area();
  if (std::abs(a) < 1e-9) {
    Point mean{};
    for (const Point v : vertices_) mean += v;
    return mean / static_cast<double>(vertices_.size());
  }
  Point c{};
  for (std::size_t i = 0; i < vertices_.size(); ++i) {
    const Point p = vertices_[i];
    const Point q = vertices_[(i + 1) % vertices_.size()];
    const double w = cross(p, q);
    c += (p + q) * w;
  }
  return c / (6.0 * a);
}

bool Polygon::contains(Point p) const {
  if (empty()) return false;
  bool inside = false;
  for (std::size_t i = 0, j = vertices_.size() - 1; i < vertices_.size(); j = i++) {
    const Point vi = vertices_[i];
    const Point vj = vertices_[j];
    const bool crosses = (vi.y > p.y) != (vj.y > p.y);
    if (crosses) {
      const double x_at = vj.x + (p.y - vj.y) / (vi.y - vj.y) * (vi.x - vj.x);
      if (p.x < x_at) inside = !inside;
    }
  }
  return inside;
}

std::optional<Rect> Polygon::bounds() const {
  return Rect::bounding(vertices_);
}

Polygon Polygon::rectangle(const Rect& r) {
  return Polygon{{{r.min.x, r.min.y}, {r.max.x, r.min.y}, {r.max.x, r.max.y}, {r.min.x, r.max.y}}};
}

std::vector<Point> convex_hull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](Point a, Point b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  const std::size_t n = points.size();
  if (n <= 2) return points;

  std::vector<Point> hull(2 * n);
  std::size_t k = 0;
  // Lower hull.
  for (std::size_t i = 0; i < n; ++i) {
    while (k >= 2 && cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= 0) --k;
    hull[k++] = points[i];
  }
  // Upper hull.
  const std::size_t lower_size = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {
    while (k >= lower_size && cross(hull[k - 1] - hull[k - 2], points[i] - hull[k - 2]) <= 0) --k;
    hull[k++] = points[i];
  }
  hull.resize(k - 1);  // last point equals the first
  return hull;
}

double max_pairwise_distance(const std::vector<Point>& points) {
  const auto hull = convex_hull(points);
  if (hull.size() < 2) return 0.0;
  // Hull sizes in this codebase are small; the quadratic scan is simpler
  // than rotating calipers and never the bottleneck.
  double best2 = 0.0;
  for (std::size_t i = 0; i < hull.size(); ++i) {
    for (std::size_t j = i + 1; j < hull.size(); ++j) {
      best2 = std::max(best2, distance2(hull[i], hull[j]));
    }
  }
  return std::sqrt(best2);
}

}  // namespace citymesh::geo
