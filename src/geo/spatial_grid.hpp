// A fixed-cell spatial hash over 2D points.
//
// CityMesh needs two geometric queries at scale: "which APs are within the
// transmission range of this AP" (mesh construction) and "which APs fall
// inside this conduit's bounding box" (rebroadcast simulation). A uniform
// grid whose cell size matches the query radius answers both in O(k) for k
// results, and builds in O(n) — adequate for millions of APs and far simpler
// than an R-tree (P.11: encapsulate the messy construct once).
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "geo/geometry.hpp"
#include "geo/point.hpp"

namespace citymesh::geo {

/// Maps item ids (caller-defined dense indices) to points and supports
/// radius and rectangle queries.
class SpatialGrid {
 public:
  /// `cell_size` should be close to the typical query radius.
  explicit SpatialGrid(double cell_size);

  /// Bulk-build from a vector of points; item id i is points[i].
  SpatialGrid(double cell_size, const std::vector<Point>& points);

  void insert(std::uint32_t id, Point p);

  std::size_t size() const { return points_.size(); }
  double cell_size() const { return cell_size_; }

  /// Point registered for `id`. Precondition: id was inserted.
  Point position(std::uint32_t id) const { return points_.at(id); }

  /// Ids of all items with distance(point, center) <= radius.
  std::vector<std::uint32_t> query_radius(Point center, double radius) const;

  /// Invoke `fn(id, point)` for all items within `radius` of `center`.
  void for_each_in_radius(Point center, double radius,
                          const std::function<void(std::uint32_t, Point)>& fn) const;

  /// Ids of all items inside the axis-aligned rectangle.
  std::vector<std::uint32_t> query_rect(const Rect& r) const;

 private:
  struct CellKey {
    std::int64_t cx;
    std::int64_t cy;
    bool operator==(const CellKey&) const = default;
  };
  struct CellHash {
    std::size_t operator()(const CellKey& k) const {
      // 64-bit mix of the two cell coordinates.
      std::uint64_t h = static_cast<std::uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<std::uint64_t>(k.cy) + 0x7f4a7c15ULL + (h << 6) + (h >> 2);
      return static_cast<std::size_t>(h);
    }
  };

  CellKey cell_of(Point p) const;

  double cell_size_;
  std::unordered_map<CellKey, std::vector<std::uint32_t>, CellHash> cells_;
  std::unordered_map<std::uint32_t, Point> points_;
};

}  // namespace citymesh::geo
