// Planar geometry used by CityMesh: segments, axis-aligned and oriented
// rectangles (the "conduits" of the paper), and polygons (building
// footprints).
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "geo/point.hpp"

namespace citymesh::geo {

/// A line segment between two points.
struct Segment {
  Point a;
  Point b;

  double length() const { return distance(a, b); }
};

/// Distance from point `p` to the segment, in meters.
double point_segment_distance(Point p, const Segment& s);

/// True if segments `s1` and `s2` intersect (including touching endpoints).
bool segments_intersect(const Segment& s1, const Segment& s2);

/// Axis-aligned bounding rectangle.
struct Rect {
  Point min;  ///< lower-left corner
  Point max;  ///< upper-right corner

  double width() const { return max.x - min.x; }
  double height() const { return max.y - min.y; }
  double area() const { return width() * height(); }
  Point center() const { return (min + max) * 0.5; }

  bool contains(Point p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }
  bool intersects(const Rect& o) const {
    return min.x <= o.max.x && o.min.x <= max.x && min.y <= o.max.y && o.min.y <= max.y;
  }
  /// Grow the rectangle outward by `margin` meters on every side.
  Rect expanded(double margin) const {
    return {{min.x - margin, min.y - margin}, {max.x + margin, max.y + margin}};
  }

  /// Smallest Rect containing every point in `pts`; nullopt when empty.
  static std::optional<Rect> bounding(std::span<const Point> pts);
};

/// A rectangle of width `width` centered on the segment from `from` to `to`.
///
/// This is the paper's *conduit*: the region between two consecutive waypoint
/// buildings inside which APs rebroadcast (Figure 4). The rectangle extends
/// width/2 to each side of the center line and spans the full segment length.
class OrientedRect {
 public:
  OrientedRect(Point from, Point to, double width);

  /// True if `p` lies inside (or on the boundary of) the rectangle.
  bool contains(Point p) const;

  /// Distance from `p` to the centerline segment (used by diagnostics).
  double centerline_distance(Point p) const;

  Point from() const { return from_; }
  Point to() const { return to_; }
  double width() const { return width_; }
  double length() const { return length_; }

  /// Corner points in counter-clockwise order (for rendering).
  std::vector<Point> corners() const;

  /// Loose axis-aligned bounding box (for spatial-index pre-filtering).
  Rect bounds() const;

 private:
  Point from_;
  Point to_;
  Point axis_;    // unit vector from -> to
  Point normal_;  // unit vector perpendicular to axis_
  double length_;
  double width_;
};

/// A simple polygon (building footprint). Vertices are stored without the
/// closing duplicate; orientation may be either winding.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  bool empty() const { return vertices_.size() < 3; }
  std::size_t size() const { return vertices_.size(); }

  /// Signed area (positive for counter-clockwise winding), in m^2.
  double signed_area() const;
  /// Absolute area in m^2.
  double area() const { return std::abs(signed_area()); }

  /// Area centroid. Falls back to the vertex mean for degenerate polygons.
  Point centroid() const;

  /// Even-odd (crossing-number) point-in-polygon test. Boundary points may
  /// report either side; callers needing closed semantics should test with a
  /// small epsilon of their own.
  bool contains(Point p) const;

  /// Axis-aligned bounding box; nullopt for an empty polygon.
  std::optional<Rect> bounds() const;

  /// Axis-aligned rectangle helper (counter-clockwise winding).
  static Polygon rectangle(const Rect& r);

 private:
  std::vector<Point> vertices_;
};

/// Convex hull (Andrew monotone chain), counter-clockwise, no duplicate
/// closing point. Collinear points on the hull boundary are dropped.
std::vector<Point> convex_hull(std::vector<Point> points);

/// Maximum pairwise distance ("spread" in the paper's Figure 1b). Computed
/// over the convex hull, so it is exact and fast for the survey's per-AP
/// location clouds. Returns 0 for fewer than 2 points.
double max_pairwise_distance(const std::vector<Point>& points);

}  // namespace citymesh::geo
