#include "trafficx/runner.hpp"

#include <algorithm>
#include <unordered_map>

#include "cryptox/identity.hpp"
#include "graphx/shortest_path.hpp"

namespace citymesh::trafficx {

WorkloadResult run_workload(core::CityMeshNetwork& network,
                            const FlowSchedule& schedule, const RunConfig& config) {
  WorkloadResult result;
  result.flows.resize(schedule.flows.size());

  // Contention counters are cumulative on the medium(s); this run's share is
  // the delta, so workload runs compose (and stack on faultx scenarios).
  // medium_totals() sums across tile shards when the network runs tiled.
  const core::CityMeshNetwork::MediumTotals before = network.medium_totals();

  // One postbox identity per destination building, derived deterministically
  // so the same (schedule, seed) addresses the same recipients every run.
  // register_postbox is idempotent; buildings without APs get no postbox and
  // their flows fail injection below (route planning still succeeds).
  std::unordered_map<osmx::BuildingId, core::PostboxInfo> recipients;
  for (const Flow& flow : schedule.flows) {
    if (recipients.contains(flow.dst)) continue;
    const auto keys =
        cryptox::KeyPair::from_seed(config.postbox_seed ^ (0x9e3779b97f4a7c15ULL * (flow.dst + 1)));
    const auto info = core::PostboxInfo::for_key(keys, flow.dst);
    network.register_postbox(info);
    recipients.emplace(flow.dst, info);
  }

  // Schedule every injection at its arrival time, then run the event loop
  // once: flows overlap and contend for airtime. Payload bytes are zeros —
  // the medium charges size, not content.
  const double t0 = network.sim_now();
  std::vector<std::uint32_t> message_ids(schedule.flows.size(), 0);
  std::size_t max_payload = 1;
  for (const Flow& flow : schedule.flows) {
    max_payload = std::max(max_payload, flow.payload_bytes);
  }
  std::vector<std::uint8_t> payload(max_payload, 0);
  for (std::size_t i = 0; i < schedule.flows.size(); ++i) {
    const Flow& flow = schedule.flows[i];
    result.flows[i].start_s = flow.start_s;
    result.flows[i].payload_bytes = flow.payload_bytes;
    network.schedule_control(t0 + flow.start_s, [&, i] {
      const Flow& f = schedule.flows[i];
      const auto inject = network.inject(
          f.src, recipients.at(f.dst),
          {payload.data(), std::min(f.payload_bytes, payload.size())});
      if (inject.accepted()) {
        result.flows[i].injected = true;
        message_ids[i] = inject.message_id;
      }
    });
  }
  network.run_until(t0 + schedule.spec.duration_s + config.tail_s, config.max_events);

  // Overhead denominator: ideal unicast hops from the flow's source AP to
  // the closest AP of the destination building, over the *static* AP graph
  // (the same baseline the single-send path uses). BFS results are memoized
  // per source AP — hotspot workloads reuse a handful of sources.
  std::unordered_map<mesh::ApId, graphx::ShortestPaths> hops_from;
  const auto min_hops = [&](osmx::BuildingId src,
                            osmx::BuildingId dst) -> std::size_t {
    const auto src_ap = network.aps().representative_ap(network.city(), src);
    if (!src_ap) return 0;
    auto it = hops_from.find(*src_ap);
    if (it == hops_from.end()) {
      it = hops_from.emplace(*src_ap, graphx::bfs(network.aps().graph(), *src_ap)).first;
    }
    double best = graphx::kInfiniteDistance;
    for (const mesh::ApId ap : network.aps().aps_of_building(dst)) {
      best = std::min(best, it->second.distance[ap]);
    }
    if (best >= graphx::kInfiniteDistance || best <= 0.0) return 0;
    return static_cast<std::size_t>(best);
  };

  for (std::size_t i = 0; i < schedule.flows.size(); ++i) {
    if (message_ids[i] == 0) continue;
    const core::FlowState* state = network.flow_state(message_ids[i]);
    if (state == nullptr) continue;
    result.flows[i].transmissions = state->transmissions;
    if (!state->delivered) continue;
    result.flows[i].delivered = true;
    result.flows[i].latency_s = state->delivery_time_s - state->injected_at_s;
    if (config.measure_overhead) {
      result.flows[i].min_hops =
          min_hops(schedule.flows[i].src, schedule.flows[i].dst);
    }
  }
  network.clear_flow_states();

  const core::CityMeshNetwork::MediumTotals after = network.medium_totals();
  result.summary = core::summarize_capacity(
      result.flows, schedule.spec.duration_s, after.queue_drops - before.queue_drops,
      after.deferrals - before.deferrals, after.airtime_s - before.airtime_s);
  result.metrics = network.merged_metrics();
  return result;
}

}  // namespace citymesh::trafficx
