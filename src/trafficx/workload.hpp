// Traffic workload generation (src/trafficx).
//
// The paper evaluates CityMesh one message at a time; a fallback network
// that matters serves a *city's worth* of concurrent traffic. This layer
// turns a small declarative spec — offered load, spatial pattern, payload
// sizes — into a deterministic, replayable flow schedule, the same way
// src/faultx compiles disaster specs into fault timelines. Arrivals are
// Poisson at `rate_per_s`; sources and destinations are sampled uniformly,
// biased toward downtown buildings (hotspot — rush-hour texting), or fanned
// out from a single origin (emergency broadcast-like unicast storms, §1).
//
// Determinism: compile(spec, city) draws every random value from one
// geo::Rng seeded by the spec, so the same (spec, city) always yields the
// byte-identical schedule; digest() pins that in tests and run manifests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "osmx/building.hpp"

namespace citymesh::trafficx {

/// How flow endpoints are placed in the city.
enum class SpatialMode : std::uint8_t {
  kUniform,    ///< src/dst uniform over buildings
  kHotspot,    ///< downtown buildings over-weighted by `hotspot_bias`
  kEmergency,  ///< one fixed origin fans out to uniform destinations
};

std::string_view to_string(SpatialMode mode);
std::optional<SpatialMode> spatial_mode_from(std::string_view name);

struct WorkloadSpec {
  std::string name = "workload";
  std::uint64_t seed = 1;
  double duration_s = 10.0;   ///< arrivals occur in [0, duration_s)
  double rate_per_s = 1.0;    ///< Poisson offered load (flows per second)
  SpatialMode spatial = SpatialMode::kUniform;
  /// kHotspot: relative sampling weight of a downtown building versus a
  /// non-downtown one (1 = no bias).
  double hotspot_bias = 4.0;
  /// kEmergency: the fan-out origin. Unset = the first downtown building
  /// (falling back to building 0).
  std::optional<osmx::BuildingId> emergency_origin;
  /// Payload bytes drawn uniformly from [min, max].
  std::size_t payload_min_bytes = 64;
  std::size_t payload_max_bytes = 512;
};

/// One unicast message of the workload.
struct Flow {
  double start_s = 0.0;  ///< injection time, relative to workload start
  osmx::BuildingId src = 0;
  osmx::BuildingId dst = 0;
  std::size_t payload_bytes = 0;
};

/// A compiled, replayable schedule: the spec plus every concrete flow.
struct FlowSchedule {
  WorkloadSpec spec;
  std::vector<Flow> flows;

  /// FNV-1a over every flow field — the schedule's determinism digest.
  std::uint64_t digest() const;
};

/// Compile a spec against a city. Deterministic in (spec, city). The city
/// must have at least two buildings.
FlowSchedule compile(const WorkloadSpec& spec, const osmx::City& city);

}  // namespace citymesh::trafficx
