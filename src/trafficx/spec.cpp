#include "trafficx/spec.hpp"

#include <charconv>
#include <istream>
#include <sstream>
#include <vector>

namespace citymesh::trafficx {

namespace {

/// Token cursor over one spec line (same shape as faultx's parser).
class Cursor {
 public:
  explicit Cursor(std::vector<std::string> tokens) : tokens_(std::move(tokens)) {}

  bool done() const { return pos_ >= tokens_.size(); }
  std::string take() { return tokens_[pos_++]; }

  bool accept(std::string_view keyword) {
    if (done() || tokens_[pos_] != keyword) return false;
    ++pos_;
    return true;
  }

  bool number(double& out) {
    if (done()) return false;
    const std::string& s = tokens_[pos_];
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    if (ec != std::errc{} || ptr != s.data() + s.size()) return false;
    ++pos_;
    return true;
  }

 private:
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

bool parse_spatial(Cursor& cur, WorkloadSpec& spec) {
  if (cur.done()) return false;
  const auto mode = spatial_mode_from(cur.take());
  if (!mode) return false;
  spec.spatial = *mode;
  double v = 0.0;
  while (!cur.done()) {
    if (cur.accept("bias")) {
      if (*mode != SpatialMode::kHotspot || !cur.number(v) || v <= 0.0) return false;
      spec.hotspot_bias = v;
    } else if (cur.accept("origin")) {
      if (*mode != SpatialMode::kEmergency || !cur.number(v) || v < 0.0) return false;
      spec.emergency_origin = static_cast<osmx::BuildingId>(v);
    } else {
      return false;
    }
  }
  return true;
}

bool parse_line(Cursor& cur, WorkloadSpec& spec) {
  double v = 0.0;
  if (cur.accept("name")) {
    if (cur.done()) return false;
    spec.name = cur.take();
    return cur.done();
  }
  if (cur.accept("seed")) {
    if (!cur.number(v) || v < 0.0) return false;
    spec.seed = static_cast<std::uint64_t>(v);
    return cur.done();
  }
  if (cur.accept("duration")) {
    if (!cur.number(v) || v <= 0.0) return false;
    spec.duration_s = v;
    return cur.done();
  }
  if (cur.accept("rate")) {
    if (!cur.number(v) || v <= 0.0) return false;
    spec.rate_per_s = v;
    return cur.done();
  }
  if (cur.accept("spatial")) return parse_spatial(cur, spec);
  if (cur.accept("payload")) {
    double lo = 0.0, hi = 0.0;
    if (!cur.number(lo) || lo < 1.0) return false;
    hi = lo;
    if (!cur.done() && (!cur.number(hi) || hi < lo)) return false;
    spec.payload_min_bytes = static_cast<std::size_t>(lo);
    spec.payload_max_bytes = static_cast<std::size_t>(hi);
    return cur.done();
  }
  return false;
}

}  // namespace

std::optional<WorkloadSpec> parse_workload(std::istream& in, std::string* error) {
  WorkloadSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens{line};
    std::vector<std::string> parts;
    for (std::string tok; tokens >> tok;) parts.push_back(std::move(tok));
    if (parts.empty()) continue;

    Cursor cur{std::move(parts)};
    if (!parse_line(cur, spec)) {
      if (error) {
        *error = "workload spec: cannot parse line " + std::to_string(line_no) +
                 ": " + line;
      }
      return std::nullopt;
    }
  }
  return spec;
}

std::optional<WorkloadSpec> parse_workload(const std::string& text, std::string* error) {
  std::istringstream in{text};
  return parse_workload(in, error);
}

}  // namespace citymesh::trafficx
