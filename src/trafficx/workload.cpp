#include "trafficx/workload.hpp"

#include <algorithm>
#include <cmath>

#include "geo/rng.hpp"
#include "obsx/manifest.hpp"

namespace citymesh::trafficx {

std::string_view to_string(SpatialMode mode) {
  switch (mode) {
    case SpatialMode::kUniform:
      return "uniform";
    case SpatialMode::kHotspot:
      return "hotspot";
    case SpatialMode::kEmergency:
      return "emergency";
  }
  return "unknown";
}

std::optional<SpatialMode> spatial_mode_from(std::string_view name) {
  if (name == "uniform") return SpatialMode::kUniform;
  if (name == "hotspot") return SpatialMode::kHotspot;
  if (name == "emergency") return SpatialMode::kEmergency;
  return std::nullopt;
}

std::uint64_t FlowSchedule::digest() const {
  obsx::Fnv1a fnv;
  fnv.update(spec.name);
  fnv.update(spec.seed);
  for (const Flow& f : flows) {
    fnv.update(static_cast<std::uint64_t>(std::llround(f.start_s * 1e9)));
    fnv.update(static_cast<std::uint64_t>(f.src));
    fnv.update(static_cast<std::uint64_t>(f.dst));
    fnv.update(static_cast<std::uint64_t>(f.payload_bytes));
  }
  return fnv.digest();
}

namespace {

/// Cumulative-weight sampler over buildings (binary search per draw).
class WeightedSampler {
 public:
  WeightedSampler(const osmx::City& city, double downtown_weight) {
    cumulative_.reserve(city.building_count());
    double total = 0.0;
    for (const auto& b : city.buildings()) {
      total += b.area == osmx::AreaType::kDowntown ? downtown_weight : 1.0;
      cumulative_.push_back(total);
    }
  }

  osmx::BuildingId draw(geo::Rng& rng) const {
    const double u = rng.uniform() * cumulative_.back();
    const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
    return static_cast<osmx::BuildingId>(std::min(idx, cumulative_.size() - 1));
  }

 private:
  std::vector<double> cumulative_;
};

osmx::BuildingId default_emergency_origin(const osmx::City& city) {
  for (const auto& b : city.buildings()) {
    if (b.area == osmx::AreaType::kDowntown) return b.id;
  }
  return 0;
}

}  // namespace

FlowSchedule compile(const WorkloadSpec& spec, const osmx::City& city) {
  FlowSchedule schedule;
  schedule.spec = spec;
  if (city.building_count() < 2 || spec.rate_per_s <= 0.0 || spec.duration_s <= 0.0) {
    return schedule;
  }

  geo::Rng rng{spec.seed};
  const WeightedSampler sampler{
      city, spec.spatial == SpatialMode::kHotspot ? spec.hotspot_bias : 1.0};
  const osmx::BuildingId origin =
      spec.emergency_origin.value_or(default_emergency_origin(city));
  const std::size_t pay_lo = std::min(spec.payload_min_bytes, spec.payload_max_bytes);
  const std::size_t pay_hi = std::max(spec.payload_min_bytes, spec.payload_max_bytes);

  schedule.flows.reserve(
      static_cast<std::size_t>(spec.rate_per_s * spec.duration_s * 1.25) + 4);
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival gap; 1 - uniform() avoids log(0).
    t += -std::log(1.0 - rng.uniform()) / spec.rate_per_s;
    if (t >= spec.duration_s) break;

    Flow flow;
    flow.start_s = t;
    if (spec.spatial == SpatialMode::kEmergency) {
      flow.src = origin;
      do {
        flow.dst = sampler.draw(rng);
      } while (flow.dst == flow.src);
    } else {
      flow.src = sampler.draw(rng);
      do {
        flow.dst = sampler.draw(rng);
      } while (flow.dst == flow.src);
    }
    flow.payload_bytes = pay_lo + rng.uniform_int(pay_hi - pay_lo + 1);
    schedule.flows.push_back(flow);
  }
  return schedule;
}

}  // namespace citymesh::trafficx
