// Workload execution (src/trafficx): replay a compiled FlowSchedule against
// a live CityMeshNetwork and account for every flow's fate.
//
// Unlike the single-message evaluation protocol (core/evaluation), all flows
// of a workload coexist in flight: injections are scheduled as simulator
// events at their arrival times and the event loop runs ONCE, so concurrent
// floods contend for airtime on the shared medium (enable it via
// sim::MediumConfig::bitrate_bps). Composes with src/faultx — install a
// ScenarioEngine on the same network before running and the workload rides
// through the disaster.
#pragma once

#include <cstdint>
#include <vector>

#include "core/evaluation.hpp"
#include "core/network.hpp"
#include "trafficx/workload.hpp"

namespace citymesh::trafficx {

struct RunConfig {
  /// Drain window after the last scheduled arrival: in-flight floods get
  /// this much extra simulated time to deliver before the run stops.
  double tail_s = 30.0;
  std::size_t max_events = 50'000'000;
  /// Seed for the destination postbox identities (key derivation).
  std::uint64_t postbox_seed = 77;
  /// Also compute each delivered flow's ideal unicast hop count (BFS over
  /// the static AP graph, memoized per source AP) so the summary carries the
  /// paper's transmissions/min_hops overhead ratio under concurrent load
  /// (bench/fig11_frontier). Off by default: fig9-style capacity sweeps
  /// don't pay for BFS they don't read.
  bool measure_overhead = false;
};

struct WorkloadResult {
  std::vector<core::FlowRecord> flows;  ///< one per scheduled flow, in order
  core::CapacitySummary summary;
  obsx::MetricsSnapshot metrics;  ///< network registry after the run
};

/// Replay `schedule` on `network`. Registers a postbox in every destination
/// building (idempotent), schedules each flow's injection, runs the
/// simulator once, and folds per-flow delivery/latency plus the medium's
/// contention counters into a CapacitySummary. Clears the network's
/// injected-flow bookkeeping on exit so runs compose.
WorkloadResult run_workload(core::CityMeshNetwork& network,
                            const FlowSchedule& schedule, const RunConfig& config = {});

}  // namespace citymesh::trafficx
