// Line-oriented text format for workload specs, mirroring faultx/spec: a
// traffic profile can be checked into a repo or handed to `citymesh load`
// without recompiling.
//
//   # comments and blank lines are skipped
//   name rush-hour
//   seed 7
//   duration 20
//   rate 8
//   spatial hotspot bias 4
//   spatial emergency origin 12
//   payload 64 512
//
// `spatial uniform` takes no clause; `bias` (hotspot) and `origin`
// (emergency) are optional and default per WorkloadSpec. `payload MIN MAX`
// sets the uniform payload-size range in bytes (one value = fixed size).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "trafficx/workload.hpp"

namespace citymesh::trafficx {

/// Parse a workload spec. On failure returns nullopt and, when `error` is
/// non-null, a one-line description naming the offending line.
std::optional<WorkloadSpec> parse_workload(std::istream& in,
                                           std::string* error = nullptr);

/// Convenience: parse from a string (tests, inline CLI specs).
std::optional<WorkloadSpec> parse_workload(const std::string& text,
                                           std::string* error = nullptr);

}  // namespace citymesh::trafficx
