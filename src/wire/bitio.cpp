#include "wire/bitio.hpp"

namespace citymesh::wire {

void BitWriter::write_bits(std::uint64_t value, unsigned bits) {
  if (bits > 64) throw std::invalid_argument{"BitWriter::write_bits: bits > 64"};
  for (unsigned i = bits; i-- > 0;) {
    const bool bit = (value >> i) & 1;
    const std::size_t byte_index = bit_count_ / 8;
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    if (bit) bytes_[byte_index] |= static_cast<std::uint8_t>(1u << (7 - bit_count_ % 8));
    ++bit_count_;
  }
}

std::uint64_t BitReader::read_bits(unsigned bits) {
  if (bits > 64) throw DecodeError{"BitReader::read_bits: bits > 64"};
  if (cursor_ + bits > data_.size() * 8) {
    throw DecodeError{"BitReader: read past end of buffer"};
  }
  std::uint64_t value = 0;
  for (unsigned i = 0; i < bits; ++i) {
    const std::size_t byte_index = cursor_ / 8;
    const bool bit = (data_[byte_index] >> (7 - cursor_ % 8)) & 1;
    value = (value << 1) | (bit ? 1u : 0u);
    ++cursor_;
  }
  return value;
}

void write_uvarint(BitWriter& w, std::uint64_t value) {
  // Groups of 4 bits, LSB group first, each prefixed by a continuation bit.
  do {
    const std::uint64_t group = value & 0xF;
    value >>= 4;
    w.write_bit(value != 0);
    w.write_bits(group, 4);
  } while (value != 0);
}

std::uint64_t read_uvarint(BitReader& r) {
  std::uint64_t value = 0;
  unsigned shift = 0;
  bool more = true;
  while (more) {
    if (shift >= 64) throw DecodeError{"read_uvarint: value too long"};
    more = r.read_bit();
    const std::uint64_t group = r.read_bits(4);
    value |= group << shift;
    shift += 4;
  }
  return value;
}

unsigned uvarint_bits(std::uint64_t value) {
  unsigned groups = 1;
  value >>= 4;
  while (value != 0) {
    ++groups;
    value >>= 4;
  }
  return groups * 5;
}

void write_svarint(BitWriter& w, std::int64_t value) {
  write_uvarint(w, zigzag_encode(value));
}

std::int64_t read_svarint(BitReader& r) {
  return zigzag_decode(read_uvarint(r));
}

}  // namespace citymesh::wire
