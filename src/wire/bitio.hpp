// Bit-granular serialization.
//
// The paper reports the compressed source-route header in *bits* (median 175,
// 90th percentile 225), so the codec must be bit-granular rather than
// byte-granular. BitWriter/BitReader pack MSB-first into a byte vector.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

namespace citymesh::wire {

/// Error thrown when a reader runs past the end of its buffer or a decoded
/// value violates the format.
class DecodeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BitWriter {
 public:
  /// Append the low `bits` bits of `value`, most-significant bit first.
  /// Requires 0 <= bits <= 64.
  void write_bits(std::uint64_t value, unsigned bits);

  void write_bit(bool b) { write_bits(b ? 1 : 0, 1); }

  /// Bits written so far.
  std::size_t bit_count() const { return bit_count_; }

  /// Finished buffer; the final partial byte (if any) is zero-padded.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t bit_count_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Read `bits` bits MSB-first. Throws DecodeError past the end.
  std::uint64_t read_bits(unsigned bits);

  bool read_bit() { return read_bits(1) != 0; }

  std::size_t bits_consumed() const { return cursor_; }
  std::size_t bits_remaining() const { return data_.size() * 8 - cursor_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t cursor_ = 0;  // bit offset
};

// ---- Variable-length integer codes -------------------------------------

/// Nibble-chunk varint: the value is emitted in 4-bit groups, least
/// significant group first, each preceded by a continuation bit (1 = more
/// groups follow). Small values — the common case for delta-coded building
/// ids — cost 5 bits; a 32-bit value costs at most 40 bits.
void write_uvarint(BitWriter& w, std::uint64_t value);
std::uint64_t read_uvarint(BitReader& r);

/// Bits write_uvarint would emit for `value` (for header-size accounting).
unsigned uvarint_bits(std::uint64_t value);

/// Zig-zag mapping so small negative deltas stay small.
constexpr std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

void write_svarint(BitWriter& w, std::int64_t value);
std::int64_t read_svarint(BitReader& r);

}  // namespace citymesh::wire
