#include "wire/packet.hpp"

#include <cmath>

namespace citymesh::wire {

namespace {

constexpr unsigned kVersionBits = 3;
constexpr unsigned kFlagBits = 5;
constexpr unsigned kWidthBits = 4;

std::uint8_t width_code(double width_m) {
  if (width_m == 50.0) return 0;  // default gets the short code
  const double code = width_m / 10.0;
  const double rounded = std::round(code);
  if (rounded < 1.0 || rounded > 15.0 || std::abs(code - rounded) > 1e-9) {
    throw std::invalid_argument{
        "PacketHeader: conduit width must be a multiple of 10 in [10, 150] m"};
  }
  return static_cast<std::uint8_t>(rounded);
}

double width_from_code(std::uint8_t code) {
  return code == 0 ? 50.0 : code * 10.0;
}

}  // namespace

EncodedHeader encode_header(const PacketHeader& h) {
  BitWriter w;
  w.write_bits(h.version, kVersionBits);
  w.write_bits(h.flags, kFlagBits);
  w.write_bits(width_code(h.conduit_width_m), kWidthBits);
  w.write_bits(h.message_id, 32);
  w.write_bits(h.postbox_tag, 32);
  write_uvarint(w, h.waypoints.size());
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < h.waypoints.size(); ++i) {
    const auto id = static_cast<std::int64_t>(h.waypoints[i]);
    if (i == 0) {
      write_uvarint(w, static_cast<std::uint64_t>(id));
    } else {
      write_svarint(w, id - prev);
    }
    prev = id;
  }
  if (h.has_flag(PacketFlag::kBroadcast)) {
    write_uvarint(w, h.broadcast_radius_m);
  }
  return {w.bytes(), w.bit_count()};
}

PacketHeader decode_header(std::span<const std::uint8_t> bytes) {
  BitReader r{bytes};
  PacketHeader h;
  h.version = static_cast<std::uint8_t>(r.read_bits(kVersionBits));
  if (h.version != kHeaderVersion) {
    throw DecodeError{"PacketHeader: unsupported version"};
  }
  h.flags = static_cast<std::uint8_t>(r.read_bits(kFlagBits));
  h.conduit_width_m = width_from_code(static_cast<std::uint8_t>(r.read_bits(kWidthBits)));
  h.message_id = static_cast<std::uint32_t>(r.read_bits(32));
  h.postbox_tag = static_cast<std::uint32_t>(r.read_bits(32));
  const std::uint64_t count = read_uvarint(r);
  if (count > 4096) throw DecodeError{"PacketHeader: implausible waypoint count"};
  h.waypoints.reserve(count);
  std::int64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    std::int64_t id;
    if (i == 0) {
      id = static_cast<std::int64_t>(read_uvarint(r));
    } else {
      id = prev + read_svarint(r);
    }
    if (id < 0 || id > UINT32_MAX) throw DecodeError{"PacketHeader: building id out of range"};
    h.waypoints.push_back(static_cast<BuildingId>(id));
    prev = id;
  }
  if (h.has_flag(PacketFlag::kBroadcast)) {
    const std::uint64_t radius = read_uvarint(r);
    if (radius > 100'000) throw DecodeError{"PacketHeader: implausible broadcast radius"};
    h.broadcast_radius_m = static_cast<std::uint32_t>(radius);
  }
  return h;
}

std::size_t header_bits(const PacketHeader& h) {
  std::size_t bits = kVersionBits + kFlagBits + kWidthBits + 32 + 32;
  bits += uvarint_bits(h.waypoints.size());
  std::int64_t prev = 0;
  for (std::size_t i = 0; i < h.waypoints.size(); ++i) {
    const auto id = static_cast<std::int64_t>(h.waypoints[i]);
    bits += i == 0 ? uvarint_bits(static_cast<std::uint64_t>(id))
                   : uvarint_bits(zigzag_encode(id - prev));
    prev = id;
  }
  if (h.has_flag(PacketFlag::kBroadcast)) {
    bits += uvarint_bits(h.broadcast_radius_m);
  }
  return bits;
}

std::uint32_t derive_message_id(std::uint64_t seed, std::uint64_t sequence) {
  // splitmix64 finalizer over (seed, sequence); fold to 32 bits.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (sequence + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  const auto id = static_cast<std::uint32_t>(z ^ (z >> 32));
  return id == 0 ? 1u : id;
}

}  // namespace citymesh::wire
