// CityMesh packet header codec.
//
// The header is everything an AP needs to make its rebroadcast decision
// (§3 step 3): the compressed building route (waypoint building ids), the
// conduit width, and a duplicate-suppression message id. The destination
// postbox is identified by a short tag derived from the recipient's
// self-certifying id; the full 256-bit id travels in the payload and is
// verified by the postbox itself.
//
// Encoding layout (bit-granular, see bitio.hpp):
//   version        3 bits
//   flags          5 bits
//   width_code     4 bits   (conduit width = width_code * 10 m; 0 = 50 m)
//   message_id    32 bits
//   postbox_tag   32 bits
//   waypoint count     uvarint
//   waypoint[0]        uvarint  (absolute building id)
//   waypoint[i>0]      svarint  (delta from previous id)
//
// Building ids are assigned in spatial generation order, so deltas between
// consecutive waypoints of a geographically coherent route are small and the
// zig-zag nibble varint keeps the route cheap — this is where the paper's
// ~175-bit median header comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "wire/bitio.hpp"

namespace citymesh::wire {

using BuildingId = std::uint32_t;

/// Header flag bits.
enum class PacketFlag : std::uint8_t {
  kUrgent = 1u << 0,          ///< postbox should push immediately
  kAck = 1u << 1,             ///< delivery acknowledgment traveling back
  kLocationUpdate = 1u << 2,  ///< device -> postbox location refresh
  kBroadcast = 1u << 3,       ///< geo-broadcast around the last waypoint
  kAckRequest = 1u << 4,      ///< destination should send an ack back
};

constexpr std::uint8_t kHeaderVersion = 1;

struct PacketHeader {
  std::uint8_t version = kHeaderVersion;
  std::uint8_t flags = 0;
  /// Conduit width W in meters. Must be a positive multiple of 10 up to 150.
  double conduit_width_m = 50.0;
  /// Random id for duplicate suppression at rebroadcasting APs.
  std::uint32_t message_id = 0;
  /// Truncated self-certifying id of the destination postbox.
  std::uint32_t postbox_tag = 0;
  /// Compressed route: waypoint building ids, source first.
  std::vector<BuildingId> waypoints;
  /// Geo-broadcast radius around the last waypoint's centroid, whole meters.
  /// Encoded (as a uvarint after the waypoints) only when kBroadcast is set.
  std::uint32_t broadcast_radius_m = 0;

  bool has_flag(PacketFlag f) const {
    return (flags & static_cast<std::uint8_t>(f)) != 0;
  }
  void set_flag(PacketFlag f) { flags |= static_cast<std::uint8_t>(f); }

  bool operator==(const PacketHeader&) const = default;
};

/// Serialize the header; returns the byte buffer and exact bit length.
struct EncodedHeader {
  std::vector<std::uint8_t> bytes;
  std::size_t bit_count = 0;
};

EncodedHeader encode_header(const PacketHeader& h);

/// Parse a header. Throws DecodeError on truncation, bad version, or an
/// out-of-range width code.
PacketHeader decode_header(std::span<const std::uint8_t> bytes);

/// Exact encoded size in bits without materializing the buffer.
std::size_t header_bits(const PacketHeader& h);

/// Deterministic duplicate-suppression message id for the `sequence`-th
/// message of a run seeded with `seed`. A splitmix64-style mix keeps ids
/// well spread (collision-resistant within a run) while making them stable
/// across runs and independent of unrelated RNG draws — which is what lets
/// a recorded trace (src/obsx) name packets reproducibly. Never returns 0
/// (0 means "unset" throughout).
std::uint32_t derive_message_id(std::uint64_t seed, std::uint64_t sequence);

}  // namespace citymesh::wire
