// Shortest-path algorithms over Graph.
//
// Dijkstra drives the paper's source-route planning (cubed-distance weights
// over the building graph). Bellman-Ford exists solely as a test oracle for
// the property suite. BFS measures the *minimum hop count* over the AP graph,
// which is the denominator of the paper's transmission-overhead metric.
#pragma once

#include <limits>
#include <optional>
#include <queue>
#include <vector>

#include "graphx/graph.hpp"

namespace citymesh::graphx {

constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path run.
struct ShortestPaths {
  std::vector<double> distance;    ///< per-vertex distance; infinity when unreachable
  std::vector<VertexId> parent;    ///< per-vertex predecessor; self for source/unreachable

  bool reachable(VertexId v) const { return distance[v] < kInfiniteDistance; }

  /// Vertices from source to `target` inclusive; empty when unreachable.
  std::vector<VertexId> path_to(VertexId target) const;
};

/// Dijkstra from `source`. All edge weights must be non-negative.
/// If `target` is set, the search stops once the target is settled.
ShortestPaths dijkstra(const Graph& g, VertexId source,
                       std::optional<VertexId> target = std::nullopt);

/// Indexed 4-ary min-heap over vertex ids, ordered by (distance, vertex) —
/// the exact comparator the legacy lazy-deletion priority queue realized, so
/// Dijkstra's settle order (and therefore every parent assignment) is
/// bit-identical while the heap holds at most one entry per vertex instead
/// of one per relaxation. 4-ary: shallower than binary and the four children
/// share a cache line of vertex ids.
class IndexedMinHeap {
 public:
  /// Bind to a distance array (not owned; values may change between calls —
  /// decrease-key re-sifts on update()). Clears the heap.
  void reset(std::size_t vertex_count, const double* distance) {
    dist_ = distance;
    heap_.clear();
    pos_.assign(vertex_count, 0);
  }

  bool empty() const { return heap_.empty(); }

  /// Insert `v`, or restore heap order after dist_[v] decreased.
  void update(VertexId v) {
    if (pos_[v] == 0) {
      heap_.push_back(v);
      pos_[v] = static_cast<std::uint32_t>(heap_.size());
    }
    sift_up(pos_[v] - 1);
  }

  /// Remove and return the minimum (distance, vertex).
  VertexId pop() {
    const VertexId top = heap_.front();
    pos_[top] = 0;
    const VertexId last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_.front() = last;
      pos_[last] = 1;
      sift_down(0);
    }
    return top;
  }

 private:
  bool before(VertexId a, VertexId b) const {
    const double da = dist_[a];
    const double db = dist_[b];
    if (da != db) return da < db;
    return a < b;
  }
  void sift_up(std::size_t i) {
    const VertexId v = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!before(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i]] = static_cast<std::uint32_t>(i + 1);
      i = parent;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::uint32_t>(i + 1);
  }
  void sift_down(std::size_t i) {
    const VertexId v = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = 4 * i + 1;
      if (best >= n) break;
      const std::size_t end = std::min(best + 4, n);
      for (std::size_t c = best + 1; c < end; ++c)
        if (before(heap_[c], heap_[best])) best = c;
      if (!before(heap_[best], v)) break;
      heap_[i] = heap_[best];
      pos_[heap_[i]] = static_cast<std::uint32_t>(i + 1);
      i = best;
    }
    heap_[i] = v;
    pos_[v] = static_cast<std::uint32_t>(i + 1);
  }

  const double* dist_ = nullptr;
  std::vector<VertexId> heap_;
  std::vector<std::uint32_t> pos_;  ///< index + 1 into heap_; 0 = absent
};

/// Resumable single-source Dijkstra: settles vertices on demand and keeps
/// the frontier alive between queries, so asking for many targets from one
/// source costs one (incrementally grown) run instead of one run per
/// target. The pop/relaxation order is exactly dijkstra()'s — a query
/// settles precisely the prefix a targeted dijkstra(g, source, target)
/// would have settled, so extracted paths and distances are bit-identical
/// to independent targeted runs (route caching relies on this).
/// The graph must outlive the object and must not change under it.
class IncrementalDijkstra {
 public:
  IncrementalDijkstra(const Graph& g, VertexId source);

  VertexId source() const { return source_; }

  /// Grow the settled region until `target` is settled (or the frontier is
  /// exhausted, leaving it unreachable). Returns the tree so far; only
  /// settled vertices have final distances, which is all path_to(target)
  /// needs.
  const ShortestPaths& ensure(VertexId target);

  /// The tree as grown so far, without settling anything new.
  const ShortestPaths& tree() const { return sp_; }

 private:
  const Graph* g_;
  VertexId source_;
  ShortestPaths sp_;
  std::vector<char> settled_;
  IndexedMinHeap heap_;  ///< bound to sp_.distance (stable after ctor)
};

/// Bellman-Ford oracle (O(VE)); throws std::invalid_argument on negative cycles.
ShortestPaths bellman_ford(const Graph& g, VertexId source);

/// Unweighted BFS; distance counts hops.
ShortestPaths bfs(const Graph& g, VertexId source,
                  std::optional<VertexId> target = std::nullopt);

/// Connected components; returns per-vertex component id (0-based, dense)
/// and the number of components.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;

  /// Size of each component.
  std::vector<std::size_t> sizes() const;
  /// Id of the largest component.
  std::uint32_t largest() const;
};

Components connected_components(const Graph& g);

/// Disjoint-set union with path compression and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::uint32_t find(std::uint32_t x);
  /// Returns true when the two sets were merged (false if already joined).
  bool unite(std::uint32_t a, std::uint32_t b);
  bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }
  std::size_t set_count() const { return set_count_; }
  std::size_t size_of(std::uint32_t x);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t set_count_;
};

}  // namespace citymesh::graphx
