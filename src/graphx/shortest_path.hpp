// Shortest-path algorithms over Graph.
//
// Dijkstra drives the paper's source-route planning (cubed-distance weights
// over the building graph). Bellman-Ford exists solely as a test oracle for
// the property suite. BFS measures the *minimum hop count* over the AP graph,
// which is the denominator of the paper's transmission-overhead metric.
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "graphx/graph.hpp"

namespace citymesh::graphx {

constexpr double kInfiniteDistance = std::numeric_limits<double>::infinity();

/// Result of a single-source shortest-path run.
struct ShortestPaths {
  std::vector<double> distance;    ///< per-vertex distance; infinity when unreachable
  std::vector<VertexId> parent;    ///< per-vertex predecessor; self for source/unreachable

  bool reachable(VertexId v) const { return distance[v] < kInfiniteDistance; }

  /// Vertices from source to `target` inclusive; empty when unreachable.
  std::vector<VertexId> path_to(VertexId target) const;
};

/// Dijkstra from `source`. All edge weights must be non-negative.
/// If `target` is set, the search stops once the target is settled.
ShortestPaths dijkstra(const Graph& g, VertexId source,
                       std::optional<VertexId> target = std::nullopt);

/// Bellman-Ford oracle (O(VE)); throws std::invalid_argument on negative cycles.
ShortestPaths bellman_ford(const Graph& g, VertexId source);

/// Unweighted BFS; distance counts hops.
ShortestPaths bfs(const Graph& g, VertexId source,
                  std::optional<VertexId> target = std::nullopt);

/// Connected components; returns per-vertex component id (0-based, dense)
/// and the number of components.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;

  /// Size of each component.
  std::vector<std::size_t> sizes() const;
  /// Id of the largest component.
  std::uint32_t largest() const;
};

Components connected_components(const Graph& g);

/// Disjoint-set union with path compression and union by size.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);
  std::uint32_t find(std::uint32_t x);
  /// Returns true when the two sets were merged (false if already joined).
  bool unite(std::uint32_t a, std::uint32_t b);
  bool connected(std::uint32_t a, std::uint32_t b) { return find(a) == find(b); }
  std::size_t set_count() const { return set_count_; }
  std::size_t size_of(std::uint32_t x);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t set_count_;
};

}  // namespace citymesh::graphx
