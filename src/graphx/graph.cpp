#include "graphx/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace citymesh::graphx {

void GraphBuilder::add_edge(VertexId a, VertexId b, double weight) {
  if (a >= vertex_count_ || b >= vertex_count_) {
    throw std::out_of_range{"GraphBuilder::add_edge: vertex id out of range"};
  }
  if (a == b) return;  // ignore self-loops; they never help a route
  edges_.push_back({a, b, weight});
}

Graph GraphBuilder::build() const {
  Graph g;
  g.offsets_.assign(vertex_count_ + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.a + 1];
    ++g.offsets_[e.b + 1];
  }
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    g.adjacency_[cursor[e.a]++] = {e.b, e.weight};
    g.adjacency_[cursor[e.b]++] = {e.a, e.weight};
  }
  return g;
}

bool Graph::has_edge(VertexId a, VertexId b) const {
  for (const Edge& e : neighbors(a)) {
    if (e.to == b) return true;
  }
  return false;
}

}  // namespace citymesh::graphx
