#include "graphx/graph.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace citymesh::graphx {

void GraphBuilder::add_edge(VertexId a, VertexId b, double weight) {
  if (a >= vertex_count_ || b >= vertex_count_) {
    throw std::out_of_range{"GraphBuilder::add_edge: vertex id out of range"};
  }
  if (a == b) return;  // ignore self-loops; they never help a route
  edges_.push_back({a, b, weight});
}

Graph GraphBuilder::build() const {
  if (edges_.size() * 2 > std::numeric_limits<EdgeOffset>::max()) {
    throw std::length_error{"GraphBuilder::build: directed edge count exceeds 32-bit CSR offsets"};
  }
  Graph g;
  g.offsets_.assign(vertex_count_ + 1, 0);
  for (const auto& e : edges_) {
    ++g.offsets_[e.a + 1];
    ++g.offsets_[e.b + 1];
  }
  for (std::size_t v = 0; v < vertex_count_; ++v) {
    g.offsets_[v + 1] += g.offsets_[v];
  }
  // Stable counting sort into the split arrays: each vertex's slice lists
  // neighbors in edge-insertion order, which downstream layers rely on
  // (per-directed-edge tables, tile-filtered walks).
  g.targets_.resize(edges_.size() * 2);
  g.weights_.resize(edges_.size() * 2);
  std::vector<EdgeOffset> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& e : edges_) {
    const EdgeOffset at_a = cursor[e.a]++;
    g.targets_[at_a] = e.b;
    g.weights_[at_a] = e.weight;
    const EdgeOffset at_b = cursor[e.b]++;
    g.targets_[at_b] = e.a;
    g.weights_[at_b] = e.weight;
  }
  return g;
}

bool Graph::has_edge(VertexId a, VertexId b) const {
  for (const VertexId to : neighbors(a).ids()) {
    if (to == b) return true;
  }
  return false;
}

}  // namespace citymesh::graphx
