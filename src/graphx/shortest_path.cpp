#include "graphx/shortest_path.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace citymesh::graphx {

std::vector<VertexId> ShortestPaths::path_to(VertexId target) const {
  if (!reachable(target)) return {};
  std::vector<VertexId> path;
  VertexId v = target;
  path.push_back(v);
  while (parent[v] != v) {
    v = parent[v];
    path.push_back(v);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

ShortestPaths dijkstra(const Graph& g, VertexId source, std::optional<VertexId> target) {
  const std::size_t n = g.vertex_count();
  ShortestPaths sp;
  sp.distance.assign(n, kInfiniteDistance);
  sp.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) sp.parent[v] = v;

  IndexedMinHeap heap;
  heap.reset(n, sp.distance.data());
  sp.distance[source] = 0.0;
  heap.update(source);

  while (!heap.empty()) {
    const VertexId v = heap.pop();  // settled: distance is final
    if (target && v == *target) break;
    const double d = sp.distance[v];
    for (const Edge& e : g.neighbors(v)) {
      if (e.weight < 0.0) throw std::invalid_argument{"dijkstra: negative edge weight"};
      const double nd = d + e.weight;
      if (nd < sp.distance[e.to]) {
        sp.distance[e.to] = nd;
        sp.parent[e.to] = v;
        heap.update(e.to);
      }
    }
  }
  return sp;
}

IncrementalDijkstra::IncrementalDijkstra(const Graph& g, VertexId source)
    : g_(&g), source_(source) {
  const std::size_t n = g.vertex_count();
  sp_.distance.assign(n, kInfiniteDistance);
  sp_.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) sp_.parent[v] = v;
  settled_.assign(n, 0);
  sp_.distance[source] = 0.0;
  heap_.reset(n, sp_.distance.data());
  heap_.update(source);
}

const ShortestPaths& IncrementalDijkstra::ensure(VertexId target) {
  if (target < settled_.size() && settled_[target] != 0) return sp_;
  while (!heap_.empty()) {
    const VertexId v = heap_.pop();  // settled: distance is final
    settled_[v] = 1;
    const double d = sp_.distance[v];
    // Unlike a targeted dijkstra() we relax the target's own edges before
    // breaking: the frontier must stay complete for the next ensure().
    for (const Edge& e : g_->neighbors(v)) {
      if (e.weight < 0.0) throw std::invalid_argument{"dijkstra: negative edge weight"};
      const double nd = d + e.weight;
      if (nd < sp_.distance[e.to]) {
        sp_.distance[e.to] = nd;
        sp_.parent[e.to] = v;
        heap_.update(e.to);
      }
    }
    if (v == target) break;
  }
  return sp_;
}

ShortestPaths bellman_ford(const Graph& g, VertexId source) {
  const std::size_t n = g.vertex_count();
  ShortestPaths sp;
  sp.distance.assign(n, kInfiniteDistance);
  sp.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) sp.parent[v] = v;
  sp.distance[source] = 0.0;

  for (std::size_t round = 0; round + 1 < std::max<std::size_t>(n, 1); ++round) {
    bool changed = false;
    for (VertexId v = 0; v < n; ++v) {
      if (sp.distance[v] == kInfiniteDistance) continue;
      for (const Edge& e : g.neighbors(v)) {
        const double nd = sp.distance[v] + e.weight;
        if (nd < sp.distance[e.to]) {
          sp.distance[e.to] = nd;
          sp.parent[e.to] = v;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  // Negative-cycle check.
  for (VertexId v = 0; v < n; ++v) {
    if (sp.distance[v] == kInfiniteDistance) continue;
    for (const Edge& e : g.neighbors(v)) {
      if (sp.distance[v] + e.weight < sp.distance[e.to]) {
        throw std::invalid_argument{"bellman_ford: negative cycle"};
      }
    }
  }
  return sp;
}

ShortestPaths bfs(const Graph& g, VertexId source, std::optional<VertexId> target) {
  const std::size_t n = g.vertex_count();
  ShortestPaths sp;
  sp.distance.assign(n, kInfiniteDistance);
  sp.parent.resize(n);
  for (VertexId v = 0; v < n; ++v) sp.parent[v] = v;

  std::queue<VertexId> q;
  sp.distance[source] = 0.0;
  q.push(source);
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    if (target && v == *target) break;
    for (const Edge& e : g.neighbors(v)) {
      if (sp.distance[e.to] == kInfiniteDistance) {
        sp.distance[e.to] = sp.distance[v] + 1.0;
        sp.parent[e.to] = v;
        q.push(e.to);
      }
    }
  }
  return sp;
}

std::vector<std::size_t> Components::sizes() const {
  std::vector<std::size_t> s(count, 0);
  for (const std::uint32_t c : component_of) ++s[c];
  return s;
}

std::uint32_t Components::largest() const {
  const auto s = sizes();
  return static_cast<std::uint32_t>(
      std::max_element(s.begin(), s.end()) - s.begin());
}

Components connected_components(const Graph& g) {
  const std::size_t n = g.vertex_count();
  Components comps;
  comps.component_of.assign(n, UINT32_MAX);
  std::vector<VertexId> stack;
  for (VertexId start = 0; start < n; ++start) {
    if (comps.component_of[start] != UINT32_MAX) continue;
    const std::uint32_t id = comps.count++;
    stack.push_back(start);
    comps.component_of[start] = id;
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      for (const Edge& e : g.neighbors(v)) {
        if (comps.component_of[e.to] == UINT32_MAX) {
          comps.component_of[e.to] = id;
          stack.push_back(e.to);
        }
      }
    }
  }
  return comps;
}

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), set_count_(n) {
  for (std::uint32_t i = 0; i < n; ++i) parent_[i] = i;
}

std::uint32_t UnionFind::find(std::uint32_t x) {
  std::uint32_t root = x;
  while (parent_[root] != root) root = parent_[root];
  while (parent_[x] != root) {
    const std::uint32_t next = parent_[x];
    parent_[x] = root;
    x = next;
  }
  return root;
}

bool UnionFind::unite(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = find(a);
  std::uint32_t rb = find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --set_count_;
  return true;
}

std::size_t UnionFind::size_of(std::uint32_t x) { return size_[find(x)]; }

}  // namespace citymesh::graphx
