// A compact undirected weighted graph in compressed-sparse-row form.
//
// Both of CityMesh's graphs are instances of this type: the *AP graph*
// (vertices = access points, edges = pairs within transmission range) and
// the *building graph* (vertices = buildings, edges = predicted inter-
// building connectivity, weight = cubed centroid distance).
//
// Memory layout (metro-memory refactor): the adjacency is split into two
// packed parallel arrays — 4-byte neighbor ids and 8-byte weights — behind
// 4-byte offsets, instead of one array of padded 16-byte {id, weight}
// structs. A hot loop that only needs the neighbor ids (the medium's
// per-transmission fan-out) walks 4 bytes per edge; weight-consuming loops
// (Dijkstra relaxation) read the second array in the same stride.
// `neighbors()` returns a lightweight view whose iteration still yields
// `Edge` values, so call sites are unchanged. The graph is immutable after
// GraphBuilder::build and is built once per compiled city; every consumer
// (medium shards, relayx link tables, tile plans) indexes this one copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace citymesh::graphx {

using VertexId = std::uint32_t;

/// Offset into the packed adjacency arrays. 32 bits bounds the graph at
/// ~4.3e9 directed edges — three orders of magnitude above the metro
/// ladder's largest rung — and halves the offset table against size_t.
using EdgeOffset = std::uint32_t;

/// One outgoing edge in the CSR adjacency (materialized on read; the stored
/// form is the split target/weight arrays).
struct Edge {
  VertexId to;
  double weight;
};

class Graph;

/// Incremental builder; add edges in any order, then freeze into a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t vertex_count) : vertex_count_(vertex_count) {}

  /// Add an undirected edge (stored once here, twice in the CSR).
  void add_edge(VertexId a, VertexId b, double weight = 1.0);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edges_.size(); }

  Graph build() const;

 private:
  struct RawEdge {
    VertexId a;
    VertexId b;
    double weight;
  };
  std::size_t vertex_count_;
  std::vector<RawEdge> edges_;
};

class Graph {
 public:
  /// View over one vertex's CSR slice. Iteration and indexing yield `Edge`
  /// values assembled from the split arrays; `ids()` exposes the contiguous
  /// neighbor-id run directly for loops that never touch weights.
  class NeighborRange {
   public:
    class iterator {
     public:
      using value_type = Edge;
      using difference_type = std::ptrdiff_t;

      iterator() = default;
      iterator(const VertexId* to, const double* weight) : to_(to), weight_(weight) {}
      Edge operator*() const { return {*to_, *weight_}; }
      iterator& operator++() {
        ++to_;
        ++weight_;
        return *this;
      }
      iterator operator++(int) {
        iterator tmp = *this;
        ++*this;
        return tmp;
      }
      friend bool operator==(const iterator& a, const iterator& b) {
        return a.to_ == b.to_;
      }
      friend bool operator!=(const iterator& a, const iterator& b) {
        return a.to_ != b.to_;
      }

     private:
      const VertexId* to_ = nullptr;
      const double* weight_ = nullptr;
    };

    NeighborRange(const VertexId* to, const double* weight, std::size_t count)
        : to_(to), weight_(weight), count_(count) {}

    iterator begin() const { return {to_, weight_}; }
    iterator end() const { return {to_ + count_, weight_ + count_}; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    Edge operator[](std::size_t i) const { return {to_[i], weight_[i]}; }
    /// The neighbor ids alone, contiguous in memory.
    std::span<const VertexId> ids() const { return {to_, count_}; }
    std::span<const double> weights() const { return {weight_, count_}; }

   private:
    const VertexId* to_;
    const double* weight_;
    std::size_t count_;
  };

  Graph() = default;

  std::size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  std::size_t edge_count() const { return targets_.size() / 2; }
  /// Number of directed adjacency entries (2x edge_count) — the size of the
  /// packed edge arrays, and of any external per-directed-edge table aligned
  /// with them via edge_offset().
  std::size_t directed_edge_count() const { return targets_.size(); }

  /// Neighbors of vertex v with weights.
  NeighborRange neighbors(VertexId v) const {
    const EdgeOffset begin = offsets_[v];
    return {targets_.data() + begin, weights_.data() + begin,
            static_cast<std::size_t>(offsets_[v + 1] - begin)};
  }

  /// Start of vertex v's slice in the packed edge arrays. Valid for
  /// v == vertex_count() too (the one-past-the-end offset), so external
  /// per-directed-edge state (relayx ETX rows) can reuse this indexing
  /// instead of rebuilding its own offset table.
  EdgeOffset edge_offset(VertexId v) const { return offsets_[v]; }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  bool has_edge(VertexId a, VertexId b) const;

 private:
  friend class GraphBuilder;
  std::vector<EdgeOffset> offsets_;   // vertex_count + 1 entries
  std::vector<VertexId> targets_;     // packed neighbor ids
  std::vector<double> weights_;       // packed weights, parallel to targets_
};

}  // namespace citymesh::graphx
