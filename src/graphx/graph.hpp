// A compact undirected weighted graph in compressed-sparse-row form.
//
// Both of CityMesh's graphs are instances of this type: the *AP graph*
// (vertices = access points, edges = pairs within transmission range) and
// the *building graph* (vertices = buildings, edges = predicted inter-
// building connectivity, weight = cubed centroid distance).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace citymesh::graphx {

using VertexId = std::uint32_t;

/// One outgoing edge in the CSR adjacency.
struct Edge {
  VertexId to;
  double weight;
};

class Graph;

/// Incremental builder; add edges in any order, then freeze into a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t vertex_count) : vertex_count_(vertex_count) {}

  /// Add an undirected edge (stored once here, twice in the CSR).
  void add_edge(VertexId a, VertexId b, double weight = 1.0);

  std::size_t vertex_count() const { return vertex_count_; }
  std::size_t edge_count() const { return edges_.size(); }

  Graph build() const;

 private:
  struct RawEdge {
    VertexId a;
    VertexId b;
    double weight;
  };
  std::size_t vertex_count_;
  std::vector<RawEdge> edges_;
};

class Graph {
 public:
  Graph() = default;

  std::size_t vertex_count() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  /// Number of undirected edges.
  std::size_t edge_count() const { return adjacency_.size() / 2; }

  /// Neighbors of vertex v with weights.
  std::span<const Edge> neighbors(VertexId v) const {
    return {adjacency_.data() + offsets_[v], adjacency_.data() + offsets_[v + 1]};
  }

  std::size_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  bool has_edge(VertexId a, VertexId b) const;

 private:
  friend class GraphBuilder;
  std::vector<std::size_t> offsets_;  // vertex_count + 1 entries
  std::vector<Edge> adjacency_;
};

}  // namespace citymesh::graphx
