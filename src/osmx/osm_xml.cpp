#include "osmx/osm_xml.hpp"

#include <cctype>
#include <charconv>
#include <istream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "geo/projection.hpp"

namespace citymesh::osmx {

namespace {

struct XmlElement {
  std::string name;
  std::unordered_map<std::string, std::string> attrs;
  bool self_closing = false;
  bool closing = false;  // </name>
};

// Scans a document for elements; skips text, comments, and declarations.
class ElementScanner {
 public:
  explicit ElementScanner(std::string_view doc) : doc_(doc) {}

  /// Next element, or nullopt at end of document.
  std::optional<XmlElement> next() {
    while (true) {
      const std::size_t open = doc_.find('<', pos_);
      if (open == std::string_view::npos) return std::nullopt;
      // Comments and processing instructions.
      if (doc_.compare(open, 4, "<!--") == 0) {
        const std::size_t end = doc_.find("-->", open);
        if (end == std::string_view::npos) throw OsmParseError{"unterminated comment"};
        pos_ = end + 3;
        continue;
      }
      if (open + 1 < doc_.size() && (doc_[open + 1] == '?' || doc_[open + 1] == '!')) {
        const std::size_t end = doc_.find('>', open);
        if (end == std::string_view::npos) throw OsmParseError{"unterminated declaration"};
        pos_ = end + 1;
        continue;
      }
      const std::size_t close = doc_.find('>', open);
      if (close == std::string_view::npos) throw OsmParseError{"unterminated element"};
      pos_ = close + 1;
      return parse_element(doc_.substr(open + 1, close - open - 1));
    }
  }

 private:
  static XmlElement parse_element(std::string_view body) {
    XmlElement e;
    if (!body.empty() && body.front() == '/') {
      e.closing = true;
      body.remove_prefix(1);
    }
    if (!body.empty() && body.back() == '/') {
      e.self_closing = true;
      body.remove_suffix(1);
    }
    std::size_t i = 0;
    while (i < body.size() && !std::isspace(static_cast<unsigned char>(body[i]))) ++i;
    e.name = std::string{body.substr(0, i)};
    // Attributes: key="value" pairs.
    while (i < body.size()) {
      while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
      if (i >= body.size()) break;
      const std::size_t key_start = i;
      while (i < body.size() && body[i] != '=' &&
             !std::isspace(static_cast<unsigned char>(body[i]))) {
        ++i;
      }
      const std::string key{body.substr(key_start, i - key_start)};
      while (i < body.size() && (std::isspace(static_cast<unsigned char>(body[i])) || body[i] == '=')) ++i;
      if (i >= body.size() || (body[i] != '"' && body[i] != '\'')) {
        throw OsmParseError("attribute value must be quoted: " + key);
      }
      const char quote = body[i++];
      const std::size_t val_start = i;
      while (i < body.size() && body[i] != quote) ++i;
      if (i >= body.size()) throw OsmParseError("unterminated attribute value: " + key);
      e.attrs[key] = std::string{body.substr(val_start, i - val_start)};
      ++i;  // skip closing quote
    }
    return e;
  }

  std::string_view doc_;
  std::size_t pos_ = 0;
};

double parse_double(const std::string& s, const char* what) {
  double value = 0.0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw OsmParseError(std::string{"bad numeric attribute: "} + what);
  }
  return value;
}

std::int64_t parse_int(const std::string& s, const char* what) {
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw OsmParseError(std::string{"bad integer attribute: "} + what);
  }
  return value;
}

const std::string& require_attr(const XmlElement& e, const std::string& key) {
  const auto it = e.attrs.find(key);
  if (it == e.attrs.end()) {
    throw OsmParseError("element <" + e.name + "> missing attribute " + key);
  }
  return it->second;
}

}  // namespace

City load_osm_xml_string(std::string_view xml, const std::string& name) {
  std::unordered_map<std::int64_t, geo::LatLon> nodes;
  struct Way {
    std::vector<std::int64_t> refs;
    bool is_building = false;
  };
  std::vector<Way> ways;

  ElementScanner scanner{xml};
  std::optional<Way> current_way;
  while (auto e = scanner.next()) {
    if (e->closing) {
      if (e->name == "way" && current_way) {
        ways.push_back(std::move(*current_way));
        current_way.reset();
      }
      continue;
    }
    if (e->name == "node") {
      const std::int64_t id = parse_int(require_attr(*e, "id"), "node id");
      nodes[id] = {parse_double(require_attr(*e, "lat"), "lat"),
                   parse_double(require_attr(*e, "lon"), "lon")};
    } else if (e->name == "way") {
      current_way = Way{};
      if (e->self_closing) current_way.reset();  // empty way, ignore
    } else if (e->name == "nd" && current_way) {
      current_way->refs.push_back(parse_int(require_attr(*e, "ref"), "nd ref"));
    } else if (e->name == "tag" && current_way) {
      const auto k = e->attrs.find("k");
      if (k != e->attrs.end() && k->second == "building") {
        current_way->is_building = true;
      }
    }
  }

  // Project around the centroid of all referenced nodes.
  double lat_sum = 0.0;
  double lon_sum = 0.0;
  std::size_t n = 0;
  for (const auto& [id, ll] : nodes) {
    lat_sum += ll.lat;
    lon_sum += ll.lon;
    ++n;
  }
  const geo::Projection proj{n > 0 ? geo::LatLon{lat_sum / n, lon_sum / n}
                                   : geo::LatLon{0, 0}};

  std::vector<geo::Point> all_points;
  std::vector<geo::Polygon> footprints;
  for (const auto& way : ways) {
    if (!way.is_building) continue;
    // A closed ring repeats its first node last.
    if (way.refs.size() < 4 || way.refs.front() != way.refs.back()) continue;
    std::vector<geo::Point> ring;
    ring.reserve(way.refs.size() - 1);
    bool ok = true;
    for (std::size_t i = 0; i + 1 < way.refs.size(); ++i) {
      const auto it = nodes.find(way.refs[i]);
      if (it == nodes.end()) {
        ok = false;  // dangling ref: extract was clipped; skip the way
        break;
      }
      ring.push_back(proj.to_local(it->second));
    }
    if (!ok || ring.size() < 3) continue;
    footprints.emplace_back(std::move(ring));
    for (const auto& p : footprints.back().vertices()) all_points.push_back(p);
  }

  const auto extent = geo::Rect::bounding(all_points);
  City city{name, extent.value_or(geo::Rect{})};
  for (auto& fp : footprints) city.add_building(std::move(fp));
  return city;
}

City load_osm_xml(std::istream& input, const std::string& name) {
  std::ostringstream buffer;
  buffer << input.rdbuf();
  return load_osm_xml_string(buffer.str(), name);
}

}  // namespace citymesh::osmx
