// Loader for the OSM XML subset CityMesh needs.
//
// The paper compiles building footprint data from OpenStreetMap (§4). This
// reader understands exactly the elements that matter — <node id lat lon>,
// <way id> with <nd ref=…/> members and <tag k="building" …/> — and turns
// closed building ways into City footprints projected into the local frame.
// It is deliberately not a general XML parser (P.11): OSM extracts are
// machine-generated and regular.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "osmx/building.hpp"

namespace citymesh::osmx {

/// Parse failure (malformed element, missing attribute, dangling nd ref).
class OsmParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse an OSM XML document. Ways tagged `building=*` that form closed
/// rings of at least 3 distinct nodes become buildings; everything else is
/// ignored. `name` labels the resulting City.
City load_osm_xml(std::istream& input, const std::string& name = "osm");

/// Convenience overload over an in-memory document.
City load_osm_xml_string(std::string_view xml, const std::string& name = "osm");

}  // namespace citymesh::osmx
