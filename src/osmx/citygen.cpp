#include "osmx/citygen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "geo/rng.hpp"

namespace citymesh::osmx {

namespace {

struct RiverBand {
  double lo = 0.0;
  double hi = 0.0;
  bool vertical = false;
  bool parkland_banks = true;
  std::vector<geo::Rect> bridge_rects;  // building-free dry crossings
};

RiverBand band_of(const RiverSpec& spec, const geo::Rect& extent) {
  RiverBand band;
  band.vertical = spec.vertical;
  band.parkland_banks = spec.parkland_banks;
  const double span = spec.vertical ? extent.width() : extent.height();
  const double center = (spec.vertical ? extent.min.x : extent.min.y) +
                        spec.position_frac * span;
  band.lo = center - spec.width_m / 2.0;
  band.hi = center + spec.width_m / 2.0;
  const double along_span = spec.vertical ? extent.height() : extent.width();
  const double along_min = spec.vertical ? extent.min.y : extent.min.x;
  for (const double frac : spec.bridges) {
    const double along = along_min + frac * along_span;
    if (spec.vertical) {
      band.bridge_rects.push_back(
          {{band.lo, along - spec.bridge_width_m / 2.0},
           {band.hi, along + spec.bridge_width_m / 2.0}});
    } else {
      band.bridge_rects.push_back(
          {{along - spec.bridge_width_m / 2.0, band.lo},
           {along + spec.bridge_width_m / 2.0, band.hi}});
    }
  }
  return band;
}

bool rect_touches_band(const geo::Rect& r, const RiverBand& band) {
  if (band.vertical) return r.min.x < band.hi && r.max.x > band.lo;
  return r.min.y < band.hi && r.max.y > band.lo;
}

geo::Polygon band_polygon(const RiverBand& band, const geo::Rect& extent) {
  if (band.vertical) {
    return geo::Polygon::rectangle({{band.lo, extent.min.y}, {band.hi, extent.max.y}});
  }
  return geo::Polygon::rectangle({{extent.min.x, band.lo}, {extent.max.x, band.hi}});
}

}  // namespace

City generate_city(const CityProfile& profile) {
  if (profile.width_m <= 0 || profile.height_m <= 0) {
    throw std::invalid_argument{"generate_city: non-positive extent"};
  }
  const geo::Rect extent{{0.0, 0.0}, {profile.width_m, profile.height_m}};
  City city{profile.name, extent};
  geo::Rng rng{profile.seed};

  // Water bands first (rendered below buildings, queried during placement).
  std::vector<RiverBand> bands;
  bands.reserve(profile.rivers.size());
  for (const auto& spec : profile.rivers) {
    bands.push_back(band_of(spec, extent));
    city.add_water(band_polygon(bands.back(), extent));
  }

  // Survey regions. Order matters: City::area_at takes the first match.
  const geo::Point center = extent.center();
  const double half_extent = std::min(extent.width(), extent.height()) / 2.0;
  const double core_r = profile.downtown_radius_frac * half_extent;
  if (profile.campus_frac) {
    const geo::Rect& f = *profile.campus_frac;
    city.add_region({"campus", AreaType::kCampus,
                     {{extent.min.x + f.min.x * extent.width(),
                       extent.min.y + f.min.y * extent.height()},
                      {extent.min.x + f.max.x * extent.width(),
                       extent.min.y + f.max.y * extent.height()}}});
  }
  for (const auto& band : bands) {
    constexpr double kRiverMargin = 90.0;  // banks walkable in the survey
    if (band.vertical) {
      city.add_region({"river", AreaType::kRiver,
                       {{band.lo - kRiverMargin, extent.min.y},
                        {band.hi + kRiverMargin, extent.max.y}}});
    } else {
      city.add_region({"river", AreaType::kRiver,
                       {{extent.min.x, band.lo - kRiverMargin},
                        {extent.max.x, band.hi + kRiverMargin}}});
    }
  }
  city.add_region({"downtown", AreaType::kDowntown,
                   {{center.x - core_r, center.y - core_r},
                    {center.x + core_r, center.y + core_r}}});
  city.add_region({"residential", AreaType::kResidential, extent});

  // Blocks, row-major so building ids are spatially coherent.
  const double stride_x = profile.block_w + profile.street_w;
  const double stride_y = profile.block_h + profile.street_w;
  const int cols = std::max(1, static_cast<int>(extent.width() / stride_x));
  const int rows = std::max(1, static_cast<int>(extent.height() / stride_y));

  for (int row = 0; row < rows; ++row) {
    for (int col = 0; col < cols; ++col) {
      const geo::Rect block{
          {extent.min.x + col * stride_x + profile.street_w / 2.0,
           extent.min.y + row * stride_y + profile.street_w / 2.0},
          {extent.min.x + col * stride_x + profile.street_w / 2.0 + profile.block_w,
           extent.min.y + row * stride_y + profile.street_w / 2.0 + profile.block_h}};

      // Blocks fully inside a river band produce nothing; partially wet
      // blocks still generate buildings, which are rejected individually
      // below so the fabric runs right up to the water's edge (narrow urban
      // canals like the Chicago River are crossable by 50 m radios exactly
      // because of this).
      bool submerged = false;
      for (const auto& band : bands) {
        const bool fully_inside =
            band.vertical ? (block.min.x >= band.lo && block.max.x <= band.hi)
                          : (block.min.y >= band.lo && block.max.y <= band.hi);
        if (fully_inside) {
          submerged = true;
          break;
        }
      }
      if (submerged) continue;

      // Riverbank blocks (esplanades, memorial drives) are parkland with
      // elevated probability - this is what keeps the river survey area's
      // AP density characteristically low.
      bool near_river = false;
      for (const auto& band : bands) {
        if (!band.parkland_banks) continue;
        const double lo = band.lo - profile.riverbank_park_margin_m;
        const double hi = band.hi + profile.riverbank_park_margin_m;
        const bool touches = band.vertical ? (block.min.x < hi && block.max.x > lo)
                                           : (block.min.y < hi && block.max.y > lo);
        if (touches) {
          near_river = true;
          break;
        }
      }
      const double park_p =
          near_river ? std::max(profile.park_fraction, profile.riverbank_park_fraction)
                     : profile.park_fraction;
      if (rng.chance(park_p)) {
        city.add_park(geo::Polygon::rectangle(block));
        continue;
      }

      const geo::Point block_center = block.center();
      const bool downtown = geo::distance(block_center, center) <= core_r;
      const double scale = downtown ? profile.downtown_scale : 1.0;
      const double coverage =
          downtown ? profile.downtown_coverage : profile.building_coverage;
      const double bw = profile.mean_building_w * scale;
      const double bd = profile.mean_building_d * scale;

      // Lay buildings on a jittered sub-grid sized to hit target coverage.
      const double cell_w = bw / std::sqrt(coverage);
      const double cell_d = bd / std::sqrt(coverage);
      const int nx = std::max(1, static_cast<int>(block.width() / cell_w));
      const int ny = std::max(1, static_cast<int>(block.height() / cell_d));
      for (int by = 0; by < ny; ++by) {
        for (int bx = 0; bx < nx; ++bx) {
          const double cx =
              block.min.x + (bx + 0.5) * block.width() / nx + rng.uniform(-2.0, 2.0);
          const double cy =
              block.min.y + (by + 0.5) * block.height() / ny + rng.uniform(-2.0, 2.0);
          const double w = bw * rng.uniform(0.75, 1.25);
          const double d = bd * rng.uniform(0.75, 1.25);
          geo::Rect fp{{cx - w / 2.0, cy - d / 2.0}, {cx + w / 2.0, cy + d / 2.0}};
          // Clip to the block so footprints never straddle streets.
          fp.min.x = std::max(fp.min.x, block.min.x);
          fp.min.y = std::max(fp.min.y, block.min.y);
          fp.max.x = std::min(fp.max.x, block.max.x);
          fp.max.y = std::min(fp.max.y, block.max.y);
          if (fp.width() < 4.0 || fp.height() < 4.0) continue;
          // No building may stand in the water.
          bool wet = false;
          for (const auto& band : bands) {
            if (rect_touches_band(fp, band)) {
              wet = true;
              break;
            }
          }
          if (wet) continue;
          const AreaType area = city.area_at({cx, cy});
          city.add_building(geo::Polygon::rectangle(fp), area);
        }
      }
    }
  }
  return city;
}

std::vector<CityProfile> default_profiles() {
  std::vector<CityProfile> out;

  {  // Boston: Charles River along the top, dense core, campus strip.
    CityProfile p;
    p.name = "boston";
    p.width_m = 3200;
    p.height_m = 2800;
    p.rivers.push_back({.position_frac = 0.86, .width_m = 170.0, .vertical = false,
                        .bridges = {0.25, 0.6}});
    p.campus_frac = geo::Rect{{0.05, 0.62}, {0.30, 0.80}};
    p.seed = 11;
    out.push_back(p);
  }
  {  // Cambridge: tighter blocks, large campus share, river at the bottom.
    CityProfile p;
    p.name = "cambridge";
    p.width_m = 2600;
    p.height_m = 2400;
    p.block_w = 100;
    p.block_h = 80;
    p.rivers.push_back({.position_frac = 0.08, .width_m = 150.0, .vertical = false,
                        .bridges = {0.5}});
    p.campus_frac = geo::Rect{{0.30, 0.15}, {0.62, 0.45}};
    p.downtown_radius_frac = 0.22;
    p.seed = 12;
    out.push_back(p);
  }
  {  // Washington D.C.: a wide unbridged river fractures the city (paper §4).
    CityProfile p;
    p.name = "washington_dc";
    p.width_m = 3400;
    p.height_m = 3000;
    p.rivers.push_back({.position_frac = 0.38, .width_m = 320.0, .vertical = true, .bridges = {}});
    p.park_fraction = 0.10;  // the Mall and large federal parks
    p.seed = 13;
    out.push_back(p);
  }
  {  // New York: largest extent, dense tall-block fabric, no interior water.
    CityProfile p;
    p.name = "new_york";
    p.width_m = 3800;
    p.height_m = 3400;
    p.block_w = 80;
    p.block_h = 200;  // Manhattan-style elongated blocks
    p.building_coverage = 0.55;
    p.downtown_coverage = 0.68;
    p.downtown_scale = 2.2;
    p.park_fraction = 0.03;
    p.seed = 14;
    out.push_back(p);
  }
  {  // San Francisco: small blocks, high coverage, one large park band.
    CityProfile p;
    p.name = "san_francisco";
    p.width_m = 2800;
    p.height_m = 2600;
    p.block_w = 90;
    p.block_h = 70;
    p.building_coverage = 0.56;
    p.park_fraction = 0.08;
    p.seed = 15;
    out.push_back(p);
  }
  {  // Chicago: river forks through downtown, narrow and bridged.
    CityProfile p;
    p.name = "chicago";
    p.width_m = 3200;
    p.height_m = 3000;
    p.rivers.push_back({.position_frac = 0.52, .width_m = 45.0, .vertical = true,
                        .bridges = {0.2, 0.45, 0.7}, .parkland_banks = false});
    p.building_coverage = 0.52;
    p.seed = 16;
    out.push_back(p);
  }
  {  // Seattle: water on the western edge, moderate density, hills as parks.
    CityProfile p;
    p.name = "seattle";
    p.width_m = 3000;
    p.height_m = 2800;
    p.rivers.push_back({.position_frac = 0.05, .width_m = 220.0, .vertical = true, .bridges = {}});
    p.park_fraction = 0.09;
    p.seed = 17;
    out.push_back(p);
  }
  {  // Austin: the Colorado River crosses the middle with a couple of bridges.
    CityProfile p;
    p.name = "austin";
    p.width_m = 3000;
    p.height_m = 2600;
    p.rivers.push_back({.position_frac = 0.5, .width_m = 130.0, .vertical = false,
                        .bridges = {0.35, 0.65}});
    p.building_coverage = 0.50;
    p.block_w = 110;
    p.seed = 18;
    out.push_back(p);
  }
  {  // Miami: dense coastal strip with water on the east edge.
    CityProfile p;
    p.name = "miami";
    p.width_m = 2600;
    p.height_m = 3200;
    p.rivers.push_back({.position_frac = 0.94, .width_m = 260.0, .vertical = true, .bridges = {}});
    p.building_coverage = 0.55;
    p.seed = 19;
    out.push_back(p);
  }
  {  // Minneapolis: the Mississippi splits the city; one bridge.
    CityProfile p;
    p.name = "minneapolis";
    p.width_m = 3000;
    p.height_m = 2800;
    p.rivers.push_back({.position_frac = 0.6, .width_m = 180.0, .vertical = true,
                        .bridges = {0.5}});
    p.seed = 20;
    out.push_back(p);
  }
  return out;
}

CityProfile profile_by_name(const std::string& name) {
  for (auto& p : default_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range{"profile_by_name: unknown city " + name};
}

}  // namespace citymesh::osmx
