#include "osmx/building.hpp"

#include <stdexcept>

namespace citymesh::osmx {

std::string_view to_string(AreaType t) {
  switch (t) {
    case AreaType::kDowntown: return "downtown";
    case AreaType::kCampus: return "campus";
    case AreaType::kResidential: return "residential";
    case AreaType::kRiver: return "river";
    case AreaType::kOther: return "other";
  }
  return "unknown";
}

BuildingId City::add_building(geo::Polygon footprint, AreaType area) {
  if (footprint.empty()) {
    throw std::invalid_argument{"City::add_building: footprint needs >= 3 vertices"};
  }
  Building b;
  b.id = static_cast<BuildingId>(buildings_.size());
  b.centroid = footprint.centroid();
  b.footprint = std::move(footprint);
  b.area = area;
  buildings_.push_back(std::move(b));
  return buildings_.back().id;
}

bool City::in_water(geo::Point p) const {
  for (const auto& poly : water_) {
    if (poly.contains(p)) return true;
  }
  return false;
}

AreaType City::area_at(geo::Point p) const {
  for (const auto& region : regions_) {
    if (region.bounds.contains(p)) return region.type;
  }
  return AreaType::kOther;
}

double City::total_building_area() const {
  double total = 0.0;
  for (const auto& b : buildings_) total += b.area_m2();
  return total;
}

}  // namespace citymesh::osmx
