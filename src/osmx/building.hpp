// Building footprints and the City container.
//
// A City is the static geospatial input to CityMesh: building footprints
// (from OSM or the synthetic generator), water and park polygons (the
// connectivity gaps §4 blames for fractured cities), and area-type labels
// used by the measurement-study reproduction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace citymesh::osmx {

using BuildingId = std::uint32_t;

/// Area classification used by the §2 measurement study.
enum class AreaType : std::uint8_t {
  kDowntown,
  kCampus,
  kResidential,
  kRiver,
  kOther,
};

std::string_view to_string(AreaType t);

struct Building {
  BuildingId id = 0;
  geo::Polygon footprint;
  geo::Point centroid;  ///< cached footprint centroid
  AreaType area = AreaType::kOther;

  double area_m2() const { return footprint.area(); }
};

/// A named region of the city (used for surveys and rendering).
struct Region {
  std::string name;
  AreaType type = AreaType::kOther;
  geo::Rect bounds;
};

class City {
 public:
  City() = default;
  City(std::string name, geo::Rect extent) : name_(std::move(name)), extent_(extent) {}

  const std::string& name() const { return name_; }
  const geo::Rect& extent() const { return extent_; }

  const std::vector<Building>& buildings() const { return buildings_; }
  const Building& building(BuildingId id) const { return buildings_.at(id); }
  std::size_t building_count() const { return buildings_.size(); }

  const std::vector<geo::Polygon>& water() const { return water_; }
  const std::vector<geo::Polygon>& parks() const { return parks_; }
  const std::vector<Region>& regions() const { return regions_; }

  /// Adds a building; its id is assigned densely in insertion order so that
  /// spatially-ordered generation yields delta-friendly ids.
  BuildingId add_building(geo::Polygon footprint, AreaType area = AreaType::kOther);

  void add_water(geo::Polygon p) { water_.push_back(std::move(p)); }
  void add_park(geo::Polygon p) { parks_.push_back(std::move(p)); }
  void add_region(Region r) { regions_.push_back(std::move(r)); }

  /// True if `p` lies inside any water polygon.
  bool in_water(geo::Point p) const;

  /// Area type of the first region containing `p` (kOther when none).
  AreaType area_at(geo::Point p) const;

  /// Total footprint area in m^2.
  double total_building_area() const;

 private:
  std::string name_;
  geo::Rect extent_{};
  std::vector<Building> buildings_;
  std::vector<geo::Polygon> water_;
  std::vector<geo::Polygon> parks_;
  std::vector<Region> regions_;
};

}  // namespace citymesh::osmx
