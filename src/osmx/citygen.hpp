// Synthetic city generator.
//
// The paper evaluates CityMesh on OSM building footprints for ~10 US cities.
// This environment has no network access, so we substitute a deterministic
// generator that reproduces the *structural* properties the evaluation
// depends on (see DESIGN.md §2):
//   - a street grid of blocks filled with rectangular building footprints,
//   - a dense downtown core with larger buildings and higher coverage,
//   - park blocks with no buildings,
//   - rivers: axis-aligned water bands that interrupt the building fabric
//     (optionally with bridge gaps), which is what fractures cities like
//     Washington D.C. into islands in the paper's simulations,
//   - labeled survey areas (downtown / campus / residential / river) for the
//     §2 measurement-study reproduction.
//
// Buildings are emitted in row-major block order, so ids are spatially
// coherent and the delta-coded route header stays small.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "osmx/building.hpp"

namespace citymesh::osmx {

/// An axis-aligned water band crossing the full extent.
struct RiverSpec {
  double position_frac = 0.5;  ///< center position as a fraction of the extent
  double width_m = 120.0;
  bool vertical = false;  ///< true: band of constant x; false: constant y
  /// Bridge gaps: building-free but water-free crossings (fractions along
  /// the river where a street crosses). Empty means the river is unbroken.
  std::vector<double> bridges;
  double bridge_width_m = 30.0;
  /// Wide rivers (the Charles, the Potomac) have esplanade parkland on the
  /// banks; narrow urban canals (the Chicago River) are built right up to
  /// the water. Controls whether riverbank_park_fraction applies.
  bool parkland_banks = true;
};

struct CityProfile {
  std::string name = "city";
  double width_m = 3000.0;
  double height_m = 3000.0;

  // Block fabric. Defaults are calibrated against the paper's simulation
  // regime: at 50 m range and 1 AP / 200 m^2, contiguous row-house-style
  // fabric (tight in-block gaps, ~12 m streets) yields a robustly connected
  // AP mesh — the precondition for the paper's high deliverability. Sparser
  // suburban parameters push the mesh toward the percolation threshold and
  // deliverability collapses (see bench/ablation_density).
  double block_w = 100.0;  ///< block width (x), meters
  double block_h = 80.0;   ///< block height (y), meters
  double street_w = 12.0;  ///< street width between blocks

  double mean_building_w = 18.0;  ///< typical footprint extent
  double mean_building_d = 14.0;
  double building_coverage = 0.55;  ///< target covered fraction per block

  double downtown_radius_frac = 0.28;  ///< core radius / half-extent
  double downtown_scale = 1.9;         ///< core building-size multiplier
  double downtown_coverage = 0.65;     ///< core coverage

  double park_fraction = 0.05;  ///< probability a block is a park

  std::vector<RiverSpec> rivers;
  /// Riverbank parkland (esplanades, memorial drives): blocks whose edge is
  /// within this margin of a river band become parks with the probability
  /// below. This is what gives the river survey area its characteristically
  /// low AP density (paper Figure 1a: river median 60 MACs vs downtown 218).
  double riverbank_park_margin_m = 80.0;
  double riverbank_park_fraction = 0.65;

  /// Optional campus region (a rect in extent fractions) mirroring the
  /// paper's "in and around the MIT campus" survey area.
  std::optional<geo::Rect> campus_frac;

  std::uint64_t seed = 1;
};

/// Generate a synthetic city from a profile. Deterministic in the profile.
City generate_city(const CityProfile& profile);

/// The ten city profiles used by the Figure-6 reproduction. Named after the
/// paper's likely survey set; the structural parameters (extent, density,
/// water) are what differentiates them, not the names.
std::vector<CityProfile> default_profiles();

/// Look up one of the default profiles by name; throws std::out_of_range.
CityProfile profile_by_name(const std::string& name);

}  // namespace citymesh::osmx
