// Baseline routing strategies from the paper's related-work section (§5),
// implemented over the same AP graph so the benches can compare their
// transmission and control overhead against CityMesh's conduit flood.
//
//  - flood_route:      unrestricted TTL-bounded flooding (every first-time
//                      receiver rebroadcasts) — the no-map upper bound on
//                      robustness and on overhead.
//  - greedy_geo_route: GPSR-style greedy geographic forwarding; each hop
//                      picks the neighbor closest to the destination and
//                      fails at a local minimum (we deliberately omit
//                      perimeter recovery; §5 notes it degrades with the
//                      imprecise in-building locations CityMesh assumes).
//  - aodv_route:       AODV-style reactive discovery: an RREQ flood, an RREP
//                      along the reverse path, then unicast data. Shows the
//                      per-route control-packet burst the paper argues makes
//                      reactive MANET protocols unscalable (§5).
//
// These are deterministic graph computations rather than event simulations:
// the compared quantities (packet counts, success) are identical either way,
// and determinism keeps the benches fast and reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "geo/point.hpp"
#include "graphx/graph.hpp"

namespace citymesh::routing {

struct RoutingResult {
  bool delivered = false;
  /// Broadcast/unicast transmissions carrying the data packet.
  std::size_t data_transmissions = 0;
  /// Transmissions of protocol control packets (RREQ/RREP for AODV).
  std::size_t control_transmissions = 0;
  /// Hops of the final data path (when delivered by a unicast scheme).
  std::size_t path_hops = 0;
};

/// TTL-bounded flood from `src`; delivered when `dst` is reached within ttl
/// hops. Every node that receives the packet for the first time at depth
/// < ttl rebroadcasts once.
RoutingResult flood_route(const graphx::Graph& g, graphx::VertexId src,
                          graphx::VertexId dst, std::size_t ttl);

/// Greedy geographic forwarding using per-node positions. Fails (delivered =
/// false) when no neighbor is strictly closer to the destination.
RoutingResult greedy_geo_route(const graphx::Graph& g,
                               const std::vector<geo::Point>& positions,
                               graphx::VertexId src, graphx::VertexId dst,
                               std::size_t max_hops = 10'000);

/// AODV-style discovery + unicast. The RREQ floods the source's component
/// until the destination is reached (all nodes at depth <= depth(dst)
/// rebroadcast, matching AODV without expanding-ring optimization); the RREP
/// and data retrace the discovered path.
RoutingResult aodv_route(const graphx::Graph& g, graphx::VertexId src,
                         graphx::VertexId dst);

}  // namespace citymesh::routing
