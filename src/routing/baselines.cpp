#include "routing/baselines.hpp"

#include <limits>
#include <queue>

#include "graphx/shortest_path.hpp"

namespace citymesh::routing {

RoutingResult flood_route(const graphx::Graph& g, graphx::VertexId src,
                          graphx::VertexId dst, std::size_t ttl) {
  RoutingResult result;
  if (src == dst) {
    result.delivered = true;
    return result;
  }
  // BFS layers; a node at depth d rebroadcasts iff d < ttl.
  std::vector<std::size_t> depth(g.vertex_count(),
                                 std::numeric_limits<std::size_t>::max());
  std::queue<graphx::VertexId> q;
  depth[src] = 0;
  q.push(src);
  result.data_transmissions = 1;  // source broadcast
  while (!q.empty()) {
    const graphx::VertexId v = q.front();
    q.pop();
    if (depth[v] >= ttl) continue;  // TTL exhausted; no rebroadcast
    for (const graphx::Edge& e : g.neighbors(v)) {
      if (depth[e.to] != std::numeric_limits<std::size_t>::max()) continue;
      depth[e.to] = depth[v] + 1;
      if (e.to == dst) {
        result.delivered = true;
        result.path_hops = depth[e.to];
      }
      // First-time receivers rebroadcast while TTL remains.
      if (depth[e.to] < ttl) {
        ++result.data_transmissions;
        q.push(e.to);
      }
    }
  }
  return result;
}

RoutingResult greedy_geo_route(const graphx::Graph& g,
                               const std::vector<geo::Point>& positions,
                               graphx::VertexId src, graphx::VertexId dst,
                               std::size_t max_hops) {
  RoutingResult result;
  const geo::Point target = positions.at(dst);
  graphx::VertexId current = src;
  double current_d2 = geo::distance2(positions.at(src), target);
  while (result.path_hops < max_hops) {
    if (current == dst) {
      result.delivered = true;
      return result;
    }
    graphx::VertexId best = current;
    double best_d2 = current_d2;
    for (const graphx::Edge& e : g.neighbors(current)) {
      const double d2 = geo::distance2(positions.at(e.to), target);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = e.to;
      }
    }
    if (best == current) return result;  // local minimum: greedy dead end
    current = best;
    current_d2 = best_d2;
    ++result.path_hops;
    ++result.data_transmissions;
  }
  return result;  // hop budget exhausted
}

RoutingResult aodv_route(const graphx::Graph& g, graphx::VertexId src,
                         graphx::VertexId dst) {
  RoutingResult result;
  if (src == dst) {
    result.delivered = true;
    return result;
  }
  const auto sp = graphx::bfs(g, src);
  if (!sp.reachable(dst)) {
    // RREQ floods the entire source component and finds nothing.
    for (graphx::VertexId v = 0; v < g.vertex_count(); ++v) {
      if (sp.reachable(v)) ++result.control_transmissions;
    }
    return result;
  }
  const auto dst_depth = static_cast<std::size_t>(sp.distance[dst]);
  // RREQ: every node discovered strictly before the destination's depth
  // rebroadcasts the request once (no expanding-ring optimization).
  for (graphx::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (sp.reachable(v) && static_cast<std::size_t>(sp.distance[v]) < dst_depth) {
      ++result.control_transmissions;
    }
  }
  // RREP unicasts back along the reverse path.
  result.control_transmissions += dst_depth;
  // Data unicasts along the discovered route.
  result.delivered = true;
  result.path_hops = dst_depth;
  result.data_transmissions = dst_depth;
  return result;
}

}  // namespace citymesh::routing
