#include "routing/control_overhead.hpp"

#include "graphx/shortest_path.hpp"

namespace citymesh::routing {

namespace {

/// Expected flood cost from a uniformly random node: the size of its
/// connected component (every member rebroadcasts once), averaged over
/// nodes — i.e. sum(size_c^2) / N.
double expected_flood_cost(const graphx::Graph& mesh) {
  const std::size_t n = mesh.vertex_count();
  if (n == 0) return 0.0;
  const auto comps = graphx::connected_components(mesh);
  double sum_sq = 0.0;
  for (const std::size_t size : comps.sizes()) {
    sum_sq += static_cast<double>(size) * static_cast<double>(size);
  }
  return sum_sq / static_cast<double>(n);
}

}  // namespace

ControlLoad proactive_control_load(const graphx::Graph& mesh, const ProactiveParams& p) {
  const auto n = static_cast<double>(mesh.vertex_count());
  ControlLoad load;
  // Each node originates one update per interval and each update is flooded
  // through its component. Summed over origins, one round costs
  // sum_c size_c^2 = n * expected_flood_cost transmissions.
  load.control_tx_per_hour = (3600.0 / p.update_interval_s) * n * expected_flood_cost(mesh);
  load.per_node_state_entries = n;  // a route entry per reachable node
  return load;
}

ControlLoad reactive_control_load(const graphx::Graph& mesh, const ReactiveParams& p) {
  const auto n = static_cast<double>(mesh.vertex_count());
  ControlLoad load;
  const double discoveries_per_hour = n * p.discoveries_per_node_per_hour;
  // RREQ floods the component; the RREP path is small against that and the
  // constant is absorbed into the flood term.
  load.control_tx_per_hour = discoveries_per_hour * expected_flood_cost(mesh);
  // Route cache: active destinations only; assume O(discovery rate) entries.
  load.per_node_state_entries = p.discoveries_per_node_per_hour;
  return load;
}

ControlLoad citymesh_control_load(std::size_t building_count) {
  ControlLoad load;
  load.control_tx_per_hour = 0.0;
  load.per_node_state_entries = static_cast<double>(building_count);
  return load;
}

}  // namespace citymesh::routing
