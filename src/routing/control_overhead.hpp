// Control-plane cost models for the §5 scaling argument.
//
// The paper's case against reusing MANET protocols at city scale is about
// *control* traffic: proactive protocols (DSDV/OLSR/BATMAN) flood topology
// state continuously; reactive protocols (AODV/DSR) flood a route request
// per new destination; CityMesh exchanges no metadata at all. These models
// compute the steady-state control load each family would impose on a given
// realized AP mesh, so the argument can be plotted against network size
// instead of asserted.
//
// Models (standard first-order accounting, parameters exposed):
//   proactive: every node broadcasts a periodic update; link-state updates
//     are flooded network-wide (every node rebroadcasts once per update),
//     so load = N updates/period, each costing N rebroadcasts => O(N^2)
//     transmissions per period network-wide. Per-node table: O(N) entries.
//   reactive: each new route request floods the source's component (O(N)
//     transmissions) + an O(path) reply; load scales with the session rate.
//   citymesh: zero control transmissions; per-node state is the (static)
//     map cache, refreshed out-of-band.
#pragma once

#include <cstddef>

#include "graphx/graph.hpp"

namespace citymesh::routing {

struct ProactiveParams {
  /// Seconds between each node's topology/update broadcast (OLSR TC default
  /// ~5 s; DSDV periodic dumps ~15 s).
  double update_interval_s = 5.0;
};

struct ReactiveParams {
  /// New route discoveries per node per hour (fresh destinations or broken
  /// routes; disaster traffic is bursty, so this is a knob, not a constant).
  double discoveries_per_node_per_hour = 2.0;
};

struct ControlLoad {
  /// Network-wide control transmissions per hour in steady state.
  double control_tx_per_hour = 0.0;
  /// Routing-state entries a single node must maintain.
  double per_node_state_entries = 0.0;
};

/// Proactive (DSDV/OLSR-family) load on the realized mesh: N nodes each
/// originate an update per interval and every connected node rebroadcasts
/// each update once (flooding; MPR-style optimizations shave a constant).
ControlLoad proactive_control_load(const graphx::Graph& mesh, const ProactiveParams& p);

/// Reactive (AODV/DSR-family) load: each discovery floods the requester's
/// connected component and unicasts a reply back.
ControlLoad reactive_control_load(const graphx::Graph& mesh, const ReactiveParams& p);

/// CityMesh: no control packets; state = cached building map entries
/// (buildings, not nodes — supplied by the caller since the mesh graph does
/// not know the city).
ControlLoad citymesh_control_load(std::size_t building_count);

}  // namespace citymesh::routing
