// Compile-once packet hot path (§3 step 3 at scale).
//
// A conduit flood pays the same work at every reception: decode the ~175-bit
// header, look up waypoint centroids, rebuild the ConduitPath rectangles, and
// point-test the AP's building centroid. None of that depends on the
// *receiver* — only on the message and the shared map — so a city-wide flood
// re-derives identical state thousands of times per packet.
//
// CompiledMessage is that per-message state, derived exactly once:
//   - the decoded PacketHeader,
//   - the reconstructed ConduitPath (per-conduit oriented rects + bounds),
//   - the *member-building set*: every building whose centroid lies inside
//     some conduit, found by querying the map's SpatialGrid over each
//     conduit's (slightly inflated) bounding box and refining candidates
//     with the exact ConduitPath::contains test — bit-identical to the
//     old per-reception predicate, computed once,
//   - for geo-broadcasts, the disc-membership set around the last waypoint.
//
// The per-reception rebroadcast predicate then collapses to a duplicate
// check plus one hash-set lookup of the AP's building id: no decode, no
// allocation, no geometry.
//
// MessageCompiler owns the map reference and a by-message-id memo so that
// packets which do not carry a precompiled message (hand-built test packets,
// wire round-trips) still compile once and share thereafter. A memo hit is
// only taken when the decoded header matches the memoized one, so a message-
// id collision degrades to a fresh compile, never to wrong geometry. A
// CompiledMessage is strictly immutable after compile; a
// shared_ptr<const CompiledMessage> travels inside core::MeshPacket through
// sim::BroadcastMedium fan-out, transmit queues, and backoff closures.
//
// Counters (own registry by default; bind_metrics() repoints them):
//   compile.header_decodes      full header decodes (scales with distinct
//                               messages on the network path, not receptions)
//   compile.msg_compiles        CompiledMessages built
//   compile.membership_lookups  hash-set membership tests (per reception)
//   compile.malformed           malformed headers dropped (bad bytes or a
//                               corrupt conduit width)
// They live in their *own* registry — not the network's — so run manifests
// and sweep digests are byte-identical to the pre-compile pipeline.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include <optional>

#include "core/building_graph.hpp"
#include "core/conduit.hpp"
#include "obsx/metrics.hpp"
#include "qfgeo/qfgeo.hpp"
#include "wire/packet.hpp"

namespace citymesh::core {

/// The shared immutable compiled form of one message. Read-only after
/// compile_message(); safe to share across agents, queued transmissions, and
/// (via runx) any number of concurrently simulated receptions.
struct CompiledMessage {
  wire::PacketHeader header;
  /// Reconstructed conduits; empty when the header is malformed or a
  /// waypoint id lies beyond the map.
  ConduitPath path;
  /// Header carries a corrupt conduit width (<= 0): the reception is a
  /// counted malformed drop, exactly like undecodable bytes.
  bool malformed = false;
  /// Every waypoint id resolves in the map. False = stale/foreign map: the
  /// message still delivers by exact building match but nobody rebroadcasts
  /// (the old per-reception predicate's behavior).
  bool waypoints_valid = false;
  /// Buildings whose centroid lies inside some conduit — the rebroadcast set.
  std::unordered_set<BuildingId> members;
  /// Geo-broadcast only: buildings within broadcast_radius_m of the last
  /// waypoint's centroid. Empty for non-broadcast messages.
  std::unordered_set<BuildingId> broadcast_members;

  /// The collapsed per-reception predicate: one hash lookup, no allocation.
  bool conduit_member(BuildingId b) const { return members.contains(b); }
  bool broadcast_member(BuildingId b) const { return broadcast_members.contains(b); }
};

/// Compile one header against a map. Pure: same header + same map => same
/// membership sets (the member set equals brute-force
/// ConduitPath::contains(centroid(b)) over every building b).
CompiledMessage compile_message(const wire::PacketHeader& header,
                                const BuildingGraph& map);

/// QF-Geo variant (src/qfgeo): `members` becomes the bounded forwarding
/// region — buildings whose centroid lies inside the ellipse between the
/// first and last waypoint's centroids — instead of the conduit corridor.
/// No ConduitPath is reconstructed (path stays empty); malformed/waypoint
/// validation and geo-broadcast disc membership are identical to the
/// conduit compile. Pure: equals brute-force Region::contains(centroid(b))
/// over every building b.
CompiledMessage compile_message_qfgeo(const wire::PacketHeader& header,
                                      const BuildingGraph& map,
                                      const qfgeo::RegionConfig& region);

/// Per-network compile service: decodes, compiles, memoizes by message id,
/// and counts. Not thread-safe — one per CityMeshNetwork (runx workers each
/// own their network and therefore their compiler; only the immutable
/// CompiledMessages they produce are shared).
class MessageCompiler {
 public:
  explicit MessageCompiler(const BuildingGraph& map);

  /// Decode + compile + memoize. Throws wire::DecodeError on undecodable
  /// bytes (counted under compile.malformed); a decodable header with a
  /// corrupt width compiles into a CompiledMessage with malformed = true.
  std::shared_ptr<const CompiledMessage> compile_bytes(
      std::span<const std::uint8_t> header_bytes);

  /// Compile an already-decoded header (network send path: the header was
  /// just built, no bytes round-trip needed beyond the one compile_bytes
  /// performs). Memoized by message id with full-header verification.
  std::shared_ptr<const CompiledMessage> compile(const wire::PacketHeader& header);

  /// Switch this compiler to QF-Geo membership (src/qfgeo): every compile
  /// computes the bounded-region member set instead of the conduit one.
  /// Set once at network construction, before any compile — the memo is
  /// cleared so no conduit-shaped entry can leak into qfgeo lookups.
  void set_qfgeo(const qfgeo::RegionConfig& region) {
    qfgeo_ = region;
    memo_.clear();
  }
  bool qfgeo_enabled() const { return qfgeo_.has_value(); }

  /// One hash-set membership test happened (hot-path tally, inlined cheap).
  void count_membership_lookup() { membership_lookups_->inc(); }
  /// One malformed reception was dropped.
  void count_malformed() { malformed_->inc(); }

  /// Repoint the counters into `registry` under `<prefix>.*`. The registry
  /// must outlive the compiler; prior counts are not carried over.
  void bind_metrics(obsx::MetricsRegistry& registry, std::string_view prefix = "compile");

  /// Snapshot of the registry currently holding the compile counters (the
  /// private one unless bind_metrics() repointed them elsewhere).
  obsx::MetricsSnapshot snapshot() const { return registry_->snapshot(); }

  std::uint64_t header_decodes() const { return header_decodes_->value(); }
  std::uint64_t msg_compiles() const { return msg_compiles_->value(); }
  std::uint64_t membership_lookups() const { return membership_lookups_->value(); }
  std::uint64_t malformed_drops() const { return malformed_->value(); }

  const BuildingGraph& map() const { return *map_; }
  std::size_t memo_size() const { return memo_.size(); }
  void clear_memo() { memo_.clear(); }

 private:
  /// Long workloads inject unbounded distinct messages; past this many memo
  /// entries the memo resets (deterministic, correctness-neutral — a miss
  /// just recompiles).
  static constexpr std::size_t kMemoCap = 1u << 16;

  const BuildingGraph* map_;
  /// Engaged = compile with QF-Geo bounded-region membership.
  std::optional<qfgeo::RegionConfig> qfgeo_;
  std::unordered_map<std::uint32_t, std::shared_ptr<const CompiledMessage>> memo_;
  obsx::MetricsRegistry own_;  ///< fallback registry until bind_metrics()
  obsx::MetricsRegistry* registry_ = &own_;  ///< where the counters live now
  obsx::Counter* header_decodes_;
  obsx::Counter* msg_compiles_;
  obsx::Counter* membership_lookups_;
  obsx::Counter* malformed_;
};

}  // namespace citymesh::core
