#include "core/ap_state.hpp"

namespace citymesh::core {

void AgentStateSlab::host_postbox(std::uint32_t ap, std::shared_ptr<Postbox> box) {
  const std::uint32_t tag = box->tag();
  for (std::uint32_t e = postbox_head_[ap]; e != kNone; e = entries_[e].next) {
    if (entries_[e].tag == tag) {
      entries_[e].box = std::move(box);
      return;
    }
  }
  entries_.push_back({std::move(box), tag, postbox_head_[ap]});
  postbox_head_[ap] = static_cast<std::uint32_t>(entries_.size() - 1);
}

}  // namespace citymesh::core
