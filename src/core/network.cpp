#include "core/network.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <thread>
#include <unordered_set>

namespace citymesh::core {

std::string_view to_string(Protocol protocol) {
  switch (protocol) {
    case Protocol::kConduit: return "conduit";
    case Protocol::kQfgeo: return "qfgeo";
  }
  return "?";
}

std::optional<Protocol> protocol_from(std::string_view name) {
  if (name == "conduit") return Protocol::kConduit;
  if (name == "qfgeo") return Protocol::kQfgeo;
  return std::nullopt;
}

std::size_t CityMeshNetwork::trace_capacity_for(const NetworkConfig& config,
                                                std::size_t ap_count) {
  if (config.trace_capacity != 0) return config.trace_capacity;
  // Rough per-send budget: every AP receives, decides, and possibly
  // retransmits; 24 events per AP covers a flood plus an ack with slack.
  return std::max<std::size_t>(std::size_t{1} << 16, 24 * ap_count);
}

std::shared_ptr<const CompiledCity> compile_city(osmx::City city,
                                                 const NetworkConfig& config) {
  return std::make_shared<const CompiledCity>(std::move(city), config.graph,
                                              config.placement);
}

CityMeshNetwork::CityMeshNetwork(const osmx::City& city, NetworkConfig config)
    : CityMeshNetwork(compile_city(city, config), config) {}

CityMeshNetwork::CityMeshNetwork(std::shared_ptr<const CompiledCity> compiled,
                                 NetworkConfig config)
    : compiled_(std::move(compiled)),
      config_(config),
      spt_cache_(compiled_->map.graph()),
      planner_(compiled_->map, config.conduit, &spt_cache_),
      compiler_(compiled_->map),
      packet_pool_(config.pooled_packets
                       ? std::make_unique<PacketPool>(config.packet_pool_capacity)
                       : nullptr),
      sim_(config.scheduler),
      medium_(sim_, compiled_->aps.graph(), config.medium),
      trace_(trace_capacity_for(config_, compiled_->aps.ap_count())),
      ap_status_(compiled_->aps.ap_count(), ApStatus::kUp),
      aps_up_(compiled_->aps.ap_count()) {
  // QF-Geo mode swaps the compile-once membership machinery to the bounded
  // forwarding region, before any message compiles (src/qfgeo).
  if (config_.protocol == Protocol::kQfgeo) {
    compiler_.set_qfgeo(config_.qfgeo_region);
  }
  agent_state_ = AgentStateSlab(aps().ap_count());
  agents_.reserve(aps().ap_count());
  for (const auto& ap : aps().aps()) {
    agents_.emplace_back(ap.id, ap.position, ap.building, compiled_->map, &compiler_);
    agents_.back().set_state(&agent_state_, ap.id);
  }
  const bool tiled = config_.shards > 1;
  if (!tiled) {
    medium_.set_delivery_handler(
        [this](sim::NodeId to, sim::NodeId from,
               const std::shared_ptr<const MeshPacket>& packet) {
          handle_delivery(*shards_.front(), to, from, packet);
        });
    medium_.set_node_filter([this](sim::NodeId node) { return ap_up(node); });
    medium_.set_link_loss([this](sim::NodeId from, sim::NodeId to) {
      return extra_link_loss(from, to);
    });
    // Per-flow transmission attribution (src/trafficx): one hash probe per
    // on-air packet, and only while injected flows are being tracked — the
    // single-send paths see an empty map and pay one branch.
    medium_.set_tx_observer([this](sim::NodeId, const MeshPacket& p) {
      if (flows_.empty()) return;
      if (const auto it = flows_.find(p.trace_id); it != flows_.end()) {
        ++it->second.transmissions;
      }
    });
  }

  // Rebroadcast policy (src/relayx). The policy draws from the network seed;
  // the legacy building_suppression flag maps onto building-backoff. The
  // relayx.* counters are bound into metrics_ for non-flood policies only,
  // mirroring the MessageCompiler precedent: snapshot() serializes every
  // registered counter, and flood manifests must stay byte-identical to the
  // pre-relayx pipeline. Tiled runs decide through per-shard policies; this
  // one stays idle but keeps the relayx.* keys registered so merged
  // snapshots serialize the same key set as the legacy path.
  policy_ = relayx::make_policy(resolved_relay_config(), compiled_->aps);
  if (policy_->kind() != relayx::PolicyKind::kFlood) {
    policy_->bind_metrics(metrics_);
  }

  // Observability wiring: the medium's tally *is* the network's medium.*
  // metric set, and the medium stamps trace events with the packet's
  // decoded message id. The medium.* keys are registered even when tiles
  // own the live mediums (key-set parity for merged manifests).
  medium_.bind_metrics(metrics_);
  if (!tiled) {
    medium_.set_trace(&trace_, [](const MeshPacket& p) { return p.trace_id; });
    // Airtime accounting charges the packet's wire size (contention model).
    medium_.set_packet_bits([](const MeshPacket& p) {
      return (p.header_bytes.size() + p.payload.size()) * 8;
    });
  }
  obsx::Histogram* latency_hist =
      &metrics_.histogram("sim.event_latency_s", obsx::exponential_buckets(1e-4, 4.0, 10));
  sim_.set_latency_histogram(latency_hist);
  n_sends_ = &metrics_.counter("net.sends");
  n_delivered_ = &metrics_.counter("net.delivered");
  n_rebroadcasts_ = &metrics_.counter("net.rebroadcasts");
  n_dup_suppressed_ = &metrics_.counter("net.dup_suppressed");
  n_conduit_rejects_ = &metrics_.counter("net.conduit_rejects");
  n_postbox_stores_ = &metrics_.counter("net.postbox_stores");
  n_acks_sent_ = &metrics_.counter("net.acks_sent");
  n_acks_received_ = &metrics_.counter("net.acks_received");
  n_suppression_cancelled_ = &metrics_.counter("net.suppression_cancelled");
  h_header_bits_ = &metrics_.histogram("net.header_bits", obsx::linear_buckets(80.0, 20.0, 16));
  h_min_hops_ = &metrics_.histogram("net.min_hops", obsx::linear_buckets(1.0, 1.0, 32));
  h_tx_per_delivery_ =
      &metrics_.histogram("net.tx_per_delivery", obsx::exponential_buckets(1.0, 2.0, 12));
#ifdef CITYMESH_POOL_STATS
  pool_packet_acquires_ = &metrics_.counter("pool.packet_acquires");
  pool_packet_fallbacks_ = &metrics_.counter("pool.packet_fallbacks");
  pool_packet_peak_in_use_ = &metrics_.counter("pool.packet_peak_in_use");
  pool_inline_fn_heap_fallbacks_ = &metrics_.counter("pool.inline_fn_heap_fallbacks");
#endif

  if (tiled) {
    // Key-set parity with K = 1: the coordinator registry carries the
    // qfgeo.* keys (idle, like the idle relayx policy above) so merged
    // manifests serialize the same key set for every shard count.
    if (config_.protocol == Protocol::kQfgeo) {
      for (const char* key : {"qfgeo.candidates", "qfgeo.fired", "qfgeo.cancelled",
                              "qfgeo.no_progress", "qfgeo.fallback_floods"}) {
        metrics_.counter(key);
      }
    }
    build_tiles();
  } else {
    // The single legacy shard aliases the network singletons; `direct`
    // routes outcome writes straight at the network-level state, so the
    // shards == 1 code path is the pre-shardx pipeline byte for byte.
    auto s = std::make_unique<Shard>();
    s->tile = 0;
    s->direct = true;
    s->sim = &sim_;
    s->medium = &medium_;
    s->metrics = &metrics_;
    s->trace = &trace_;
    s->policy = policy_.get();
    s->compiler = &compiler_;
    s->n_rebroadcasts = n_rebroadcasts_;
    s->n_dup_suppressed = n_dup_suppressed_;
    s->n_conduit_rejects = n_conduit_rejects_;
    s->n_postbox_stores = n_postbox_stores_;
    s->n_acks_sent = n_acks_sent_;
    s->n_suppression_cancelled = n_suppression_cancelled_;
    s->medium_deliveries = &metrics_.counter("medium.deliveries");
    s->medium_blocked_receptions = &metrics_.counter("medium.blocked_receptions");
    s->medium_losses = &metrics_.counter("medium.losses");
    s->h_latency = latency_hist;
    bind_qfgeo_counters(*s, metrics_);
    shards_.push_back(std::move(s));
  }
}

void CityMeshNetwork::bind_qfgeo_counters(Shard& shard, obsx::MetricsRegistry& registry) {
  // Registered only under Protocol::kQfgeo, following the relayx precedent:
  // snapshot() serializes every registered counter, and conduit manifests
  // must stay byte-identical to the pre-qfgeo pipeline (golden digest gate).
  if (config_.protocol != Protocol::kQfgeo) return;
  shard.qf_candidates = &registry.counter("qfgeo.candidates");
  shard.qf_fired = &registry.counter("qfgeo.fired");
  shard.qf_cancelled = &registry.counter("qfgeo.cancelled");
  shard.qf_no_progress = &registry.counter("qfgeo.no_progress");
  shard.qf_fallback_floods = &registry.counter("qfgeo.fallback_floods");
}

relayx::PolicyConfig CityMeshNetwork::resolved_relay_config() const {
  relayx::PolicyConfig relay = config_.relay;
  relay.seed = config_.seed;
  if (config_.building_suppression && relay.kind == relayx::PolicyKind::kFlood) {
    relay.kind = relayx::PolicyKind::kBuildingBackoff;
    relay.backoff_s = config_.suppression_backoff_s;
    relay.suppress_radius_m = config_.suppression_radius_m;
  }
  // Tiled execution makes the global election order shard-count-dependent;
  // per-AP draw streams keep backoff draws a function of each AP's own
  // election sequence, which is K-invariant.
  if (config_.shards > 1) relay.per_ap_streams = true;
  return relay;
}

void CityMeshNetwork::build_tiles() {
  plan_ = shardx::plan_tiles(compiled_->map.centroid_grid(), compiled_->map.building_count(),
                             compiled_->aps, config_.shards, config_.tiling);
  // Stripe the shared dup filter by tile: an AP's receptions run only on its
  // owning tile's thread, so per-tile stripes make the one slab TSan-clean.
  agent_state_.set_stripes(plan_.ap_tile.data(), plan_.tile_count);
  const double min_serialization_s =
      config_.medium.bitrate_bps > 0.0
          ? static_cast<double>(config_.medium.frame_overhead_bits) / config_.medium.bitrate_bps
          : config_.medium.tx_delay_s;
  lookahead_s_ =
      shardx::lookahead_s(plan_.cross, min_serialization_s, config_.medium.prop_delay_s_per_m);

  // Cross-link CSR by transmitter (counting sort keeps plan order per AP).
  cross_base_.assign(aps().ap_count() + 1, 0);
  for (const shardx::CrossLink& link : plan_.cross) ++cross_base_[link.from + 1];
  for (std::size_t i = 1; i < cross_base_.size(); ++i) cross_base_[i] += cross_base_[i - 1];
  cross_links_.resize(plan_.cross.size());
  {
    std::vector<std::size_t> cursor{cross_base_.begin(), cross_base_.end() - 1};
    for (const shardx::CrossLink& link : plan_.cross) cross_links_[cursor[link.from]++] = link;
  }

  const relayx::PolicyConfig relay = resolved_relay_config();
  sim::MediumConfig medium_config = config_.medium;
  medium_config.shard_invariant_rng = true;
  const std::size_t trace_cap = trace_capacity_for(config_, aps().ap_count());

  shards_.reserve(plan_.tile_count);
  for (shardx::TileId tile = 0; tile < plan_.tile_count; ++tile) {
    auto s = std::make_unique<Shard>();
    Shard* sp = s.get();
    s->tile = tile;
    s->direct = false;
    s->own_metrics = std::make_unique<obsx::MetricsRegistry>();
    s->metrics = s->own_metrics.get();
    s->own_trace = std::make_unique<obsx::TraceBuffer>(trace_cap);
    s->trace = s->own_trace.get();
    s->own_sim = std::make_unique<sim::Simulator>(config_.scheduler);
    s->sim = s->own_sim.get();
    s->h_latency = &s->metrics->histogram("sim.event_latency_s",
                                          obsx::exponential_buckets(1e-4, 4.0, 10));
    // Quantized sums make the per-shard accumulation exact, so the merged
    // latency sum depends only on the multiset of recorded delays — not on
    // how the tiling happened to interleave them. 2^-30 s (~1 ns) is far
    // below the medium's delay resolution; exactness holds up to 2^23
    // accumulated seconds. K = 1 keeps the unquantized legacy sum.
    s->h_latency->set_sum_quantum(0x1p-30);
    s->sim->set_latency_histogram(s->h_latency);
    // All K mediums walk the one compiled-city CSR; the tile filter skips
    // cross-tile neighbors (remote_fanout covers exactly those cut edges).
    // A filtered walk visits the same edges in the same order as the old
    // per-tile tile_subgraph copies did (test_metromem pins the parity).
    s->own_medium = std::make_unique<sim::BroadcastMedium<MeshPacket>>(
        *s->sim, aps().graph(), medium_config);
    s->medium = s->own_medium.get();
    s->medium->set_tile_filter(plan_.ap_tile.data(), tile);
    s->medium->set_delivery_handler(
        [this, sp](sim::NodeId to, sim::NodeId from,
                   const std::shared_ptr<const MeshPacket>& packet) {
          handle_delivery(*sp, to, from, packet);
        });
    s->medium->set_node_filter([this](sim::NodeId node) { return ap_up(node); });
    s->medium->set_link_loss([this](sim::NodeId from, sim::NodeId to) {
      return extra_link_loss(from, to);
    });
    s->medium->set_tx_observer([this, sp](sim::NodeId, const MeshPacket& p) {
      if (flows_.empty()) return;
      if (flows_.find(p.trace_id) != flows_.end()) {
        ++sp->flow_deltas[p.trace_id].transmissions;
      }
    });
    s->medium->set_remote_fanout(
        [this, sp](sim::NodeId from, const std::shared_ptr<const MeshPacket>& packet,
                   sim::SimTime air, std::uint32_t tx_index) {
          remote_fanout(*sp, from, packet, air, tx_index);
        });
    s->medium->bind_metrics(*s->metrics);
    s->medium->set_trace(s->trace, [](const MeshPacket& p) { return p.trace_id; });
    s->medium->set_packet_bits([](const MeshPacket& p) {
      return (p.header_bytes.size() + p.payload.size()) * 8;
    });
    s->own_policy = relayx::make_policy(relay, compiled_->aps);
    s->policy = s->own_policy.get();
    if (s->policy->kind() != relayx::PolicyKind::kFlood) {
      s->policy->bind_metrics(*s->metrics);
    }
    // Per-tile compile service: reception-time memo lookups and counter
    // increments stay on this tile's thread (compile.* counters live in the
    // compiler's own registry, outside run manifests).
    s->own_compiler = std::make_unique<MessageCompiler>(compiled_->map);
    s->compiler = s->own_compiler.get();
    s->n_rebroadcasts = &s->metrics->counter("net.rebroadcasts");
    s->n_dup_suppressed = &s->metrics->counter("net.dup_suppressed");
    s->n_conduit_rejects = &s->metrics->counter("net.conduit_rejects");
    s->n_postbox_stores = &s->metrics->counter("net.postbox_stores");
    s->n_acks_sent = &s->metrics->counter("net.acks_sent");
    s->n_suppression_cancelled = &s->metrics->counter("net.suppression_cancelled");
    s->medium_deliveries = &s->metrics->counter("medium.deliveries");
    s->medium_blocked_receptions = &s->metrics->counter("medium.blocked_receptions");
    s->medium_losses = &s->metrics->counter("medium.losses");
    if (config_.protocol == Protocol::kQfgeo) {
      s->own_compiler->set_qfgeo(config_.qfgeo_region);
    }
    bind_qfgeo_counters(*s, *s->metrics);
    shards_.push_back(std::move(s));
  }
  for (const auto& ap : aps().aps()) {
    agents_[ap.id].set_compiler(shards_[plan_.ap_tile[ap.id]]->compiler);
  }

  std::size_t hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  pool_ = std::make_unique<shardx::WorkerPool>(std::min(plan_.tile_count, hw) - 1);
}

TraceRoles roles_from_trace(std::span<const obsx::TraceEvent> events,
                            std::uint32_t message_id) {
  TraceRoles roles;
  std::unordered_set<std::uint32_t> txed;
  std::vector<std::uint32_t> rx_order;
  std::unordered_set<std::uint32_t> rxed;
  for (const obsx::TraceEvent& e : events) {
    if (e.packet != message_id) continue;
    if (e.kind == obsx::TraceKind::kTx) {
      if (txed.insert(e.node).second) roles.rebroadcast.push_back(e.node);
    } else if (e.kind == obsx::TraceKind::kRx) {
      if (rxed.insert(e.node).second) rx_order.push_back(e.node);
    }
  }
  for (const std::uint32_t node : rx_order) {
    if (!txed.contains(node)) roles.received_only.push_back(node);
  }
  return roles;
}

namespace {

std::string registry_key(const cryptox::SelfCertifyingId& id, BuildingId building) {
  return id.hex() + "@" + std::to_string(building);
}

}  // namespace

std::shared_ptr<Postbox> CityMeshNetwork::register_postbox(const PostboxInfo& info) {
  const auto& building_aps = aps().aps_of_building(info.building);
  if (building_aps.empty()) return nullptr;
  // Idempotent per (identity, building): re-registering returns the same box.
  const std::string key = registry_key(info.id, info.building);
  if (const auto it = postboxes_.find(key); it != postboxes_.end()) return it->second;

  auto box = std::make_shared<Postbox>(info.id);
  for (const mesh::ApId id : building_aps) {
    agents_[id].host_postbox(box);
  }
  postboxes_[key] = box;
  primary_postboxes_.try_emplace(info.id.hex(), box);
  return box;
}

std::shared_ptr<Postbox> CityMeshNetwork::postbox_of(
    const cryptox::SelfCertifyingId& id) const {
  const auto it = primary_postboxes_.find(id.hex());
  return it == primary_postboxes_.end() ? nullptr : it->second;
}

std::shared_ptr<Postbox> CityMeshNetwork::postbox_at(
    const cryptox::SelfCertifyingId& id, BuildingId building) const {
  const auto it = postboxes_.find(registry_key(id, building));
  return it == postboxes_.end() ? nullptr : it->second;
}

void CityMeshNetwork::transmit_counted(Shard& shard, mesh::ApId from,
                                       const std::shared_ptr<const MeshPacket>& packet) {
  // An AP that went down after queuing this rebroadcast (backoff, ack) stays
  // silent: the medium's node filter blocks it, counts it under
  // medium.blocked_transmissions (not transmissions), and traces the drop.
  shard.medium->transmit(from, packet);
}

void CityMeshNetwork::clear_pending_relays() {
  for (const auto& sp : shards_) {
    for (const auto& [key, relay] : sp->pending) sp->sim->cancel(relay.event);
    sp->pending.clear();
  }
}

void CityMeshNetwork::set_ap_status(mesh::ApId id, ApStatus status) {
  ApStatus& slot = ap_status_.at(id);
  if (slot == status) return;
  slot = status;
  aps_up_ += status == ApStatus::kUp ? 1 : -1;
}

std::optional<mesh::ApId> CityMeshNetwork::live_ap(BuildingId building) const {
  const auto rep = aps().representative_ap(city(), building);
  if (!rep) return std::nullopt;
  if (ap_up(*rep)) return rep;
  const geo::Point centroid = city().building(building).centroid;
  std::optional<mesh::ApId> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const mesh::ApId id : aps().aps_of_building(building)) {
    if (!ap_up(id)) continue;
    const double d2 = geo::distance2(aps().ap(id).position, centroid);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = id;
    }
  }
  return best;
}

std::size_t CityMeshNetwork::add_degraded_region(geo::Polygon region, double extra_loss) {
  std::vector<char> members(aps().ap_count(), 0);
  for (const auto& ap : aps().aps()) {
    members[ap.id] = region.contains(ap.position) ? 1 : 0;
  }
  degraded_.push_back({std::move(region), extra_loss, /*active=*/true});
  degraded_members_.push_back(std::move(members));
  return degraded_.size() - 1;
}

void CityMeshNetwork::set_degraded_region_active(std::size_t handle, bool active) {
  degraded_.at(handle).active = active;
}

double CityMeshNetwork::extra_link_loss(mesh::ApId from, mesh::ApId to) const {
  if (degraded_.empty()) return 0.0;
  double pass = 1.0;
  for (std::size_t r = 0; r < degraded_.size(); ++r) {
    if (!degraded_[r].active) continue;
    if (degraded_members_[r][from] || degraded_members_[r][to]) {
      pass *= 1.0 - degraded_[r].extra_loss;
    }
  }
  return 1.0 - pass;
}

void CityMeshNetwork::send_ack_from(Shard& shard, mesh::ApId ap) {
  // The ack originates at the delivering AP, so the sent/delivered flags are
  // shard-local (building-atomic tiling puts every delivery of one message
  // on one tile); merge_shard_deltas() folds them into active_.
  if (shard.direct) active_.ack_sent = true;
  else shard.active.ack_sent = true;
  const double now = shard.sim->now();
  wire::PacketHeader ack;
  ack.message_id = active_.ack_message_id;
  ack.postbox_tag = active_.ack_tag;
  ack.conduit_width_m = active_.conduit_width_m;
  ack.waypoints = active_.ack_waypoints;
  ack.set_flag(wire::PacketFlag::kAck);
  const auto encoded = wire::encode_header(ack);
  // Compile once at build time (decodes the just-encoded bytes so receivers
  // share the canonical decoded header); every reception is then a lookup.
  auto packet = make_packet(MeshPacket{
      encoded.bytes, /*payload=*/{}, ack.message_id,
      shard.compiler->compile_bytes(encoded.bytes)});
  shard.n_acks_sent->inc();
  shard.trace->record(obsx::TraceKind::kAck, now, ap, ack.message_id);
  // The originating AP marks the ack as seen (it may also deliver when the
  // sender and recipient share a building) and always transmits it.
  const AgentAction action = agents_[ap].on_receive(*packet, now);
  if (action.delivered && action.message_id == active_.ack_message_id) {
    if (shard.direct) {
      active_.ack_delivered = true;
      n_acks_received_->inc();
    } else {
      shard.active.ack_delivered = true;
    }
  }
  transmit_counted(shard, ap, packet);
}

void CityMeshNetwork::handle_delivery(Shard& s, sim::NodeId to, sim::NodeId from,
                                      const std::shared_ptr<const MeshPacket>& packet) {
  ApAgent& agent = agents_[to];
  const double now = s.sim->now();
  const AgentAction action = agent.on_receive(*packet, now);
  if (action.malformed) {
    // Counted by the compiler (compile.malformed); traced here so corrupt
    // receptions are visible in the event stream instead of vanishing.
    s.trace->record(obsx::TraceKind::kMalformed, now,
                    static_cast<std::uint32_t>(to), packet->trace_id);
    return;
  }

  const auto node = static_cast<std::uint32_t>(to);
  // Link-quality observation hook (etx-priority); a no-op for the others.
  // Every reception AT an AP happens on its own tile, so the per-AP link
  // estimates are complete on the shard policy.
  s.policy->observe({to, from, action.message_id, now});
  if (action.duplicate) {
    s.n_dup_suppressed->inc();
    s.trace->record(obsx::TraceKind::kDupSuppressed, now, node,
                    action.message_id, static_cast<std::uint32_t>(from));
    // Overhear-cancel: this AP holds a pending (backoff-delayed) copy of the
    // same message; the policy judges whether the overheard transmission
    // makes it redundant (same-building radius, copy counter, ...).
    if (!s.pending.empty()) {
      const std::uint64_t key = (std::uint64_t{action.message_id} << 32) | to;
      if (const auto it = s.pending.find(key); it != s.pending.end()) {
        ++it->second.overheard;
        bool cancel;
        if (it->second.greedy) {
          // QF-Geo positional overhear-cancel: a transmitter at least as
          // close to the destination just covered this copy's progress, so
          // the pending forward is redundant. AP positions are immutable,
          // so the test is shard-safe and draw-free.
          const CompiledMessage* msg = packet->compiled.get();
          cancel = true;  // unattributable duplicate: yield conservatively
          if (msg != nullptr && !msg->header.waypoints.empty()) {
            const geo::Point dst =
                compiled_->map.centroid(msg->header.waypoints.back());
            cancel = geo::distance(agents_[from].position(), dst) <=
                     geo::distance(agents_[to].position(), dst);
          }
          if (cancel && s.qf_cancelled != nullptr) s.qf_cancelled->inc();
        } else {
          cancel = s.policy->cancel_on_overhear({to, from, action.message_id, now},
                                                it->second.overheard);
        }
        if (cancel) {
          s.sim->cancel(it->second.event);
          s.pending.erase(it);
          s.n_suppression_cancelled->inc();
          s.trace->record(obsx::TraceKind::kSuppressed, now, node,
                          action.message_id, static_cast<std::uint32_t>(from));
        }
      }
    }
    return;
  }

  if (action.delivered) {
    s.n_postbox_stores->inc(action.delivered_count);
    s.trace->record(obsx::TraceKind::kPostboxStore, now, node,
                    action.message_id,
                    static_cast<std::uint32_t>(action.delivered_count));
    // flows_ / active_ are read-only during tiled windows; non-direct shards
    // write their deltas and merge_shard_deltas() folds them in afterwards
    // (counter values are only observed after runs, so the totals agree).
    if (const auto flow = flows_.find(action.message_id); flow != flows_.end()) {
      if (s.direct) {
        flow->second.postboxes_reached += action.delivered_count;
        if (!flow->second.delivered) {
          flow->second.delivered = true;
          flow->second.delivery_time_s = now;
          n_delivered_->inc();
        }
      } else {
        FlowDelta& delta = s.flow_deltas[action.message_id];
        delta.postboxes_reached += action.delivered_count;
        if (!delta.delivered) {
          delta.delivered = true;
          delta.delivery_time_s = now;
        }
      }
    } else if (action.message_id == active_.message_id) {
      if (s.direct) {
        active_.postboxes_reached += action.delivered_count;
        if (!active_.delivered) {
          active_.delivered = true;
          active_.delivery_time_s = now;
          n_delivered_->inc();
        }
      } else {
        ActiveDelta& delta = s.active;
        delta.postboxes_reached += action.delivered_count;
        if (!delta.delivered) {
          delta.delivered = true;
          delta.delivery_time_s = now;
        }
      }
      const bool ack_sent = s.direct ? active_.ack_sent : s.active.ack_sent;
      if (active_.ack_message_id != 0 && !ack_sent) {
        send_ack_from(s, to);
      }
    } else if (action.message_id == active_.ack_message_id) {
      if (s.direct) {
        if (!active_.ack_delivered) n_acks_received_->inc();
        active_.ack_delivered = true;
      } else {
        s.active.ack_delivered = true;
      }
    }
  }

  if (action.rebroadcast) {
    s.n_rebroadcasts->inc();
    s.trace->record(obsx::TraceKind::kRebroadcast, now, node, action.message_id);
    // QF-Geo networks route in-region receptions through the greedy
    // forwarding election; geo-broadcast floods stay on the policy path
    // (suppression applies only to flood-mode receptions).
    if (config_.protocol == Protocol::kQfgeo &&
        !(action.flags & static_cast<std::uint8_t>(wire::PacketFlag::kBroadcast))) {
      qfgeo_forward(s, to, from, action, now, packet);
    } else {
      policy_relay(s, to, action.message_id, from, now, packet);
    }
  } else {
    s.n_conduit_rejects->inc();
    s.trace->record(obsx::TraceKind::kConduitReject, now, node, action.message_id);
  }
}

void CityMeshNetwork::policy_relay(Shard& s, mesh::ApId to, std::uint32_t message_id,
                                   mesh::ApId from, double now,
                                   const std::shared_ptr<const MeshPacket>& packet) {
  const auto node = static_cast<std::uint32_t>(to);
  const relayx::Decision decision = s.policy->elect({to, from, message_id, now});
  switch (decision.kind) {
    case relayx::Decision::Kind::kRelayNow:
      transmit_counted(s, to, packet);
      break;
    case relayx::Decision::Kind::kDelay: {
      const std::uint64_t key = (std::uint64_t{message_id} << 32) | to;
      s.trace->record(obsx::TraceKind::kElected, now, node, message_id);
      Shard* sp = &s;
      const auto event =
          s.sim->schedule_cancelable_in(decision.delay_s, [this, sp, to, packet, key] {
            sp->pending.erase(key);
            sp->policy->count_fired();
            transmit_counted(*sp, to, packet);
          });
      s.pending[key] = {event, 0};
      break;
    }
    case relayx::Decision::Kind::kSuppress:
      s.trace->record(obsx::TraceKind::kSuppressed, now, node, message_id);
      break;
  }
}

bool CityMeshNetwork::qfgeo_local_minimum(mesh::ApId from, const CompiledMessage& msg,
                                          geo::Point dst) const {
  const double from_d = geo::distance(agents_[from].position(), dst);
  for (const graphx::Edge& edge : aps().graph().neighbors(from)) {
    const auto n = static_cast<mesh::ApId>(edge.to);
    if (!ap_up(n)) continue;
    if (!msg.conduit_member(agents_[n].building())) continue;
    if (geo::distance(agents_[n].position(), dst) < from_d) return false;
  }
  return true;
}

void CityMeshNetwork::qfgeo_forward(Shard& s, mesh::ApId to, mesh::ApId from,
                                    const AgentAction& action, double now,
                                    const std::shared_ptr<const MeshPacket>& packet) {
  const auto node = static_cast<std::uint32_t>(to);
  // Network-built packets always carry their compiled message; hand-built
  // ones compile (memoized) through this shard's service.
  std::shared_ptr<const CompiledMessage> lazily;
  const CompiledMessage* msg = packet->compiled.get();
  if (msg == nullptr) {
    lazily = s.compiler->compile_bytes(packet->header_bytes);
    msg = lazily.get();
  }
  // action.rebroadcast implies in-region membership, which implies valid,
  // non-empty waypoints — the destination is always resolvable here.
  const geo::Point dst = compiled_->map.centroid(msg->header.waypoints.back());
  const double my_d = geo::distance(agents_[to].position(), dst);
  const double from_d = geo::distance(agents_[from].position(), dst);

  if (my_d < from_d) {
    // Positive progress: arm the contention-based greedy election. The
    // delay is a pure function of (geometry, own queue depth) — no RNG
    // draws, and the queue is read from this AP's own shard medium — so
    // tiled runs stay shard-invariant. The closest (least-loaded) receiver
    // fires first; everyone else cancels on overhearing its copy.
    const double delay = qfgeo::forward_delay(config_.qfgeo_forward, my_d, from_d,
                                              s.medium->queued(to));
    const std::uint64_t key = (std::uint64_t{action.message_id} << 32) | to;
    s.trace->record(obsx::TraceKind::kElected, now, node, action.message_id);
    s.qf_candidates->inc();
    Shard* sp = &s;
    const auto event = s.sim->schedule_cancelable_in(delay, [this, sp, to, packet, key] {
      sp->pending.erase(key);
      sp->qf_fired->inc();
      transmit_counted(*sp, to, packet);
    });
    s.pending[key] = {event, 0, /*greedy=*/true};
    return;
  }

  // No progress. If the transmitter is a local minimum — no live in-region
  // neighbor closer to the destination — greedy is stuck and the region
  // falls back to a scoped flood: every in-region receiver relays through
  // the relayx policy (one recovery ring; greedy resumes at any receiver
  // that makes progress relative to the ring's transmitters). Otherwise
  // some sibling made progress and this copy dies here.
  if (qfgeo_local_minimum(from, *msg, dst)) {
    s.qf_fallback_floods->inc();
    policy_relay(s, to, action.message_id, from, now, packet);
    return;
  }
  s.qf_no_progress->inc();
  s.trace->record(obsx::TraceKind::kSuppressed, now, node, action.message_id);
}

// --- Shard-agnostic run driving (src/shardx) -------------------------------

sim::SimTime CityMeshNetwork::sim_now() const {
  return config_.shards > 1 ? shard_now_ : sim_.now();
}

std::size_t CityMeshNetwork::run_until(sim::SimTime until, std::size_t max_events) {
  if (config_.shards <= 1) return sim_.run(until, max_events);
  return run_tiled(until, max_events);
}

void CityMeshNetwork::schedule_control(sim::SimTime at, std::function<void()> fn) {
  if (config_.shards <= 1) {
    sim_.schedule_at(at, std::move(fn));
    return;
  }
  if (at < shard_now_) {
    throw std::runtime_error("schedule_control: time is in the past");
  }
  // Latency-record parity with Simulator::schedule_at, into the network
  // registry (the tiled histogram multiset must match the legacy one).
  metrics_.histogram("sim.event_latency_s", obsx::exponential_buckets(1e-4, 4.0, 10))
      .record(at - shard_now_);
  control_.push_back({at, control_seq_++, std::move(fn)});
  std::push_heap(control_.begin(), control_.end(), control_after);
}

std::size_t CityMeshNetwork::run_tiled(sim::SimTime until, std::size_t max_events) {
  std::size_t executed = 0;
  std::vector<std::size_t> counts(shards_.size(), 0);
  while (executed < max_events) {
    // Barrier exchange first: outboxes may hold handoffs created outside any
    // window — by the synchronous source transmission in run_send/inject, by
    // a control-event handler, or by the last window before a max_events
    // exit. They must be scheduled into their receiving tiles before
    // `earliest` is computed (they may BE the earliest event) and before the
    // quiesce decision below (an undelivered handoff is pending work).
    exchange_handoffs();
    const sim::SimTime control_t = control_.empty() ? sim::kForever : control_.front().time;
    sim::SimTime earliest = sim::kForever;
    for (const auto& sp : shards_) earliest = std::min(earliest, sp->sim->next_time());
    const sim::SimTime next = std::min(control_t, earliest);
    if (next > until || next >= sim::kForever) {
      // Quiesced before the horizon (or nothing left at all): advance every
      // tile clock to the horizon, mirroring Simulator::run on an empty
      // queue, so a later schedule_control lands in the present.
      if (until < sim::kForever) {
        for (const auto& sp : shards_) sp->sim->advance_to(until);
        if (until > shard_now_) shard_now_ = until;
      }
      break;
    }
    if (control_t <= earliest) {
      // Coordinator events run between windows with every tile synchronized
      // to exactly their time: the handler may touch any network state
      // (inject flows, flip AP status, read merged outcomes).
      for (const auto& sp : shards_) sp->sim->advance_to(control_t);
      shard_now_ = control_t;
      merge_shard_deltas();
      while (!control_.empty() && control_.front().time <= control_t) {
        std::pop_heap(control_.begin(), control_.end(), control_after);
        ControlEvent ev = std::move(control_.back());
        control_.pop_back();
        ev.fn();
        ++executed;
      }
      continue;
    }
    // One conservative window [earliest, end): every handoff created inside
    // arrives >= lookahead later, i.e. at or beyond the window end, so the
    // tiles run the window independently in parallel.
    const sim::SimTime cap = std::min(until, control_t);
    const sim::SimTime end =
        lookahead_s_ >= sim::kForever ? cap : std::min(cap, earliest + lookahead_s_);
    const std::size_t budget = max_events - executed;
    window_busy_s_.assign(shards_.size(), 0.0);
    pool_->run(shards_.size(), [&](std::size_t i) {
      const auto t0 = std::chrono::steady_clock::now();
      counts[i] = shards_[i]->sim->run(end, budget);
      window_busy_s_[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    });
    for (const std::size_t c : counts) executed += c;
    // Barrier-idle accounting: every tile waits for the slowest one before
    // the handoff exchange, so the window's idle cost is the gap each tile
    // leaves to the maximum.
    double slowest = 0.0;
    for (const double b : window_busy_s_) slowest = std::max(slowest, b);
    for (const double b : window_busy_s_) barrier_idle_s_ += slowest - b;
    if (end > shard_now_) shard_now_ = end;
  }
  merge_shard_deltas();
  return executed;
}

void CityMeshNetwork::exchange_handoffs() {
  handoff_scratch_.clear();
  for (const auto& sp : shards_) {
    if (sp->outbox.empty()) continue;
    handoff_scratch_.insert(handoff_scratch_.end(),
                            std::make_move_iterator(sp->outbox.begin()),
                            std::make_move_iterator(sp->outbox.end()));
    sp->outbox.clear();
  }
  if (handoff_scratch_.empty()) return;
  // (time, src_tile, seq) is a total order independent of worker scheduling,
  // so the ingestion sequence — and with it every receiving-side seq number —
  // is deterministic.
  std::sort(handoff_scratch_.begin(), handoff_scratch_.end(),
            shardx::handoff_before<MeshPacket>);
  for (shardx::Handoff<MeshPacket>& h : handoff_scratch_) {
    ++handoffs_exchanged_;
    if (record_handoffs_) {
      handoff_log_.push_back(
          {h.time, h.src_tile, h.seq, static_cast<mesh::ApId>(h.to),
           static_cast<mesh::ApId>(h.from), h.packet->trace_id});
    }
    Shard* dsp = shards_[plan_.ap_tile[h.to]].get();
    const sim::NodeId to = h.to;
    const sim::NodeId from = h.from;
    // Latency was recorded on the transmitting shard (remote_fanout), like a
    // local delivery's schedule_in; unrecorded here avoids double counting.
    dsp->sim->schedule_at_unrecorded(
        h.time, [this, dsp, to, from, packet = std::move(h.packet)] {
          // Mirrors the medium's delivery closure: receiver status sampled at
          // delivery time, then the deliveries counter + kRx trace.
          const std::uint32_t pid = packet->trace_id;
          if (!ap_up(to)) {
            dsp->medium_blocked_receptions->inc();
            dsp->trace->record(obsx::TraceKind::kDropFaulted, dsp->sim->now(),
                               static_cast<std::uint32_t>(to), pid,
                               static_cast<std::uint32_t>(from));
            return;
          }
          dsp->medium_deliveries->inc();
          dsp->trace->record(obsx::TraceKind::kRx, dsp->sim->now(),
                             static_cast<std::uint32_t>(to), pid,
                             static_cast<std::uint32_t>(from));
          handle_delivery(*dsp, to, from, packet);
        });
  }
  handoff_scratch_.clear();
}

void CityMeshNetwork::remote_fanout(Shard& shard, sim::NodeId from,
                                    const std::shared_ptr<const MeshPacket>& packet,
                                    sim::SimTime air, std::uint32_t tx_index) {
  const double now = shard.sim->now();
  const sim::MediumConfig& mc = shard.medium->config();
  const std::uint32_t pid = packet->trace_id;
  for (std::size_t i = cross_base_[from]; i < cross_base_[from + 1]; ++i) {
    const shardx::CrossLink& link = cross_links_[i];
    // Same loss/jitter math as BroadcastMedium::begin_transmission, keyed on
    // the identical link_unit inputs — a cut edge suffers exactly the fate
    // it would as a tile-local edge, whatever K is.
    double loss = mc.loss_probability;
    const double extra = extra_link_loss(from, link.to);
    if (extra > 0.0) loss = 1.0 - (1.0 - loss) * (1.0 - extra);
    if (loss > 0.0 && sim::link_unit(mc.seed, from, link.to, tx_index, 0) < loss) {
      shard.medium_losses->inc();
      shard.trace->record(obsx::TraceKind::kDropLoss, now,
                          static_cast<std::uint32_t>(link.to), pid,
                          static_cast<std::uint32_t>(from));
      continue;
    }
    sim::SimTime jitter = 0.0;
    if (mc.jitter_s > 0.0) {
      jitter = sim::link_unit(mc.seed ^ sim::kJitterStream, from, link.to, tx_index, 1) *
               mc.jitter_s;
    }
    const sim::SimTime delay = air + mc.prop_delay_s_per_m * link.length_m + jitter;
    if (shard.h_latency != nullptr) shard.h_latency->record(delay);
    shard.outbox.push_back({now + delay, shard.tile, shard.handoff_seq++, link.to,
                            from, packet});
  }
}

void CityMeshNetwork::merge_shard_deltas() {
  if (config_.shards <= 1) return;
  for (const auto& sp : shards_) {
    ActiveDelta& d = sp->active;
    active_.postboxes_reached += d.postboxes_reached;
    if (d.delivered) {
      if (!active_.delivered) {
        active_.delivered = true;
        active_.delivery_time_s = d.delivery_time_s;
        n_delivered_->inc();
      } else if (d.delivery_time_s < active_.delivery_time_s) {
        // Geo-broadcasts deliver on several tiles; first delivery wins, as
        // in global event order.
        active_.delivery_time_s = d.delivery_time_s;
      }
    }
    if (d.ack_sent) active_.ack_sent = true;
    if (d.ack_delivered && !active_.ack_delivered) {
      active_.ack_delivered = true;
      n_acks_received_->inc();
    }
    d = ActiveDelta{};
    for (auto& [id, fd] : sp->flow_deltas) {
      const auto it = flows_.find(id);
      if (it == flows_.end()) continue;
      FlowState& fs = it->second;
      fs.postboxes_reached += fd.postboxes_reached;
      fs.transmissions += fd.transmissions;
      if (fd.delivered) {
        if (!fs.delivered) {
          fs.delivered = true;
          fs.delivery_time_s = fd.delivery_time_s;
          n_delivered_->inc();
        } else if (fd.delivery_time_s < fs.delivery_time_s) {
          fs.delivery_time_s = fd.delivery_time_s;
        }
      }
    }
    sp->flow_deltas.clear();
  }
}

obsx::MetricsSnapshot CityMeshNetwork::merged_metrics() const {
#ifdef CITYMESH_POOL_STATS
  // Publish the pools' live tallies right before serialization (the caches
  // are plain Counter cells, so "set" is reset + inc).
  const auto set = [](obsx::Counter* c, std::uint64_t v) {
    c->reset();
    c->inc(v);
  };
  const sim::PoolStats ps =
      packet_pool_ != nullptr ? packet_pool_->stats() : sim::PoolStats{};
  set(pool_packet_acquires_, ps.acquires);
  set(pool_packet_fallbacks_, ps.fallbacks);
  set(pool_packet_peak_in_use_, ps.peak_in_use);
  set(pool_inline_fn_heap_fallbacks_, sim::InlineFn::heap_fallbacks());
#endif
  obsx::MetricsSnapshot snap = metrics_.snapshot();
  if (config_.shards > 1) {
    // Tile order: merge() sums counters and bucket-wise histograms, and the
    // shard registries only register keys the network registry also has, so
    // the merged key set equals the legacy one. Shard snapshots are combined
    // with each other first: their quantized histogram sums add exactly, so
    // the cross-shard total is identical for every K >= 2, and only then is
    // that one exact total added to the coordinator's sum.
    obsx::MetricsSnapshot across;
    for (const auto& sp : shards_) across.merge(sp->metrics->snapshot());
    snap.merge(across);
  }
  return snap;
}

std::vector<obsx::TraceEvent> CityMeshNetwork::merged_trace_events() const {
  if (config_.shards <= 1) return trace_.events();
  std::vector<obsx::TraceEvent> out;
  for (const auto& sp : shards_) {
    const auto events = sp->trace->events();
    out.insert(out.end(), events.begin(), events.end());
  }
  // Each shard stream is internally time-ordered; a stable sort on time
  // keeps tile order for equal-time events — deterministic for a fixed K.
  std::stable_sort(out.begin(), out.end(),
                   [](const obsx::TraceEvent& a, const obsx::TraceEvent& b) {
                     return a.time_s < b.time_s;
                   });
  return out;
}

void CityMeshNetwork::set_tracing(bool on) {
  if (config_.shards <= 1) {
    trace_.enable(on);
    return;
  }
  for (const auto& sp : shards_) sp->trace->enable(on);
}

bool CityMeshNetwork::tracing_enabled() const {
  return config_.shards > 1 ? shards_.front()->trace->enabled() : trace_.enabled();
}

CityMeshNetwork::MediumTotals CityMeshNetwork::medium_totals() const {
  MediumTotals totals;
  if (config_.shards <= 1) {
    totals.transmissions = medium_.transmissions();
    totals.deliveries = medium_.deliveries();
    totals.deferrals = medium_.deferrals();
    totals.queue_drops = medium_.queue_drops();
    totals.airtime_s = medium_.total_airtime_s();
    return totals;
  }
  for (const auto& sp : shards_) {
    totals.transmissions += sp->medium->transmissions();
    totals.deliveries += sp->medium->deliveries();
    totals.deferrals += sp->medium->deferrals();
    totals.queue_drops += sp->medium->queue_drops();
    totals.airtime_s += sp->medium->total_airtime_s();
  }
  return totals;
}

SendOutcome CityMeshNetwork::run_send(BuildingId from_building, const PostboxInfo& to,
                                      std::span<const std::uint8_t> payload,
                                      const SendOptions& opts, std::uint8_t extra_flags,
                                      std::uint32_t broadcast_radius_m) {
  SendOutcome outcome;

  const ConduitConfig conduit{opts.conduit_width.value_or(config_.conduit.width_m)};
  std::optional<PlannedRoute> route;
  if (config_.protocol == Protocol::kQfgeo) {
    // Geographic routing plans no route: the header carries only the source
    // and destination buildings, and the forwarding region is derived from
    // their centroids at compile time (src/qfgeo). The conduit width rides
    // along as a valid wire field but scopes nothing.
    PlannedRoute r;
    r.buildings = {from_building, to.building};
    r.waypoints = {from_building, to.building};
    r.conduit_width_m = conduit.width_m;
    r.header_bits = route_header_bits(r.waypoints, r.conduit_width_m);
    route = std::move(r);
  } else {
    const RoutePlanner planner{compiled_->map, conduit, &spt_cache_};
    route = opts.compress ? planner.plan(from_building, to.building)
                          : planner.plan_uncompressed(from_building, to.building);
  }
  if (!route) return outcome;
  outcome.route_found = true;
  outcome.route = *route;

  // The sender's device associates with a *live* AP of its building; when
  // every AP there is down (blackout at the source) the send fails upfront.
  const auto src_ap = live_ap(from_building);
  if (!src_ap) return outcome;
  outcome.source_has_ap = true;

  // Build the packet. Message ids derive from (seed, sequence) — stable
  // across runs and independent of unrelated RNG draws, so trace packet ids
  // are reproducible.
  wire::PacketHeader header;
  header.message_id = wire::derive_message_id(config_.seed, ++send_seq_);
  header.postbox_tag = to.id.tag();
  header.conduit_width_m = route->conduit_width_m;
  header.waypoints = route->waypoints;
  header.flags |= extra_flags;
  header.broadcast_radius_m = broadcast_radius_m;
  if (opts.urgent) header.set_flag(wire::PacketFlag::kUrgent);
  if (opts.request_ack) header.set_flag(wire::PacketFlag::kAckRequest);
  const auto encoded = wire::encode_header(header);
  outcome.header_bits = encoded.bit_count;

  auto packet = make_packet(MeshPacket{
      encoded.bytes, std::vector<std::uint8_t>{payload.begin(), payload.end()},
      header.message_id, compiler_.compile_bytes(encoded.bytes)});

  outcome.message_id = header.message_id;

  // Reset per-send bookkeeping.
  active_ = ActiveSend{};
  clear_pending_relays();
  for (const auto& sp : shards_) sp->active = ActiveDelta{};
  active_.message_id = header.message_id;
  active_.conduit_width_m = route->conduit_width_m;
  if (opts.request_ack && opts.ack_to) {
    active_.ack_message_id = wire::derive_message_id(config_.seed, ++send_seq_);
    active_.ack_tag = opts.ack_to->id.tag();
    active_.ack_waypoints.assign(route->waypoints.rbegin(), route->waypoints.rend());
    outcome.ack_message_id = active_.ack_message_id;
  }

  n_sends_->inc();
  h_header_bits_->record(static_cast<double>(encoded.bit_count));

  // Per-AP roles are reconstructed from the trace stream; borrow the trace
  // for this send when the caller didn't already turn it on.
  const bool borrow_trace = opts.collect_trace && !tracing_enabled();
  if (borrow_trace) set_tracing(true);
  const std::uint64_t trace_mark = trace_.recorded();
  const std::size_t tx_before = medium_totals().transmissions;

  // Origination happens at the source AP's shard, so the trace stream and
  // the ack flood stay on that tile (coordinator context: no worker runs).
  Shard& src_shard = shard_for(*src_ap);
  const double t0 = sim_now();
  src_shard.trace->record(obsx::TraceKind::kOriginate, t0,
                          static_cast<std::uint32_t>(*src_ap), header.message_id);

  // The source AP processes its own packet (marks it seen, may deliver when
  // sender and recipient share a building) and always performs the initial
  // broadcast.
  ApAgent& src_agent = agents_[*src_ap];
  const AgentAction first = src_agent.on_receive(*packet, t0);
  if (first.delivered) {
    // Pre-run self-delivery runs in coordinator context, so it writes the
    // network-level state directly in both modes.
    active_.delivered = true;
    active_.delivery_time_s = t0;
    active_.postboxes_reached += first.delivered_count;
    n_delivered_->inc();
    n_postbox_stores_->inc(first.delivered_count);
    src_shard.trace->record(obsx::TraceKind::kPostboxStore, t0,
                            static_cast<std::uint32_t>(*src_ap), header.message_id,
                            static_cast<std::uint32_t>(first.delivered_count));
    if (active_.ack_message_id != 0) send_ack_from(src_shard, *src_ap);
  }
  transmit_counted(src_shard, *src_ap, packet);

  run_until(t0 + config_.max_sim_time_s, config_.max_events_per_send);

  outcome.delivered = active_.delivered;
  outcome.delivery_time_s = active_.delivery_time_s;
  // The medium's counter is the single source of truth for transmissions;
  // this send's share is the delta (includes the ack's flood, like before).
  outcome.transmissions = medium_totals().transmissions - tx_before;
  outcome.ack_received = active_.ack_delivered;

  if (opts.collect_trace) {
    TraceRoles roles;
    if (config_.shards > 1) {
      // Tiled runs: merge every shard's stream (deterministic order) and
      // filter by message id — the per-send tail optimization below assumes
      // one ring.
      const auto merged = merged_trace_events();
      roles = roles_from_trace({merged.data(), merged.size()}, header.message_id);
    } else {
      // Events this send appended: the tail of the ring. A wrap can only
      // lose the oldest of them (capacity is sized generously above).
      const auto events = trace_.events();
      const std::uint64_t fresh = trace_.recorded() - trace_mark;
      const std::size_t take =
          static_cast<std::size_t>(std::min<std::uint64_t>(fresh, events.size()));
      roles = roles_from_trace(
          std::span<const obsx::TraceEvent>{events.data() + (events.size() - take), take},
          header.message_id);
    }
    outcome.rebroadcast_aps = std::move(roles.rebroadcast);
    outcome.received_only_aps = std::move(roles.received_only);
    if (borrow_trace) set_tracing(false);
  }

  // Ideal unicast hop count: shortest AP path from the source AP to the
  // closest AP in the destination building.
  const auto sp = graphx::bfs(aps().graph(), *src_ap);
  double best = graphx::kInfiniteDistance;
  for (const mesh::ApId dst : aps().aps_of_building(to.building)) {
    best = std::min(best, sp.distance[dst]);
  }
  if (best < graphx::kInfiniteDistance) {
    outcome.min_hops = static_cast<std::size_t>(best);
    h_min_hops_->record(best);
  }
  if (outcome.delivered) {
    h_tx_per_delivery_->record(static_cast<double>(outcome.transmissions));
  }
  return outcome;
}

SendOutcome CityMeshNetwork::send(BuildingId from_building, const PostboxInfo& to,
                                  std::span<const std::uint8_t> payload,
                                  const SendOptions& opts) {
  return run_send(from_building, to, payload, opts, /*extra_flags=*/0,
                  /*broadcast_radius_m=*/0);
}

InjectResult CityMeshNetwork::inject(BuildingId from_building, const PostboxInfo& to,
                                     std::span<const std::uint8_t> payload,
                                     const SendOptions& opts) {
  InjectResult result;

  const ConduitConfig conduit{opts.conduit_width.value_or(config_.conduit.width_m)};
  std::optional<PlannedRoute> route;
  if (config_.protocol == Protocol::kQfgeo) {
    PlannedRoute r;
    r.buildings = {from_building, to.building};
    r.waypoints = {from_building, to.building};
    r.conduit_width_m = conduit.width_m;
    r.header_bits = route_header_bits(r.waypoints, r.conduit_width_m);
    route = std::move(r);
  } else {
    const RoutePlanner planner{compiled_->map, conduit, &spt_cache_};
    route = opts.compress ? planner.plan(from_building, to.building)
                          : planner.plan_uncompressed(from_building, to.building);
  }
  if (!route) return result;
  result.route_found = true;

  const auto src_ap = live_ap(from_building);
  if (!src_ap) return result;
  result.source_has_ap = true;

  wire::PacketHeader header;
  header.message_id = wire::derive_message_id(config_.seed, ++send_seq_);
  header.postbox_tag = to.id.tag();
  header.conduit_width_m = route->conduit_width_m;
  header.waypoints = route->waypoints;
  if (opts.urgent) header.set_flag(wire::PacketFlag::kUrgent);
  const auto encoded = wire::encode_header(header);
  result.message_id = header.message_id;
  result.header_bits = encoded.bit_count;

  auto packet = make_packet(MeshPacket{
      encoded.bytes, std::vector<std::uint8_t>{payload.begin(), payload.end()},
      header.message_id, compiler_.compile_bytes(encoded.bytes)});

  FlowState& flow = flows_[header.message_id];
  const double t0 = sim_now();
  flow.injected_at_s = t0;

  Shard& src_shard = shard_for(*src_ap);
  n_sends_->inc();
  h_header_bits_->record(static_cast<double>(encoded.bit_count));
  src_shard.trace->record(obsx::TraceKind::kOriginate, t0,
                          static_cast<std::uint32_t>(*src_ap), header.message_id);

  // The source AP processes its own packet (marks it seen, may deliver when
  // sender and recipient share a building) and performs the initial
  // broadcast; the caller runs the simulator. Injection happens in
  // coordinator context (between windows), so flow state is written
  // directly in both modes.
  ApAgent& src_agent = agents_[*src_ap];
  const AgentAction first = src_agent.on_receive(*packet, t0);
  if (first.delivered) {
    flow.delivered = true;
    flow.delivery_time_s = t0;
    flow.postboxes_reached += first.delivered_count;
    n_delivered_->inc();
    n_postbox_stores_->inc(first.delivered_count);
    src_shard.trace->record(obsx::TraceKind::kPostboxStore, t0,
                            static_cast<std::uint32_t>(*src_ap), header.message_id,
                            static_cast<std::uint32_t>(first.delivered_count));
  }
  transmit_counted(src_shard, *src_ap, packet);
  return result;
}

const FlowState* CityMeshNetwork::flow_state(std::uint32_t message_id) const {
  const auto it = flows_.find(message_id);
  return it == flows_.end() ? nullptr : &it->second;
}

ReliableOutcome CityMeshNetwork::send_reliable(BuildingId from_building,
                                               const PostboxInfo& to,
                                               std::span<const std::uint8_t> payload,
                                               const PostboxInfo& ack_to,
                                               std::span<const double> widths) {
  ReliableOutcome result;
  for (const double width : widths) {
    ++result.attempts;
    SendOptions opts;
    opts.conduit_width = width;
    opts.request_ack = true;
    opts.ack_to = ack_to;
    SendOutcome outcome = send(from_building, to, payload, opts);
    result.delivered = result.delivered || outcome.delivered;
    const bool acked = outcome.ack_received;
    result.tries.push_back(std::move(outcome));
    if (acked) {
      result.acknowledged = true;
      break;
    }
  }
  return result;
}

BroadcastOutcome CityMeshNetwork::broadcast(BuildingId from_building,
                                            BuildingId center_building, double radius_m,
                                            std::span<const std::uint8_t> payload,
                                            bool urgent) {
  // A broadcast is addressed to a region, not a postbox: route to the center
  // building and flood the disc around it. The postbox tag is unused (0).
  PostboxInfo region{};
  region.building = center_building;
  SendOptions opts;
  opts.urgent = urgent;
  const auto radius =
      static_cast<std::uint32_t>(std::max(0.0, std::min(radius_m, 100'000.0)));
  const SendOutcome raw =
      run_send(from_building, region, payload, opts,
               static_cast<std::uint8_t>(wire::PacketFlag::kBroadcast), radius);
  BroadcastOutcome outcome;
  outcome.route_found = raw.route_found;
  outcome.source_has_ap = raw.source_has_ap;
  outcome.message_id = raw.message_id;
  outcome.transmissions = raw.transmissions;
  outcome.postboxes_reached = active_.postboxes_reached;
  outcome.route = raw.route;
  return outcome;
}

SendOutcome CityMeshNetwork::send_location_update(const PostboxInfo& home,
                                                  BuildingId current_building) {
  const std::array<std::uint8_t, 4> payload{
      static_cast<std::uint8_t>(current_building),
      static_cast<std::uint8_t>(current_building >> 8),
      static_cast<std::uint8_t>(current_building >> 16),
      static_cast<std::uint8_t>(current_building >> 24)};
  SendOptions opts;
  return run_send(current_building, home, payload, opts,
                  static_cast<std::uint8_t>(wire::PacketFlag::kLocationUpdate),
                  /*broadcast_radius_m=*/0);
}

std::size_t CityMeshNetwork::forward_pending(const PostboxInfo& home,
                                             const PostboxInfo& temp) {
  const auto home_box = postbox_at(home.id, home.building);
  if (!home_box) return 0;
  std::size_t arrived = 0;
  for (const auto& stored : home_box->retrieve()) {
    if (stored.flags & static_cast<std::uint8_t>(wire::PacketFlag::kLocationUpdate)) {
      continue;  // housekeeping, not mail
    }
    SendOptions opts;
    opts.urgent = stored.urgent;
    const auto outcome =
        send(home.building, temp,
             {stored.sealed_payload.data(), stored.sealed_payload.size()}, opts);
    if (outcome.delivered) ++arrived;
  }
  return arrived;
}

void CityMeshNetwork::compromise_building(BuildingId building, AgentBehavior behavior) {
  for (const mesh::ApId id : aps().aps_of_building(building)) {
    agents_[id].set_behavior(behavior);
  }
}

}  // namespace citymesh::core
