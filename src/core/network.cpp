#include "core/network.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_set>

namespace citymesh::core {

std::size_t CityMeshNetwork::trace_capacity_for(const NetworkConfig& config,
                                                std::size_t ap_count) {
  if (config.trace_capacity != 0) return config.trace_capacity;
  // Rough per-send budget: every AP receives, decides, and possibly
  // retransmits; 24 events per AP covers a flood plus an ack with slack.
  return std::max<std::size_t>(std::size_t{1} << 16, 24 * ap_count);
}

std::shared_ptr<const CompiledCity> compile_city(osmx::City city,
                                                 const NetworkConfig& config) {
  return std::make_shared<const CompiledCity>(std::move(city), config.graph,
                                              config.placement);
}

CityMeshNetwork::CityMeshNetwork(const osmx::City& city, NetworkConfig config)
    : CityMeshNetwork(compile_city(city, config), config) {}

CityMeshNetwork::CityMeshNetwork(std::shared_ptr<const CompiledCity> compiled,
                                 NetworkConfig config)
    : compiled_(std::move(compiled)),
      config_(config),
      planner_(compiled_->map, config.conduit),
      compiler_(compiled_->map),
      medium_(sim_, compiled_->aps.graph(), config.medium),
      trace_(trace_capacity_for(config_, compiled_->aps.ap_count())),
      ap_status_(compiled_->aps.ap_count(), ApStatus::kUp),
      aps_up_(compiled_->aps.ap_count()) {
  agents_.reserve(aps().ap_count());
  for (const auto& ap : aps().aps()) {
    agents_.emplace_back(ap.id, ap.position, ap.building, compiled_->map, &compiler_);
  }
  medium_.set_delivery_handler(
      [this](sim::NodeId to, sim::NodeId from,
             const std::shared_ptr<const MeshPacket>& packet) {
        handle_delivery(to, from, packet);
      });
  medium_.set_node_filter([this](sim::NodeId node) { return ap_up(node); });
  medium_.set_link_loss([this](sim::NodeId from, sim::NodeId to) {
    return extra_link_loss(from, to);
  });
  // Per-flow transmission attribution (src/trafficx): one hash probe per
  // on-air packet, and only while injected flows are being tracked — the
  // single-send paths see an empty map and pay one branch.
  medium_.set_tx_observer([this](sim::NodeId, const MeshPacket& p) {
    if (flows_.empty()) return;
    if (const auto it = flows_.find(p.trace_id); it != flows_.end()) {
      ++it->second.transmissions;
    }
  });

  // Rebroadcast policy (src/relayx). The policy draws from the network seed;
  // the legacy building_suppression flag maps onto building-backoff. The
  // relayx.* counters are bound into metrics_ for non-flood policies only,
  // mirroring the MessageCompiler precedent: snapshot() serializes every
  // registered counter, and flood manifests must stay byte-identical to the
  // pre-relayx pipeline.
  relayx::PolicyConfig relay = config_.relay;
  relay.seed = config_.seed;
  if (config_.building_suppression && relay.kind == relayx::PolicyKind::kFlood) {
    relay.kind = relayx::PolicyKind::kBuildingBackoff;
    relay.backoff_s = config_.suppression_backoff_s;
    relay.suppress_radius_m = config_.suppression_radius_m;
  }
  policy_ = relayx::make_policy(relay, compiled_->aps);
  if (policy_->kind() != relayx::PolicyKind::kFlood) {
    policy_->bind_metrics(metrics_);
  }

  // Observability wiring: the medium's tally *is* the network's medium.*
  // metric set, and the medium stamps trace events with the packet's
  // decoded message id.
  medium_.bind_metrics(metrics_);
  medium_.set_trace(&trace_, [](const MeshPacket& p) { return p.trace_id; });
  // Airtime accounting charges the packet's wire size (contention model).
  medium_.set_packet_bits([](const MeshPacket& p) {
    return (p.header_bytes.size() + p.payload.size()) * 8;
  });
  sim_.set_latency_histogram(
      &metrics_.histogram("sim.event_latency_s", obsx::exponential_buckets(1e-4, 4.0, 10)));
  n_sends_ = &metrics_.counter("net.sends");
  n_delivered_ = &metrics_.counter("net.delivered");
  n_rebroadcasts_ = &metrics_.counter("net.rebroadcasts");
  n_dup_suppressed_ = &metrics_.counter("net.dup_suppressed");
  n_conduit_rejects_ = &metrics_.counter("net.conduit_rejects");
  n_postbox_stores_ = &metrics_.counter("net.postbox_stores");
  n_acks_sent_ = &metrics_.counter("net.acks_sent");
  n_acks_received_ = &metrics_.counter("net.acks_received");
  n_suppression_cancelled_ = &metrics_.counter("net.suppression_cancelled");
  h_header_bits_ = &metrics_.histogram("net.header_bits", obsx::linear_buckets(80.0, 20.0, 16));
  h_min_hops_ = &metrics_.histogram("net.min_hops", obsx::linear_buckets(1.0, 1.0, 32));
  h_tx_per_delivery_ =
      &metrics_.histogram("net.tx_per_delivery", obsx::exponential_buckets(1.0, 2.0, 12));
}

TraceRoles roles_from_trace(std::span<const obsx::TraceEvent> events,
                            std::uint32_t message_id) {
  TraceRoles roles;
  std::unordered_set<std::uint32_t> txed;
  std::vector<std::uint32_t> rx_order;
  std::unordered_set<std::uint32_t> rxed;
  for (const obsx::TraceEvent& e : events) {
    if (e.packet != message_id) continue;
    if (e.kind == obsx::TraceKind::kTx) {
      if (txed.insert(e.node).second) roles.rebroadcast.push_back(e.node);
    } else if (e.kind == obsx::TraceKind::kRx) {
      if (rxed.insert(e.node).second) rx_order.push_back(e.node);
    }
  }
  for (const std::uint32_t node : rx_order) {
    if (!txed.contains(node)) roles.received_only.push_back(node);
  }
  return roles;
}

namespace {

std::string registry_key(const cryptox::SelfCertifyingId& id, BuildingId building) {
  return id.hex() + "@" + std::to_string(building);
}

}  // namespace

std::shared_ptr<Postbox> CityMeshNetwork::register_postbox(const PostboxInfo& info) {
  const auto& building_aps = aps().aps_of_building(info.building);
  if (building_aps.empty()) return nullptr;
  // Idempotent per (identity, building): re-registering returns the same box.
  const std::string key = registry_key(info.id, info.building);
  if (const auto it = postboxes_.find(key); it != postboxes_.end()) return it->second;

  auto box = std::make_shared<Postbox>(info.id);
  for (const mesh::ApId id : building_aps) {
    agents_[id].host_postbox(box);
  }
  postboxes_[key] = box;
  primary_postboxes_.try_emplace(info.id.hex(), box);
  return box;
}

std::shared_ptr<Postbox> CityMeshNetwork::postbox_of(
    const cryptox::SelfCertifyingId& id) const {
  const auto it = primary_postboxes_.find(id.hex());
  return it == primary_postboxes_.end() ? nullptr : it->second;
}

std::shared_ptr<Postbox> CityMeshNetwork::postbox_at(
    const cryptox::SelfCertifyingId& id, BuildingId building) const {
  const auto it = postboxes_.find(registry_key(id, building));
  return it == postboxes_.end() ? nullptr : it->second;
}

void CityMeshNetwork::transmit_counted(mesh::ApId from,
                                       const std::shared_ptr<const MeshPacket>& packet) {
  // An AP that went down after queuing this rebroadcast (backoff, ack) stays
  // silent: the medium's node filter blocks it, counts it under
  // medium.blocked_transmissions (not transmissions), and traces the drop.
  medium_.transmit(from, packet);
}

void CityMeshNetwork::clear_pending_relays() {
  for (const auto& [key, relay] : pending_) sim_.cancel(relay.event);
  pending_.clear();
}

void CityMeshNetwork::set_ap_status(mesh::ApId id, ApStatus status) {
  ApStatus& slot = ap_status_.at(id);
  if (slot == status) return;
  slot = status;
  aps_up_ += status == ApStatus::kUp ? 1 : -1;
}

std::optional<mesh::ApId> CityMeshNetwork::live_ap(BuildingId building) const {
  const auto rep = aps().representative_ap(city(), building);
  if (!rep) return std::nullopt;
  if (ap_up(*rep)) return rep;
  const geo::Point centroid = city().building(building).centroid;
  std::optional<mesh::ApId> best;
  double best_d2 = std::numeric_limits<double>::infinity();
  for (const mesh::ApId id : aps().aps_of_building(building)) {
    if (!ap_up(id)) continue;
    const double d2 = geo::distance2(aps().ap(id).position, centroid);
    if (d2 < best_d2) {
      best_d2 = d2;
      best = id;
    }
  }
  return best;
}

std::size_t CityMeshNetwork::add_degraded_region(geo::Polygon region, double extra_loss) {
  std::vector<char> members(aps().ap_count(), 0);
  for (const auto& ap : aps().aps()) {
    members[ap.id] = region.contains(ap.position) ? 1 : 0;
  }
  degraded_.push_back({std::move(region), extra_loss, /*active=*/true});
  degraded_members_.push_back(std::move(members));
  return degraded_.size() - 1;
}

void CityMeshNetwork::set_degraded_region_active(std::size_t handle, bool active) {
  degraded_.at(handle).active = active;
}

double CityMeshNetwork::extra_link_loss(mesh::ApId from, mesh::ApId to) const {
  if (degraded_.empty()) return 0.0;
  double pass = 1.0;
  for (std::size_t r = 0; r < degraded_.size(); ++r) {
    if (!degraded_[r].active) continue;
    if (degraded_members_[r][from] || degraded_members_[r][to]) {
      pass *= 1.0 - degraded_[r].extra_loss;
    }
  }
  return 1.0 - pass;
}

void CityMeshNetwork::send_ack_from(mesh::ApId ap) {
  active_.ack_sent = true;
  wire::PacketHeader ack;
  ack.message_id = active_.ack_message_id;
  ack.postbox_tag = active_.ack_tag;
  ack.conduit_width_m = active_.conduit_width_m;
  ack.waypoints = active_.ack_waypoints;
  ack.set_flag(wire::PacketFlag::kAck);
  const auto encoded = wire::encode_header(ack);
  // Compile once at build time (decodes the just-encoded bytes so receivers
  // share the canonical decoded header); every reception is then a lookup.
  auto packet = std::make_shared<const MeshPacket>(MeshPacket{
      encoded.bytes, /*payload=*/{}, ack.message_id,
      compiler_.compile_bytes(encoded.bytes)});
  n_acks_sent_->inc();
  trace_.record(obsx::TraceKind::kAck, sim_.now(), ap, ack.message_id);
  // The originating AP marks the ack as seen (it may also deliver when the
  // sender and recipient share a building) and always transmits it.
  const AgentAction action = agents_[ap].on_receive(*packet, sim_.now());
  if (action.delivered && action.message_id == active_.ack_message_id) {
    active_.ack_delivered = true;
    n_acks_received_->inc();
  }
  transmit_counted(ap, packet);
}

void CityMeshNetwork::handle_delivery(sim::NodeId to, sim::NodeId from,
                                      const std::shared_ptr<const MeshPacket>& packet) {
  ApAgent& agent = agents_[to];
  const AgentAction action = agent.on_receive(*packet, sim_.now());
  if (action.malformed) {
    // Counted by the compiler (compile.malformed); traced here so corrupt
    // receptions are visible in the event stream instead of vanishing.
    trace_.record(obsx::TraceKind::kMalformed, sim_.now(),
                  static_cast<std::uint32_t>(to), packet->trace_id);
    return;
  }

  const auto node = static_cast<std::uint32_t>(to);
  // Link-quality observation hook (etx-priority); a no-op for the others.
  policy_->observe({to, from, action.message_id, sim_.now()});
  if (action.duplicate) {
    n_dup_suppressed_->inc();
    trace_.record(obsx::TraceKind::kDupSuppressed, sim_.now(), node,
                  action.message_id, static_cast<std::uint32_t>(from));
    // Overhear-cancel: this AP holds a pending (backoff-delayed) copy of the
    // same message; the policy judges whether the overheard transmission
    // makes it redundant (same-building radius, copy counter, ...).
    if (!pending_.empty()) {
      const std::uint64_t key = (std::uint64_t{action.message_id} << 32) | to;
      if (const auto it = pending_.find(key); it != pending_.end()) {
        ++it->second.overheard;
        if (policy_->cancel_on_overhear({to, from, action.message_id, sim_.now()},
                                        it->second.overheard)) {
          sim_.cancel(it->second.event);
          pending_.erase(it);
          n_suppression_cancelled_->inc();
          trace_.record(obsx::TraceKind::kSuppressed, sim_.now(), node,
                        action.message_id, static_cast<std::uint32_t>(from));
        }
      }
    }
    return;
  }

  if (action.delivered) {
    n_postbox_stores_->inc(action.delivered_count);
    trace_.record(obsx::TraceKind::kPostboxStore, sim_.now(), node,
                  action.message_id,
                  static_cast<std::uint32_t>(action.delivered_count));
    if (const auto flow = flows_.find(action.message_id); flow != flows_.end()) {
      flow->second.postboxes_reached += action.delivered_count;
      if (!flow->second.delivered) {
        flow->second.delivered = true;
        flow->second.delivery_time_s = sim_.now();
        n_delivered_->inc();
      }
    } else if (action.message_id == active_.message_id) {
      active_.postboxes_reached += action.delivered_count;
      if (!active_.delivered) {
        active_.delivered = true;
        active_.delivery_time_s = sim_.now();
        n_delivered_->inc();
      }
      if (active_.ack_message_id != 0 && !active_.ack_sent) {
        send_ack_from(to);
      }
    } else if (action.message_id == active_.ack_message_id) {
      if (!active_.ack_delivered) n_acks_received_->inc();
      active_.ack_delivered = true;
    }
  }

  if (action.rebroadcast) {
    n_rebroadcasts_->inc();
    trace_.record(obsx::TraceKind::kRebroadcast, sim_.now(), node, action.message_id);
    const relayx::Decision decision =
        policy_->elect({to, from, action.message_id, sim_.now()});
    switch (decision.kind) {
      case relayx::Decision::Kind::kRelayNow:
        transmit_counted(to, packet);
        break;
      case relayx::Decision::Kind::kDelay: {
        const std::uint64_t key = (std::uint64_t{action.message_id} << 32) | to;
        trace_.record(obsx::TraceKind::kElected, sim_.now(), node, action.message_id);
        const auto event =
            sim_.schedule_cancelable_in(decision.delay_s, [this, to, packet, key] {
              pending_.erase(key);
              policy_->count_fired();
              transmit_counted(to, packet);
            });
        pending_[key] = {event, 0};
        break;
      }
      case relayx::Decision::Kind::kSuppress:
        trace_.record(obsx::TraceKind::kSuppressed, sim_.now(), node,
                      action.message_id);
        break;
    }
  } else {
    n_conduit_rejects_->inc();
    trace_.record(obsx::TraceKind::kConduitReject, sim_.now(), node, action.message_id);
  }
}

SendOutcome CityMeshNetwork::run_send(BuildingId from_building, const PostboxInfo& to,
                                      std::span<const std::uint8_t> payload,
                                      const SendOptions& opts, std::uint8_t extra_flags,
                                      std::uint32_t broadcast_radius_m) {
  SendOutcome outcome;

  const ConduitConfig conduit{opts.conduit_width.value_or(config_.conduit.width_m)};
  const RoutePlanner planner{compiled_->map, conduit};
  const auto route = opts.compress ? planner.plan(from_building, to.building)
                                   : planner.plan_uncompressed(from_building, to.building);
  if (!route) return outcome;
  outcome.route_found = true;
  outcome.route = *route;

  // The sender's device associates with a *live* AP of its building; when
  // every AP there is down (blackout at the source) the send fails upfront.
  const auto src_ap = live_ap(from_building);
  if (!src_ap) return outcome;
  outcome.source_has_ap = true;

  // Build the packet. Message ids derive from (seed, sequence) — stable
  // across runs and independent of unrelated RNG draws, so trace packet ids
  // are reproducible.
  wire::PacketHeader header;
  header.message_id = wire::derive_message_id(config_.seed, ++send_seq_);
  header.postbox_tag = to.id.tag();
  header.conduit_width_m = route->conduit_width_m;
  header.waypoints = route->waypoints;
  header.flags |= extra_flags;
  header.broadcast_radius_m = broadcast_radius_m;
  if (opts.urgent) header.set_flag(wire::PacketFlag::kUrgent);
  if (opts.request_ack) header.set_flag(wire::PacketFlag::kAckRequest);
  const auto encoded = wire::encode_header(header);
  outcome.header_bits = encoded.bit_count;

  auto packet = std::make_shared<const MeshPacket>(MeshPacket{
      encoded.bytes, std::vector<std::uint8_t>{payload.begin(), payload.end()},
      header.message_id, compiler_.compile_bytes(encoded.bytes)});

  outcome.message_id = header.message_id;

  // Reset per-send bookkeeping.
  active_ = ActiveSend{};
  clear_pending_relays();
  active_.message_id = header.message_id;
  active_.conduit_width_m = route->conduit_width_m;
  if (opts.request_ack && opts.ack_to) {
    active_.ack_message_id = wire::derive_message_id(config_.seed, ++send_seq_);
    active_.ack_tag = opts.ack_to->id.tag();
    active_.ack_waypoints.assign(route->waypoints.rbegin(), route->waypoints.rend());
    outcome.ack_message_id = active_.ack_message_id;
  }

  n_sends_->inc();
  h_header_bits_->record(static_cast<double>(encoded.bit_count));

  // Per-AP roles are reconstructed from the trace stream; borrow the trace
  // for this send when the caller didn't already turn it on.
  const bool borrow_trace = opts.collect_trace && !trace_.enabled();
  if (borrow_trace) trace_.enable();
  const std::uint64_t trace_mark = trace_.recorded();
  const std::size_t tx_before = medium_.transmissions();

  trace_.record(obsx::TraceKind::kOriginate, sim_.now(),
                static_cast<std::uint32_t>(*src_ap), header.message_id);

  // The source AP processes its own packet (marks it seen, may deliver when
  // sender and recipient share a building) and always performs the initial
  // broadcast.
  ApAgent& src_agent = agents_[*src_ap];
  const AgentAction first = src_agent.on_receive(*packet, sim_.now());
  if (first.delivered) {
    active_.delivered = true;
    active_.delivery_time_s = sim_.now();
    active_.postboxes_reached += first.delivered_count;
    n_delivered_->inc();
    n_postbox_stores_->inc(first.delivered_count);
    trace_.record(obsx::TraceKind::kPostboxStore, sim_.now(),
                  static_cast<std::uint32_t>(*src_ap), header.message_id,
                  static_cast<std::uint32_t>(first.delivered_count));
    if (active_.ack_message_id != 0) send_ack_from(*src_ap);
  }
  transmit_counted(*src_ap, packet);

  sim_.run(sim_.now() + config_.max_sim_time_s, config_.max_events_per_send);

  outcome.delivered = active_.delivered;
  outcome.delivery_time_s = active_.delivery_time_s;
  // The medium's counter is the single source of truth for transmissions;
  // this send's share is the delta (includes the ack's flood, like before).
  outcome.transmissions = medium_.transmissions() - tx_before;
  outcome.ack_received = active_.ack_delivered;

  if (opts.collect_trace) {
    // Events this send appended: the tail of the ring. A wrap can only lose
    // the oldest of them (capacity is sized generously above).
    const auto events = trace_.events();
    const std::uint64_t fresh = trace_.recorded() - trace_mark;
    const std::size_t take =
        static_cast<std::size_t>(std::min<std::uint64_t>(fresh, events.size()));
    TraceRoles roles = roles_from_trace(
        std::span<const obsx::TraceEvent>{events.data() + (events.size() - take), take},
        header.message_id);
    outcome.rebroadcast_aps = std::move(roles.rebroadcast);
    outcome.received_only_aps = std::move(roles.received_only);
    if (borrow_trace) trace_.enable(false);
  }

  // Ideal unicast hop count: shortest AP path from the source AP to the
  // closest AP in the destination building.
  const auto sp = graphx::bfs(aps().graph(), *src_ap);
  double best = graphx::kInfiniteDistance;
  for (const mesh::ApId dst : aps().aps_of_building(to.building)) {
    best = std::min(best, sp.distance[dst]);
  }
  if (best < graphx::kInfiniteDistance) {
    outcome.min_hops = static_cast<std::size_t>(best);
    h_min_hops_->record(best);
  }
  if (outcome.delivered) {
    h_tx_per_delivery_->record(static_cast<double>(outcome.transmissions));
  }
  return outcome;
}

SendOutcome CityMeshNetwork::send(BuildingId from_building, const PostboxInfo& to,
                                  std::span<const std::uint8_t> payload,
                                  const SendOptions& opts) {
  return run_send(from_building, to, payload, opts, /*extra_flags=*/0,
                  /*broadcast_radius_m=*/0);
}

InjectResult CityMeshNetwork::inject(BuildingId from_building, const PostboxInfo& to,
                                     std::span<const std::uint8_t> payload,
                                     const SendOptions& opts) {
  InjectResult result;

  const ConduitConfig conduit{opts.conduit_width.value_or(config_.conduit.width_m)};
  const RoutePlanner planner{compiled_->map, conduit};
  const auto route = opts.compress ? planner.plan(from_building, to.building)
                                   : planner.plan_uncompressed(from_building, to.building);
  if (!route) return result;
  result.route_found = true;

  const auto src_ap = live_ap(from_building);
  if (!src_ap) return result;
  result.source_has_ap = true;

  wire::PacketHeader header;
  header.message_id = wire::derive_message_id(config_.seed, ++send_seq_);
  header.postbox_tag = to.id.tag();
  header.conduit_width_m = route->conduit_width_m;
  header.waypoints = route->waypoints;
  if (opts.urgent) header.set_flag(wire::PacketFlag::kUrgent);
  const auto encoded = wire::encode_header(header);
  result.message_id = header.message_id;
  result.header_bits = encoded.bit_count;

  auto packet = std::make_shared<const MeshPacket>(MeshPacket{
      encoded.bytes, std::vector<std::uint8_t>{payload.begin(), payload.end()},
      header.message_id, compiler_.compile_bytes(encoded.bytes)});

  FlowState& flow = flows_[header.message_id];
  flow.injected_at_s = sim_.now();

  n_sends_->inc();
  h_header_bits_->record(static_cast<double>(encoded.bit_count));
  trace_.record(obsx::TraceKind::kOriginate, sim_.now(),
                static_cast<std::uint32_t>(*src_ap), header.message_id);

  // The source AP processes its own packet (marks it seen, may deliver when
  // sender and recipient share a building) and performs the initial
  // broadcast; the caller runs the simulator.
  ApAgent& src_agent = agents_[*src_ap];
  const AgentAction first = src_agent.on_receive(*packet, sim_.now());
  if (first.delivered) {
    flow.delivered = true;
    flow.delivery_time_s = sim_.now();
    flow.postboxes_reached += first.delivered_count;
    n_delivered_->inc();
    n_postbox_stores_->inc(first.delivered_count);
    trace_.record(obsx::TraceKind::kPostboxStore, sim_.now(),
                  static_cast<std::uint32_t>(*src_ap), header.message_id,
                  static_cast<std::uint32_t>(first.delivered_count));
  }
  transmit_counted(*src_ap, packet);
  return result;
}

const FlowState* CityMeshNetwork::flow_state(std::uint32_t message_id) const {
  const auto it = flows_.find(message_id);
  return it == flows_.end() ? nullptr : &it->second;
}

ReliableOutcome CityMeshNetwork::send_reliable(BuildingId from_building,
                                               const PostboxInfo& to,
                                               std::span<const std::uint8_t> payload,
                                               const PostboxInfo& ack_to,
                                               std::span<const double> widths) {
  ReliableOutcome result;
  for (const double width : widths) {
    ++result.attempts;
    SendOptions opts;
    opts.conduit_width = width;
    opts.request_ack = true;
    opts.ack_to = ack_to;
    SendOutcome outcome = send(from_building, to, payload, opts);
    result.delivered = result.delivered || outcome.delivered;
    const bool acked = outcome.ack_received;
    result.tries.push_back(std::move(outcome));
    if (acked) {
      result.acknowledged = true;
      break;
    }
  }
  return result;
}

BroadcastOutcome CityMeshNetwork::broadcast(BuildingId from_building,
                                            BuildingId center_building, double radius_m,
                                            std::span<const std::uint8_t> payload,
                                            bool urgent) {
  // A broadcast is addressed to a region, not a postbox: route to the center
  // building and flood the disc around it. The postbox tag is unused (0).
  PostboxInfo region{};
  region.building = center_building;
  SendOptions opts;
  opts.urgent = urgent;
  const auto radius =
      static_cast<std::uint32_t>(std::max(0.0, std::min(radius_m, 100'000.0)));
  const SendOutcome raw =
      run_send(from_building, region, payload, opts,
               static_cast<std::uint8_t>(wire::PacketFlag::kBroadcast), radius);
  BroadcastOutcome outcome;
  outcome.route_found = raw.route_found;
  outcome.source_has_ap = raw.source_has_ap;
  outcome.message_id = raw.message_id;
  outcome.transmissions = raw.transmissions;
  outcome.postboxes_reached = active_.postboxes_reached;
  outcome.route = raw.route;
  return outcome;
}

SendOutcome CityMeshNetwork::send_location_update(const PostboxInfo& home,
                                                  BuildingId current_building) {
  const std::array<std::uint8_t, 4> payload{
      static_cast<std::uint8_t>(current_building),
      static_cast<std::uint8_t>(current_building >> 8),
      static_cast<std::uint8_t>(current_building >> 16),
      static_cast<std::uint8_t>(current_building >> 24)};
  SendOptions opts;
  return run_send(current_building, home, payload, opts,
                  static_cast<std::uint8_t>(wire::PacketFlag::kLocationUpdate),
                  /*broadcast_radius_m=*/0);
}

std::size_t CityMeshNetwork::forward_pending(const PostboxInfo& home,
                                             const PostboxInfo& temp) {
  const auto home_box = postbox_at(home.id, home.building);
  if (!home_box) return 0;
  std::size_t arrived = 0;
  for (const auto& stored : home_box->retrieve()) {
    if (stored.flags & static_cast<std::uint8_t>(wire::PacketFlag::kLocationUpdate)) {
      continue;  // housekeeping, not mail
    }
    SendOptions opts;
    opts.urgent = stored.urgent;
    const auto outcome =
        send(home.building, temp,
             {stored.sealed_payload.data(), stored.sealed_payload.size()}, opts);
    if (outcome.delivered) ++arrived;
  }
  return arrived;
}

void CityMeshNetwork::compromise_building(BuildingId building, AgentBehavior behavior) {
  for (const mesh::ApId id : aps().aps_of_building(building)) {
    agents_[id].set_behavior(behavior);
  }
}

}  // namespace citymesh::core
