#include "core/postbox.hpp"

#include <algorithm>

namespace citymesh::core {

bool Postbox::store(StoredMessage msg) {
  if (!seen_ids_.insert(msg.message_id).second) {
    ++duplicate_count_;
    return false;
  }
  ++stored_count_;
  if (msg.urgent && push_) push_(msg);
  expire(msg.stored_at_s);
  queue_.push_back(std::move(msg));
  // Count-bound eviction: oldest pending first. The seen-set entry stays,
  // so a re-flooded copy of the evicted message is still deduplicated.
  while (queue_.size() > limits_.max_messages) {
    queue_.erase(queue_.begin());
    ++evicted_count_;
  }
  return true;
}

std::size_t Postbox::expire(double now_s) {
  const double cutoff = now_s - limits_.max_age_s;
  const auto first_fresh = std::find_if(
      queue_.begin(), queue_.end(),
      [cutoff](const StoredMessage& m) { return m.stored_at_s >= cutoff; });
  const auto removed = static_cast<std::size_t>(first_fresh - queue_.begin());
  queue_.erase(queue_.begin(), first_fresh);
  expired_count_ += removed;
  return removed;
}

std::vector<StoredMessage> Postbox::retrieve() {
  std::vector<StoredMessage> out;
  out.swap(queue_);
  return out;
}

}  // namespace citymesh::core
