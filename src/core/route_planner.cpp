#include "core/route_planner.hpp"

namespace citymesh::core {

std::size_t route_header_bits(const std::vector<BuildingId>& waypoints,
                              double conduit_width_m) {
  wire::PacketHeader h;
  h.conduit_width_m = conduit_width_m;
  h.waypoints = waypoints;
  return wire::header_bits(h);
}

const graphx::ShortestPaths& SptCache::tree(graphx::VertexId from, graphx::VertexId to) {
  for (Entry& entry : entries_) {
    if (entry.search->source() == from) {
      entry.stamp = ++stamp_;
      ++hits_;
      return entry.search->ensure(to);
    }
  }
  ++misses_;
  Entry* slot = nullptr;
  if (entries_.size() < kCapacity) {
    slot = &entries_.emplace_back();
  } else {
    slot = &entries_.front();
    for (Entry& entry : entries_)
      if (entry.stamp < slot->stamp) slot = &entry;
  }
  slot->stamp = ++stamp_;
  slot->search = std::make_unique<graphx::IncrementalDijkstra>(*graph_, from);
  return slot->search->ensure(to);
}

std::optional<PlannedRoute> RoutePlanner::plan_impl(BuildingId from, BuildingId to,
                                                    bool compress) const {
  if (from >= map_->building_count() || to >= map_->building_count()) return std::nullopt;
  PlannedRoute route;
  if (from == to) {
    route.buildings = {from};
    route.waypoints = {from};
  } else if (cache_ != nullptr) {
    route.buildings = cache_->tree(from, to).path_to(to);
    if (route.buildings.empty()) return std::nullopt;
    route.waypoints = compress ? compress_route(route.buildings, *map_, conduit_)
                               : route.buildings;
  } else {
    const auto sp = graphx::dijkstra(map_->graph(), from, to);
    route.buildings = sp.path_to(to);
    if (route.buildings.empty()) return std::nullopt;
    route.waypoints = compress ? compress_route(route.buildings, *map_, conduit_)
                               : route.buildings;
  }
  route.conduit_width_m = conduit_.width_m;
  route.header_bits = route_header_bits(route.waypoints, conduit_.width_m);
  return route;
}

std::optional<PlannedRoute> RoutePlanner::plan(BuildingId from, BuildingId to) const {
  return plan_impl(from, to, /*compress=*/true);
}

std::optional<PlannedRoute> RoutePlanner::plan_uncompressed(BuildingId from,
                                                            BuildingId to) const {
  return plan_impl(from, to, /*compress=*/false);
}

}  // namespace citymesh::core
