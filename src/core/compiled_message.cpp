#include "core/compiled_message.hpp"

#include <string>

#include "geo/spatial_grid.hpp"

namespace citymesh::core {

namespace {

/// Candidate inflation for the grid pre-filter. The exact OrientedRect
/// containment test decides membership; the bounding-box query only has to
/// be a superset, so a small margin absorbs any floating-point disagreement
/// between a rect's corner extremes and its dot-product contains() at the
/// boundary.
constexpr double kBoundsMargin = 1e-3;

}  // namespace

CompiledMessage compile_message(const wire::PacketHeader& header,
                                const BuildingGraph& map) {
  CompiledMessage msg;
  msg.header = header;

  // Satellite of the old should_rebroadcast bug: a corrupt width used to
  // escape as std::invalid_argument from the ConduitPath ctor *inside the
  // event loop*. Validated here instead, the reception becomes a counted
  // malformed drop like any other header corruption.
  if (header.conduit_width_m <= 0.0) {
    msg.malformed = true;
    return msg;
  }

  // Stale/foreign-map waypoints: the message is decodable but nobody can
  // reconstruct its conduits — deliverable by exact building match only,
  // never rebroadcast (identical to the old per-reception early-outs).
  msg.waypoints_valid = true;
  for (const BuildingId wp : header.waypoints) {
    if (wp >= map.building_count()) {
      msg.waypoints_valid = false;
      break;
    }
  }

  if (msg.waypoints_valid) {
    msg.path = ConduitPath{header.waypoints, map, header.conduit_width_m};

    // Member-building set: grid candidates per conduit bounding box, refined
    // by the exact whole-path containment test the old predicate ran — so
    // membership is bit-identical, just precomputed.
    const geo::SpatialGrid& grid = map.centroid_grid();
    for (const geo::OrientedRect& conduit : msg.path.conduits()) {
      for (const std::uint32_t b : grid.query_rect(conduit.bounds().expanded(kBoundsMargin))) {
        if (msg.members.contains(b)) continue;
        if (msg.path.contains(map.centroid(b))) msg.members.insert(b);
      }
    }
  }

  // Geo-broadcast disc membership around the last waypoint (the old
  // in_broadcast_region, precomputed). The radius query over-collects by the
  // margin; the exact distance predicate below decides.
  if (msg.header.has_flag(wire::PacketFlag::kBroadcast) && !header.waypoints.empty()) {
    const BuildingId center = header.waypoints.back();
    if (center < map.building_count()) {
      const geo::Point c = map.centroid(center);
      const auto radius = static_cast<double>(header.broadcast_radius_m);
      for (const std::uint32_t b :
           map.centroid_grid().query_radius(c, radius + kBoundsMargin)) {
        if (geo::distance(map.centroid(b), c) <= radius) {
          msg.broadcast_members.insert(b);
        }
      }
    }
  }
  return msg;
}

CompiledMessage compile_message_qfgeo(const wire::PacketHeader& header,
                                      const BuildingGraph& map,
                                      const qfgeo::RegionConfig& region) {
  CompiledMessage msg;
  msg.header = header;

  // Same validation ladder as the conduit compile: a corrupt width is a
  // counted malformed drop, and stale/foreign-map waypoints deliver by
  // exact building match only.
  if (header.conduit_width_m <= 0.0) {
    msg.malformed = true;
    return msg;
  }
  msg.waypoints_valid = !header.waypoints.empty();
  for (const BuildingId wp : header.waypoints) {
    if (wp >= map.building_count()) {
      msg.waypoints_valid = false;
      break;
    }
  }

  // The forwarding region: an ellipse between the source and destination
  // waypoints' centroids (acks reverse the waypoints; the ellipse is
  // symmetric, so both directions share one region). Membership is the
  // same grid-prefilter-then-exact-predicate shape as the conduit compile,
  // so the per-reception predicate stays one hash lookup.
  if (msg.waypoints_valid) {
    const qfgeo::Region shape = qfgeo::make_region(
        map.centroid(header.waypoints.front()),
        map.centroid(header.waypoints.back()), region);
    msg.members = qfgeo::region_members(shape, map.centroid_grid());
  }

  // Geo-broadcast disc membership, identical to the conduit compile.
  if (msg.header.has_flag(wire::PacketFlag::kBroadcast) && !header.waypoints.empty()) {
    const BuildingId center = header.waypoints.back();
    if (center < map.building_count()) {
      const geo::Point c = map.centroid(center);
      const auto radius = static_cast<double>(header.broadcast_radius_m);
      for (const std::uint32_t b :
           map.centroid_grid().query_radius(c, radius + kBoundsMargin)) {
        if (geo::distance(map.centroid(b), c) <= radius) {
          msg.broadcast_members.insert(b);
        }
      }
    }
  }
  return msg;
}

MessageCompiler::MessageCompiler(const BuildingGraph& map) : map_(&map) {
  header_decodes_ = &own_.counter("header_decodes");
  msg_compiles_ = &own_.counter("msg_compiles");
  membership_lookups_ = &own_.counter("membership_lookups");
  malformed_ = &own_.counter("malformed");
}

void MessageCompiler::bind_metrics(obsx::MetricsRegistry& registry,
                                   std::string_view prefix) {
  registry_ = &registry;
  const std::string p{prefix};
  header_decodes_ = &registry.counter(p + ".header_decodes");
  msg_compiles_ = &registry.counter(p + ".msg_compiles");
  membership_lookups_ = &registry.counter(p + ".membership_lookups");
  malformed_ = &registry.counter(p + ".malformed");
}

std::shared_ptr<const CompiledMessage> MessageCompiler::compile_bytes(
    std::span<const std::uint8_t> header_bytes) {
  header_decodes_->inc();
  wire::PacketHeader header;
  try {
    header = wire::decode_header(header_bytes);
  } catch (const wire::DecodeError&) {
    malformed_->inc();
    throw;
  }
  return compile(header);
}

std::shared_ptr<const CompiledMessage> MessageCompiler::compile(
    const wire::PacketHeader& header) {
  if (const auto it = memo_.find(header.message_id); it != memo_.end()) {
    // Full-header verification: an id collision (or a retransmitted id with
    // different waypoints) must not inherit another message's geometry.
    if (it->second->header == header) return it->second;
  }
  msg_compiles_->inc();
  auto compiled = std::make_shared<const CompiledMessage>(
      qfgeo_ ? compile_message_qfgeo(header, *map_, *qfgeo_)
             : compile_message(header, *map_));
  if (memo_.size() >= kMemoCap) memo_.clear();
  memo_[header.message_id] = compiled;
  return compiled;
}

}  // namespace citymesh::core
