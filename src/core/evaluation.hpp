// The §4 evaluation protocol, reusable by benches, tests, and examples.
//
// For one city: sample building pairs and measure
//   - reachability: does any AP path exist between the pair (AP-graph
//     connectivity — routing-independent ground truth),
//   - deliverability: given reachability, does the CityMesh building-routing
//     algorithm actually deliver (full event simulation),
//   - transmission overhead: broadcasts / ideal-unicast-hops per delivery,
//   - header size: encoded bits of the compressed source route.
// The paper runs 1000 pairs for reachability and 50 of the reachable pairs
// through the full simulation (Figure 6).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "geo/stats.hpp"
#include "obsx/metrics.hpp"
#include "osmx/building.hpp"

namespace citymesh::core {

struct EvaluationConfig {
  std::size_t reachability_pairs = 1000;
  std::size_t deliverability_pairs = 50;
  NetworkConfig network;
  std::uint64_t seed = 2024;
};

struct CityEvaluation {
  std::string city;
  std::size_t buildings = 0;
  std::size_t aps = 0;
  std::size_t ap_islands = 0;        ///< connected components of the AP graph
  /// Components with at least 8 APs; the fragments below that are single
  /// odd buildings, not the paper's "islands of connectivity".
  std::size_t ap_major_islands = 0;

  std::size_t pairs_tested = 0;
  std::size_t pairs_reachable = 0;
  double reachability() const {
    return pairs_tested ? static_cast<double>(pairs_reachable) / pairs_tested : 0.0;
  }

  std::size_t deliveries_attempted = 0;
  std::size_t deliveries_succeeded = 0;
  double deliverability() const {
    return deliveries_attempted
               ? static_cast<double>(deliveries_succeeded) / deliveries_attempted
               : 0.0;
  }

  std::vector<double> overheads;    ///< per successful delivery
  std::vector<double> header_bits;  ///< per planned route
  double median_overhead() const;
  double median_header_bits() const;

  /// Snapshot of the network's registry after the run: the medium's
  /// authoritative medium.* counters plus the net.*/sim.* protocol metrics.
  /// Mergeable across cities/seeds; serializes into run manifests.
  obsx::MetricsSnapshot metrics;

  /// Snapshot of the compile-once pipeline's counters (header_decodes,
  /// msg_compiles, membership_lookups, malformed). Kept SEPARATE from
  /// `metrics` on purpose: manifests serialize `metrics` and must stay
  /// byte-identical to the pre-compile pipeline; this field is diagnostic
  /// (asserting decodes scale with distinct messages, not receptions).
  obsx::MetricsSnapshot compile_metrics;
};

/// Run the full §4 protocol on a city.
CityEvaluation evaluate_city(const osmx::City& city, const EvaluationConfig& config);

/// Same protocol against a pre-compiled city (core::CompiledCity): the
/// network shares the read-only building graph + AP placement instead of
/// rebuilding them, so a sweep's grid points pay only for simulation.
/// `config.network.graph`/`placement` must be the parameters the city was
/// compiled with (they are not re-applied).
CityEvaluation evaluate_city(std::shared_ptr<const CompiledCity> compiled,
                             const EvaluationConfig& config);

/// Multi-seed replication: re-runs the protocol with independent AP
/// placements and pair samples, reporting mean and standard deviation per
/// metric. The paper reports single realizations; this quantifies how much
/// of Figure 6 is placement luck.
struct MultiSeedEvaluation {
  std::string city;
  std::size_t seeds = 0;
  geo::RunningStats reachability;
  geo::RunningStats deliverability;
  geo::RunningStats median_overhead;
  geo::RunningStats median_header_bits;
  /// Per-seed registry snapshots merged into one (counters sum, histogram
  /// buckets add), ready for a manifest.
  obsx::MetricsSnapshot metrics;
};

MultiSeedEvaluation evaluate_city_seeds(const osmx::City& city,
                                        const EvaluationConfig& config,
                                        std::size_t seed_count);

/// Checkpoint replay of the §4 protocol against a *live* network whose APs
/// may be down (disaster scenarios, src/faultx). Reachability is measured
/// over the surviving AP graph — down APs and their links are filtered live,
/// not re-placed — and deliverability runs the full event simulation against
/// the current fault state. Failed sends can optionally be retried through
/// `send_reliable`'s width escalation to quantify whether widening the
/// conduit rescues deliveries across an outage edge.
struct SnapshotConfig {
  std::size_t pairs = 200;          ///< building pairs sampled for reachability
  std::size_t deliver_pairs = 20;   ///< reachable pairs run through the full sim
  bool reliable_rescue = true;      ///< retry failed sends with wider conduits
  std::uint64_t seed = 4242;        ///< pair sampling / recipient identities
};

struct NetworkSnapshot {
  double at_s = 0.0;  ///< scenario time this snapshot describes
  std::size_t aps_total = 0;
  std::size_t aps_up = 0;
  double up_fraction() const {
    return aps_total ? static_cast<double>(aps_up) / aps_total : 0.0;
  }

  std::size_t pairs_tested = 0;
  std::size_t pairs_reachable = 0;
  double reachability() const {
    return pairs_tested ? static_cast<double>(pairs_reachable) / pairs_tested : 0.0;
  }

  std::size_t deliveries_attempted = 0;
  std::size_t deliveries_succeeded = 0;  ///< first-try, base conduit width
  double deliverability() const {
    return deliveries_attempted
               ? static_cast<double>(deliveries_succeeded) / deliveries_attempted
               : 0.0;
  }

  /// Width-escalation retries of the first-try failures.
  std::size_t rescues_attempted = 0;
  std::size_t rescues_succeeded = 0;
  /// Deliverability counting rescued sends as delivered.
  double deliverability_with_rescue() const {
    return deliveries_attempted
               ? static_cast<double>(deliveries_succeeded + rescues_succeeded) /
                     deliveries_attempted
               : 0.0;
  }
};

/// Measure the network as it is *right now* (current AP status + degraded
/// regions). Sampling is deterministic in config.seed, so the same seed
/// re-measures the same pairs at every checkpoint of a scenario.
NetworkSnapshot evaluate_snapshot(CityMeshNetwork& network, const SnapshotConfig& config);

// --- Capacity accounting (src/trafficx workloads) --------------------------

/// Fate of one injected flow of a traffic workload.
struct FlowRecord {
  double start_s = 0.0;           ///< scheduled injection time
  std::size_t payload_bytes = 0;
  bool injected = false;          ///< false: no route or dead source AP
  bool delivered = false;
  double latency_s = 0.0;         ///< injection -> first postbox store
  /// Broadcasts of this flow actually aired (medium tx attribution).
  std::size_t transmissions = 0;
  /// Ideal unicast hop count source AP -> destination building over the
  /// static AP graph; 0 = not measured (trafficx::RunConfig::
  /// measure_overhead) or disconnected.
  std::size_t min_hops = 0;
  /// transmissions / min_hops — the paper's per-message overhead ratio.
  std::optional<double> overhead() const {
    if (min_hops == 0) return std::nullopt;
    return static_cast<double>(transmissions) / static_cast<double>(min_hops);
  }
};

/// Aggregate capacity metrics of one workload run at one offered load —
/// one point of the goodput/latency-vs-load curve (bench/fig9_capacity).
struct CapacitySummary {
  std::size_t flows_offered = 0;    ///< scheduled flows
  std::size_t flows_injected = 0;   ///< reached the medium
  std::size_t flows_delivered = 0;
  double duration_s = 0.0;          ///< workload duration (offered-load window)
  double offered_load_per_s = 0.0;  ///< flows_offered / duration
  double delivery_rate() const {
    return flows_offered ? static_cast<double>(flows_delivered) / flows_offered : 0.0;
  }
  /// Delivered payload bytes per second of workload duration.
  double goodput_bytes_per_s = 0.0;
  double latency_p50_s = 0.0;  ///< over delivered flows (0 when none)
  double latency_p99_s = 0.0;

  // Contention evidence, from the medium's counters: drops/deferrals rise
  // past the capacity knee while goodput flattens.
  std::uint64_t queue_drops = 0;
  std::uint64_t deferrals = 0;
  double airtime_s = 0.0;  ///< summed channel-busy time across all APs

  // Transmission-overhead accounting (bench/fig11_frontier); zeros unless
  // the runner measured per-flow attribution + ideal hop counts.
  std::uint64_t transmissions = 0;  ///< sum of per-flow attributed broadcasts
  /// Median per-delivered-flow transmissions/min_hops (the paper's overhead
  /// ratio under concurrent load); 0 when unmeasured.
  double overhead_median = 0.0;
};

/// Fold per-flow records plus the medium's contention counters into one
/// capacity row. `duration_s` is the offered-load window (not the drain
/// tail); pass the medium's post-run totals for the last three.
CapacitySummary summarize_capacity(std::span<const FlowRecord> flows,
                                   double duration_s, std::uint64_t queue_drops,
                                   std::uint64_t deferrals, double airtime_s);

}  // namespace citymesh::core
