// Postboxes (§3 steps 1 and 4).
//
// A postbox is the store-and-forward mailbox an AP keeps for a recipient.
// Bob publishes his *postbox info* out-of-band (public key + building id,
// small enough for a QR code); Alice routes to that building; the APs there
// cache the sealed message until Bob's device retrieves it. Urgent messages
// trigger a push callback; the postbox also caches Bob's last location
// update, which it learns whenever his device checks in.
//
// Note on "decryption for Bob": with self-certifying ids only Bob's device
// holds the private key, so the postbox verifies structure/duplicates and
// hands sealed blobs to the device, which unseals (cryptox/sealed.hpp). The
// paper's phrasing bundles both steps into "the postbox"; we keep the key on
// the device, which is strictly safer and behaviourally identical.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "cryptox/identity.hpp"
#include "geo/point.hpp"
#include "osmx/building.hpp"

namespace citymesh::core {

/// What Bob hands Alice out-of-band before the outage (§3 step 1).
struct PostboxInfo {
  cryptox::X25519Key public_key{};
  cryptox::SelfCertifyingId id{};  ///< = SHA-256(public_key)
  osmx::BuildingId building = 0;

  static PostboxInfo for_key(const cryptox::KeyPair& keys, osmx::BuildingId building) {
    return {keys.public_key(), keys.id(), building};
  }
};

/// A message as cached by the postbox: opaque sealed payload plus the header
/// metadata needed for ordering and dedup.
struct StoredMessage {
  std::uint32_t message_id = 0;
  bool urgent = false;
  std::uint8_t flags = 0;    ///< raw header flags (wire::PacketFlag bits)
  double stored_at_s = 0.0;  ///< simulation time of arrival
  std::vector<std::uint8_t> sealed_payload;
};

/// Storage policy: commodity APs have small flash/RAM, so the postbox
/// bounds both message count and age ("APs must have the ability to store
/// messages for a period of time" — a period, not forever).
struct PostboxLimits {
  std::size_t max_messages = 256;   ///< oldest evicted beyond this
  double max_age_s = 72.0 * 3600;   ///< messages older than this expire
};

class Postbox {
 public:
  using PushFn = std::function<void(const StoredMessage&)>;

  explicit Postbox(cryptox::SelfCertifyingId owner, PostboxLimits limits = {})
      : owner_(owner), limits_(limits) {}

  const cryptox::SelfCertifyingId& owner() const { return owner_; }
  std::uint32_t tag() const { return owner_.tag(); }

  /// Store a message; duplicates (same message_id) are dropped. Returns true
  /// when the message was newly stored. Fires the push callback for urgent
  /// messages. Evicts the oldest pending message when the count limit is
  /// exceeded, and expires messages older than max_age_s relative to the
  /// incoming message's timestamp.
  bool store(StoredMessage msg);

  /// Drop pending messages stored earlier than now_s - max_age_s.
  /// Returns the number expired.
  std::size_t expire(double now_s);

  const PostboxLimits& limits() const { return limits_; }
  std::size_t evicted() const { return evicted_count_; }
  std::size_t expired() const { return expired_count_; }

  /// Messages not yet retrieved, oldest first. Retrieval drains the queue
  /// (the device keeps its own archive).
  std::vector<StoredMessage> retrieve();

  std::size_t pending() const { return queue_.size(); }
  std::size_t total_stored() const { return stored_count_; }
  std::size_t duplicates_dropped() const { return duplicate_count_; }

  /// True if a message with this id was ever stored (survives retrieval;
  /// used by senders to confirm acks).
  bool has_message(std::uint32_t message_id) const {
    return seen_ids_.contains(message_id);
  }

  void set_push_handler(PushFn fn) { push_ = std::move(fn); }

  /// Location update cached from the owner's last check-in (§3 step 4).
  void update_owner_location(geo::Point p, double at_s) { last_location_ = {p, at_s}; }
  std::optional<std::pair<geo::Point, double>> owner_location() const {
    return last_location_;
  }

 private:
  cryptox::SelfCertifyingId owner_;
  PostboxLimits limits_;
  std::vector<StoredMessage> queue_;
  std::unordered_set<std::uint32_t> seen_ids_;
  std::size_t stored_count_ = 0;
  std::size_t duplicate_count_ = 0;
  std::size_t evicted_count_ = 0;
  std::size_t expired_count_ = 0;
  PushFn push_;
  std::optional<std::pair<geo::Point, double>> last_location_;
};

}  // namespace citymesh::core
