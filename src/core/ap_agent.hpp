// The per-AP software agent (§3 step 3).
//
// Each AP runs the same small state machine: on receiving a CityMesh packet
// it (1) suppresses duplicates by message id, (2) delivers to a hosted
// postbox when the packet addresses one, and (3) rebroadcasts iff its own
// position lies inside a conduit reconstructed from the header's waypoint
// buildings and its cached building map. No routing tables, no neighbor
// state — the seen-set is the agent's only mutable state, and it lives in a
// shared struct-of-arrays AgentStateSlab (core/ap_state) indexed by AP id;
// the agent object itself holds only immutable identity.
#pragma once

#include <memory>

#include "core/ap_state.hpp"
#include "core/building_graph.hpp"
#include "core/compiled_message.hpp"
#include "core/conduit.hpp"
#include "core/postbox.hpp"
#include "mesh/ap_network.hpp"
#include "wire/packet.hpp"

namespace citymesh::core {

/// The rebroadcast predicate in isolation (shared with benches/tests).
///
/// Per §3 step 3, the decision is keyed on the AP's *building*: "only APs in
/// buildings that fall within the geographic area of the conduits ...
/// rebroadcast", and §4 notes "currently all the APs within a building
/// rebroadcast". The AP therefore tests its building's map centroid against
/// the reconstructed conduits — it needs no GPS of its own, only the map and
/// the identity of the building it was installed in.
bool should_rebroadcast(const wire::PacketHeader& header, const BuildingGraph& map,
                        BuildingId ap_building);

/// Geo-broadcast membership: true when the AP's building lies within the
/// header's broadcast radius of the last waypoint's centroid. Only
/// meaningful for packets carrying PacketFlag::kBroadcast.
bool in_broadcast_region(const wire::PacketHeader& header, const BuildingGraph& map,
                         BuildingId ap_building);

/// A CityMesh packet on the wire: encoded header + opaque sealed payload.
struct MeshPacket {
  std::vector<std::uint8_t> header_bytes;
  std::vector<std::uint8_t> payload;
  /// Simulation-side copy of the header's message id so the medium can tag
  /// trace events (src/obsx) without decoding the header per hop. Not part
  /// of the wire format.
  std::uint32_t trace_id = 0;
  /// Compile-once state shared by every reception of this message
  /// (core/compiled_message). Attached at send/inject time by
  /// CityMeshNetwork; when null (hand-built test packets, wire round-trips)
  /// the receiving agent compiles lazily through its MessageCompiler, so the
  /// work still happens once per distinct message, not per reception.
  std::shared_ptr<const CompiledMessage> compiled;
};

/// What the agent decided to do with one received packet.
struct AgentAction {
  bool duplicate = false;
  bool malformed = false;
  bool delivered = false;    ///< stored into at least one hosted postbox
  bool rebroadcast = false;  ///< agent wants the packet retransmitted
  /// Postboxes the packet was newly stored into (geo-broadcasts can hit
  /// several at one AP).
  std::size_t delivered_count = 0;
  /// Decoded header fields, valid whenever !malformed (set even for
  /// duplicates so the network layer can attribute the packet).
  std::uint32_t message_id = 0;
  std::uint8_t flags = 0;
};

class ApAgent {
 public:
  /// `compiler` is the shared per-network compile service; agents built
  /// without one (standalone tests, benches) lazily grow a private compiler
  /// so packets lacking a precompiled message still compile exactly once.
  /// Mutable state likewise: network-wired agents share the network's
  /// AgentStateSlab via set_state(); standalone agents lazily grow a
  /// private single-slot slab.
  ApAgent(mesh::ApId id, geo::Point position, BuildingId building,
          const BuildingGraph& map, MessageCompiler* compiler = nullptr)
      : id_(id), position_(position), building_(building), map_(&map),
        compiler_(compiler) {}

  mesh::ApId id() const { return id_; }
  geo::Point position() const { return position_; }
  BuildingId building() const { return building_; }

  void set_behavior(AgentBehavior b) { state().set_behavior(slot_, b); }
  AgentBehavior behavior() const {
    const AgentStateSlab* st = state_if_any();
    return st != nullptr ? st->behavior(slot_) : AgentBehavior::kNormal;
  }

  /// Repoint the compile service (tiled runs, src/shardx: each tile's agents
  /// share that tile's compiler so reception-time memo lookups and counter
  /// increments never cross threads). nullptr reverts to a lazy private one.
  void set_compiler(MessageCompiler* compiler) { compiler_ = compiler; }

  /// Repoint the mutable state into a shared slab at `slot` (the AP id, for
  /// network-owned slabs). The slab must outlive the agent.
  void set_state(AgentStateSlab* slab, std::uint32_t slot) {
    slab_ = slab;
    slot_ = slab != nullptr ? slot : 0;
  }

  /// Host a postbox at this AP. The agent matches incoming packets against
  /// hosted postbox tags.
  void host_postbox(std::shared_ptr<Postbox> postbox) {
    state().host_postbox(slot_, std::move(postbox));
  }
  std::shared_ptr<Postbox> postbox_for_tag(std::uint32_t tag) const {
    const AgentStateSlab* st = state_if_any();
    return st != nullptr ? st->postbox_for_tag(slot_, tag) : nullptr;
  }

  /// Process one received packet at simulation time `now_s`.
  AgentAction on_receive(const MeshPacket& packet, double now_s);

  /// Number of distinct messages seen (diagnostics).
  std::size_t seen_count() const {
    const AgentStateSlab* st = state_if_any();
    return st != nullptr ? st->seen_count(slot_) : 0;
  }

 private:
  /// The compile service in effect: the network's shared one, or a lazily
  /// created private one for standalone agents.
  MessageCompiler& compiler();

  /// The state slab in effect, creating the private single-slot fallback on
  /// first use.
  AgentStateSlab& state() {
    if (slab_ != nullptr) return *slab_;
    if (!own_slab_) own_slab_ = std::make_shared<AgentStateSlab>(1);
    return *own_slab_;
  }
  const AgentStateSlab* state_if_any() const {
    return slab_ != nullptr ? slab_ : own_slab_.get();
  }

  mesh::ApId id_;
  geo::Point position_;
  BuildingId building_;
  const BuildingGraph* map_;
  MessageCompiler* compiler_ = nullptr;
  std::shared_ptr<MessageCompiler> own_compiler_;  ///< lazily created fallback
  AgentStateSlab* slab_ = nullptr;  ///< shared slab (network-owned) or null
  std::uint32_t slot_ = 0;          ///< this agent's index in the slab
  std::shared_ptr<AgentStateSlab> own_slab_;  ///< lazily created fallback
};

}  // namespace citymesh::core
