// The per-AP software agent (§3 step 3).
//
// Each AP runs the same small state machine: on receiving a CityMesh packet
// it (1) suppresses duplicates by message id, (2) delivers to a hosted
// postbox when the packet addresses one, and (3) rebroadcasts iff its own
// position lies inside a conduit reconstructed from the header's waypoint
// buildings and its cached building map. No routing tables, no neighbor
// state — the seen-set is the agent's only mutable state.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "core/building_graph.hpp"
#include "core/compiled_message.hpp"
#include "core/conduit.hpp"
#include "core/postbox.hpp"
#include "mesh/ap_network.hpp"
#include "wire/packet.hpp"

namespace citymesh::core {

/// The rebroadcast predicate in isolation (shared with benches/tests).
///
/// Per §3 step 3, the decision is keyed on the AP's *building*: "only APs in
/// buildings that fall within the geographic area of the conduits ...
/// rebroadcast", and §4 notes "currently all the APs within a building
/// rebroadcast". The AP therefore tests its building's map centroid against
/// the reconstructed conduits — it needs no GPS of its own, only the map and
/// the identity of the building it was installed in.
bool should_rebroadcast(const wire::PacketHeader& header, const BuildingGraph& map,
                        BuildingId ap_building);

/// Geo-broadcast membership: true when the AP's building lies within the
/// header's broadcast radius of the last waypoint's centroid. Only
/// meaningful for packets carrying PacketFlag::kBroadcast.
bool in_broadcast_region(const wire::PacketHeader& header, const BuildingGraph& map,
                         BuildingId ap_building);

/// A CityMesh packet on the wire: encoded header + opaque sealed payload.
struct MeshPacket {
  std::vector<std::uint8_t> header_bytes;
  std::vector<std::uint8_t> payload;
  /// Simulation-side copy of the header's message id so the medium can tag
  /// trace events (src/obsx) without decoding the header per hop. Not part
  /// of the wire format.
  std::uint32_t trace_id = 0;
  /// Compile-once state shared by every reception of this message
  /// (core/compiled_message). Attached at send/inject time by
  /// CityMeshNetwork; when null (hand-built test packets, wire round-trips)
  /// the receiving agent compiles lazily through its MessageCompiler, so the
  /// work still happens once per distinct message, not per reception.
  std::shared_ptr<const CompiledMessage> compiled;
};

/// Failure-injection modes for the security experiments (§1 "Security").
enum class AgentBehavior : std::uint8_t {
  kNormal,
  kCompromisedDrop,  ///< receives but never rebroadcasts or delivers
};

/// What the agent decided to do with one received packet.
struct AgentAction {
  bool duplicate = false;
  bool malformed = false;
  bool delivered = false;    ///< stored into at least one hosted postbox
  bool rebroadcast = false;  ///< agent wants the packet retransmitted
  /// Postboxes the packet was newly stored into (geo-broadcasts can hit
  /// several at one AP).
  std::size_t delivered_count = 0;
  /// Decoded header fields, valid whenever !malformed (set even for
  /// duplicates so the network layer can attribute the packet).
  std::uint32_t message_id = 0;
  std::uint8_t flags = 0;
};

class ApAgent {
 public:
  /// `compiler` is the shared per-network compile service; agents built
  /// without one (standalone tests, benches) lazily grow a private compiler
  /// so packets lacking a precompiled message still compile exactly once.
  ApAgent(mesh::ApId id, geo::Point position, BuildingId building,
          const BuildingGraph& map, MessageCompiler* compiler = nullptr)
      : id_(id), position_(position), building_(building), map_(&map),
        compiler_(compiler) {}

  mesh::ApId id() const { return id_; }
  geo::Point position() const { return position_; }
  BuildingId building() const { return building_; }

  void set_behavior(AgentBehavior b) { behavior_ = b; }
  AgentBehavior behavior() const { return behavior_; }

  /// Repoint the compile service (tiled runs, src/shardx: each tile's agents
  /// share that tile's compiler so reception-time memo lookups and counter
  /// increments never cross threads). nullptr reverts to a lazy private one.
  void set_compiler(MessageCompiler* compiler) { compiler_ = compiler; }

  /// Host a postbox at this AP. The agent matches incoming packets against
  /// hosted postbox tags.
  void host_postbox(std::shared_ptr<Postbox> postbox);
  std::shared_ptr<Postbox> postbox_for_tag(std::uint32_t tag) const;

  /// Process one received packet at simulation time `now_s`.
  AgentAction on_receive(const MeshPacket& packet, double now_s);

  /// Number of distinct messages seen (diagnostics).
  std::size_t seen_count() const { return seen_.size(); }

 private:
  /// The compile service in effect: the network's shared one, or a lazily
  /// created private one for standalone agents.
  MessageCompiler& compiler();

  mesh::ApId id_;
  geo::Point position_;
  BuildingId building_;
  const BuildingGraph* map_;
  MessageCompiler* compiler_ = nullptr;
  std::shared_ptr<MessageCompiler> own_compiler_;  ///< lazily created fallback
  AgentBehavior behavior_ = AgentBehavior::kNormal;
  std::unordered_set<std::uint32_t> seen_;
  std::unordered_map<std::uint32_t, std::shared_ptr<Postbox>> postboxes_;  // by tag
};

}  // namespace citymesh::core
