#include "core/building_graph.hpp"

#include <cmath>
#include <stdexcept>

#include "geo/spatial_grid.hpp"

namespace citymesh::core {

double edge_cost(double distance_m, EdgeWeight policy) {
  switch (policy) {
    case EdgeWeight::kLinear: return distance_m;
    case EdgeWeight::kSquared: return distance_m * distance_m;
    case EdgeWeight::kCubed: return distance_m * distance_m * distance_m;
  }
  throw std::invalid_argument{"edge_cost: unknown policy"};
}

BuildingGraph::BuildingGraph(const osmx::City& city, const BuildingGraphConfig& config)
    : config_(config), centroid_grid_(config.transmission_range_m * 2.0) {
  if (config.transmission_range_m <= 0.0) {
    throw std::invalid_argument{"BuildingGraph: transmission range must be > 0"};
  }
  const auto& buildings = city.buildings();
  centroids_.reserve(buildings.size());
  radii_.reserve(buildings.size());
  for (const auto& b : buildings) {
    centroids_.push_back(b.centroid);
    // Effective radius: half the diagonal of the bounding box, i.e. the
    // farthest an in-building AP can sit from the centroid.
    const auto bounds = b.footprint.bounds();
    const double radius =
        bounds ? 0.5 * geo::distance(bounds->min, bounds->max) : 0.0;
    radii_.push_back(radius);
  }

  const double range = config.transmission_range_m * config.connect_factor;
  centroid_grid_ = geo::SpatialGrid{config.transmission_range_m * 2.0, centroids_};
  const geo::SpatialGrid& grid = centroid_grid_;

  graphx::GraphBuilder builder{centroids_.size()};
  // Max possible connect distance bounds the neighborhood query.
  double max_radius = 0.0;
  for (const double r : radii_) max_radius = std::max(max_radius, r);
  const double query_radius = range + 2.0 * max_radius;

  for (BuildingId a = 0; a < centroids_.size(); ++a) {
    grid.for_each_in_radius(centroids_[a], query_radius, [&](std::uint32_t b, geo::Point p) {
      if (b <= a) return;
      const double d = geo::distance(centroids_[a], p);
      if (d <= range + radii_[a] + radii_[b]) {
        builder.add_edge(a, b, edge_cost(d, config_.weight));
      }
    });
  }
  graph_ = builder.build();
}

}  // namespace citymesh::core
