// Source-route planning (§3 step 2).
//
// The sender runs Dijkstra over the building graph (cubed-distance weights)
// from its own building to the destination postbox's building, then
// compresses the resulting building list into waypoints (conduit.hpp) and
// encodes them into the packet header (wire/packet.hpp).
#pragma once

#include <optional>
#include <vector>

#include "core/building_graph.hpp"
#include "core/conduit.hpp"
#include "wire/packet.hpp"

namespace citymesh::core {

struct PlannedRoute {
  std::vector<BuildingId> buildings;  ///< full Dijkstra route, src..dst
  std::vector<BuildingId> waypoints;  ///< compressed (always src..dst)
  double conduit_width_m = 50.0;
  /// Exact bit size of the encoded header carrying these waypoints.
  std::size_t header_bits = 0;
};

class RoutePlanner {
 public:
  RoutePlanner(const BuildingGraph& map, ConduitConfig conduit)
      : map_(&map), conduit_(conduit) {}

  /// Plan a compressed route; nullopt when the building graph predicts no
  /// path (the sender knows immediately that CityMesh cannot help).
  std::optional<PlannedRoute> plan(BuildingId from, BuildingId to) const;

  /// Plan without compression (ablation: full building list as waypoints).
  std::optional<PlannedRoute> plan_uncompressed(BuildingId from, BuildingId to) const;

  const BuildingGraph& map() const { return *map_; }
  const ConduitConfig& conduit_config() const { return conduit_; }

 private:
  std::optional<PlannedRoute> plan_impl(BuildingId from, BuildingId to, bool compress) const;

  const BuildingGraph* map_;
  ConduitConfig conduit_;
};

/// Header-bit accounting for a waypoint list (used by planning and benches).
std::size_t route_header_bits(const std::vector<BuildingId>& waypoints,
                              double conduit_width_m);

}  // namespace citymesh::core
