// Source-route planning (§3 step 2).
//
// The sender runs Dijkstra over the building graph (cubed-distance weights)
// from its own building to the destination postbox's building, then
// compresses the resulting building list into waypoints (conduit.hpp) and
// encodes them into the packet header (wire/packet.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/building_graph.hpp"
#include "core/conduit.hpp"
#include "graphx/shortest_path.hpp"
#include "wire/packet.hpp"

namespace citymesh::core {

struct PlannedRoute {
  std::vector<BuildingId> buildings;  ///< full Dijkstra route, src..dst
  std::vector<BuildingId> waypoints;  ///< compressed (always src..dst)
  double conduit_width_m = 50.0;
  /// Exact bit size of the encoded header carrying these waypoints.
  std::size_t header_bits = 0;
};

/// Shortest-path cache shared across planners of one network (LRU over
/// sources). Each entry is a resumable Dijkstra
/// (graphx::IncrementalDijkstra): a fresh source costs exactly what the old
/// targeted run cost (the search still stops at the destination), and a
/// repeated source resumes the same run where it stopped — so traffic
/// workloads, which plan many routes from downtown-biased sources, stop
/// re-running Dijkstra from scratch per flow. The tree depends only on the
/// graph (conduit width affects compression, not Dijkstra), which is why
/// the cache outlives the per-send RoutePlanner instances. Cached trees
/// yield bit-identical routes: a resumed run settles the same prefix in the
/// same order as an independent targeted run, so extracted paths match
/// exactly (the determinism digests do not move).
///
/// Not thread-safe: route planning happens on the coordinator thread only
/// (like every send/inject entry point).
class SptCache {
 public:
  static constexpr std::size_t kCapacity = 64;

  explicit SptCache(const graphx::Graph& graph) : graph_(&graph) {}

  /// The tree rooted at `from`, settled at least through `to`.
  const graphx::ShortestPaths& tree(graphx::VertexId from, graphx::VertexId to);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    std::uint64_t stamp = 0;  ///< last-use tick for LRU eviction
    std::unique_ptr<graphx::IncrementalDijkstra> search;
  };

  const graphx::Graph* graph_;
  std::vector<Entry> entries_;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

class RoutePlanner {
 public:
  /// `cache` (optional) must be built over `map.graph()` and outlive the
  /// planner; without one, every plan runs its own targeted Dijkstra.
  RoutePlanner(const BuildingGraph& map, ConduitConfig conduit,
               SptCache* cache = nullptr)
      : map_(&map), conduit_(conduit), cache_(cache) {}

  /// Plan a compressed route; nullopt when the building graph predicts no
  /// path (the sender knows immediately that CityMesh cannot help).
  std::optional<PlannedRoute> plan(BuildingId from, BuildingId to) const;

  /// Plan without compression (ablation: full building list as waypoints).
  std::optional<PlannedRoute> plan_uncompressed(BuildingId from, BuildingId to) const;

  const BuildingGraph& map() const { return *map_; }
  const ConduitConfig& conduit_config() const { return conduit_; }

 private:
  std::optional<PlannedRoute> plan_impl(BuildingId from, BuildingId to, bool compress) const;

  const BuildingGraph* map_;
  ConduitConfig conduit_;
  SptCache* cache_;
};

/// Header-bit accounting for a waypoint list (used by planning and benches).
std::size_t route_header_bits(const std::vector<BuildingId>& waypoints,
                              double conduit_width_m);

}  // namespace citymesh::core
