// Pooled allocation for on-wire packets.
//
// Every send, injection, and ack materializes one shared_ptr<const
// MeshPacket> that then fans out across the medium (and, in tiled runs,
// across shard boundaries on worker threads). allocate_shared over a
// sim::BlockPool turns the per-packet control-block+object heap allocation
// into a freelist pop; release from any thread is a freelist push behind the
// pool's spinlock. Exhaustion and oversize requests fall back to the heap,
// counted in the pool's stats — never an error.
//
// The pool must outlive every packet it allocated (the shared_ptr deleter
// returns the block to it): CityMeshNetwork declares its pool before the
// simulator, medium, and shards, so it is destroyed after all of them.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

#include "core/ap_agent.hpp"
#include "sim/pool.hpp"

namespace citymesh::core {

class PacketPool {
 public:
  /// Headroom over sizeof(MeshPacket) for the shared_ptr control block
  /// (allocate_shared fuses object + control block into one allocation).
  static constexpr std::size_t kBlockBytes = sizeof(MeshPacket) + 64;

  explicit PacketPool(std::size_t capacity) : pool_(kBlockBytes, capacity) {}

  /// Allocate a packet from the pool (heap fallback when exhausted).
  std::shared_ptr<const MeshPacket> make(MeshPacket&& fields) {
    return std::allocate_shared<MeshPacket>(sim::PoolAllocator<MeshPacket>(&pool_),
                                            std::move(fields));
  }

  sim::PoolStats stats() const { return pool_.stats(); }

 private:
  sim::BlockPool pool_;
};

}  // namespace citymesh::core
