// Struct-of-arrays slab holding every AP agent's mutable state.
//
// Pre-refactor, each ApAgent owned an unordered_set<uint32> seen-set, an
// unordered_map of hosted postboxes, and a behavior byte — ~120 bytes of
// container headers per AP before a single message flows, scattered across
// the agent vector in pointer-chasing node allocations. At metro scale
// (tens of thousands of APs, a postbox on a handful of them) that is the
// dominant per-AP cost. This slab replaces all of it with flat arrays
// indexed by AP id:
//
//   - behavior:   one byte per AP
//   - seen count: one uint32 per AP (diagnostics; the membership test lives
//                 in the striped dup filter below)
//   - dup filter: hash sets of (message_id << 32 | ap) keys, striped by
//                 tile so each shardx worker thread only ever touches its
//                 own stripe — the cross-AP sharing that makes the set
//                 cheap is also what would make a single set a data race
//   - postboxes:  intrusive chains through one shared entry slab; APs
//                 hosting nothing (almost all of them) pay 4 bytes
//
// One slab serves the whole network across all tile shards; ApAgent keeps
// only immutable identity plus a (slab, slot) reference.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/postbox.hpp"

namespace citymesh::core {

/// Failure-injection modes for the security experiments (§1 "Security").
enum class AgentBehavior : std::uint8_t {
  kNormal,
  kCompromisedDrop,  ///< receives but never rebroadcasts or delivers
};

class AgentStateSlab {
 public:
  explicit AgentStateSlab(std::size_t ap_count)
      : behavior_(ap_count, AgentBehavior::kNormal),
        seen_counts_(ap_count, 0),
        postbox_head_(ap_count, kNone),
        stripes_(1) {}

  std::size_t ap_count() const { return behavior_.size(); }

  void set_behavior(std::uint32_t ap, AgentBehavior b) { behavior_[ap] = b; }
  AgentBehavior behavior(std::uint32_t ap) const { return behavior_[ap]; }

  /// Duplicate suppression: records the sighting and returns true on the
  /// first time (ap, message_id) is seen, false for a duplicate.
  bool mark_seen(std::uint32_t ap, std::uint32_t message_id) {
    auto& stripe = stripes_[ap_stripe_ != nullptr ? ap_stripe_[ap] : 0];
    const std::uint64_t key =
        (static_cast<std::uint64_t>(message_id) << 32) | ap;
    if (!stripe.insert(key).second) return false;
    ++seen_counts_[ap];
    return true;
  }

  /// Number of distinct messages this AP has seen (diagnostics).
  std::size_t seen_count(std::uint32_t ap) const { return seen_counts_[ap]; }

  /// Stripe the dup filter for tiled runs: `ap_stripe[ap]` names the stripe
  /// (tile) whose owning thread is the only one that ever processes that
  /// AP's receptions. The table must outlive the slab (shardx's TilePlan
  /// does). Must be called before any mark_seen in the tiled regime, and
  /// carries existing sightings over so a mid-run re-stripe cannot
  /// un-duplicate messages.
  void set_stripes(const std::uint32_t* ap_stripe, std::size_t stripe_count) {
    std::vector<std::unordered_set<std::uint64_t>> fresh(
        stripe_count > 0 ? stripe_count : 1);
    for (const auto& stripe : stripes_) {
      for (const std::uint64_t key : stripe) {
        const std::uint32_t ap = static_cast<std::uint32_t>(key);
        fresh[ap_stripe != nullptr ? ap_stripe[ap] : 0].insert(key);
      }
    }
    stripes_ = std::move(fresh);
    ap_stripe_ = ap_stripe;
  }

  /// Host a postbox at `ap`; a box with an already-hosted tag replaces the
  /// previous one (matching the old per-agent map semantics).
  void host_postbox(std::uint32_t ap, std::shared_ptr<Postbox> box);

  std::shared_ptr<Postbox> postbox_for_tag(std::uint32_t ap, std::uint32_t tag) const {
    for (std::uint32_t e = postbox_head_[ap]; e != kNone; e = entries_[e].next) {
      if (entries_[e].tag == tag) return entries_[e].box;
    }
    return nullptr;
  }

  /// Visit every postbox hosted at `ap` (geo-broadcast delivery).
  template <typename Fn>
  void for_each_postbox(std::uint32_t ap, Fn&& fn) const {
    for (std::uint32_t e = postbox_head_[ap]; e != kNone; e = entries_[e].next) {
      fn(entries_[e].box);
    }
  }

 private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct PostboxEntry {
    std::shared_ptr<Postbox> box;
    std::uint32_t tag = 0;
    std::uint32_t next = kNone;
  };

  std::vector<AgentBehavior> behavior_;
  std::vector<std::uint32_t> seen_counts_;
  std::vector<std::uint32_t> postbox_head_;  ///< entry index or kNone
  std::vector<PostboxEntry> entries_;
  std::vector<std::unordered_set<std::uint64_t>> stripes_;
  const std::uint32_t* ap_stripe_ = nullptr;  ///< nullptr: everything in stripe 0
};

}  // namespace citymesh::core
