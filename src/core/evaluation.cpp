#include "core/evaluation.hpp"

#include <algorithm>

#include "geo/stats.hpp"

namespace citymesh::core {

double CityEvaluation::median_overhead() const { return geo::median(overheads); }
double CityEvaluation::median_header_bits() const { return geo::median(header_bits); }

namespace {

CityEvaluation evaluate_with_network(CityMeshNetwork& network,
                                     const EvaluationConfig& config) {
  const osmx::City& city = network.city();
  CityEvaluation eval;
  eval.city = city.name();
  eval.buildings = city.building_count();

  eval.aps = network.aps().ap_count();
  eval.ap_islands = network.aps().components().count;
  for (const std::size_t size : network.aps().components().sizes()) {
    if (size >= 8) ++eval.ap_major_islands;
  }

  geo::Rng rng{config.seed};
  const std::size_t n = city.building_count();
  if (n < 2) return eval;

  // --- Reachability over random unique building pairs --------------------
  struct Pair {
    BuildingId a;
    BuildingId b;
  };
  std::vector<Pair> reachable_pairs;
  for (std::size_t i = 0; i < config.reachability_pairs; ++i) {
    const auto a = static_cast<BuildingId>(rng.uniform_int(n));
    auto b = static_cast<BuildingId>(rng.uniform_int(n));
    while (b == a) b = static_cast<BuildingId>(rng.uniform_int(n));
    ++eval.pairs_tested;

    const auto ap_a = network.aps().representative_ap(city, a);
    const auto ap_b = network.aps().representative_ap(city, b);
    if (ap_a && ap_b && network.aps().connected(*ap_a, *ap_b)) {
      ++eval.pairs_reachable;
      reachable_pairs.push_back({a, b});
    }
  }

  // --- Deliverability on a subset of the reachable pairs -----------------
  const std::size_t to_test = std::min(config.deliverability_pairs, reachable_pairs.size());
  for (std::size_t i = 0; i < to_test; ++i) {
    const Pair pair = reachable_pairs[i];
    // Fresh recipient identity per pair; payloads are opaque to routing so a
    // small fixed blob suffices (sealing is exercised by its own tests).
    const auto keys = cryptox::KeyPair::from_seed(config.seed * 7919 + i);
    const PostboxInfo info = PostboxInfo::for_key(keys, pair.b);
    if (!network.register_postbox(info)) continue;

    static constexpr std::string_view kPayload = "citymesh-eval-payload";
    const std::span<const std::uint8_t> payload{
        reinterpret_cast<const std::uint8_t*>(kPayload.data()), kPayload.size()};
    ++eval.deliveries_attempted;
    const SendOutcome outcome = network.send(pair.a, info, payload);

    if (outcome.route_found) {
      eval.header_bits.push_back(static_cast<double>(outcome.header_bits));
    }
    if (outcome.delivered) {
      ++eval.deliveries_succeeded;
      if (const auto oh = outcome.overhead()) eval.overheads.push_back(*oh);
    }
  }
  eval.metrics = network.merged_metrics();
  eval.compile_metrics = network.compiler().snapshot();
  return eval;
}

}  // namespace

CityEvaluation evaluate_city(const osmx::City& city, const EvaluationConfig& config) {
  CityMeshNetwork network{city, config.network};
  return evaluate_with_network(network, config);
}

CityEvaluation evaluate_city(std::shared_ptr<const CompiledCity> compiled,
                             const EvaluationConfig& config) {
  CityMeshNetwork network{std::move(compiled), config.network};
  return evaluate_with_network(network, config);
}

NetworkSnapshot evaluate_snapshot(CityMeshNetwork& network, const SnapshotConfig& config) {
  NetworkSnapshot snap;
  snap.at_s = network.sim_now();
  snap.aps_total = network.aps().ap_count();
  snap.aps_up = network.aps_up();

  const osmx::City& city = network.city();
  const std::size_t n = city.building_count();
  if (n < 2) return snap;

  // Live AP connectivity: union the surviving links (both endpoints up).
  // Down APs keep their vertex but join nothing, so they are unreachable.
  const graphx::Graph& graph = network.aps().graph();
  graphx::UnionFind uf{graph.vertex_count()};
  for (graphx::VertexId v = 0; v < graph.vertex_count(); ++v) {
    if (!network.ap_up(v)) continue;
    for (const graphx::Edge& e : graph.neighbors(v)) {
      if (e.to < v || !network.ap_up(e.to)) continue;
      uf.unite(v, e.to);
    }
  }

  geo::Rng rng{config.seed};
  struct Pair {
    BuildingId a;
    BuildingId b;
  };
  std::vector<Pair> reachable;
  for (std::size_t i = 0; i < config.pairs; ++i) {
    const auto a = static_cast<BuildingId>(rng.uniform_int(n));
    auto b = static_cast<BuildingId>(rng.uniform_int(n));
    while (b == a) b = static_cast<BuildingId>(rng.uniform_int(n));
    ++snap.pairs_tested;

    const auto ap_a = network.live_ap(a);
    const auto ap_b = network.live_ap(b);
    if (ap_a && ap_b && uf.connected(*ap_a, *ap_b)) {
      ++snap.pairs_reachable;
      reachable.push_back({a, b});
    }
  }

  static constexpr std::string_view kPayload = "citymesh-scenario-payload";
  const std::span<const std::uint8_t> payload{
      reinterpret_cast<const std::uint8_t*>(kPayload.data()), kPayload.size()};
  const std::size_t to_test = std::min(config.deliver_pairs, reachable.size());
  for (std::size_t i = 0; i < to_test; ++i) {
    const Pair pair = reachable[i];
    const auto keys = cryptox::KeyPair::from_seed(config.seed * 6151 + i);
    const PostboxInfo info = PostboxInfo::for_key(keys, pair.b);
    if (!network.register_postbox(info)) continue;

    ++snap.deliveries_attempted;
    const SendOutcome outcome = network.send(pair.a, info, payload);
    if (outcome.delivered) {
      ++snap.deliveries_succeeded;
      continue;
    }
    if (!config.reliable_rescue) continue;

    // Does widening the conduit route the flood around the outage? The
    // escalation needs an ack path, so the sender registers its own postbox.
    const auto sender_keys = cryptox::KeyPair::from_seed(config.seed * 9973 + i);
    const PostboxInfo sender_info = PostboxInfo::for_key(sender_keys, pair.a);
    if (!network.register_postbox(sender_info)) continue;
    ++snap.rescues_attempted;
    const ReliableOutcome rescue =
        network.send_reliable(pair.a, info, payload, sender_info);
    if (rescue.delivered) ++snap.rescues_succeeded;
  }
  return snap;
}

MultiSeedEvaluation evaluate_city_seeds(const osmx::City& city,
                                        const EvaluationConfig& config,
                                        std::size_t seed_count) {
  MultiSeedEvaluation multi;
  multi.city = city.name();
  multi.seeds = seed_count;
  for (std::size_t s = 0; s < seed_count; ++s) {
    EvaluationConfig cfg = config;
    cfg.seed = config.seed + s * 1000003;  // decorrelate pair sampling
    cfg.network.placement.seed = config.network.placement.seed + s * 7919;
    cfg.network.medium.seed = config.network.medium.seed + s * 104729;
    const CityEvaluation eval = evaluate_city(city, cfg);
    multi.reachability.add(eval.reachability());
    multi.deliverability.add(eval.deliverability());
    if (!eval.overheads.empty()) multi.median_overhead.add(eval.median_overhead());
    if (!eval.header_bits.empty()) multi.median_header_bits.add(eval.median_header_bits());
    multi.metrics.merge(eval.metrics);
  }
  return multi;
}

CapacitySummary summarize_capacity(std::span<const FlowRecord> flows,
                                   double duration_s, std::uint64_t queue_drops,
                                   std::uint64_t deferrals, double airtime_s) {
  CapacitySummary out;
  out.duration_s = duration_s;
  out.queue_drops = queue_drops;
  out.deferrals = deferrals;
  out.airtime_s = airtime_s;

  std::vector<double> latencies;
  std::vector<double> overheads;
  double delivered_bytes = 0.0;
  for (const FlowRecord& f : flows) {
    ++out.flows_offered;
    out.transmissions += f.transmissions;
    if (!f.injected) continue;
    ++out.flows_injected;
    if (!f.delivered) continue;
    ++out.flows_delivered;
    delivered_bytes += static_cast<double>(f.payload_bytes);
    latencies.push_back(f.latency_s);
    if (const auto oh = f.overhead()) overheads.push_back(*oh);
  }
  if (duration_s > 0.0) {
    out.offered_load_per_s = static_cast<double>(out.flows_offered) / duration_s;
    out.goodput_bytes_per_s = delivered_bytes / duration_s;
  }
  if (!latencies.empty()) {
    out.latency_p50_s = geo::quantile(latencies, 0.5);
    out.latency_p99_s = geo::quantile(latencies, 0.99);
  }
  if (!overheads.empty()) {
    out.overhead_median = geo::quantile(overheads, 0.5);
  }
  return out;
}

}  // namespace citymesh::core
