// Conduit compression and reconstruction (§3 step 2, Figure 4).
//
// A building route (the full Dijkstra output) is compressed into *waypoint
// buildings*. Consecutive buildings that lie in approximately the same
// direction collapse into a single conduit: the oriented rectangle of width
// W between two waypoints' centroids. The compression loses precision on
// purpose — a wider region tolerates mispredicted AP connectivity between
// buildings.
//
// ConduitPath is the receiver-side reconstruction: an AP takes the waypoint
// ids from the packet header, looks up their centroids in its cached map,
// rebuilds the rectangles, and rebroadcasts iff its own position falls
// inside any of them (§3 step 3).
#pragma once

#include <vector>

#include "core/building_graph.hpp"
#include "geo/geometry.hpp"

namespace citymesh::core {

struct ConduitConfig {
  /// Conduit width W; "comparable to the Wi-Fi transmission range, 50 m in
  /// our implementation" (§3).
  double width_m = 50.0;
};

/// Compress a building route into waypoint building ids.
///
/// Algorithm (verbatim from §3): place the starting edge of the first
/// conduit on the centroid of the first building; find the *latest* building
/// in the route whose conduit covers every intermediate building's centroid;
/// that building becomes the next waypoint; repeat until the last building.
/// The first and last buildings are always waypoints.
std::vector<BuildingId> compress_route(const std::vector<BuildingId>& route,
                                       const BuildingGraph& map,
                                       const ConduitConfig& config);

/// The geometric union of the conduits defined by a waypoint sequence.
class ConduitPath {
 public:
  /// An empty path (no conduits, default width): what a malformed or
  /// un-resolvable header compiles to (core/compiled_message).
  ConduitPath() = default;

  ConduitPath(const std::vector<BuildingId>& waypoints, const BuildingGraph& map,
              double width_m);

  /// True when `p` lies inside any conduit — the rebroadcast predicate.
  bool contains(geo::Point p) const;

  const std::vector<geo::OrientedRect>& conduits() const { return conduits_; }
  double width() const { return width_m_; }

  /// Sum of conduit lengths (route length proxy used by diagnostics).
  double total_length() const;

  /// Loose bounding box of the whole path; nullopt for an empty path.
  std::optional<geo::Rect> bounds() const;

 private:
  std::vector<geo::OrientedRect> conduits_;
  double width_m_ = 50.0;
};

}  // namespace citymesh::core
