#include "core/conduit.hpp"

#include <stdexcept>

namespace citymesh::core {

std::vector<BuildingId> compress_route(const std::vector<BuildingId>& route,
                                       const BuildingGraph& map,
                                       const ConduitConfig& config) {
  if (config.width_m <= 0.0) {
    throw std::invalid_argument{"compress_route: conduit width must be > 0"};
  }
  if (route.size() <= 1) return route;

  // The suffix scan below reads each centroid O(n^2) times; map.centroid()
  // is a bounds-checked hash-free lookup but still a function call per read.
  // Hoist them once into a scratch vector indexed like `route`.
  std::vector<geo::Point> pts;
  pts.reserve(route.size());
  for (const BuildingId b : route) pts.push_back(map.centroid(b));

  std::vector<BuildingId> waypoints;
  waypoints.push_back(route.front());

  std::size_t i = 0;  // index (into route) of the current waypoint
  while (i + 1 < route.size()) {
    const geo::Point start = pts[i];
    // The *latest* j whose conduit covers every intermediate centroid.
    // Coverage is not monotone in j (a later, better-aligned endpoint can
    // cover buildings an earlier one missed), so scan the whole suffix —
    // exactly the paper's "latest building in the route at which we can
    // place the ending edge".
    std::size_t best = i + 1;
    for (std::size_t j = i + 2; j < route.size(); ++j) {
      const geo::OrientedRect conduit{start, pts[j], config.width_m};
      // Axis-aligned early reject: the slightly-expanded loose bbox is a
      // strict superset of the conduit, so a bbox miss can skip the exact
      // dot-product test without ever changing the coverage answer.
      const geo::Rect box = conduit.bounds().expanded(1e-6);
      bool covers = true;
      for (std::size_t k = i + 1; k < j; ++k) {
        if (!box.contains(pts[k]) || !conduit.contains(pts[k])) {
          covers = false;
          break;
        }
      }
      if (covers) best = j;
    }
    waypoints.push_back(route[best]);
    i = best;
  }
  return waypoints;
}

ConduitPath::ConduitPath(const std::vector<BuildingId>& waypoints, const BuildingGraph& map,
                         double width_m)
    : width_m_(width_m) {
  if (width_m <= 0.0) throw std::invalid_argument{"ConduitPath: width must be > 0"};
  conduits_.reserve(waypoints.size() > 0 ? waypoints.size() - 1 : 0);
  for (std::size_t i = 0; i + 1 < waypoints.size(); ++i) {
    const geo::Point from = map.centroid(waypoints[i]);
    const geo::Point to = map.centroid(waypoints[i + 1]);
    if (geo::distance2(from, to) == 0.0) continue;  // coincident centroids
    conduits_.emplace_back(from, to, width_m);
  }
}

bool ConduitPath::contains(geo::Point p) const {
  for (const auto& c : conduits_) {
    if (c.contains(p)) return true;
  }
  return false;
}

double ConduitPath::total_length() const {
  double total = 0.0;
  for (const auto& c : conduits_) total += c.length();
  return total;
}

std::optional<geo::Rect> ConduitPath::bounds() const {
  std::optional<geo::Rect> acc;
  for (const auto& c : conduits_) {
    const geo::Rect b = c.bounds();
    if (!acc) {
      acc = b;
    } else {
      acc->min.x = std::min(acc->min.x, b.min.x);
      acc->min.y = std::min(acc->min.y, b.min.y);
      acc->max.x = std::max(acc->max.x, b.max.x);
      acc->max.y = std::max(acc->max.y, b.max.y);
    }
  }
  return acc;
}

}  // namespace citymesh::core
