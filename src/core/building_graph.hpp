// The building graph (§3 step 2).
//
// Vertices are buildings; an edge predicts that APs in the two buildings can
// hear each other. Crucially this graph is derived from the *map alone* —
// footprints, the configured transmission range, and the assumed AP density —
// never from the realized AP placement. That asymmetry is the paper's core
// idea: routing state is map data, not network state.
//
// Edge weights are the cubed centroid distance by default: cubing makes one
// 100 m hop cost 8x two 50 m hops, so Dijkstra prefers chains of short,
// reliably-connected hops (§3: "Cubed-distance edge weights prioritize
// shorter edges for connectivity between buildings through their APs").
#pragma once

#include <cstdint>
#include <vector>

#include "geo/spatial_grid.hpp"
#include "graphx/graph.hpp"
#include "graphx/shortest_path.hpp"
#include "osmx/building.hpp"

namespace citymesh::core {

using BuildingId = osmx::BuildingId;

/// Edge-weight policy; kCubed is the paper's choice, the others exist for
/// the ablation benches.
enum class EdgeWeight : std::uint8_t {
  kLinear,
  kSquared,
  kCubed,
};

double edge_cost(double distance_m, EdgeWeight policy);

struct BuildingGraphConfig {
  /// Assumed AP transmission range (the paper evaluates 50 m).
  double transmission_range_m = 50.0;
  /// Two buildings get an edge when the gap between their footprints is
  /// predicted to be coverable: centroid distance <= connect_factor * range
  /// + the two buildings' effective radii. The effective radius accounts for
  /// APs sitting anywhere inside the footprint, not just at the centroid.
  double connect_factor = 1.0;
  EdgeWeight weight = EdgeWeight::kCubed;
};

/// The map-derived routing substrate shared by senders and APs.
class BuildingGraph {
 public:
  BuildingGraph(const osmx::City& city, const BuildingGraphConfig& config);

  const graphx::Graph& graph() const { return graph_; }
  const BuildingGraphConfig& config() const { return config_; }
  std::size_t building_count() const { return centroids_.size(); }

  /// Centroid of a building (what APs look up when reconstructing conduits).
  geo::Point centroid(BuildingId id) const { return centroids_.at(id); }
  const std::vector<geo::Point>& centroids() const { return centroids_; }

  /// Effective radius used in the connectivity prediction.
  double effective_radius(BuildingId id) const { return radii_.at(id); }

  /// Spatial index over building centroids. Built once for edge discovery
  /// and kept for message compilation (conduit bounding-box queries in
  /// core/compiled_message) — both want cells near the transmission range.
  const geo::SpatialGrid& centroid_grid() const { return centroid_grid_; }

 private:
  BuildingGraphConfig config_;
  std::vector<geo::Point> centroids_;
  std::vector<double> radii_;
  geo::SpatialGrid centroid_grid_;
  graphx::Graph graph_;
};

}  // namespace citymesh::core
