#include "core/ap_agent.hpp"

namespace citymesh::core {

bool should_rebroadcast(const wire::PacketHeader& header, const BuildingGraph& map,
                        BuildingId ap_building) {
  // A corrupt width is header corruption, not a programming error: drop the
  // packet instead of letting the ConduitPath ctor throw out of the event
  // loop (the compile path classifies it as a malformed reception).
  if (header.conduit_width_m <= 0.0) return false;
  if (ap_building >= map.building_count()) return false;
  for (const BuildingId wp : header.waypoints) {
    if (wp >= map.building_count()) return false;  // stale/foreign map
  }
  const ConduitPath path{header.waypoints, map, header.conduit_width_m};
  return path.contains(map.centroid(ap_building));
}

bool in_broadcast_region(const wire::PacketHeader& header, const BuildingGraph& map,
                         BuildingId ap_building) {
  if (!header.has_flag(wire::PacketFlag::kBroadcast)) return false;
  if (header.waypoints.empty()) return false;
  if (ap_building >= map.building_count()) return false;
  const BuildingId center = header.waypoints.back();
  if (center >= map.building_count()) return false;
  return geo::distance(map.centroid(ap_building), map.centroid(center)) <=
         static_cast<double>(header.broadcast_radius_m);
}

namespace {

/// Payload layout of a kLocationUpdate message: 4-byte little-endian
/// building id of the device's current location.
std::optional<BuildingId> parse_location_update(std::span<const std::uint8_t> payload) {
  if (payload.size() < 4) return std::nullopt;
  return static_cast<BuildingId>(payload[0]) |
         (static_cast<BuildingId>(payload[1]) << 8) |
         (static_cast<BuildingId>(payload[2]) << 16) |
         (static_cast<BuildingId>(payload[3]) << 24);
}

}  // namespace

MessageCompiler& ApAgent::compiler() {
  if (compiler_ != nullptr) return *compiler_;
  if (!own_compiler_) own_compiler_ = std::make_shared<MessageCompiler>(*map_);
  return *own_compiler_;
}

AgentAction ApAgent::on_receive(const MeshPacket& packet, double now_s) {
  AgentAction action;
  MessageCompiler& comp = compiler();
  std::shared_ptr<const CompiledMessage> msg = packet.compiled;
  if (!msg) {
    try {
      msg = comp.compile_bytes(packet.header_bytes);
    } catch (const wire::DecodeError&) {
      action.malformed = true;
      return action;
    }
  }
  if (msg->malformed) {
    // Decodable bytes carrying a corrupt conduit width: same per-reception
    // malformed drop as undecodable bytes (count it — compile_bytes only
    // counts the decode failure case).
    comp.count_malformed();
    action.malformed = true;
    return action;
  }
  const wire::PacketHeader& header = msg->header;
  action.message_id = header.message_id;
  action.flags = header.flags;

  AgentStateSlab& st = state();
  if (!st.mark_seen(slot_, header.message_id)) {
    action.duplicate = true;
    return action;
  }

  if (st.behavior(slot_) == AgentBehavior::kCompromisedDrop) {
    // A compromised node silently swallows traffic; the seen-set insert
    // above means it also poisons retries through itself, matching the
    // paper's threat model for routing resilience.
    return action;
  }

  const bool is_broadcast = header.has_flag(wire::PacketFlag::kBroadcast);

  // Delivery into hosted postboxes.
  const auto store_into = [&](const std::shared_ptr<Postbox>& box) {
    StoredMessage msg;
    msg.message_id = header.message_id;
    msg.urgent = header.has_flag(wire::PacketFlag::kUrgent);
    msg.flags = header.flags;
    msg.stored_at_s = now_s;
    msg.sealed_payload = packet.payload;
    if (box->store(std::move(msg))) {
      ++action.delivered_count;
      action.delivered = true;
    }
  };

  if (is_broadcast) {
    // Geo-broadcast: every postbox hosted inside the region receives a copy.
    if (msg->broadcast_member(building_)) {
      st.for_each_postbox(slot_, store_into);
    }
  } else if (!header.waypoints.empty() && building_ == header.waypoints.back()) {
    // Unicast: this AP sits in the destination building (last waypoint) and
    // hosts the addressed postbox.
    if (const auto box = postbox_for_tag(header.postbox_tag)) {
      store_into(box);
      // A location update refreshes the postbox's cache of where its owner
      // last checked in (§3 step 4, enabling push forwarding).
      if (header.has_flag(wire::PacketFlag::kLocationUpdate)) {
        if (const auto at = parse_location_update(packet.payload);
            at && *at < map_->building_count()) {
          box->update_owner_location(map_->centroid(*at), now_s);
        }
      }
    }
  }

  // The collapsed rebroadcast predicate: was decode + ConduitPath rebuild +
  // point-in-rect per reception, now hash-set lookups against the compiled
  // member sets (bit-identical membership — see compile_message).
  comp.count_membership_lookup();
  bool rebroadcast = msg->conduit_member(building_);
  if (!rebroadcast && is_broadcast) {
    comp.count_membership_lookup();
    rebroadcast = msg->broadcast_member(building_);
  }
  action.rebroadcast = rebroadcast;
  return action;
}

}  // namespace citymesh::core
