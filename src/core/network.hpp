// End-to-end CityMesh network facade (§3 steps 1-4 over the §4 simulator).
//
// Owns the full stack for one city: the building graph (map-derived routing
// state), the realized AP placement (ground truth), one ApAgent per AP, the
// discrete-event broadcast medium, and the postbox registry. `send` runs one
// message through the whole pipeline — plan, compress, encode, inject,
// event-simulate the conduit flood — and reports the paper's metrics
// (delivery, transmission overhead vs. the ideal unicast path, header bits).
//
// Beyond the paper's baseline, the facade implements three §6/future-work
// extensions:
//   - acknowledgments: the destination sends an ack back along the reversed
//     conduit (PacketFlag::kAckRequest), and `send_reliable` escalates the
//     conduit width until an ack arrives;
//   - geo-broadcast: `broadcast` floods a disc around a center building,
//     reaching every postbox in the region (emergency notices, §1);
//   - rebroadcast suppression: every rebroadcast decision runs through a
//     pluggable relayx::RebroadcastPolicy (NetworkConfig::relay) — flood
//     reproduces the paper byte-for-byte, the suppression policies implement
//     the "currently all the APs within a building rebroadcast ... this
//     overhead can be reduced" reduction. The legacy
//     NetworkConfig::building_suppression flag maps onto the
//     building-backoff policy.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>

#include "core/ap_agent.hpp"
#include "core/building_graph.hpp"
#include "core/compiled_message.hpp"
#include "core/postbox.hpp"
#include "core/packet_pool.hpp"
#include "core/route_planner.hpp"
#include "mesh/ap_network.hpp"
#include "obsx/metrics.hpp"
#include "obsx/trace.hpp"
#include "qfgeo/qfgeo.hpp"
#include "relayx/policy.hpp"
#include "shardx/engine.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"

namespace citymesh::core {

/// Live operational state of one AP. APs start up; disaster scenarios
/// (src/faultx) flip them down and back over simulated time. A down AP
/// neither receives nor rebroadcasts — links involving it are filtered at
/// transmit/delivery time by the medium, never baked into the mesh.
enum class ApStatus : std::uint8_t {
  kUp,
  kDown,
};

/// A region whose radio links are degraded (interference, partial power):
/// every link with an endpoint inside suffers `extra_loss` on top of the
/// medium's base loss probability.
struct DegradedRegion {
  geo::Polygon region;
  double extra_loss = 0.0;
  bool active = true;
};

/// The live protocol family a network runs (src/qfgeo is the second one).
/// kConduit is the paper's conduit-scoped flood — the default, and the
/// byte-identical legacy code path (golden-digest gated). kQfgeo replaces
/// route planning with QF-Geo bounded-region greedy forwarding: the header
/// carries only {source, destination} waypoints, the compiled membership
/// set becomes the forwarding ellipse, and in-region receivers elect a
/// forwarder by distance-to-destination with a queue-occupancy penalty,
/// falling back to a scoped in-region flood at local minima.
enum class Protocol : std::uint8_t {
  kConduit,
  kQfgeo,
};

/// Canonical CLI/spec name ("conduit", "qfgeo").
std::string_view to_string(Protocol protocol);
std::optional<Protocol> protocol_from(std::string_view name);

struct NetworkConfig {
  mesh::PlacementConfig placement;
  BuildingGraphConfig graph;
  ConduitConfig conduit;
  sim::MediumConfig medium;
  /// Per-send simulation budget; a conduit flood quiesces long before this.
  sim::SimTime max_sim_time_s = 120.0;
  std::size_t max_events_per_send = 20'000'000;
  std::uint64_t seed = 99;  ///< message-id / backoff stream

  /// Rebroadcast-suppression policy (src/relayx). The default (flood) is
  /// the paper's unconditional conduit rebroadcast, byte-identical to the
  /// pre-relayx pipeline. relay.seed is overwritten with `seed` at network
  /// construction so policy draws follow the run's determinism contract.
  relayx::PolicyConfig relay;

  /// Legacy alias (overhead reduction, §4/§6): true selects the
  /// building-backoff policy with the two parameters below, unless `relay`
  /// already names a non-flood policy. Kept so existing configs, the
  /// --suppression CLI flag, and the suppression tests keep working.
  bool building_suppression = false;
  sim::SimTime suppression_backoff_s = 0.02;
  double suppression_radius_m = 15.0;

  /// Capacity of the network's trace ring (events). 0 = auto-size from the
  /// AP count. The ring keeps the latest window when a run outgrows it.
  std::size_t trace_capacity = 0;

  /// Tile shards for intra-run parallelism (src/shardx). 1 (default) is the
  /// legacy single event loop, byte-identical to the pre-shardx pipeline.
  /// K >= 2 partitions the city into K building-atomic tiles, each with its
  /// own simulator/medium/policy, synchronized by conservative-lookahead
  /// windows; merged run manifests are invariant across K >= 2 (hashed link
  /// randomness, per-AP policy streams), and match K = 1 exactly in the
  /// draw-free regime (flood policy, loss_probability = 0, jitter_s = 0).
  /// Live faultx Engine::install is unsupported with shards > 1 (it drives
  /// the legacy simulator); ScenarioEngine::apply_all between runs is fine.
  std::size_t shards = 1;

  /// How plan_tiles partitions the city when shards > 1. kGrid is the
  /// original uniform centroid grid; kAdaptive balances tiles by estimated
  /// event rate (AP count + radio degree per building) so dense downtown
  /// tiles stop dominating the window barrier. Digests are invariant across
  /// modes for every K >= 2 — tiled behavior depends only on hashed
  /// per-link draws and per-AP streams, never on which tile hosts an AP.
  shardx::TilingMode tiling = shardx::TilingMode::kGrid;

  /// Which protocol family this network runs. kConduit (default) leaves
  /// every code path byte-identical to the pre-qfgeo pipeline; kQfgeo
  /// routes sends/injections through QF-Geo bounded-region forwarding.
  /// The qfgeo.* counters are registered only under kQfgeo, so conduit
  /// manifests serialize exactly the legacy key set.
  Protocol protocol = Protocol::kConduit;

  /// Event-queue implementation for this network's simulator(s) — the
  /// coordinator loop and every shard loop. Both kinds realize the identical
  /// (time, seq) total order (sim/scheduler.hpp), so this knob trades queue
  /// cost only; digests never move.
  sim::SchedulerKind scheduler = sim::kDefaultScheduler;
  /// Allocate MeshPackets from a fixed-size pool (core/packet_pool.hpp)
  /// instead of make_shared. Exhaustion falls back to the heap, counted.
  bool pooled_packets = true;
  std::size_t packet_pool_capacity = 4096;

  /// Forwarding-region shape (kQfgeo only).
  qfgeo::RegionConfig qfgeo_region;
  /// Greedy-election timing + capacity penalty (kQfgeo only).
  qfgeo::ForwarderConfig qfgeo_forward;
};

/// The immutable "compiled" form of one city: the generated footprints plus
/// everything derived deterministically from them — the map-derived building
/// graph and the realized AP placement. Compiling is the expensive prefix of
/// every run (graph construction dominates small sweeps); a CompiledCity is
/// strictly read-only after construction, so one instance can back any
/// number of CityMeshNetworks concurrently (src/runx shares one per city
/// across its worker threads via runx::CityCache).
struct CompiledCity {
  osmx::City city;
  BuildingGraph map;
  mesh::ApNetwork aps;

  CompiledCity(osmx::City city_in, const BuildingGraphConfig& graph_config,
               const mesh::PlacementConfig& placement)
      : city(std::move(city_in)),
        map(city, graph_config),
        aps(mesh::place_aps(city, placement)) {}
};

/// Compile a city against a network config's graph + placement parameters.
std::shared_ptr<const CompiledCity> compile_city(osmx::City city,
                                                 const NetworkConfig& config);

struct SendOptions {
  bool urgent = false;
  bool compress = true;          ///< false = raw building list (ablation)
  bool collect_trace = false;    ///< record per-AP roles for Figure 7
  /// Override the conduit width for this send (multiple of 10 m, <= 150).
  std::optional<double> conduit_width;
  /// Ask the destination to send an ack back along the reversed route.
  /// Requires ack_to: the sender's own postbox (must be registered).
  bool request_ack = false;
  std::optional<PostboxInfo> ack_to;
};

struct SendOutcome {
  bool route_found = false;
  bool source_has_ap = false;
  bool delivered = false;
  double delivery_time_s = 0.0;

  std::uint32_t message_id = 0;
  PlannedRoute route;
  std::size_t header_bits = 0;

  /// Broadcasts attributable to this send, including the source injection
  /// and (when an ack was requested) the ack's own flood.
  std::size_t transmissions = 0;
  /// Minimum AP-graph hop count source->destination (ideal unicast path),
  /// nullopt when the AP graph is disconnected between the endpoints.
  std::optional<std::size_t> min_hops;
  /// transmissions / min_hops — the paper's transmission-overhead ratio.
  std::optional<double> overhead() const {
    if (!min_hops || *min_hops == 0) return std::nullopt;
    return static_cast<double>(transmissions) / static_cast<double>(*min_hops);
  }

  /// Ack status (only when SendOptions::request_ack).
  bool ack_received = false;
  std::uint32_t ack_message_id = 0;

  /// Figure-7 per-AP roles (only when SendOptions::collect_trace); derived
  /// from the obsx trace stream via roles_from_trace.
  std::vector<mesh::ApId> rebroadcast_aps;
  std::vector<mesh::ApId> received_only_aps;
};

/// Per-AP roles of one message, reconstructed from a recorded trace: which
/// APs put the packet on the air and which only heard it. This is how
/// Figure 7 is rendered — from the event stream, not live bookkeeping.
struct TraceRoles {
  std::vector<mesh::ApId> rebroadcast;     ///< nodes with a kTx, first-tx order
  std::vector<mesh::ApId> received_only;   ///< nodes with kRx but no kTx
};

TraceRoles roles_from_trace(std::span<const obsx::TraceEvent> events,
                            std::uint32_t message_id);

/// Result of `send_reliable`: width-escalating retries until acked.
struct ReliableOutcome {
  bool delivered = false;     ///< any attempt reached the destination
  bool acknowledged = false;  ///< the sender saw an ack
  std::size_t attempts = 0;
  std::vector<SendOutcome> tries;
};

/// Immediate result of injecting one flow into the live simulation
/// (src/trafficx workloads). Unlike `send`, injection does not run the
/// event loop: many flows coexist in flight and contend for airtime; the
/// caller runs the simulator once and reads each flow's FlowState after.
struct InjectResult {
  bool route_found = false;
  bool source_has_ap = false;
  /// 0 when the flow could not be injected (no route / dead source).
  std::uint32_t message_id = 0;
  std::size_t header_bits = 0;
  bool accepted() const { return message_id != 0; }
};

/// Delivery bookkeeping of one injected flow, updated live as the
/// simulation progresses.
struct FlowState {
  double injected_at_s = 0.0;
  bool delivered = false;
  double delivery_time_s = 0.0;
  std::size_t postboxes_reached = 0;
  /// Broadcasts of this flow's message actually put on the air (counted by
  /// the medium's tx observer; deferred-then-aired counts, queue-dropped
  /// does not).
  std::size_t transmissions = 0;
};

/// Result of a geo-broadcast.
struct BroadcastOutcome {
  bool route_found = false;
  bool source_has_ap = false;
  std::uint32_t message_id = 0;
  std::size_t transmissions = 0;
  /// Distinct postboxes inside the region that stored the message.
  std::size_t postboxes_reached = 0;
  PlannedRoute route;
};

class CityMeshNetwork {
 public:
  /// Compile-and-own: builds the building graph + AP placement for this one
  /// network (copies the city). Equivalent to the shared-city constructor
  /// below with a freshly compiled city.
  CityMeshNetwork(const osmx::City& city, NetworkConfig config);

  /// Share a pre-compiled city: the network holds a reference-counted,
  /// read-only CompiledCity and builds only its own dynamic state (agents,
  /// medium, fault status, postboxes). `config.graph`/`config.placement`
  /// must be the parameters the city was compiled with; they are not
  /// re-applied. This is what makes sweep workers cheap (src/runx).
  CityMeshNetwork(std::shared_ptr<const CompiledCity> compiled, NetworkConfig config);

  const osmx::City& city() const { return compiled_->city; }
  const BuildingGraph& map() const { return compiled_->map; }
  const mesh::ApNetwork& aps() const { return compiled_->aps; }
  /// The shared compiled city backing this network.
  const std::shared_ptr<const CompiledCity>& compiled() const { return compiled_; }
  const RoutePlanner& planner() const { return planner_; }
  /// The legacy single event loop. With shards > 1 this simulator is idle
  /// (tiles own their sims); drive tiled runs via schedule_control/run_until.
  sim::Simulator& simulator() { return sim_; }
  const NetworkConfig& config() const { return config_; }

  // --- Shard-agnostic run driving (src/shardx) ---------------------------
  // These are the only ways trafficx/faultx-style drivers should advance
  // simulated time: with shards == 1 they forward to the legacy simulator
  // verbatim; with shards > 1 they run the tiled window engine.

  /// Number of tile shards (1 = legacy single event loop).
  std::size_t shard_count() const { return shards_.size(); }
  /// Current simulated time (tiled runs: the synchronized window frontier).
  sim::SimTime sim_now() const;
  /// Run the event loop(s) until `until` (inclusive) or `max_events` events.
  /// Returns the number of events executed. Tiled runs merge per-shard
  /// delivery deltas into the network-level outcome state before returning.
  std::size_t run_until(sim::SimTime until,
                        std::size_t max_events = std::numeric_limits<std::size_t>::max());
  /// Schedule a coordinator-level event (workload injection, fault action).
  /// Legacy: plain Simulator::schedule_at. Tiled: runs between windows at
  /// exactly `at`, when no worker is active — the handler may safely touch
  /// any network state (inject flows, flip AP status, read flow states).
  void schedule_control(sim::SimTime at, std::function<void()> fn);
  /// Metrics merged across the network registry and every shard registry in
  /// tile order (shards == 1: exactly metrics().snapshot()).
  obsx::MetricsSnapshot merged_metrics() const;
  /// Trace events merged across shards, sorted by (time, tile) with each
  /// shard's internal order preserved (shards == 1: the network trace).
  std::vector<obsx::TraceEvent> merged_trace_events() const;
  /// Enable/disable tracing on whichever trace buffers are in effect.
  void set_tracing(bool on);
  bool tracing_enabled() const;

  /// Medium counters summed across shards (legacy: the single medium's).
  struct MediumTotals {
    std::size_t transmissions = 0;
    std::size_t deliveries = 0;
    std::size_t deferrals = 0;
    std::size_t queue_drops = 0;
    double airtime_s = 0.0;
  };
  MediumTotals medium_totals() const;

  /// The tile plan driving a sharded network; nullptr when shards == 1.
  const shardx::TilePlan* tile_plan() const {
    return config_.shards > 1 ? &plan_ : nullptr;
  }
  /// Conservative lookahead window width (tiled runs only; kForever when
  /// the tiles are radio-isolated or shards == 1).
  double lookahead_s() const { return lookahead_s_; }

  /// Cumulative worker idle time at window barriers (tiled runs): per
  /// window, the sum over tiles of (slowest tile's wall clock - own wall
  /// clock). High values mean the tile plan is unbalanced — the number
  /// adaptive tiling exists to shrink. Always 0 with shards == 1.
  double barrier_idle_s() const { return barrier_idle_s_; }

  /// One cross-tile reception exchanged at a window barrier, in the
  /// deterministic ingestion order (time, src_tile, seq).
  struct HandoffRecord {
    double time_s = 0.0;
    shardx::TileId src_tile = 0;
    std::uint64_t seq = 0;
    mesh::ApId to = 0;
    mesh::ApId from = 0;
    std::uint32_t message_id = 0;
  };
  /// Record every exchanged handoff into handoff_log() (tests; off by
  /// default — the log grows unboundedly).
  void record_handoffs(bool on) { record_handoffs_ = on; }
  const std::vector<HandoffRecord>& handoff_log() const { return handoff_log_; }
  /// Total cross-tile receptions exchanged at barriers so far.
  std::uint64_t handoffs_exchanged() const { return handoffs_exchanged_; }

  /// Register Bob's postbox: every AP in his building hosts the (shared)
  /// postbox so any of them can cache arriving messages. Returns the shared
  /// postbox, or nullptr when the building has no APs.
  std::shared_ptr<Postbox> register_postbox(const PostboxInfo& info);

  /// The *primary* (first-registered) postbox for an id — typically the
  /// owner's home postbox. nullptr when unknown.
  std::shared_ptr<Postbox> postbox_of(const cryptox::SelfCertifyingId& id) const;

  /// The postbox registered for this id at a specific building (an identity
  /// may hold several: home plus temporary ones while traveling).
  std::shared_ptr<Postbox> postbox_at(const cryptox::SelfCertifyingId& id,
                                      BuildingId building) const;

  /// Send an opaque (typically sealed) payload from a device in
  /// `from_building` to the destination postbox. Runs the event simulation
  /// for this message to quiescence before returning.
  SendOutcome send(BuildingId from_building, const PostboxInfo& to,
                   std::span<const std::uint8_t> payload, const SendOptions& opts = {});

  /// Inject one flow at the current simulated time without running the
  /// event loop: plan, encode, and broadcast from the source AP, then
  /// return. Concurrent injected flows share the medium and contend for
  /// airtime (sim::MediumConfig::bitrate_bps). Ack options are ignored.
  /// Read the flow's fate with flow_state() after running the simulator.
  InjectResult inject(BuildingId from_building, const PostboxInfo& to,
                      std::span<const std::uint8_t> payload, const SendOptions& opts = {});

  /// Live bookkeeping of an injected flow; nullptr for unknown ids.
  const FlowState* flow_state(std::uint32_t message_id) const;
  /// Number of injected flows being tracked.
  std::size_t flow_count() const { return flows_.size(); }
  /// Forget all injected-flow bookkeeping (between workload runs).
  void clear_flow_states() { flows_.clear(); }

  /// Retry with escalating conduit widths until the sender's postbox
  /// (`ack_to`) receives a delivery acknowledgment. Widths must be valid
  /// header widths (multiples of 10 m up to 150).
  ReliableOutcome send_reliable(BuildingId from_building, const PostboxInfo& to,
                                std::span<const std::uint8_t> payload,
                                const PostboxInfo& ack_to,
                                std::span<const double> widths = kDefaultWidths);

  /// Geo-broadcast: route to `center_building`, then flood every AP within
  /// `radius_m` of its centroid. Every postbox in the region gets a copy.
  BroadcastOutcome broadcast(BuildingId from_building, BuildingId center_building,
                             double radius_m, std::span<const std::uint8_t> payload,
                             bool urgent = false);

  /// Device-side helper: inform `home`'s postbox that the owner is currently
  /// in `current_building` (a kLocationUpdate message routed home).
  SendOutcome send_location_update(const PostboxInfo& home, BuildingId current_building);

  /// Postbox-agent forwarding service (§3 step 4's push/pull): drain the
  /// registered postbox of `home` and re-send every pending message to
  /// `temp` (the owner's postbox at their current building). Returns the
  /// number of messages that arrived at `temp`. Location updates are
  /// housekeeping and are dropped rather than forwarded.
  std::size_t forward_pending(const PostboxInfo& home, const PostboxInfo& temp);

  /// Mark every AP in a building as compromised (failure injection).
  void compromise_building(BuildingId building, AgentBehavior behavior);

  // --- Dynamic fault state (src/faultx drives these over sim time) --------

  /// Flip one AP up or down. Takes effect immediately: in-flight packets
  /// addressed to a newly-down AP are dropped at delivery time.
  void set_ap_status(mesh::ApId id, ApStatus status);
  ApStatus ap_status(mesh::ApId id) const { return ap_status_.at(id); }
  bool ap_up(mesh::ApId id) const { return ap_status_.at(id) == ApStatus::kUp; }
  /// Number of APs currently up.
  std::size_t aps_up() const { return aps_up_; }

  /// The AP a device in `building` associates with: the representative
  /// (closest-to-centroid) AP when it is up, otherwise the nearest live AP
  /// of the building; nullopt when the building has no live AP.
  std::optional<mesh::ApId> live_ap(BuildingId building) const;

  /// Register a degraded-link region; returns a handle for (de)activation.
  /// Membership is precomputed per AP, so the per-link lookup stays cheap.
  std::size_t add_degraded_region(geo::Polygon region, double extra_loss);
  void set_degraded_region_active(std::size_t handle, bool active);
  const std::vector<DegradedRegion>& degraded_regions() const { return degraded_; }

  /// Combined extra loss for one link from the active degraded regions
  /// (independent events; 0 when the link avoids every region).
  double extra_link_loss(mesh::ApId from, mesh::ApId to) const;

  /// The broadcast medium (fault-injection tests read its counters).
  sim::BroadcastMedium<MeshPacket>& medium() { return medium_; }

  /// The network's metrics registry: the medium's authoritative counters
  /// (medium.*) plus the protocol-level tallies and histograms (net.*,
  /// sim.*). Snapshot it for evaluation rows and run manifests.
  obsx::MetricsRegistry& metrics() { return metrics_; }
  const obsx::MetricsRegistry& metrics() const { return metrics_; }

  /// The packet-lifecycle trace. Disabled by default; enable() before a
  /// send to record its event stream, then write_trace_jsonl it.
  obsx::TraceBuffer& trace() { return trace_; }
  const obsx::TraceBuffer& trace() const { return trace_; }

  /// The shared compile-once service: every send/inject/ack compiles its
  /// message here and attaches the result to the packet; agents fall back to
  /// it for packets without one. Its compile.* counters live in the
  /// compiler's own registry — NOT metrics() — so run manifests stay
  /// byte-identical to the pre-compile pipeline (snapshot() serializes every
  /// registered counter).
  MessageCompiler& compiler() { return compiler_; }
  const MessageCompiler& compiler() const { return compiler_; }

  /// Direct agent access for tests.
  ApAgent& agent(mesh::ApId id) { return agents_.at(id); }

  /// The active rebroadcast policy (src/relayx). Its relayx.* counters are
  /// bound into metrics() for non-flood policies only — flood manifests must
  /// serialize exactly the legacy key set (golden digest gate).
  relayx::RebroadcastPolicy& relay_policy() { return *policy_; }
  const relayx::RebroadcastPolicy& relay_policy() const { return *policy_; }

  static constexpr double kDefaultWidthValues[3] = {50.0, 80.0, 120.0};
  static constexpr std::span<const double> kDefaultWidths{kDefaultWidthValues};

 private:
  // Pending (backoff-delayed) rebroadcasts, keyed by (message_id, ap): the
  // cancelable simulator event plus the overheard-duplicate tally the policy
  // judges cancellation by. Shared by the single-send path (cleared per
  // send) and injected flows. Lives per shard — an AP's timers always run on
  // its own tile's simulator.
  struct PendingRelay {
    sim::Simulator::EventId event = sim::Simulator::kInvalidEvent;
    std::uint32_t overheard = 0;
    /// Armed by the qfgeo greedy election: cancellation is positional (a
    /// transmitter at least as close to the destination was overheard),
    /// not policy-judged.
    bool greedy = false;
  };

  /// Shard-local slice of the in-flight send's outcome, merged (and
  /// consumed) by merge_shard_deltas() after every tiled run. The legacy
  /// shard never uses it — it writes the network-level state directly.
  struct ActiveDelta {
    bool delivered = false;
    double delivery_time_s = 0.0;
    std::size_t postboxes_reached = 0;
    bool ack_sent = false;
    bool ack_delivered = false;
  };
  /// Shard-local slice of one injected flow's bookkeeping (src/trafficx).
  struct FlowDelta {
    bool delivered = false;
    double delivery_time_s = 0.0;
    std::size_t postboxes_reached = 0;
    std::size_t transmissions = 0;
  };

  /// One execution shard: the event loop plus every piece of mutable
  /// simulation state a window touches, so a worker thread running the
  /// shard shares nothing writable with the others. With shards == 1 the
  /// single Shard merely aliases the network's legacy singletons (own_*
  /// stay null) and `direct` routes outcome writes straight to the
  /// network-level state — the pre-shardx code path, byte for byte.
  struct Shard {
    shardx::TileId tile = 0;
    bool direct = true;  ///< legacy aliasing shard?

    // Owning storage (tiled shards only). Every shard's medium runs over
    // the one shared compiled-city CSR with a tile filter — there is no
    // per-tile topology copy.
    std::unique_ptr<sim::Simulator> own_sim;
    std::unique_ptr<sim::BroadcastMedium<MeshPacket>> own_medium;
    std::unique_ptr<obsx::MetricsRegistry> own_metrics;
    std::unique_ptr<obsx::TraceBuffer> own_trace;
    std::unique_ptr<relayx::RebroadcastPolicy> own_policy;
    std::unique_ptr<MessageCompiler> own_compiler;

    // The instances in effect (owned above, or the network singletons).
    sim::Simulator* sim = nullptr;
    sim::BroadcastMedium<MeshPacket>* medium = nullptr;
    obsx::MetricsRegistry* metrics = nullptr;
    obsx::TraceBuffer* trace = nullptr;
    relayx::RebroadcastPolicy* policy = nullptr;
    MessageCompiler* compiler = nullptr;

    // Cached counter handles. Tiled shards register the same names as the
    // network registry, so merged snapshots sum into the legacy key set.
    obsx::Counter* n_rebroadcasts = nullptr;
    obsx::Counter* n_dup_suppressed = nullptr;
    obsx::Counter* n_conduit_rejects = nullptr;
    obsx::Counter* n_postbox_stores = nullptr;
    obsx::Counter* n_acks_sent = nullptr;
    obsx::Counter* n_suppression_cancelled = nullptr;
    obsx::Counter* medium_deliveries = nullptr;
    obsx::Counter* medium_blocked_receptions = nullptr;
    obsx::Counter* medium_losses = nullptr;
    obsx::Histogram* h_latency = nullptr;

    // qfgeo.* counters, registered (and non-null) only when the network
    // runs Protocol::kQfgeo — conduit manifests keep the legacy key set.
    obsx::Counter* qf_candidates = nullptr;      ///< greedy forwards armed
    obsx::Counter* qf_fired = nullptr;           ///< armed forwards that aired
    obsx::Counter* qf_cancelled = nullptr;       ///< cancelled on overhear
    obsx::Counter* qf_no_progress = nullptr;     ///< in-region, no progress
    obsx::Counter* qf_fallback_floods = nullptr; ///< local-minimum recoveries

    std::unordered_map<std::uint64_t, PendingRelay> pending;
    ActiveDelta active;
    std::unordered_map<std::uint32_t, FlowDelta> flow_deltas;

    // Cross-tile receptions created this window, drained at the barrier.
    std::vector<shardx::Handoff<MeshPacket>> outbox;
    std::uint64_t handoff_seq = 0;
  };

  void handle_delivery(Shard& shard, sim::NodeId to, sim::NodeId from,
                       const std::shared_ptr<const MeshPacket>& packet);
  void transmit_counted(Shard& shard, mesh::ApId from,
                        const std::shared_ptr<const MeshPacket>& packet);
  /// The relayx-policy election at the membership-check->rebroadcast point
  /// (relay now / cancelable backoff / suppress) — the conduit flood path,
  /// and qfgeo's scoped-flood fallback at local minima.
  void policy_relay(Shard& shard, mesh::ApId to, std::uint32_t message_id,
                    mesh::ApId from, double now,
                    const std::shared_ptr<const MeshPacket>& packet);
  /// QF-Geo forwarding election for one in-region reception (greedy
  /// distance-to-destination with capacity penalty; local-minimum scoped
  /// flood through policy_relay).
  void qfgeo_forward(Shard& shard, mesh::ApId to, mesh::ApId from,
                     const AgentAction& action, double now,
                     const std::shared_ptr<const MeshPacket>& packet);
  /// Is `from` a QF-Geo local minimum for this message: no live in-region
  /// neighbor of `from` lies strictly closer to the destination. Static per
  /// (message, transmitter) — AP positions are immutable and ap_status_
  /// flips only in coordinator context, so reading it here is shard-safe.
  bool qfgeo_local_minimum(mesh::ApId from, const CompiledMessage& msg,
                           geo::Point dst) const;
  /// Register (or alias) the qfgeo.* counters in `registry` when this
  /// network runs Protocol::kQfgeo; leaves the pointers null otherwise.
  void bind_qfgeo_counters(Shard& shard, obsx::MetricsRegistry& registry);
  /// Cancel every pending backoff-delayed rebroadcast (per-send reset).
  void clear_pending_relays();
  void send_ack_from(Shard& shard, mesh::ApId ap);
  SendOutcome run_send(BuildingId from_building, const PostboxInfo& to,
                       std::span<const std::uint8_t> payload, const SendOptions& opts,
                       std::uint8_t extra_flags, std::uint32_t broadcast_radius_m);

  /// The resolved relayx config (seed + legacy building_suppression alias).
  relayx::PolicyConfig resolved_relay_config() const;
  /// Build the K tile shards, cross-link index, and worker pool.
  void build_tiles();
  Shard& shard_for(mesh::ApId ap) {
    return *shards_[config_.shards > 1 ? plan_.ap_tile[ap] : 0];
  }
  /// Deliver one on-air packet over this shard's cut edges: hashed
  /// loss/jitter per link, arrival recorded as a Handoff in the outbox.
  void remote_fanout(Shard& shard, sim::NodeId from,
                     const std::shared_ptr<const MeshPacket>& packet, sim::SimTime air,
                     std::uint32_t tx_index);
  /// The tiled window loop behind run_until (shards > 1).
  std::size_t run_tiled(sim::SimTime until, std::size_t max_events);
  /// Barrier exchange: drain every outbox, sort (time, src_tile, seq),
  /// schedule each handoff into its receiving tile.
  void exchange_handoffs();
  /// Fold every shard's Active/Flow deltas into the network-level outcome
  /// state (tile order; consumes the deltas).
  void merge_shard_deltas();

  static std::size_t trace_capacity_for(const NetworkConfig& config,
                                        std::size_t ap_count);

  /// Materialize a packet from the pool (or the heap when pooling is off).
  /// Thread-safe: the tiled ack path builds packets on worker threads.
  std::shared_ptr<const MeshPacket> make_packet(MeshPacket&& fields) const {
    if (packet_pool_ != nullptr) return packet_pool_->make(std::move(fields));
    return std::make_shared<const MeshPacket>(std::move(fields));
  }

  std::shared_ptr<const CompiledCity> compiled_;
  NetworkConfig config_;
  /// Resumable-Dijkstra cache shared by every planner this network builds
  /// (the member planner_ and the per-send/inject locals) — route planning
  /// is coordinator-thread-only, so one unlocked cache serves them all.
  SptCache spt_cache_;
  RoutePlanner planner_;
  MessageCompiler compiler_;  ///< declared before agents_, which point at it
  /// Declared before sim_/medium_/shards_: packets it allocated live in
  /// their queues, and the shared_ptr deleters return blocks to this pool,
  /// so it must be destroyed last. Null when config.pooled_packets is off.
  std::unique_ptr<PacketPool> packet_pool_;
#ifdef CITYMESH_POOL_STATS
  // Allocator counters (compiled in by -DCITYMESH_POOL_STATS=ON only: the
  // extra registered keys would otherwise change every run manifest).
  // Refreshed from the pool's live stats on merged_metrics().
  obsx::Counter* pool_packet_acquires_ = nullptr;
  obsx::Counter* pool_packet_fallbacks_ = nullptr;
  obsx::Counter* pool_packet_peak_in_use_ = nullptr;
  obsx::Counter* pool_inline_fn_heap_fallbacks_ = nullptr;
#endif
  sim::Simulator sim_;
  sim::BroadcastMedium<MeshPacket> medium_;
  /// Every agent's mutable state, struct-of-arrays by AP id (core/ap_state).
  /// One slab serves all tile shards; the dup filter is striped by tile.
  AgentStateSlab agent_state_{0};
  std::vector<ApAgent> agents_;
  std::unique_ptr<relayx::RebroadcastPolicy> policy_;

  // Observability (src/obsx): the registry holds the authoritative counters
  // for the whole stack; the trace ring receives the packet-lifecycle
  // stream. Handles are cached once — the hot path pays one increment.
  obsx::MetricsRegistry metrics_;
  obsx::TraceBuffer trace_;
  std::uint64_t send_seq_ = 0;  ///< feeds wire::derive_message_id
  obsx::Counter* n_sends_ = nullptr;
  obsx::Counter* n_delivered_ = nullptr;
  obsx::Counter* n_rebroadcasts_ = nullptr;
  obsx::Counter* n_dup_suppressed_ = nullptr;
  obsx::Counter* n_conduit_rejects_ = nullptr;
  obsx::Counter* n_postbox_stores_ = nullptr;
  obsx::Counter* n_acks_sent_ = nullptr;
  obsx::Counter* n_acks_received_ = nullptr;
  obsx::Counter* n_suppression_cancelled_ = nullptr;
  obsx::Histogram* h_header_bits_ = nullptr;
  obsx::Histogram* h_min_hops_ = nullptr;
  obsx::Histogram* h_tx_per_delivery_ = nullptr;

  // Fault state: per-AP status plus degraded-link regions with precomputed
  // per-AP membership (aps are static, regions few).
  std::vector<ApStatus> ap_status_;
  std::size_t aps_up_ = 0;
  std::vector<DegradedRegion> degraded_;
  std::vector<std::vector<char>> degraded_members_;  ///< [region][ap] inside?

  // Registrations keyed by "id-hex@building"; primaries keep the first
  // registration per identity (the home postbox).
  std::unordered_map<std::string, std::shared_ptr<Postbox>> postboxes_;
  std::unordered_map<std::string, std::shared_ptr<Postbox>> primary_postboxes_;

  // Per-message bookkeeping for the in-flight send. Transmission counts and
  // per-AP roles live in the medium's counters / the trace stream now, not
  // here.
  struct ActiveSend {
    std::uint32_t message_id = 0;
    bool delivered = false;
    double delivery_time_s = 0.0;
    std::size_t postboxes_reached = 0;

    // Ack machinery.
    std::uint32_t ack_message_id = 0;  ///< 0 = no ack expected
    std::uint32_t ack_tag = 0;
    std::vector<BuildingId> ack_waypoints;
    double conduit_width_m = 50.0;
    bool ack_sent = false;
    bool ack_delivered = false;
  };
  ActiveSend active_;

  // Injected-flow bookkeeping (src/trafficx), keyed by message id. The
  // single-send path never touches this map. Read-only while a tiled window
  // is running (workers probe it for per-flow attribution); mutated only by
  // the coordinator between windows.
  std::unordered_map<std::uint32_t, FlowState> flows_;

  // --- Tiled execution (src/shardx) --------------------------------------
  // shards_ holds exactly one legacy aliasing shard (config_.shards <= 1)
  // or the K owned tile shards. The coordinator (run_tiled) advances them
  // in conservative-lookahead windows on the worker pool and exchanges
  // handoffs at the barriers; cross-thread communication happens only
  // through the fork/join edges, so the engine is TSan-clean by
  // construction.
  shardx::TilePlan plan_;
  double lookahead_s_ = sim::kForever;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<shardx::WorkerPool> pool_;
  sim::SimTime shard_now_ = 0.0;  ///< synchronized frontier (tiled runs)
  // Cross-link CSR: cross_links_[cross_base_[ap] .. cross_base_[ap+1]) are
  // the cut edges leaving `ap`, in plan order.
  std::vector<std::size_t> cross_base_;
  std::vector<shardx::CrossLink> cross_links_;
  // Coordinator-level control events (min-heap on (time, seq)).
  struct ControlEvent {
    sim::SimTime time = 0.0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  static bool control_after(const ControlEvent& a, const ControlEvent& b) {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
  std::vector<ControlEvent> control_;
  std::uint64_t control_seq_ = 0;
  std::vector<shardx::Handoff<MeshPacket>> handoff_scratch_;
  bool record_handoffs_ = false;
  std::vector<HandoffRecord> handoff_log_;
  std::uint64_t handoffs_exchanged_ = 0;
  double barrier_idle_s_ = 0.0;
  std::vector<double> window_busy_s_;  ///< per-tile wall clock, scratch
};

}  // namespace citymesh::core
