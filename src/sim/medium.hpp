// Shared broadcast medium over a fixed radio topology.
//
// A transmission by node `from` is delivered to every neighbor in the
// topology graph after transmission + propagation delay, each independently
// subject to a loss probability. The medium is templated on the packet type
// so the CityMesh agent and every baseline protocol reuse it.
//
// The topology is the *potential* connectivity; whether a link works right
// now is decided live. Two optional hooks support time-varying failures
// (src/faultx): a node filter (a down node neither transmits nor receives —
// reception is checked at delivery time, so a node that fails while a packet
// is in flight still misses it) and a per-link extra-loss function
// (regional interference / degraded-link scenarios).
//
// Observability: the medium's tally is the authoritative transmission /
// delivery count (src/obsx) — bind_metrics() repoints the counters into a
// shared MetricsRegistry so evaluation and benches read the same numbers the
// medium wrote, and set_trace() attaches a TraceBuffer that receives one
// kTx/kRx/kDropLoss/kDropFaulted event per physical-layer action.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "geo/rng.hpp"
#include "graphx/graph.hpp"
#include "obsx/metrics.hpp"
#include "obsx/trace.hpp"
#include "sim/simulator.hpp"

namespace citymesh::sim {

using NodeId = graphx::VertexId;

struct MediumConfig {
  /// Fixed per-packet transmission (serialization) delay, seconds.
  SimTime tx_delay_s = 1e-3;
  /// Propagation delay per meter of link length, seconds. Edge weights in
  /// the topology graph are interpreted as link lengths in meters.
  SimTime prop_delay_s_per_m = 3.34e-9;
  /// Random extra delay in [0, jitter_s) decorrelates simultaneous
  /// rebroadcasts (a stand-in for CSMA backoff).
  SimTime jitter_s = 2e-3;
  /// Independent per-link loss probability.
  double loss_probability = 0.0;
  std::uint64_t seed = 7;
};

template <typename Packet>
class BroadcastMedium {
 public:
  /// Called on delivery: (receiver, sender, packet).
  using DeliveryFn = std::function<void(NodeId, NodeId, const std::shared_ptr<const Packet>&)>;
  /// True when the node is currently up (may change between calls).
  using NodeUpFn = std::function<bool(NodeId)>;
  /// Extra per-link loss probability (0 = pristine), combined independently
  /// with the config's base loss_probability.
  using LinkLossFn = std::function<double(NodeId from, NodeId to)>;
  /// Stable trace id of a packet (a decoded message id, not a pointer).
  using PacketIdFn = std::function<std::uint32_t(const Packet&)>;

  BroadcastMedium(Simulator& simulator, const graphx::Graph& topology, MediumConfig config)
      : sim_(simulator), topology_(topology), config_(config), rng_(config.seed) {
    transmissions_ = &own_.counter("transmissions");
    deliveries_ = &own_.counter("deliveries");
    losses_ = &own_.counter("losses");
    blocked_transmissions_ = &own_.counter("blocked_transmissions");
    blocked_receptions_ = &own_.counter("blocked_receptions");
  }

  void set_delivery_handler(DeliveryFn fn) { deliver_ = std::move(fn); }

  /// Install a live node filter: a down node neither transmits nor receives.
  /// Pass nullptr to clear (all nodes up).
  void set_node_filter(NodeUpFn fn) { node_up_ = std::move(fn); }

  /// Install a live per-link extra-loss function. Pass nullptr to clear.
  void set_link_loss(LinkLossFn fn) { link_loss_ = std::move(fn); }

  /// Repoint the medium's counters into `registry` under `<prefix>.*` so
  /// consumers read the medium's own tally instead of keeping a parallel
  /// one. The registry must outlive the medium. Counts accumulated on the
  /// internal counters before binding are not carried over.
  void bind_metrics(obsx::MetricsRegistry& registry, std::string_view prefix = "medium") {
    const std::string p{prefix};
    transmissions_ = &registry.counter(p + ".transmissions");
    deliveries_ = &registry.counter(p + ".deliveries");
    losses_ = &registry.counter(p + ".losses");
    blocked_transmissions_ = &registry.counter(p + ".blocked_transmissions");
    blocked_receptions_ = &registry.counter(p + ".blocked_receptions");
  }

  /// Attach a trace buffer; `id_fn` extracts the stable packet id recorded
  /// in each event. nullptr detaches. The buffer must outlive the medium.
  void set_trace(obsx::TraceBuffer* trace, PacketIdFn id_fn = nullptr) {
    trace_ = trace;
    packet_id_ = std::move(id_fn);
  }

  bool node_up(NodeId node) const { return !node_up_ || node_up_(node); }

  /// Broadcast `packet` from `from` to all topology neighbors.
  void transmit(NodeId from, std::shared_ptr<const Packet> packet) {
    const std::uint32_t pid = trace_id(*packet);
    if (!node_up(from)) {
      blocked_transmissions_->inc();
      trace(obsx::TraceKind::kDropFaulted, from, pid);
      return;
    }
    transmissions_->inc();
    trace(obsx::TraceKind::kTx, from, pid);
    for (const graphx::Edge& link : topology_.neighbors(from)) {
      double loss = config_.loss_probability;
      if (link_loss_) {
        const double extra = link_loss_(from, link.to);
        if (extra > 0.0) loss = 1.0 - (1.0 - loss) * (1.0 - extra);
      }
      if (loss > 0.0 && rng_.chance(loss)) {
        losses_->inc();
        trace(obsx::TraceKind::kDropLoss, link.to, pid, static_cast<std::uint32_t>(from));
        continue;
      }
      const SimTime delay = config_.tx_delay_s +
                            config_.prop_delay_s_per_m * link.weight +
                            (config_.jitter_s > 0.0 ? rng_.uniform(0.0, config_.jitter_s) : 0.0);
      const NodeId to = link.to;
      sim_.schedule_in(delay, [this, to, from, packet, pid] {
        // Receiver status is sampled at delivery time: a node that went down
        // while the packet was in flight misses it.
        if (!node_up(to)) {
          blocked_receptions_->inc();
          trace(obsx::TraceKind::kDropFaulted, to, pid, static_cast<std::uint32_t>(from));
          return;
        }
        deliveries_->inc();
        trace(obsx::TraceKind::kRx, to, pid, static_cast<std::uint32_t>(from));
        if (deliver_) deliver_(to, from, packet);
      });
    }
  }

  /// Total broadcasts initiated (the paper's "number of packet broadcasts").
  std::size_t transmissions() const { return transmissions_->value(); }
  /// Per-link deliveries (each broadcast fans out to its neighbors).
  std::size_t deliveries() const { return deliveries_->value(); }
  std::size_t losses() const { return losses_->value(); }
  /// Broadcasts swallowed because the transmitter was down.
  std::size_t blocked_transmissions() const { return blocked_transmissions_->value(); }
  /// In-flight deliveries dropped because the receiver was down.
  std::size_t blocked_receptions() const { return blocked_receptions_->value(); }

  void reset_counters() {
    transmissions_->reset();
    deliveries_->reset();
    losses_->reset();
    blocked_transmissions_->reset();
    blocked_receptions_->reset();
  }

 private:
  std::uint32_t trace_id(const Packet& packet) const {
    if (trace_ == nullptr || !trace_->enabled() || !packet_id_) return 0;
    return packet_id_(packet);
  }
  void trace(obsx::TraceKind kind, NodeId node, std::uint32_t pid,
             std::uint32_t payload = obsx::kTraceNone) {
    if (trace_ == nullptr) return;
    trace_->record(kind, sim_.now(), static_cast<std::uint32_t>(node), pid, payload);
  }

  Simulator& sim_;
  const graphx::Graph& topology_;
  MediumConfig config_;
  geo::Rng rng_;
  DeliveryFn deliver_;
  NodeUpFn node_up_;
  LinkLossFn link_loss_;
  obsx::MetricsRegistry own_;  ///< fallback registry until bind_metrics()
  obsx::Counter* transmissions_;
  obsx::Counter* deliveries_;
  obsx::Counter* losses_;
  obsx::Counter* blocked_transmissions_;
  obsx::Counter* blocked_receptions_;
  obsx::TraceBuffer* trace_ = nullptr;
  PacketIdFn packet_id_;
};

}  // namespace citymesh::sim
