// Shared broadcast medium over a fixed radio topology.
//
// A transmission by node `from` is delivered to every neighbor in the
// topology graph after transmission + propagation delay, each independently
// subject to a loss probability. The medium is templated on the packet type
// so the CityMesh agent and every baseline protocol reuse it.
//
// The topology is the *potential* connectivity; whether a link works right
// now is decided live. Two optional hooks support time-varying failures
// (src/faultx): a node filter (a down node neither transmits nor receives —
// reception is checked at delivery time, so a node that fails while a packet
// is in flight still misses it) and a per-link extra-loss function
// (regional interference / degraded-link scenarios).
#pragma once

#include <functional>
#include <memory>

#include "geo/rng.hpp"
#include "graphx/graph.hpp"
#include "sim/simulator.hpp"

namespace citymesh::sim {

using NodeId = graphx::VertexId;

struct MediumConfig {
  /// Fixed per-packet transmission (serialization) delay, seconds.
  SimTime tx_delay_s = 1e-3;
  /// Propagation delay per meter of link length, seconds. Edge weights in
  /// the topology graph are interpreted as link lengths in meters.
  SimTime prop_delay_s_per_m = 3.34e-9;
  /// Random extra delay in [0, jitter_s) decorrelates simultaneous
  /// rebroadcasts (a stand-in for CSMA backoff).
  SimTime jitter_s = 2e-3;
  /// Independent per-link loss probability.
  double loss_probability = 0.0;
  std::uint64_t seed = 7;
};

template <typename Packet>
class BroadcastMedium {
 public:
  /// Called on delivery: (receiver, sender, packet).
  using DeliveryFn = std::function<void(NodeId, NodeId, const std::shared_ptr<const Packet>&)>;
  /// True when the node is currently up (may change between calls).
  using NodeUpFn = std::function<bool(NodeId)>;
  /// Extra per-link loss probability (0 = pristine), combined independently
  /// with the config's base loss_probability.
  using LinkLossFn = std::function<double(NodeId from, NodeId to)>;

  BroadcastMedium(Simulator& simulator, const graphx::Graph& topology, MediumConfig config)
      : sim_(simulator), topology_(topology), config_(config), rng_(config.seed) {}

  void set_delivery_handler(DeliveryFn fn) { deliver_ = std::move(fn); }

  /// Install a live node filter: a down node neither transmits nor receives.
  /// Pass nullptr to clear (all nodes up).
  void set_node_filter(NodeUpFn fn) { node_up_ = std::move(fn); }

  /// Install a live per-link extra-loss function. Pass nullptr to clear.
  void set_link_loss(LinkLossFn fn) { link_loss_ = std::move(fn); }

  bool node_up(NodeId node) const { return !node_up_ || node_up_(node); }

  /// Broadcast `packet` from `from` to all topology neighbors.
  void transmit(NodeId from, std::shared_ptr<const Packet> packet) {
    if (!node_up(from)) {
      ++blocked_transmissions_;
      return;
    }
    ++transmissions_;
    for (const graphx::Edge& link : topology_.neighbors(from)) {
      double loss = config_.loss_probability;
      if (link_loss_) {
        const double extra = link_loss_(from, link.to);
        if (extra > 0.0) loss = 1.0 - (1.0 - loss) * (1.0 - extra);
      }
      if (loss > 0.0 && rng_.chance(loss)) {
        ++losses_;
        continue;
      }
      const SimTime delay = config_.tx_delay_s +
                            config_.prop_delay_s_per_m * link.weight +
                            (config_.jitter_s > 0.0 ? rng_.uniform(0.0, config_.jitter_s) : 0.0);
      const NodeId to = link.to;
      sim_.schedule_in(delay, [this, to, from, packet] {
        // Receiver status is sampled at delivery time: a node that went down
        // while the packet was in flight misses it.
        if (!node_up(to)) {
          ++blocked_receptions_;
          return;
        }
        ++deliveries_;
        if (deliver_) deliver_(to, from, packet);
      });
    }
  }

  /// Total broadcasts initiated (the paper's "number of packet broadcasts").
  std::size_t transmissions() const { return transmissions_; }
  /// Per-link deliveries (each broadcast fans out to its neighbors).
  std::size_t deliveries() const { return deliveries_; }
  std::size_t losses() const { return losses_; }
  /// Broadcasts swallowed because the transmitter was down.
  std::size_t blocked_transmissions() const { return blocked_transmissions_; }
  /// In-flight deliveries dropped because the receiver was down.
  std::size_t blocked_receptions() const { return blocked_receptions_; }

  void reset_counters() {
    transmissions_ = deliveries_ = losses_ = 0;
    blocked_transmissions_ = blocked_receptions_ = 0;
  }

 private:
  Simulator& sim_;
  const graphx::Graph& topology_;
  MediumConfig config_;
  geo::Rng rng_;
  DeliveryFn deliver_;
  NodeUpFn node_up_;
  LinkLossFn link_loss_;
  std::size_t transmissions_ = 0;
  std::size_t deliveries_ = 0;
  std::size_t losses_ = 0;
  std::size_t blocked_transmissions_ = 0;
  std::size_t blocked_receptions_ = 0;
};

}  // namespace citymesh::sim
