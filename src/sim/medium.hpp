// Shared broadcast medium over a fixed radio topology.
//
// A transmission by node `from` is delivered to every neighbor in the
// topology graph after transmission + propagation delay, each independently
// subject to a loss probability. The medium is templated on the packet type
// so the CityMesh agent and every baseline protocol reuse it.
//
// The topology is the *potential* connectivity; whether a link works right
// now is decided live. Two optional hooks support time-varying failures
// (src/faultx): a node filter (a down node neither transmits nor receives —
// reception is checked at delivery time, so a node that fails while a packet
// is in flight still misses it) and a per-link extra-loss function
// (regional interference / degraded-link scenarios).
//
// Airtime contention (src/trafficx): with MediumConfig::bitrate_bps > 0 the
// fixed tx_delay_s is replaced by a per-packet serialization delay derived
// from the packet's wire bits (set_packet_bits) plus PHY/MAC framing, and
// each node becomes a half-duplex transmitter with a finite FIFO queue: a
// transmit issued while the node's channel is busy defers behind the
// in-flight packet, and once the queue is full further transmits drop
// (medium.queue_drops). This is what makes concurrent rebroadcast storms
// from overlapping conduits collide in time instead of sailing through for
// free. bitrate_bps == 0 keeps the paper's §4 regime: airtime is free and
// transmissions never defer.
//
// Determinism: loss and jitter draw from *independent* seeded streams, so
// toggling jitter_s on or off never changes which deliveries are lost, and a
// zero jitter_s performs no jitter draws at all — packet-level loss draw
// counts (and thus determinism digests) are identical between jittered and
// unjittered configs.
//
// Observability: the medium's tally is the authoritative transmission /
// delivery count (src/obsx) — bind_metrics() repoints the counters into a
// shared MetricsRegistry so evaluation and benches read the same numbers the
// medium wrote, and set_trace() attaches a TraceBuffer that receives one
// kTx/kRx/kDropLoss/kDropFaulted/kDeferred/kDropQueue event per
// physical-layer action.
//
// Packet immutability contract: the medium fans one
// shared_ptr<const Packet> out to every receiver, queues it behind busy
// channels, and captures it in backoff/retransmit closures — the same object
// is alive at many simulated times at once, so a Packet must be strictly
// read-only after transmit(). core::MeshPacket leans on this: its
// shared_ptr<const CompiledMessage> (decoded header + precomputed membership
// sets, core/compiled_message) rides along every hop and is safely shared
// across all of them, including across runx worker threads.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "geo/rng.hpp"
#include "graphx/graph.hpp"
#include "obsx/metrics.hpp"
#include "obsx/trace.hpp"
#include "sim/simulator.hpp"

namespace citymesh::sim {

using NodeId = graphx::VertexId;

/// Decorrelates the jitter stream/hash from the loss stream/hash
/// (sqrt(2) bits).
inline constexpr std::uint64_t kJitterStream = 0x6a09e667f3bcc909ULL;

/// Content-keyed unit draw in [0, 1) for shard-invariant link randomness:
/// hashing (seed, from, to, the sender's on-air transmission index, salt)
/// instead of consuming a shared sequential stream makes loss and jitter
/// outcomes a pure function of *what* was transmitted, independent of which
/// tile shard processes the link or how events interleave globally — the
/// property that keeps determinism digests identical across shard counts
/// (src/shardx).
inline double link_unit(std::uint64_t seed, NodeId from, NodeId to,
                        std::uint32_t tx_index, std::uint64_t salt) {
  std::uint64_t state = seed;
  state ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(from) + 1);
  (void)geo::splitmix64(state);
  state ^= 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(to) + 1);
  (void)geo::splitmix64(state);
  state ^= (static_cast<std::uint64_t>(tx_index) << 8) ^ salt;
  const std::uint64_t bits = geo::splitmix64(state);
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

struct MediumConfig {
  /// Fixed per-packet transmission (serialization) delay, seconds. Only
  /// used when bitrate_bps == 0 (no contention model).
  SimTime tx_delay_s = 1e-3;
  /// Propagation delay per meter of link length, seconds. Edge weights in
  /// the topology graph are interpreted as link lengths in meters.
  SimTime prop_delay_s_per_m = 3.34e-9;
  /// Random extra delay in [0, jitter_s) decorrelates simultaneous
  /// rebroadcasts (a stand-in for CSMA backoff).
  SimTime jitter_s = 2e-3;
  /// Independent per-link loss probability.
  double loss_probability = 0.0;
  std::uint64_t seed = 7;

  // --- Airtime contention (src/trafficx) ---------------------------------
  /// Channel bitrate. > 0 enables the contention model: serialization delay
  /// becomes (frame_overhead_bits + packet bits) / bitrate_bps, nodes are
  /// half-duplex, and concurrent transmits defer or drop. 0 disables it.
  double bitrate_bps = 0.0;
  /// PHY/MAC framing bits charged per packet on top of its own header and
  /// payload bits (preamble, MAC header, FCS, IFS equivalent).
  std::size_t frame_overhead_bits = 400;
  /// Transmit-queue slots behind the in-flight packet; a transmit arriving
  /// with the queue full is dropped and counted (medium.queue_drops).
  std::size_t tx_queue_capacity = 8;

  /// When true, one broadcast occupies a single queue node (a BatchEvent
  /// cycling through its receptions in (time, seq) order) instead of one
  /// node per reception. Sequence numbers are still consumed per reception
  /// in neighbor order at transmit time, so the global event interleaving —
  /// and every determinism digest — is identical to the unbatched path;
  /// only the queue churn (N inserts -> 1 insert + N-1 reinsert-heads) and
  /// the per-reception closure allocations go away.
  bool batched_delivery = true;

  // --- Shard-invariant link randomness (src/shardx) ----------------------
  /// When true, loss and jitter draw from link_unit() — a content-keyed
  /// hash of (seed, from, to, sender tx index) — instead of the shared
  /// sequential streams, so outcomes do not depend on event interleaving
  /// across tile shards. The hashed draws differ from the sequential
  /// streams' values, so this is a distinct (still fully deterministic)
  /// regime: the tiled engine enables it for every shard count K >= 2,
  /// which is what makes digests K-invariant, while K = 1 keeps the legacy
  /// streams and the golden digests.
  bool shard_invariant_rng = false;
};

template <typename Packet>
class BroadcastMedium {
 public:
  /// Called on delivery: (receiver, sender, packet).
  using DeliveryFn = std::function<void(NodeId, NodeId, const std::shared_ptr<const Packet>&)>;
  /// True when the node is currently up (may change between calls).
  using NodeUpFn = std::function<bool(NodeId)>;
  /// Extra per-link loss probability (0 = pristine), combined independently
  /// with the config's base loss_probability.
  using LinkLossFn = std::function<double(NodeId from, NodeId to)>;
  /// Stable trace id of a packet (a decoded message id, not a pointer).
  using PacketIdFn = std::function<std::uint32_t(const Packet&)>;
  /// Wire size of a packet in bits (header + payload); feeds the
  /// serialization delay when the contention model is on.
  using PacketBitsFn = std::function<std::size_t(const Packet&)>;
  /// Observer invoked once per packet actually put on the air (after any
  /// deferral; dropped packets never fire it).
  using TxObserverFn = std::function<void(NodeId from, const Packet&)>;
  /// Cross-shard fan-out hook (src/shardx): invoked once per on-air packet
  /// with (from, packet, serialization delay, sender tx index) AFTER the
  /// local neighbor loop, so the owning network can deliver the packet over
  /// topology edges that leave this medium's tile. The tx index is the one
  /// link_unit() draws keyed on, letting the remote side reproduce the
  /// exact loss/jitter outcome for its links.
  using RemoteFanoutFn =
      std::function<void(NodeId from, const std::shared_ptr<const Packet>&, SimTime air,
                         std::uint32_t tx_index)>;

  BroadcastMedium(Simulator& simulator, const graphx::Graph& topology, MediumConfig config)
      : sim_(simulator),
        topology_(topology),
        config_(config),
        loss_rng_(config.seed),
        jitter_rng_(config.seed ^ kJitterStream),
        busy_until_(config.bitrate_bps > 0.0 ? topology.vertex_count() : 0, 0.0),
        airtime_(config.bitrate_bps > 0.0 ? topology.vertex_count() : 0, 0.0),
        node_ring_(config.bitrate_bps > 0.0 ? topology.vertex_count() : 0, kNoRing),
        tx_counts_(config.shard_invariant_rng ? topology.vertex_count() : 0) {
    transmissions_ = &own_.counter("transmissions");
    deliveries_ = &own_.counter("deliveries");
    losses_ = &own_.counter("losses");
    blocked_transmissions_ = &own_.counter("blocked_transmissions");
    blocked_receptions_ = &own_.counter("blocked_receptions");
    deferrals_ = &own_.counter("deferrals");
    queue_drops_ = &own_.counter("queue_drops");
    airtime_us_ = &own_.counter("airtime_us");
  }

  void set_delivery_handler(DeliveryFn fn) { deliver_ = std::move(fn); }

  /// Install a live node filter: a down node neither transmits nor receives.
  /// Pass nullptr to clear (all nodes up).
  void set_node_filter(NodeUpFn fn) { node_up_ = std::move(fn); }

  /// Install a live per-link extra-loss function. Pass nullptr to clear.
  void set_link_loss(LinkLossFn fn) { link_loss_ = std::move(fn); }

  /// Install the packet-bits hook the contention model charges airtime by.
  /// Without it only frame_overhead_bits are charged per packet.
  void set_packet_bits(PacketBitsFn fn) { packet_bits_ = std::move(fn); }

  /// Install a per-transmission observer (per-flow transmission attribution,
  /// src/trafficx). Fires at the same instant as the medium's kTx trace
  /// event. Pass nullptr to clear.
  void set_tx_observer(TxObserverFn fn) { tx_observer_ = std::move(fn); }

  /// Install the cross-shard fan-out hook (src/shardx). Pass nullptr to
  /// clear. Only meaningful when this medium covers a single tile of the
  /// topology: the hook carries every on-air packet to the links the tile
  /// filter (or a tile subgraph) omits.
  void set_remote_fanout(RemoteFanoutFn fn) { remote_fanout_ = std::move(fn); }

  /// Restrict local fan-out to neighbors whose tile equals `tile` in the
  /// external per-node table `node_tile` (one entry per topology vertex;
  /// must outlive the medium). This lets K tile shards share the one
  /// compiled-city CSR instead of each copying its subgraph. Cross-tile
  /// neighbors are skipped before any loss/jitter draw, which is outcome-
  /// preserving only under shard_invariant_rng (draws are keyed per link,
  /// not consumed from a shared stream) — the tiled engine always runs in
  /// that regime. Pass nullptr to clear.
  void set_tile_filter(const std::uint32_t* node_tile, std::uint32_t tile) {
    tile_filter_ = node_tile;
    tile_ = tile;
  }

  const MediumConfig& config() const { return config_; }

  /// Repoint the medium's counters into `registry` under `<prefix>.*` so
  /// consumers read the medium's own tally instead of keeping a parallel
  /// one. The registry must outlive the medium. Counts accumulated on the
  /// internal counters before binding are not carried over.
  void bind_metrics(obsx::MetricsRegistry& registry, std::string_view prefix = "medium") {
    const std::string p{prefix};
    transmissions_ = &registry.counter(p + ".transmissions");
    deliveries_ = &registry.counter(p + ".deliveries");
    losses_ = &registry.counter(p + ".losses");
    blocked_transmissions_ = &registry.counter(p + ".blocked_transmissions");
    blocked_receptions_ = &registry.counter(p + ".blocked_receptions");
    deferrals_ = &registry.counter(p + ".deferrals");
    queue_drops_ = &registry.counter(p + ".queue_drops");
    airtime_us_ = &registry.counter(p + ".airtime_us");
  }

  /// Attach a trace buffer; `id_fn` extracts the stable packet id recorded
  /// in each event. nullptr detaches. The buffer must outlive the medium.
  void set_trace(obsx::TraceBuffer* trace, PacketIdFn id_fn = nullptr) {
    trace_ = trace;
    packet_id_ = std::move(id_fn);
  }

  bool node_up(NodeId node) const { return !node_up_ || node_up_(node); }

  bool contention_enabled() const { return config_.bitrate_bps > 0.0; }

  /// Broadcast `packet` from `from` to all topology neighbors. With the
  /// contention model on, a busy transmitter defers the packet into its
  /// FIFO queue (or drops it when the queue is full).
  void transmit(NodeId from, std::shared_ptr<const Packet> packet) {
    if (!node_up(from)) {
      blocked_transmissions_->inc();
      trace(obsx::TraceKind::kDropFaulted, from, trace_id(*packet));
      return;
    }
    if (contention_enabled()) {
      if (busy_until_[from] > sim_.now() || queue_size(from) > 0) {
        if (queue_size(from) >= config_.tx_queue_capacity) {
          queue_drops_->inc();
          trace(obsx::TraceKind::kDropQueue, from, trace_id(*packet));
        } else {
          deferrals_->inc();
          trace(obsx::TraceKind::kDeferred, from, trace_id(*packet));
          queue_push(from, std::move(packet));
        }
        return;
      }
    }
    begin_transmission(from, std::move(packet));
  }

  /// Total broadcasts initiated (the paper's "number of packet broadcasts").
  std::size_t transmissions() const { return transmissions_->value(); }
  /// Per-link deliveries (each broadcast fans out to its neighbors).
  std::size_t deliveries() const { return deliveries_->value(); }
  std::size_t losses() const { return losses_->value(); }
  /// Broadcasts swallowed because the transmitter was down.
  std::size_t blocked_transmissions() const { return blocked_transmissions_->value(); }
  /// In-flight deliveries dropped because the receiver was down.
  std::size_t blocked_receptions() const { return blocked_receptions_->value(); }
  /// Transmits queued behind a busy channel (contention model).
  std::size_t deferrals() const { return deferrals_->value(); }
  /// Transmits dropped because the node's queue was full (contention model).
  std::size_t queue_drops() const { return queue_drops_->value(); }

  /// Cumulative on-air seconds of one node (contention model; 0 otherwise).
  double airtime_s(NodeId node) const {
    return node < airtime_.size() ? airtime_[node] : 0.0;
  }
  /// Cumulative on-air seconds across every node.
  double total_airtime_s() const {
    double total = 0.0;
    for (const double a : airtime_) total += a;
    return total;
  }
  /// Packets currently waiting in one node's transmit queue.
  std::size_t queued(NodeId node) const {
    return node < node_ring_.size() ? queue_size(node) : 0;
  }

  void reset_counters() {
    transmissions_->reset();
    deliveries_->reset();
    losses_->reset();
    blocked_transmissions_->reset();
    blocked_receptions_->reset();
    deferrals_->reset();
    queue_drops_->reset();
    airtime_us_->reset();
    for (double& a : airtime_) a = 0.0;
    for (std::uint32_t& c : tx_counts_) c = 0;
  }

 private:
  /// One broadcast's surviving receptions, packed into a single queue
  /// occupant. fire() delivers the head entry and hands the scheduler the
  /// next (time, seq) key; after the last entry the batch returns itself to
  /// the medium's freelist (dropping its packet reference).
  struct DeliveryBatch final : BatchEvent {
    struct Entry {
      SimTime time;
      std::uint64_t seq;
      NodeId to;
    };

    BroadcastMedium* medium = nullptr;
    NodeId from = 0;
    std::uint32_t pid = 0;
    std::shared_ptr<const Packet> packet;
    std::vector<Entry> entries;
    std::size_t head = 0;

    BatchFire fire(SimTime) override {
      const Entry entry = entries[head++];
      medium->deliver_one(entry.to, from, packet, pid);
      if (head < entries.size()) {
        const Entry& next = entries[head];
        return {true, next.time, next.seq};
      }
      medium->release_batch(this);  // self-release: last action on this object
      return {false, 0.0, 0};
    }
  };

  DeliveryBatch* acquire_batch() {
    if (free_batches_.empty()) {
      // all_batches_ keeps ownership even while a batch is in flight (its
      // only other reference is a raw pointer inside the event queue), so
      // teardown with pending deliveries cannot leak.
      auto& slot = all_batches_.emplace_back(std::make_unique<DeliveryBatch>());
      slot->medium = this;
      free_batches_.push_back(slot.get());
    }
    DeliveryBatch* batch = free_batches_.back();
    free_batches_.pop_back();
    return batch;
  }

  void release_batch(DeliveryBatch* batch) {
    batch->packet.reset();
    batch->entries.clear();  // keeps capacity for the next broadcast
    batch->head = 0;
    free_batches_.push_back(batch);
  }

  // --- Transmit-queue ring slab (contention model only) -------------------
  // Per-node transmitter state is struct-of-arrays: busy_until_ / airtime_ /
  // node_ring_ are flat per-node slabs, and the FIFO queues themselves live
  // in a shared pool of fixed-capacity rings. A node holds a ring only while
  // packets are actually waiting (node_ring_ == kNoRing otherwise), so idle
  // nodes cost 20 bytes instead of a ~96-byte TxState with an empty deque —
  // at metro scale almost every node is idle almost always, and the number
  // of live rings tracks instantaneous congestion, not city size.

  static constexpr std::uint32_t kNoRing = 0xffffffffu;

  struct Ring {
    std::uint32_t head = 0;
    std::uint32_t size = 0;
  };

  std::size_t queue_size(NodeId node) const {
    const std::uint32_t r = node_ring_[node];
    return r == kNoRing ? 0 : rings_[r].size;
  }

  /// Append to the node's FIFO; the caller has already checked capacity.
  void queue_push(NodeId node, std::shared_ptr<const Packet> packet) {
    std::uint32_t r = node_ring_[node];
    if (r == kNoRing) r = acquire_ring(node);
    Ring& ring = rings_[r];
    const std::size_t cap = config_.tx_queue_capacity;
    ring_slots_[r * cap + (ring.head + ring.size) % cap] = std::move(packet);
    ++ring.size;
  }

  /// Pop the FIFO head; releases the ring when it empties. The caller has
  /// already checked queue_size(node) > 0.
  std::shared_ptr<const Packet> queue_pop(NodeId node) {
    const std::uint32_t r = node_ring_[node];
    Ring& ring = rings_[r];
    const std::size_t cap = config_.tx_queue_capacity;
    std::shared_ptr<const Packet> packet = std::move(ring_slots_[r * cap + ring.head]);
    ring.head = static_cast<std::uint32_t>((ring.head + 1) % cap);
    if (--ring.size == 0) {
      node_ring_[node] = kNoRing;
      free_rings_.push_back(r);
    }
    return packet;
  }

  std::uint32_t acquire_ring(NodeId node) {
    std::uint32_t r;
    if (free_rings_.empty()) {
      r = static_cast<std::uint32_t>(rings_.size());
      rings_.emplace_back();
      ring_slots_.resize(ring_slots_.size() + config_.tx_queue_capacity);
    } else {
      r = free_rings_.back();
      free_rings_.pop_back();
      rings_[r] = Ring{};
    }
    node_ring_[node] = r;
    return r;
  }

  SimTime serialization_delay(const Packet& packet) const {
    if (!contention_enabled()) return config_.tx_delay_s;
    const std::size_t bits =
        config_.frame_overhead_bits + (packet_bits_ ? packet_bits_(packet) : 0);
    return static_cast<SimTime>(bits) / config_.bitrate_bps;
  }

  /// Put `packet` on the air now: the channel is known to be free and the
  /// node up. Claims the channel for the serialization time, then fans out.
  void begin_transmission(NodeId from, std::shared_ptr<const Packet> packet) {
    const std::uint32_t pid = trace_id(*packet);
    const SimTime air = serialization_delay(*packet);
    transmissions_->inc();
    trace(obsx::TraceKind::kTx, from, pid);
    if (tx_observer_) tx_observer_(from, *packet);
    if (contention_enabled()) {
      busy_until_[from] = sim_.now() + air;
      airtime_[from] += air;
      airtime_us_->inc(static_cast<std::uint64_t>(std::llround(air * 1e6)));
      sim_.schedule_in(air, [this, from] { complete_transmission(from); });
    }
    const std::uint32_t txn =
        config_.shard_invariant_rng ? tx_counts_[from]++ : 0;
    DeliveryBatch* batch = config_.batched_delivery ? acquire_batch() : nullptr;
    // The CSR keeps neighbor ids and weights in split packed arrays; the
    // tile-membership check (and the common no-loss path) walks only the
    // 4-byte id run.
    const auto links = topology_.neighbors(from);
    const std::span<const NodeId> link_ids = links.ids();
    const std::span<const double> link_weights = links.weights();
    for (std::size_t i = 0; i < link_ids.size(); ++i) {
      const NodeId to = link_ids[i];
      // Cross-tile neighbors are handled by remote_fanout_; skipping them
      // before any draw is outcome-preserving because tiled runs always use
      // the per-link hashed draws (see set_tile_filter).
      if (tile_filter_ != nullptr && tile_filter_[to] != tile_) continue;
      double loss = config_.loss_probability;
      if (link_loss_) {
        const double extra = link_loss_(from, to);
        if (extra > 0.0) loss = 1.0 - (1.0 - loss) * (1.0 - extra);
      }
      if (loss > 0.0) {
        const bool lost = config_.shard_invariant_rng
                              ? link_unit(config_.seed, from, to, txn, 0) < loss
                              : loss_rng_.chance(loss);
        if (lost) {
          losses_->inc();
          trace(obsx::TraceKind::kDropLoss, to, pid, static_cast<std::uint32_t>(from));
          continue;
        }
      }
      SimTime jitter = 0.0;
      if (config_.jitter_s > 0.0) {
        jitter = config_.shard_invariant_rng
                     ? link_unit(config_.seed ^ kJitterStream, from, to, txn, 1) *
                           config_.jitter_s
                     : jitter_rng_.uniform(0.0, config_.jitter_s);
      }
      const SimTime delay = air + config_.prop_delay_s_per_m * link_weights[i] + jitter;
      if (batch != nullptr) {
        // Same (time, seq) key and latency recording schedule_in would have
        // produced; the entry just lives in the batch instead of the queue.
        const SimTime at = sim_.now() + delay;
        sim_.record_queue_latency(at - sim_.now());
        batch->entries.push_back({at, sim_.reserve_seq(), to});
      } else {
        sim_.schedule_in(delay, [this, to, from, packet, pid] {
          deliver_one(to, from, packet, pid);
        });
      }
    }
    if (batch != nullptr) {
      if (batch->entries.empty()) {
        release_batch(batch);
      } else {
        batch->from = from;
        batch->pid = pid;
        batch->packet = packet;
        // Neighbor order already sorts seqs ascending; jitter can reorder
        // times, and delivery must follow the global (time, seq) order.
        std::sort(batch->entries.begin(), batch->entries.end(),
                  [](const typename DeliveryBatch::Entry& a,
                     const typename DeliveryBatch::Entry& b) {
                    if (a.time != b.time) return a.time < b.time;
                    return a.seq < b.seq;
                  });
        sim_.schedule_batch(batch->entries.front().time, batch->entries.front().seq,
                            batch);
      }
    }
    if (remote_fanout_) remote_fanout_(from, packet, air, txn);
  }

  /// One reception: the exact body the unbatched per-reception closure runs.
  /// Receiver status is sampled at delivery time: a node that went down
  /// while the packet was in flight misses it.
  void deliver_one(NodeId to, NodeId from, const std::shared_ptr<const Packet>& packet,
                   std::uint32_t pid) {
    if (!node_up(to)) {
      blocked_receptions_->inc();
      trace(obsx::TraceKind::kDropFaulted, to, pid, static_cast<std::uint32_t>(from));
      return;
    }
    deliveries_->inc();
    trace(obsx::TraceKind::kRx, to, pid, static_cast<std::uint32_t>(from));
    if (deliver_) deliver_(to, from, packet);
  }

  /// The in-flight packet finished serializing: start the next queued one.
  void complete_transmission(NodeId from) {
    // A fresh transmit may have claimed the channel at exactly the free
    // instant (before this event ran); its own completion drains the queue.
    if (busy_until_[from] > sim_.now()) return;
    while (queue_size(from) > 0) {
      std::shared_ptr<const Packet> packet = queue_pop(from);
      if (!node_up(from)) {
        // The node died while the packet waited; it never airs.
        blocked_transmissions_->inc();
        trace(obsx::TraceKind::kDropFaulted, from, trace_id(*packet));
        continue;
      }
      begin_transmission(from, std::move(packet));
      break;
    }
  }

  std::uint32_t trace_id(const Packet& packet) const {
    if (trace_ == nullptr || !trace_->enabled() || !packet_id_) return 0;
    return packet_id_(packet);
  }
  void trace(obsx::TraceKind kind, NodeId node, std::uint32_t pid,
             std::uint32_t payload = obsx::kTraceNone) {
    if (trace_ == nullptr) return;
    trace_->record(kind, sim_.now(), static_cast<std::uint32_t>(node), pid, payload);
  }

  Simulator& sim_;
  const graphx::Graph& topology_;
  MediumConfig config_;
  geo::Rng loss_rng_;    ///< per-link loss draws only
  geo::Rng jitter_rng_;  ///< jitter draws only (untouched when jitter_s == 0)
  DeliveryFn deliver_;
  NodeUpFn node_up_;
  LinkLossFn link_loss_;
  PacketBitsFn packet_bits_;
  TxObserverFn tx_observer_;
  RemoteFanoutFn remote_fanout_;
  std::vector<std::unique_ptr<DeliveryBatch>> all_batches_;  ///< owns every batch
  std::vector<DeliveryBatch*> free_batches_;  ///< batches not currently in flight
  // Per-node transmitter slabs (all empty when contention is off).
  std::vector<SimTime> busy_until_;
  std::vector<double> airtime_;
  std::vector<std::uint32_t> node_ring_;  ///< ring index or kNoRing
  std::vector<Ring> rings_;
  std::vector<std::shared_ptr<const Packet>> ring_slots_;  ///< tx_queue_capacity per ring
  std::vector<std::uint32_t> free_rings_;
  std::vector<std::uint32_t> tx_counts_;  ///< empty unless shard_invariant_rng
  const std::uint32_t* tile_filter_ = nullptr;  ///< per-node tile table (shardx)
  std::uint32_t tile_ = 0;
  obsx::MetricsRegistry own_;  ///< fallback registry until bind_metrics()
  obsx::Counter* transmissions_;
  obsx::Counter* deliveries_;
  obsx::Counter* losses_;
  obsx::Counter* blocked_transmissions_;
  obsx::Counter* blocked_receptions_;
  obsx::Counter* deferrals_;
  obsx::Counter* queue_drops_;
  obsx::Counter* airtime_us_;
  obsx::TraceBuffer* trace_ = nullptr;
  PacketIdFn packet_id_;
};

}  // namespace citymesh::sim
