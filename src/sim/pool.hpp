// Fixed-size block pool with a counted heap fallback.
//
// The event hot path recycles a few object shapes at very high rates
// (MeshPacket bodies, shared_ptr control blocks, delivery batches). BlockPool
// preallocates `capacity` fixed-size slots once and hands them out through a
// LIFO freelist, so steady-state acquire/release is two pointer moves under a
// spinlock. Exhaustion and oversized requests fall back to ::operator new —
// counted, never UB — so capacity is a performance knob, not a correctness
// bound.
//
// Thread safety: acquire/release may race across threads (shardx workers
// release shared_ptr<const MeshPacket> references on whichever tile thread
// drops the last reference), so the freelist is guarded by an atomic_flag
// spinlock. Contention is negligible: the critical section is a few loads
// and stores.
//
// Double-release detection is always on (one byte per slot): releasing a
// pooled block twice throws std::logic_error instead of corrupting the
// freelist. Heap-fallback blocks are not tracked (operator delete catches
// those in sanitizer builds).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <stdexcept>
#include <vector>

namespace citymesh::sim {

struct PoolStats {
  std::uint64_t acquires = 0;   ///< total acquire() calls
  std::uint64_t releases = 0;   ///< total release() calls
  std::uint64_t fallbacks = 0;  ///< acquires served by the heap
  std::uint64_t in_use = 0;     ///< live blocks (pooled + fallback)
  std::uint64_t peak_in_use = 0;
  std::uint64_t capacity = 0;  ///< preallocated pooled slots
};

class BlockPool {
 public:
  /// Preallocates `capacity` slots of `block_bytes` each (rounded up to
  /// max_align_t granularity) in one contiguous arena.
  BlockPool(std::size_t block_bytes, std::size_t capacity)
      : block_bytes_(round_up(block_bytes)), capacity_(capacity),
        arena_(block_bytes_ * capacity / sizeof(std::max_align_t) + 1),
        slot_free_(capacity, 1) {
    free_.reserve(capacity);
    // LIFO order: slot 0 is handed out first (warm cache on the first wave).
    for (std::size_t i = capacity; i > 0; --i)
      free_.push_back(static_cast<std::uint32_t>(i - 1));
  }

  BlockPool(const BlockPool&) = delete;
  BlockPool& operator=(const BlockPool&) = delete;

  ~BlockPool() = default;  // outstanding fallback blocks are freed by release()

  /// A block of at least `bytes`. Pooled when `bytes` fits a slot and one is
  /// free; otherwise a counted heap allocation.
  void* acquire(std::size_t bytes) {
    if (bytes <= block_bytes_) {
      lock();
      ++stats_.acquires;
      if (!free_.empty()) {
        const std::uint32_t slot = free_.back();
        free_.pop_back();
        slot_free_[slot] = 0;
        bump_in_use();
        unlock();
        return slot_ptr(slot);
      }
      ++stats_.fallbacks;
      bump_in_use();
      unlock();
    } else {
      lock();
      ++stats_.acquires;
      ++stats_.fallbacks;
      bump_in_use();
      unlock();
    }
    return ::operator new(bytes < block_bytes_ ? block_bytes_ : bytes);
  }

  /// Return a block. Pooled blocks rejoin the freelist; fallback blocks are
  /// deleted. Throws std::logic_error on a double release of a pooled slot.
  void release(void* p) {
    if (p == nullptr) return;
    if (owns(p)) {
      const std::uint32_t slot = slot_of(p);
      lock();
      if (slot_free_[slot] != 0) {
        unlock();
        throw std::logic_error{"BlockPool: double release of a pooled block"};
      }
      slot_free_[slot] = 1;
      free_.push_back(slot);
      ++stats_.releases;
      --stats_.in_use;
      unlock();
      return;
    }
    lock();
    ++stats_.releases;
    --stats_.in_use;
    unlock();
    ::operator delete(p);
  }

  bool owns(const void* p) const {
    const auto* b = static_cast<const unsigned char*>(p);
    const auto* base = arena_base();
    return b >= base && b < base + block_bytes_ * capacity_;
  }

  std::size_t block_bytes() const { return block_bytes_; }

  PoolStats stats() const {
    const_cast<BlockPool*>(this)->lock();
    PoolStats s = stats_;
    const_cast<BlockPool*>(this)->unlock();
    s.capacity = capacity_;
    return s;
  }

 private:
  static std::size_t round_up(std::size_t bytes) {
    const std::size_t a = alignof(std::max_align_t);
    return ((bytes == 0 ? 1 : bytes) + a - 1) / a * a;
  }

  const unsigned char* arena_base() const {
    return reinterpret_cast<const unsigned char*>(arena_.data());
  }
  unsigned char* arena_base() {
    return reinterpret_cast<unsigned char*>(arena_.data());
  }
  void* slot_ptr(std::uint32_t slot) { return arena_base() + block_bytes_ * slot; }
  std::uint32_t slot_of(const void* p) const {
    const auto offset =
        static_cast<std::size_t>(static_cast<const unsigned char*>(p) - arena_base());
    return static_cast<std::uint32_t>(offset / block_bytes_);
  }

  void bump_in_use() {
    if (++stats_.in_use > stats_.peak_in_use) stats_.peak_in_use = stats_.in_use;
  }

  void lock() {
    while (spin_.test_and_set(std::memory_order_acquire)) {
      // 1-core containers included: yield-free spin is fine, the hold time
      // is a handful of instructions and contention is rare.
    }
  }
  void unlock() { spin_.clear(std::memory_order_release); }

  std::size_t block_bytes_;
  std::size_t capacity_;
  std::vector<std::max_align_t> arena_;      ///< capacity_ * block_bytes_ of storage
  std::vector<unsigned char> slot_free_;     ///< 1 = in freelist (double-release check)
  std::vector<std::uint32_t> free_;          ///< LIFO freelist of slot indices
  std::atomic_flag spin_ = ATOMIC_FLAG_INIT;
  PoolStats stats_;
};

/// Minimal std allocator over a BlockPool — used to place shared_ptr control
/// blocks in a pool (std::shared_ptr<T>(ptr, deleter, PoolAllocator{...})).
/// The pool must outlive every allocation.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(BlockPool* pool) noexcept : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept : pool_(other.pool()) {}

  T* allocate(std::size_t n) { return static_cast<T*>(pool_->acquire(n * sizeof(T))); }
  void deallocate(T* p, std::size_t) noexcept { pool_->release(p); }

  BlockPool* pool() const noexcept { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const noexcept {
    return pool_ == other.pool();
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>& other) const noexcept {
    return pool_ != other.pool();
  }

 private:
  BlockPool* pool_;
};

}  // namespace citymesh::sim
