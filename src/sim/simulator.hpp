// Discrete-event simulation engine.
//
// Replaces the paper's SimPy harness. Events are (time, sequence) ordered in
// a binary heap; ties break on insertion order, so runs are deterministic for
// a given seed. The engine knows nothing about radios — the broadcast medium
// (medium.hpp) and the protocol agents are layered on top.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "obsx/metrics.hpp"

namespace citymesh::sim {

/// Simulated time in seconds.
using SimTime = double;

constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();

class Simulator {
 public:
  using Handler = std::function<void()>;
  /// Token identifying one cancelable scheduled event (its sequence number).
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = std::numeric_limits<EventId>::max();

  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  void schedule_at(SimTime t, Handler fn);

  /// Schedule `fn` after `delay` seconds (must be >= 0).
  void schedule_in(SimTime delay, Handler fn) { schedule_at(now_ + delay, std::move(fn)); }

  /// Like schedule_at, but returns a token that cancel() accepts. A
  /// cancelled event still occupies its heap slot and advances now() when
  /// popped — identical timing to a handler that no-ops — but its handler is
  /// dropped (backoff timers, src/relayx).
  EventId schedule_cancelable_at(SimTime t, Handler fn);
  EventId schedule_cancelable_in(SimTime delay, Handler fn) {
    return schedule_cancelable_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending cancelable event. Returns false when the token was
  /// already cancelled, already ran, or never cancelable *here* (e.g. it
  /// belongs to another shard's simulator) — a counted no-op, never UB;
  /// per-shard timer ownership (src/shardx) relies on this. O(1) amortized —
  /// the heap is not touched; the event is skipped when it surfaces.
  bool cancel(EventId id);

  /// Cancelable events scheduled and not yet run or cancelled.
  std::size_t cancelable_pending() const { return cancelable_.size(); }

  /// cancel() calls that found nothing to cancel (already fired, already
  /// cancelled, or a foreign event id).
  std::uint64_t cancel_misses() const { return cancel_misses_; }

  /// Run until the queue drains, `until` is reached, or `max_events` have
  /// been processed. Returns the number of events processed by this call.
  std::size_t run(SimTime until = kForever,
                  std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Earliest pending event time; kForever when the queue is empty. The
  /// shardx window coordinator uses this to skip idle spans instead of
  /// stepping empty lookahead windows.
  SimTime next_time() const { return queue_.empty() ? kForever : queue_.top().time; }

  /// Fast-forward to `t` without running anything (window-barrier alignment
  /// across shards). Must not skip events: throws when t > next_time().
  /// No-op when t <= now().
  void advance_to(SimTime t);

  /// Like schedule_at, but bypasses the latency histogram: cross-shard
  /// handoff ingestion records the handoff's true tx->rx latency on the
  /// source shard at creation time, so recording the barrier->arrival
  /// remainder here would double-count.
  void schedule_at_unrecorded(SimTime t, Handler fn);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t events_processed() const { return processed_; }

  /// Attach a histogram recording, per scheduled event, how long it will sit
  /// in the queue (execution time minus schedule time, simulated seconds —
  /// events run exactly at their timestamp, so the latency is known at
  /// schedule time). nullptr detaches. The histogram must outlive the
  /// simulator.
  void set_latency_histogram(obsx::Histogram* hist) { latency_ = hist; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Handler fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::uint64_t cancel_misses_ = 0;
  obsx::Histogram* latency_ = nullptr;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  // Cancelable-event bookkeeping; both empty unless schedule_cancelable_*
  // is used, so the run loop pays only an empty() branch per event.
  std::unordered_set<EventId> cancelable_;  ///< scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;   ///< cancelled, not yet popped
};

}  // namespace citymesh::sim
