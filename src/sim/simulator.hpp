// Discrete-event simulation engine.
//
// Replaces the paper's SimPy harness. Events are (time, sequence) ordered —
// ties break on insertion order, so runs are deterministic for a given seed.
// The pending set lives in an EventQueue (sim/scheduler.hpp): a binary heap
// or a calendar queue, selected per simulator by SchedulerKind; both realize
// the identical total order, so the choice never affects behavior or
// determinism digests. The engine knows nothing about radios — the broadcast
// medium (medium.hpp) and the protocol agents are layered on top.
//
// Handlers are stored inline in the event record (sim/handler.hpp), so
// scheduling an ordinary closure performs no allocation. The schedule_*
// entry points are templates accepting any void() callable — std::function
// still works, it is just no longer required.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "obsx/metrics.hpp"
#include "sim/scheduler.hpp"

namespace citymesh::sim {

class Simulator {
 public:
  using Handler = std::function<void()>;
  /// Token identifying one cancelable scheduled event (its sequence number).
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidEvent = std::numeric_limits<EventId>::max();

  explicit Simulator(SchedulerKind scheduler = kDefaultScheduler) : queue_(scheduler) {}

  SimTime now() const { return now_; }
  SchedulerKind scheduler_kind() const { return queue_.kind(); }

  /// Schedule `fn` at absolute time `t` (must be >= now()).
  template <typename F>
  void schedule_at(SimTime t, F&& fn) {
    if (t < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
    if (latency_) latency_->record(t - now_);
    queue_.push({t, next_seq_++, nullptr, InlineFn(std::forward<F>(fn))});
  }

  /// Schedule `fn` after `delay` seconds (must be >= 0).
  template <typename F>
  void schedule_in(SimTime delay, F&& fn) {
    schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Like schedule_at, but returns a token that cancel() accepts. A
  /// cancelled event still occupies its queue slot and advances now() when
  /// popped — identical timing to a handler that no-ops — but its handler is
  /// dropped (backoff timers, src/relayx).
  template <typename F>
  EventId schedule_cancelable_at(SimTime t, F&& fn) {
    const EventId id = next_seq_;
    schedule_at(t, std::forward<F>(fn));
    cancelable_.insert(id);
    return id;
  }
  template <typename F>
  EventId schedule_cancelable_in(SimTime delay, F&& fn) {
    return schedule_cancelable_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancel a pending cancelable event. Returns false when the token was
  /// already cancelled, already ran, or never cancelable *here* (e.g. it
  /// belongs to another shard's simulator) — a counted no-op, never UB;
  /// per-shard timer ownership (src/shardx) relies on this. O(1) amortized —
  /// the queue is not touched; the event is skipped when it surfaces.
  bool cancel(EventId id);

  /// Cancelable events scheduled and not yet run or cancelled.
  std::size_t cancelable_pending() const { return cancelable_.size(); }

  /// cancel() calls that found nothing to cancel (already fired, already
  /// cancelled, or a foreign event id).
  std::uint64_t cancel_misses() const { return cancel_misses_; }

  /// Run until the queue drains, `until` is reached, or `max_events` have
  /// been processed. Returns the number of events processed by this call.
  std::size_t run(SimTime until = kForever,
                  std::size_t max_events = std::numeric_limits<std::size_t>::max());

  /// Earliest pending event time; kForever when the queue is empty. The
  /// shardx window coordinator uses this to skip idle spans instead of
  /// stepping empty lookahead windows.
  SimTime next_time() const {
    const EventRecord* top = queue_.peek();
    return top == nullptr ? kForever : top->time;
  }

  /// Fast-forward to `t` without running anything (window-barrier alignment
  /// across shards). Must not skip events: throws when t > next_time().
  /// No-op when t <= now().
  void advance_to(SimTime t);

  /// Like schedule_at, but bypasses the latency histogram: cross-shard
  /// handoff ingestion records the handoff's true tx->rx latency on the
  /// source shard at creation time, so recording the barrier->arrival
  /// remainder here would double-count.
  template <typename F>
  void schedule_at_unrecorded(SimTime t, F&& fn) {
    if (t < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
    queue_.push({t, next_seq_++, nullptr, InlineFn(std::forward<F>(fn))});
  }

  // --- Batched events (sim/medium.hpp) -----------------------------------
  // A batched transmission consumes one sequence number per reception at
  // schedule time — in the exact order the unbatched path would have
  // scheduled them — then occupies a single queue node keyed by its earliest
  // entry. The run loop fires one entry per pop and reinserts the batch at
  // its next (time, seq), so the global event interleaving, sequence
  // consumption, and now() trajectory are identical to N separate events.

  /// Claim the next sequence number without scheduling anything.
  std::uint64_t reserve_seq() { return next_seq_++; }

  /// Feed the queue-latency histogram exactly as schedule_at would have
  /// (batched entries are scheduled out-of-band, but their latency is known
  /// at creation time like any other event's).
  void record_queue_latency(SimTime dt) {
    if (latency_) latency_->record(dt);
  }

  /// Insert `batch` keyed by its first entry. `seq` must come from
  /// reserve_seq() and `t` must be >= now(). The batch object must stay
  /// alive until its fire() returns more == false.
  void schedule_batch(SimTime t, std::uint64_t seq, BatchEvent* batch);

  bool empty() const { return queue_.empty(); }
  std::size_t pending() const { return queue_.size(); }
  std::size_t events_processed() const { return processed_; }

  /// Attach a histogram recording, per scheduled event, how long it will sit
  /// in the queue (execution time minus schedule time, simulated seconds —
  /// events run exactly at their timestamp, so the latency is known at
  /// schedule time). nullptr detaches. The histogram must outlive the
  /// simulator.
  void set_latency_histogram(obsx::Histogram* hist) { latency_ = hist; }

 private:
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
  std::uint64_t cancel_misses_ = 0;
  obsx::Histogram* latency_ = nullptr;
  EventQueue queue_;
  // Cancelable-event bookkeeping; both empty unless schedule_cancelable_*
  // is used, so the run loop pays only an empty() branch per event.
  std::unordered_set<EventId> cancelable_;  ///< scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;   ///< cancelled, not yet popped
};

}  // namespace citymesh::sim
