#include "sim/scheduler.hpp"

#include <algorithm>
#include <cmath>

namespace citymesh::sim {

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kHeap: return "heap";
    case SchedulerKind::kCalendar: return "calendar";
  }
  return "heap";
}

std::optional<SchedulerKind> scheduler_from(std::string_view name) {
  if (name == "heap") return SchedulerKind::kHeap;
  if (name == "calendar") return SchedulerKind::kCalendar;
  return std::nullopt;
}

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

void CalendarQueue::insert_sorted(std::vector<EventRecord>& v, EventRecord&& ev) {
  // Descending (time, seq): the minimum sits at back() for O(1) removal.
  const auto pos = std::lower_bound(
      v.begin(), v.end(), ev,
      [](const EventRecord& a, const EventRecord& b) { return b.before(a); });
  v.insert(pos, std::move(ev));
}

void CalendarQueue::place(EventRecord&& ev, Where* where, std::size_t* bucket) {
  if (in_overflow(ev.time)) {
    insert_sorted(overflow_, std::move(ev));
    if (where != nullptr) *where = Where::kOverflow;
    return;
  }
  const std::size_t idx = bucket_index(ev.time);
  insert_sorted(buckets_[idx], std::move(ev));
  if (where != nullptr) {
    *where = Where::kBucket;
    *bucket = idx;
  }
}

void CalendarQueue::push(EventRecord&& ev) {
  // Cache maintenance: a still-valid cached minimum stays valid (it remains
  // its bucket's back() even when the new event joins the same bucket,
  // because a non-smaller event sorts in front of it); a new smaller event
  // simply retargets the cache.
  const EventRecord* cur = cached_min();
  const bool smaller = cur != nullptr && ev.before(*cur);
  // The ring scan starts at floor_time_ (normally the last pop time, which
  // no Simulator push can undercut). A raw-queue user inserting into the
  // past just drags the scan start back with it.
  if (ev.time < floor_time_) floor_time_ = ev.time;
  Where where = Where::kNone;
  std::size_t bucket = 0;
  place(std::move(ev), &where, &bucket);
  ++size_;
  if (smaller) {
    cached_ = where;
    cached_bucket_ = bucket;
  }
  maybe_resize();
}

const EventRecord* CalendarQueue::cached_min() const {
  switch (cached_) {
    case Where::kBucket: return &buckets_[cached_bucket_].back();
    case Where::kOverflow: return &overflow_.back();
    case Where::kNone: break;
  }
  return nullptr;
}

const EventRecord* CalendarQueue::peek() const {
  if (size_ == 0) return nullptr;
  if (cached_ == Where::kNone) locate_min();
  return cached_min();
}

EventRecord CalendarQueue::pop() {
  if (cached_ == Where::kNone) locate_min();
  EventRecord ev;
  if (cached_ == Where::kOverflow) {
    ev = std::move(overflow_.back());
    overflow_.pop_back();
  } else {
    std::vector<EventRecord>& b = buckets_[cached_bucket_];
    ev = std::move(b.back());
    b.pop_back();
    if (b.size() > serviced_occupancy_) serviced_occupancy_ = b.size();
  }
  --size_;
  floor_time_ = ev.time;
  cached_ = Where::kNone;
  maybe_resize();
  return ev;
}

void CalendarQueue::locate_min() const {
  // Precondition: size_ > 0. Overflow events all lie at or beyond day
  // kMaxDay — strictly after every bucketed event — so the overflow list is
  // the minimum only when the buckets are empty.
  if (overflow_.size() == size_) {
    cached_ = Where::kOverflow;
    return;
  }
  // Scan one lap of days starting at the last pop time (every pending event
  // is >= floor_time_). An event qualifies only inside its own day window
  // (time < top): a bucket's min might belong to a later lap of the ring.
  SimTime start = floor_time_;
  if (!(start > 0.0)) start = 0.0;
  std::uint64_t day = day_of(start);
  std::size_t idx = static_cast<std::size_t>(day) & mask_;
  SimTime top = (static_cast<SimTime>(day) + 1.0) * width_;
  const std::size_t lap = buckets_.size();
  for (std::size_t step = 0; step < lap; ++step) {
    const std::vector<EventRecord>& b = buckets_[idx];
    if (!b.empty() && b.back().time < top) {
      cached_ = Where::kBucket;
      cached_bucket_ = idx;
      return;
    }
    idx = (idx + 1) & mask_;
    top += width_;
  }
  // Sparse year (no event within one lap of day windows): direct search over
  // the bucket minima.
  const EventRecord* best = nullptr;
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < lap; ++i) {
    const std::vector<EventRecord>& b = buckets_[i];
    if (!b.empty() && (best == nullptr || b.back().before(*best))) {
      best = &b.back();
      best_idx = i;
    }
  }
  cached_ = Where::kBucket;
  cached_bucket_ = best_idx;
}

void CalendarQueue::maybe_resize() {
  const std::size_t nb = buckets_.size();
  if (size_ > nb * 2) {
    rebuild(nb * 2, Rederive::kFree);
    return;
  }
  if (nb > kMinBuckets && size_ < nb / 2) {
    rebuild(nb / 2, Rederive::kFree);
    return;
  }
  if (serviced_occupancy_ > kOccupancyLimit) {
    // A pop just serviced a bucket holding > kOccupancyLimit events: the
    // head of the queue is packed much denser than one event per ~3 days,
    // so insertion into that sorted bucket is degrading toward O(n). The
    // true head spacing is at most width / occupancy; jump the width down
    // proportionally in a single rebuild instead of creeping there. The
    // clamp keeps the current head's day index far below the overflow
    // cutoff so narrowing can never push live events into the overflow
    // list. No quantile estimator replaces this signal: a global spacing
    // statistic is blind to a bimodal pending set (dense recycled head +
    // sparse far tail) where the head density is a tiny fraction of the
    // events.
    const double occ = static_cast<double>(serviced_occupancy_);
    const int shift = static_cast<int>(std::ceil(std::log2(occ / 3.0)));
    const int cur_exp = std::ilogb(width_);
    const int head_exp = std::ilogb(std::max(floor_time_, 1.0));
    const int new_exp = std::max(cur_exp - shift, std::max(head_exp - 50, -62));
    if (new_exp < cur_exp) {
      width_ = std::ldexp(1.0, new_exp);
      inv_width_ = std::ldexp(1.0, -new_exp);
      rebuild(nb, Rederive::kKeep);
      return;
    }
    serviced_occupancy_ = 0;
  }
}

void CalendarQueue::rebuild(std::size_t bucket_count, Rederive rederive) {
  serviced_occupancy_ = 0;
  std::vector<EventRecord> all;
  all.reserve(size_);
  for (std::vector<EventRecord>& b : buckets_)
    for (EventRecord& ev : b) all.push_back(std::move(ev));
  for (EventRecord& ev : overflow_) all.push_back(std::move(ev));

  // Re-derive the day width from the spacing of the *soonest quarter* of
  // pending events. Pop cost is governed by the occupancy of the buckets the
  // ring scan visits next, so the width tracks the event density toward the
  // head of the queue rather than an interquartile estimate that lets a
  // handful of far-future timers blow the width up. Snapped to a power of
  // two so day boundaries are exact in binary floating point. (The
  // occupancy trigger in maybe_resize handles the case no quantile can:
  // a dense head that is a tiny fraction of a sparse pending set.)
  std::vector<SimTime> times;
  if (rederive == Rederive::kFree) {
    times.reserve(all.size());
    for (const EventRecord& ev : all)
      if (std::isfinite(ev.time)) times.push_back(ev.time);
  }
  if (times.size() >= 8) {
    std::sort(times.begin(), times.end());
    const std::size_t hi = times.size() / 4;
    const SimTime span = times[hi] - times[0];
    if (span > 0.0 && std::isfinite(span)) {
      // ~3 day widths of spacing per event keeps bucket occupancy near one.
      const double target = 3.0 * span / static_cast<double>(hi);
      const int exp = static_cast<int>(
          std::lround(std::clamp(std::log2(target), -62.0, 62.0)));
      width_ = std::ldexp(1.0, exp);
      inv_width_ = std::ldexp(1.0, -exp);
    }
  }

  buckets_.clear();
  buckets_.resize(bucket_count);
  mask_ = bucket_count - 1;
  overflow_.clear();
  cached_ = Where::kNone;
  for (EventRecord& ev : all) place(std::move(ev), nullptr, nullptr);
}

void EventQueue::push(EventRecord&& ev) {
  if (kind_ == SchedulerKind::kHeap) {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), &heap_after);
  } else {
    cal_.push(std::move(ev));
  }
}

const EventRecord* EventQueue::peek() const {
  if (kind_ == SchedulerKind::kHeap) return heap_.empty() ? nullptr : &heap_.front();
  return cal_.peek();
}

EventRecord EventQueue::pop() {
  if (kind_ == SchedulerKind::kHeap) {
    std::pop_heap(heap_.begin(), heap_.end(), &heap_after);
    EventRecord ev = std::move(heap_.back());
    heap_.pop_back();
    return ev;
  }
  return cal_.pop();
}

}  // namespace citymesh::sim
