// Pending-event storage for the simulator: binary heap and calendar queue.
//
// Both implementations realize the same total order — strictly increasing
// (time, seq) — so which one runs is a performance choice, never a behavior
// choice: the differential harness in tests/test_scheduler.cpp replays
// randomized schedule/cancel streams through both and asserts identical pop
// sequences, and the end-to-end golden digests are byte-identical under
// either kind.
//
// The calendar queue (Brown 1988, the ns-2 scheduler) hashes each event by
// its "day" — floor(time / width) — into one of 2^k bucket "slots" of a
// circular year. Pops scan forward from the current day; each bucket holds
// its events sorted, so the scan touches O(1) buckets when the width matches
// the observed event spacing. The width is re-derived (snapped to a power of
// two, so day boundaries are exact in binary floating point) from the
// spacing of the soonest quarter of pending events every time the bucket
// count resizes; between resizes, a pop that services an over-packed bucket
// triggers an occupancy-proportional narrowing rebuild (the signal a spacing
// quantile cannot see on a bimodal pending set). A far-future/overflow
// bucket catches events whose day index would not fit — including +infinity
// timers. Equal times always land in the same bucket, so
// the in-bucket (time, seq) sort reproduces the heap's FIFO tie-break
// exactly.
//
// Event records carry their handler inline (sim/handler.hpp) or a pointer to
// a BatchEvent — a multi-shot event the medium uses to fan one transmission
// out to N receptions from a single queue node (sim/medium.hpp): after each
// firing the batch reports the (time, seq) of its next entry and is
// reinserted, so the global interleaving is identical to N independent
// events at the same timestamps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/handler.hpp"

namespace citymesh::sim {

/// Simulated time in seconds.
using SimTime = double;

constexpr SimTime kForever = std::numeric_limits<SimTime>::infinity();

enum class SchedulerKind : std::uint8_t {
  kHeap,      ///< binary heap (the legacy std::priority_queue order)
  kCalendar,  ///< calendar queue (identical order, O(1) at high event rates)
};

/// Default for new simulators; the differential gate proved order identity,
/// so the calendar queue is the default and kHeap remains the reference.
inline constexpr SchedulerKind kDefaultScheduler = SchedulerKind::kCalendar;

std::string_view to_string(SchedulerKind kind);
std::optional<SchedulerKind> scheduler_from(std::string_view name);

/// What a BatchEvent::fire returns: the key of its next pending entry, or
/// more == false when the batch is exhausted (after which the queue drops
/// its pointer; the batch owner reclaims the object).
struct BatchFire {
  bool more = false;
  SimTime time = 0.0;
  std::uint64_t seq = 0;
};

class BatchEvent {
 public:
  virtual ~BatchEvent() = default;
  /// Deliver exactly one entry (the one this record was keyed by), then
  /// report the next entry's key. Entries must be (time, seq) sorted and
  /// every seq must come from Simulator::reserve_seq().
  virtual BatchFire fire(SimTime now) = 0;
};

struct EventRecord {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  BatchEvent* batch = nullptr;  ///< non-null: multi-shot, fn unused
  InlineFn fn;

  bool before(const EventRecord& other) const {
    if (time != other.time) return time < other.time;
    return seq < other.seq;
  }
};

/// Calendar-queue storage. Buckets hold events sorted descending (min at
/// back() for O(1) removal); the peek cache remembers where the current
/// minimum lives so peek-then-pop costs one scan, not two.
class CalendarQueue {
 public:
  CalendarQueue();

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(EventRecord&& ev);
  const EventRecord* peek() const;
  EventRecord pop();

  /// Current bucket count (tests observe resize behavior).
  std::size_t bucket_count() const { return buckets_.size(); }
  SimTime day_width() const { return width_; }

 private:
  enum class Where : std::uint8_t { kNone, kBucket, kOverflow };

  std::uint64_t day_of(SimTime t) const {
    // Sim time is nonnegative; the guard keeps a stray negative from hitting
    // the UB of a negative double-to-unsigned cast.
    return t > 0.0 ? static_cast<std::uint64_t>(t * inv_width_) : 0;
  }
  bool in_overflow(SimTime t) const {
    // Also catches +infinity and NaN: !(x < limit) is true for both.
    return !(t * inv_width_ < kMaxDay);
  }
  std::size_t bucket_index(SimTime t) const {
    return static_cast<std::size_t>(day_of(t)) & mask_;
  }

  static void insert_sorted(std::vector<EventRecord>& v, EventRecord&& ev);
  void place(EventRecord&& ev, Where* where, std::size_t* bucket);
  const EventRecord* cached_min() const;
  void locate_min() const;
  enum class Rederive : std::uint8_t {
    kKeep,  ///< redistribute only, keep the current width
    kFree,  ///< re-derive the width from pending spacing (may widen)
  };
  void rebuild(std::size_t bucket_count, Rederive rederive);
  void maybe_resize();

  static constexpr std::size_t kMinBuckets = 16;
  /// Serviced-bucket occupancy beyond which the day width is declared too
  /// wide and narrowed in one occupancy-proportional jump.
  static constexpr std::size_t kOccupancyLimit = 64;
  /// Largest day index stored in a bucket: 2^53 keeps the index exact as a
  /// double and far from uint64 overflow. Anything beyond (plus inf/NaN)
  /// goes to the overflow list.
  static constexpr double kMaxDay = 9007199254740992.0;  // 2^53

  std::vector<std::vector<EventRecord>> buckets_;
  std::vector<EventRecord> overflow_;  ///< sorted descending, min at back()
  std::size_t size_ = 0;
  /// Largest occupancy seen in a bucket a pop serviced since the last
  /// rebuild; direct evidence the width is too wide for the head density.
  std::size_t serviced_occupancy_ = 0;
  std::size_t mask_ = kMinBuckets - 1;
  SimTime width_ = 1.0;  ///< power of two
  SimTime inv_width_ = 1.0;
  SimTime floor_time_ = 0.0;  ///< no pending event is earlier (last pop time)

  // Peek cache (mutable: peek() is logically const).
  mutable Where cached_ = Where::kNone;
  mutable std::size_t cached_bucket_ = 0;
};

/// The simulator's pending-event set, behind a runtime SchedulerKind.
class EventQueue {
 public:
  explicit EventQueue(SchedulerKind kind) : kind_(kind) {}

  SchedulerKind kind() const { return kind_; }
  bool empty() const { return size() == 0; }
  std::size_t size() const {
    return kind_ == SchedulerKind::kHeap ? heap_.size() : cal_.size();
  }

  void push(EventRecord&& ev);
  /// Minimum (time, seq) record, or nullptr when empty. The pointer is
  /// invalidated by the next push/pop.
  const EventRecord* peek() const;
  EventRecord pop();

 private:
  static bool heap_after(const EventRecord& a, const EventRecord& b) {
    return b.before(a);  // max-heap comparator -> min at front
  }

  SchedulerKind kind_;
  std::vector<EventRecord> heap_;
  CalendarQueue cal_;
};

}  // namespace citymesh::sim
