// InlineFn: the event-handler type of the scheduler hot path.
//
// std::function heap-allocates for any capture larger than its small-buffer
// (two pointers on libstdc++), and the medium's per-reception closures carry
// ~40 bytes (this + node ids + a shared_ptr + a packet id) — so the legacy
// event loop paid one allocation per scheduled event. InlineFn stores
// captures up to kInlineBytes in-place inside the event record itself; the
// rare larger closure falls back to a counted heap allocation (never UB,
// observable via heap_fallbacks()).
//
// Move-only by design: an event handler is scheduled once and invoked once,
// so copyability would only force every capture to be copyable. Relocation
// (move-construct + destroy source) is the primitive the calendar queue
// needs when buckets resize.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace citymesh::sim {

namespace detail {
inline std::atomic<std::uint64_t>& inline_fn_heap_fallbacks() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
}  // namespace detail

class InlineFn {
 public:
  /// Inline capture budget. 48 bytes covers every closure the hot path
  /// schedules (the medium's delivery closure, relayx backoff timers, the
  /// qfgeo election closures); anything bigger still works via the heap.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, InlineFn>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for Handler
    using D = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, D&>, "InlineFn requires a void() callable");
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::ops;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) = new D(std::forward<F>(fn));
      ops_ = &HeapOps<D>::ops;
      detail::inline_fn_heap_fallbacks().fetch_add(1, std::memory_order_relaxed);
    }
  }

  InlineFn(InlineFn&& other) noexcept { steal(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

  /// Captures that exceeded kInlineBytes and were heap-allocated (process
  /// lifetime total; pool tests assert the hot path stays at zero).
  static std::uint64_t heap_fallbacks() {
    return detail::inline_fn_heap_fallbacks().load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* p);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* p) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*std::launder(reinterpret_cast<D*>(p)))(); }
    static void relocate(void* dst, void* src) noexcept {
      D* s = std::launder(reinterpret_cast<D*>(src));
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) noexcept { std::launder(reinterpret_cast<D*>(p))->~D(); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  template <typename D>
  struct HeapOps {
    static D*& slot(void* p) { return *std::launder(reinterpret_cast<D**>(p)); }
    static void invoke(void* p) { (*slot(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      *reinterpret_cast<D**>(dst) = slot(src);
    }
    static void destroy(void* p) noexcept { delete slot(p); }
    static constexpr Ops ops{&invoke, &relocate, &destroy};
  };

  void steal(InlineFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace citymesh::sim
