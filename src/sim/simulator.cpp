#include "sim/simulator.hpp"

namespace citymesh::sim {

void Simulator::schedule_at(SimTime t, Handler fn) {
  if (t < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
  if (latency_) latency_->record(t - now_);
  queue_.push({t, next_seq_++, std::move(fn)});
}

Simulator::EventId Simulator::schedule_cancelable_at(SimTime t, Handler fn) {
  const EventId id = next_seq_;
  schedule_at(t, std::move(fn));
  cancelable_.insert(id);
  return id;
}

bool Simulator::cancel(EventId id) {
  if (cancelable_.erase(id) == 0) {
    ++cancel_misses_;
    return false;
  }
  cancelled_.insert(id);
  return true;
}

void Simulator::advance_to(SimTime t) {
  if (t <= now_) return;
  if (t > next_time())
    throw std::invalid_argument{"Simulator: advance_to would skip pending events"};
  now_ = t;
}

void Simulator::schedule_at_unrecorded(SimTime t, Handler fn) {
  if (t < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
  queue_.push({t, next_seq_++, std::move(fn)});
}

std::size_t Simulator::run(SimTime until, std::size_t max_events) {
  std::size_t count = 0;
  while (!queue_.empty() && count < max_events) {
    if (queue_.top().time > until) break;
    // priority_queue::top is const; move out via const_cast is UB-adjacent,
    // so copy the handler (handlers are small lambdas in practice).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    // A cancelled event advances time and counts like a no-op handler would
    // have — cancellation changes *what* runs, never the event timeline.
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) {
      ++count;
      ++processed_;
      continue;
    }
    if (!cancelable_.empty()) cancelable_.erase(ev.seq);
    ev.fn();
    ++count;
    ++processed_;
  }
  if (queue_.empty() && until != kForever && now_ < until) now_ = until;
  return count;
}

}  // namespace citymesh::sim
