#include "sim/simulator.hpp"

namespace citymesh::sim {

bool Simulator::cancel(EventId id) {
  if (cancelable_.erase(id) == 0) {
    ++cancel_misses_;
    return false;
  }
  cancelled_.insert(id);
  return true;
}

void Simulator::advance_to(SimTime t) {
  if (t <= now_) return;
  if (t > next_time())
    throw std::invalid_argument{"Simulator: advance_to would skip pending events"};
  now_ = t;
}

void Simulator::schedule_batch(SimTime t, std::uint64_t seq, BatchEvent* batch) {
  if (t < now_) throw std::invalid_argument{"Simulator: cannot schedule in the past"};
  queue_.push({t, seq, batch, InlineFn{}});
}

std::size_t Simulator::run(SimTime until, std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events) {
    const EventRecord* top = queue_.peek();
    if (top == nullptr || top->time > until) break;
    // The queue owns its storage, so the pop moves the record out cleanly
    // (the old std::priority_queue forced a copy through its const top()).
    EventRecord ev = queue_.pop();
    now_ = ev.time;
    ++count;
    ++processed_;
    if (ev.batch != nullptr) {
      // One reception of a batched transmission; each pop counts as one
      // processed event, exactly like the unbatched schedule would have.
      const BatchFire next = ev.batch->fire(now_);
      if (next.more) queue_.push({next.time, next.seq, ev.batch, InlineFn{}});
      continue;
    }
    // A cancelled event advances time and counts like a no-op handler would
    // have — cancellation changes *what* runs, never the event timeline.
    if (!cancelled_.empty() && cancelled_.erase(ev.seq) > 0) continue;
    if (!cancelable_.empty()) cancelable_.erase(ev.seq);
    ev.fn();
  }
  if (queue_.empty() && until != kForever && now_ < until) now_ = until;
  return count;
}

}  // namespace citymesh::sim
