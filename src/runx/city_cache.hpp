// Shared immutable compiled-city cache (src/runx).
//
// Compiling a city (citygen -> building graph -> AP placement) is the
// expensive deterministic prefix of every run; a sweep of S seeds x P grid
// points over the same city repeats it S*P times when done naively. The
// cache compiles each distinct (profile, network-config) key exactly once
// and hands every worker the same read-only core::CompiledCity.
//
// Concurrency: the first thread to request a key becomes its compiler; the
// map holds a shared_future per key, so concurrent requesters of the *same*
// key block on that one compilation (never duplicating it — compiles() is
// exact, not scheduling-dependent) while *different* keys compile in
// parallel.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/network.hpp"
#include "osmx/citygen.hpp"

namespace citymesh::runx {

class CityCache {
 public:
  /// The compiled city for (profile, config.graph + config.placement),
  /// compiling on first use. Throws what citygen/compilation throws; a
  /// failed compilation is not cached.
  std::shared_ptr<const core::CompiledCity> get(const osmx::CityProfile& profile,
                                                const core::NetworkConfig& config);

  /// Number of compilations performed (== distinct keys requested).
  std::size_t compiles() const;

  /// The cache key: profile identity + every config field the compiled
  /// artifacts depend on. Exposed for tests.
  static std::string key_for(const osmx::CityProfile& profile,
                             const core::NetworkConfig& config);

 private:
  using Entry = std::shared_future<std::shared_ptr<const core::CompiledCity>>;

  mutable std::mutex mu_;
  std::map<std::string, Entry> cache_;
  std::size_t compiles_ = 0;
};

}  // namespace citymesh::runx
