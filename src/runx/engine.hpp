// Parallel experiment engine (src/runx).
//
// Every figure of the evaluation is a grid of *independent* simulation runs
// (cities x seeds x scenario/workload points). This engine executes such a
// grid on N worker threads and merges the per-run results into one report
// whose row order and FNV-1a digest are functions of the grid alone — never
// of the thread count or the OS scheduler. The contract that makes this
// sound:
//
//   - a RunJob is pure: the run function builds every piece of mutable
//     state (Simulator, CityMeshNetwork, Rng streams) itself, seeded from
//     the job, and only *reads* shared immutable inputs (a
//     core::CompiledCity from runx::CityCache);
//   - results land in a slot preallocated per job index, so the merge is a
//     deterministic index-order fold no matter which worker finished first;
//   - a job that throws is captured as that row's error — one bad grid
//     point never takes down the sweep or shifts its siblings' rows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obsx/manifest.hpp"
#include "obsx/metrics.hpp"

namespace citymesh::runx {

/// One grid point of a sweep. `index` is the job's position in the expanded
/// grid and defines its row's position in the merged report.
struct RunJob {
  std::size_t index = 0;
  std::string city;   ///< profile name (label only; the fn resolves it)
  std::uint64_t seed = 0;
  std::string point;  ///< grid-point label: "eval", a scenario, a workload
};

/// What one run hands back to the merge.
struct RunResult {
  std::vector<std::string> cells;  ///< printed row, folded into the digest
  obsx::MetricsSnapshot metrics;   ///< merged across the whole sweep
  std::map<std::string, std::string> notes;  ///< merged into manifest notes
  std::string error;  ///< non-empty: the job threw; cells/metrics are void
  bool ok() const { return error.empty(); }
};

/// The run function: executed on a worker thread, once per job. Must be
/// thread-safe in the sense above (own all mutable state; shared inputs
/// read-only). Exceptions become the row's `error`.
using RunFn = std::function<RunResult(const RunJob&)>;

struct EngineConfig {
  /// Worker threads. 1 (default) runs inline on the calling thread with no
  /// threads spawned; 0 means std::thread::hardware_concurrency().
  std::size_t jobs = 1;
};

/// Deterministically merged output of one sweep.
struct SweepReport {
  std::vector<RunJob> jobs;        ///< index order
  std::vector<RunResult> results;  ///< parallel to `jobs`
  std::size_t errors = 0;

  /// Per-run metrics snapshots merged in index order.
  obsx::MetricsSnapshot metrics;
  /// FNV-1a over every row (labels + cells; error rows fold the error
  /// message) in index order — identical for any worker count.
  std::uint64_t digest = 0;
  std::string digest_hex() const;

  /// Rows for viz::print_table: [city, seed, point, cells... | ERROR msg].
  std::vector<std::vector<std::string>> rows() const;
};

/// Resolve EngineConfig::jobs (0 -> hardware concurrency, min 1).
std::size_t resolve_jobs(std::size_t jobs);

/// Execute the grid. Blocks until every job finished; spawns
/// min(jobs, grid size) workers pulling from a shared atomic cursor.
SweepReport run_jobs(std::vector<RunJob> jobs, const RunFn& fn,
                     const EngineConfig& config = {});

}  // namespace citymesh::runx
