#include "runx/sweep.hpp"

#include <charconv>
#include <fstream>
#include <istream>
#include <sstream>
#include <stdexcept>

#include "core/evaluation.hpp"
#include "faultx/engine.hpp"
#include "faultx/spec.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/spec.hpp"
#include "viz/ascii.hpp"

namespace citymesh::runx {

namespace {

bool parse_number(const std::string& s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

/// File stem for point labels: "specs/blackout.spec" -> "blackout".
std::string stem_of(const std::string& path) {
  const std::size_t slash = path.find_last_of("/\\");
  const std::size_t begin = slash == std::string::npos ? 0 : slash + 1;
  std::size_t end = path.find_last_of('.');
  if (end == std::string::npos || end <= begin) end = path.size();
  return path.substr(begin, end - begin);
}

bool parse_line(const std::vector<std::string>& parts, SweepSpec& spec) {
  const std::string& key = parts[0];
  double v = 0.0;
  if (key == "name") {
    if (parts.size() != 2) return false;
    spec.name = parts[1];
    return true;
  }
  if (key == "cities") {
    if (parts.size() < 2) return false;
    spec.cities.insert(spec.cities.end(), parts.begin() + 1, parts.end());
    return true;
  }
  if (key == "seeds") {
    if (parts.size() < 2) return false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      if (!parse_number(parts[i], v) || v < 0.0) return false;
      spec.seeds.push_back(static_cast<std::uint64_t>(v));
    }
    return true;
  }
  if (key == "pairs" || key == "deliver") {
    if (parts.size() != 2 || !parse_number(parts[1], v) || v < 1.0) return false;
    (key == "pairs" ? spec.pairs : spec.deliver) = static_cast<std::size_t>(v);
    return true;
  }
  if (key == "point") {
    if (parts.size() < 2) return false;
    SweepPoint point;
    if (parts[1] == "eval") {
      if (parts.size() != 2) return false;
      point.kind = SweepPoint::Kind::kEval;
      point.label = "eval";
    } else if (parts[1] == "scenario" || parts[1] == "workload") {
      if (parts.size() != 3) return false;
      point.kind = parts[1] == "scenario" ? SweepPoint::Kind::kScenario
                                          : SweepPoint::Kind::kWorkload;
      point.path = parts[2];
      point.label = parts[1] + ":" + stem_of(parts[2]);
    } else {
      return false;
    }
    spec.points.push_back(std::move(point));
    return true;
  }
  if (key == "protocol") {
    if (parts.size() < 2) return false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const auto proto = core::protocol_from(parts[i]);
      if (!proto) return false;
      spec.protocols.push_back(*proto);
    }
    return true;
  }
  return false;
}

}  // namespace

std::optional<SweepSpec> parse_sweep(std::istream& in, std::string* error) {
  SweepSpec spec;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.erase(hash);
    }
    std::istringstream tokens{line};
    std::vector<std::string> parts;
    for (std::string tok; tokens >> tok;) parts.push_back(std::move(tok));
    if (parts.empty()) continue;
    if (!parse_line(parts, spec)) {
      if (error) {
        *error = "sweep spec: cannot parse line " + std::to_string(line_no) +
                 ": " + line;
      }
      return std::nullopt;
    }
  }
  if (spec.cities.empty()) {
    if (error) *error = "sweep spec: no `cities` line";
    return std::nullopt;
  }
  return spec;
}

std::optional<SweepSpec> parse_sweep(const std::string& text, std::string* error) {
  std::istringstream in{text};
  return parse_sweep(in, error);
}

std::vector<RunJob> expand(const SweepSpec& spec) {
  const std::vector<std::uint64_t> seeds =
      spec.seeds.empty() ? std::vector<std::uint64_t>{1} : spec.seeds;
  const std::vector<SweepPoint> points =
      spec.points.empty() ? std::vector<SweepPoint>{SweepPoint{}} : spec.points;
  // No protocol line = one pass with the base config's protocol; the labels
  // stay unprefixed so pre-protocol sweep specs expand byte-identically.
  const std::size_t protos_n = std::max<std::size_t>(1, spec.protocols.size());
  const bool prefix_protocol = spec.protocols.size() > 1;

  std::vector<RunJob> jobs;
  jobs.reserve(spec.cities.size() * seeds.size() * protos_n * points.size());
  for (const std::string& city : spec.cities) {
    for (const std::uint64_t seed : seeds) {
      for (std::size_t p = 0; p < protos_n; ++p) {
        for (const SweepPoint& point : points) {
          RunJob job;
          job.index = jobs.size();
          job.city = city;
          job.seed = seed;
          job.point = point.label.empty() ? std::string{"eval"} : point.label;
          if (prefix_protocol) {
            job.point =
                std::string{core::to_string(spec.protocols[p])} + "/" + job.point;
          }
          jobs.push_back(std::move(job));
        }
      }
    }
  }
  return jobs;
}

namespace {

/// Spec files resolved once, up front, on the calling thread; workers only
/// read these parsed values.
struct ResolvedPoint {
  SweepPoint point;
  faultx::Scenario scenario;       ///< kScenario
  trafficx::WorkloadSpec workload; ///< kWorkload
};

std::vector<ResolvedPoint> resolve_points(const SweepSpec& spec) {
  std::vector<SweepPoint> points =
      spec.points.empty() ? std::vector<SweepPoint>{SweepPoint{}} : spec.points;
  std::vector<ResolvedPoint> resolved;
  resolved.reserve(points.size());
  for (SweepPoint& point : points) {
    ResolvedPoint r;
    if (point.kind != SweepPoint::Kind::kEval) {
      std::ifstream file{point.path};
      if (!file) {
        throw std::runtime_error("sweep: cannot open point spec " + point.path);
      }
      std::string error;
      if (point.kind == SweepPoint::Kind::kScenario) {
        const auto parsed = faultx::parse_scenario(file, &error);
        if (!parsed) throw std::runtime_error(point.path + ": " + error);
        r.scenario = parsed->scenario;
      } else {
        const auto parsed = trafficx::parse_workload(file, &error);
        if (!parsed) throw std::runtime_error(point.path + ": " + error);
        r.workload = *parsed;
      }
    }
    if (point.label.empty()) point.label = "eval";
    r.point = std::move(point);
    resolved.push_back(std::move(r));
  }
  return resolved;
}

std::vector<std::string> eval_cells(const core::CityEvaluation& eval) {
  return {std::to_string(eval.aps), viz::fmt(eval.reachability(), 3),
          viz::fmt(eval.deliverability(), 3),
          eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
          eval.header_bits.empty() ? "-" : viz::fmt(eval.median_header_bits(), 0)};
}

std::vector<std::string> scenario_cells(const core::NetworkSnapshot& snap) {
  return {std::to_string(snap.aps_up) + "/" + std::to_string(snap.aps_total),
          viz::fmt(snap.reachability(), 3), viz::fmt(snap.deliverability(), 3),
          std::to_string(snap.rescues_succeeded) + "/" +
              std::to_string(snap.rescues_attempted),
          viz::fmt(snap.deliverability_with_rescue(), 3)};
}

std::vector<std::string> workload_cells(const core::CapacitySummary& s) {
  return {std::to_string(s.flows_delivered) + "/" + std::to_string(s.flows_offered),
          viz::fmt(s.delivery_rate(), 3), viz::fmt(s.goodput_bytes_per_s, 1),
          viz::fmt(s.latency_p99_s * 1e3, 1), std::to_string(s.queue_drops)};
}

}  // namespace

SweepReport run_sweep(const SweepSpec& spec, CityCache& cache,
                      const SweepRunConfig& config) {
  const std::vector<ResolvedPoint> points = resolve_points(spec);
  const std::size_t points_n = points.size();
  const core::NetworkConfig config_base = config.network;

  const RunFn fn = [&cache, &points, points_n, config_base, &spec](const RunJob& job) {
    // profile_by_name throws for unknown cities -> captured as the row's
    // error by the engine.
    const osmx::CityProfile profile = osmx::profile_by_name(job.city);
    // The cache keys on graph + placement only, so every protocol on the
    // axis shares the same compiled city.
    const auto compiled = cache.get(profile, config_base);
    const ResolvedPoint& point = points[job.index % points_n];
    core::NetworkConfig base = config_base;
    if (!spec.protocols.empty()) {
      base.protocol =
          spec.protocols[(job.index / points_n) % spec.protocols.size()];
    }

    RunResult result;
    switch (point.point.kind) {
      case SweepPoint::Kind::kEval: {
        core::EvaluationConfig cfg;
        cfg.reachability_pairs = spec.pairs;
        cfg.deliverability_pairs = spec.deliver;
        cfg.network = base;
        cfg.seed = job.seed;
        const core::CityEvaluation eval = core::evaluate_city(compiled, cfg);
        result.cells = eval_cells(eval);
        result.metrics = eval.metrics;
        break;
      }
      case SweepPoint::Kind::kScenario: {
        core::CityMeshNetwork network{compiled, base};
        faultx::ScenarioEngine engine{network, point.scenario};
        engine.apply_all();
        core::SnapshotConfig snap_cfg;
        snap_cfg.pairs = spec.pairs;
        snap_cfg.deliver_pairs = spec.deliver;
        snap_cfg.seed = job.seed;
        const core::NetworkSnapshot snap = core::evaluate_snapshot(network, snap_cfg);
        result.cells = scenario_cells(snap);
        result.metrics = network.merged_metrics();
        break;
      }
      case SweepPoint::Kind::kWorkload: {
        core::CityMeshNetwork network{compiled, base};
        trafficx::WorkloadSpec wspec = point.workload;
        wspec.seed = job.seed;  // the grid seed drives the schedule
        const trafficx::FlowSchedule schedule =
            trafficx::compile(wspec, compiled->city);
        const trafficx::WorkloadResult run = trafficx::run_workload(network, schedule);
        result.cells = workload_cells(run.summary);
        result.metrics = run.metrics;
        break;
      }
    }
    return result;
  };

  EngineConfig engine_cfg;
  engine_cfg.jobs = config.jobs;
  return run_jobs(expand(spec), fn, engine_cfg);
}

std::vector<std::string> sweep_headers(const SweepSpec& spec) {
  bool scenario = false;
  bool workload = false;
  bool eval = spec.points.empty();
  for (const SweepPoint& p : spec.points) {
    scenario |= p.kind == SweepPoint::Kind::kScenario;
    workload |= p.kind == SweepPoint::Kind::kWorkload;
    eval |= p.kind == SweepPoint::Kind::kEval;
  }
  const int kinds = int(scenario) + int(workload) + int(eval);
  if (kinds > 1) {
    // Mixed sweeps share column slots; the point label disambiguates.
    return {"city", "seed", "point", "v1", "v2", "v3", "v4", "v5"};
  }
  if (scenario) {
    return {"city", "seed", "point", "APs up", "reach", "deliver", "rescued",
            "deliver+rescue"};
  }
  if (workload) {
    return {"city", "seed", "point", "delivered", "rate", "goodput B/s",
            "p99 ms", "drops"};
  }
  return {"city", "seed", "point", "APs", "reach", "deliver", "overhead(med)",
          "hdr bits(med)"};
}

obsx::RunManifest sweep_manifest(const SweepSpec& spec, const SweepReport& report) {
  obsx::RunManifest manifest;
  manifest.name = spec.name;
  manifest.city = spec.cities.size() == 1 ? spec.cities.front() : "multi";
  manifest.set_param("cities", static_cast<std::uint64_t>(spec.cities.size()));
  manifest.set_param("pairs", static_cast<std::uint64_t>(spec.pairs));
  manifest.set_param("deliver", static_cast<std::uint64_t>(spec.deliver));
  manifest.set_param(
      "points", static_cast<std::uint64_t>(std::max<std::size_t>(1, spec.points.size())));
  // Only multi-protocol sweeps record the axis: single-protocol (and
  // no-protocol-line) manifests stay byte-identical to the legacy grammar.
  if (spec.protocols.size() > 1) {
    manifest.set_param("protocols", static_cast<std::uint64_t>(spec.protocols.size()));
  }
  manifest.set_param("runs", static_cast<std::uint64_t>(report.jobs.size()));
  manifest.set_param("errors", static_cast<std::uint64_t>(report.errors));
  for (std::size_t i = 0; i < spec.seeds.size(); ++i) {
    manifest.seeds["grid" + std::to_string(i)] = spec.seeds[i];
  }
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      manifest.notes["error/" + report.jobs[i].city + "/" +
                     std::to_string(report.jobs[i].seed) + "/" +
                     report.jobs[i].point] = report.results[i].error;
    }
    for (const auto& [key, value] : report.results[i].notes) {
      manifest.notes[key] = value;
    }
  }
  manifest.metrics = report.metrics;
  manifest.digest = report.digest;
  return manifest;
}

}  // namespace citymesh::runx
