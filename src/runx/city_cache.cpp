#include "runx/city_cache.hpp"

#include <sstream>

namespace citymesh::runx {

std::string CityCache::key_for(const osmx::CityProfile& profile,
                               const core::NetworkConfig& config) {
  // Everything generate_city + compile_city read that callers actually vary:
  // the profile's identity and the graph/placement knobs. Two keys that
  // differ in none of these produce byte-identical compiled cities.
  std::ostringstream key;
  key << profile.name << '#' << profile.seed << '#' << profile.width_m << 'x'
      << profile.height_m << '#' << profile.rivers.size()
      << "|g:" << config.graph.transmission_range_m << ','
      << config.graph.connect_factor << ','
      << static_cast<int>(config.graph.weight)
      << "|p:" << config.placement.density_per_m2 << ','
      << config.placement.transmission_range_m << ','
      << static_cast<int>(config.placement.link_model) << ','
      << config.placement.shadow_certain_frac << ','
      << config.placement.shadow_max_frac << ',' << config.placement.seed;
  return key.str();
}

std::shared_ptr<const core::CompiledCity> CityCache::get(
    const osmx::CityProfile& profile, const core::NetworkConfig& config) {
  const std::string key = key_for(profile, config);

  std::shared_ptr<std::promise<std::shared_ptr<const core::CompiledCity>>> mine;
  Entry entry;
  {
    std::lock_guard<std::mutex> lock{mu_};
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      entry = it->second;
    } else {
      mine = std::make_shared<
          std::promise<std::shared_ptr<const core::CompiledCity>>>();
      entry = mine->get_future().share();
      cache_.emplace(key, entry);
    }
  }

  if (mine) {
    try {
      auto compiled = core::compile_city(osmx::generate_city(profile), config);
      {
        std::lock_guard<std::mutex> lock{mu_};
        ++compiles_;
      }
      mine->set_value(std::move(compiled));
    } catch (...) {
      // Don't cache failures: a later request retries the compilation.
      {
        std::lock_guard<std::mutex> lock{mu_};
        cache_.erase(key);
      }
      mine->set_exception(std::current_exception());
    }
  }
  return entry.get();
}

std::size_t CityCache::compiles() const {
  std::lock_guard<std::mutex> lock{mu_};
  return compiles_;
}

}  // namespace citymesh::runx
