// Sweep specs (src/runx): a declarative grid of experiment runs.
//
// A sweep expands cities x seeds x grid points into independent RunJobs for
// the engine. The line-oriented text format mirrors faultx/spec and
// trafficx/spec so sweeps can be checked into a repo or handed to
// `citymesh sweep` without recompiling:
//
//   # comments and blank lines are skipped
//   name fig6-nightly
//   cities boston chicago washington_dc
//   seeds 1 2 3 4
//   pairs 300
//   deliver 25
//   point eval
//   point scenario specs/blackout.spec
//   point workload specs/rush-hour.spec
//
// `cities` and `seeds` accumulate across repeated lines. A sweep with no
// `point` line runs one `eval` point (the Fig-6 protocol). Point kinds:
//   eval            reachability/deliverability protocol, `pairs`/`deliver`
//                   sampled with the grid seed
//   scenario FILE   apply the faultx scenario fully, then measure the
//                   surviving mesh with the Fig-6 snapshot protocol
//   workload FILE   run the trafficx workload (its spec seed replaced by
//                   the grid seed) and report the capacity summary
//
// A `protocol` line turns the live protocol family (core::Protocol:
// conduit | qfgeo) into a grid axis:
//
//   protocol conduit qfgeo
//
// Each listed protocol runs the full seed x point grid. With no protocol
// line the sweep runs the base config's protocol and rows/labels/manifests
// are byte-identical to the pre-qfgeo grammar; a single-protocol line
// behaves the same (it only overrides the base config). With two or more,
// point labels gain a "<protocol>/" prefix so rows stay distinguishable.
//
// Expansion order — and therefore merged row order and digest — is
// city-major, then seed, then protocol, then point, independent of worker
// count.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/network.hpp"
#include "obsx/manifest.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"

namespace citymesh::runx {

struct SweepPoint {
  enum class Kind : std::uint8_t { kEval, kScenario, kWorkload };
  Kind kind = Kind::kEval;
  std::string label;  ///< row label: "eval" or the spec file's stem
  std::string path;   ///< spec file (scenario/workload kinds)
};

struct SweepSpec {
  std::string name = "sweep";
  std::vector<std::string> cities;
  std::vector<std::uint64_t> seeds;
  std::size_t pairs = 300;    ///< reachability pairs per run
  std::size_t deliver = 25;   ///< deliverability pairs per run
  std::vector<SweepPoint> points;  ///< empty = one kEval point
  /// Protocol axis (empty = the base config's protocol, legacy labels).
  std::vector<core::Protocol> protocols;
};

/// Parse a sweep spec. On failure returns nullopt and, when `error` is
/// non-null, a one-line description naming the offending line.
std::optional<SweepSpec> parse_sweep(std::istream& in, std::string* error = nullptr);
std::optional<SweepSpec> parse_sweep(const std::string& text,
                                     std::string* error = nullptr);

/// Expand the grid in city-major order. Seeds default to {1} and points to
/// {eval} when unset.
std::vector<RunJob> expand(const SweepSpec& spec);

struct SweepRunConfig {
  std::size_t jobs = 1;  ///< worker threads (0 = hardware concurrency)
  /// Base network parameters shared by every run; graph + placement also key
  /// the compiled-city cache.
  core::NetworkConfig network;
};

/// Execute a sweep end-to-end: pre-parse point spec files (throws
/// std::runtime_error naming the file on I/O or parse errors), expand the
/// grid, run it on `config.jobs` workers sharing `cache`, and merge.
/// Per-run failures (e.g. an unknown city name) are captured in their row,
/// not thrown.
SweepReport run_sweep(const SweepSpec& spec, CityCache& cache,
                      const SweepRunConfig& config);

/// Table headers matching the rows of a report produced by run_sweep.
std::vector<std::string> sweep_headers(const SweepSpec& spec);

/// Fold a finished sweep into a deterministic manifest (no wall clock and
/// no worker count recorded, so manifests from different `--jobs` runs are
/// byte-identical; the caller may stamp wall_clock_s afterwards).
obsx::RunManifest sweep_manifest(const SweepSpec& spec, const SweepReport& report);

}  // namespace citymesh::runx
