#include "runx/engine.hpp"

#include <atomic>
#include <exception>
#include <thread>

namespace citymesh::runx {

std::string SweepReport::digest_hex() const { return obsx::hex64(digest); }

std::vector<std::vector<std::string>> SweepReport::rows() const {
  std::vector<std::vector<std::string>> out;
  out.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    std::vector<std::string> row{jobs[i].city, std::to_string(jobs[i].seed),
                                 jobs[i].point};
    if (results[i].ok()) {
      row.insert(row.end(), results[i].cells.begin(), results[i].cells.end());
    } else {
      row.push_back("ERROR: " + results[i].error);
    }
    out.push_back(std::move(row));
  }
  return out;
}

std::size_t resolve_jobs(std::size_t jobs) {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace {

RunResult run_one(const RunFn& fn, const RunJob& job) {
  try {
    return fn(job);
  } catch (const std::exception& e) {
    RunResult r;
    r.error = e.what();
    if (r.error.empty()) r.error = "unknown std::exception";
    return r;
  } catch (...) {
    RunResult r;
    r.error = "non-std exception";
    return r;
  }
}

}  // namespace

SweepReport run_jobs(std::vector<RunJob> jobs, const RunFn& fn,
                     const EngineConfig& config) {
  SweepReport report;
  report.jobs = std::move(jobs);
  report.results.resize(report.jobs.size());
  // `index` is authoritative for the merge order; pin it to the position in
  // the grid so callers can't desynchronize the two.
  for (std::size_t i = 0; i < report.jobs.size(); ++i) report.jobs[i].index = i;

  const std::size_t workers =
      std::min(resolve_jobs(config.jobs), report.jobs.size());
  if (workers <= 1) {
    for (std::size_t i = 0; i < report.jobs.size(); ++i) {
      report.results[i] = run_one(fn, report.jobs[i]);
    }
  } else {
    // Work-stealing by atomic cursor: each worker claims the next undone
    // index. Which worker runs which job is scheduling-dependent; where the
    // result lands is not.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= report.jobs.size()) return;
        report.results[i] = run_one(fn, report.jobs[i]);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }

  // Deterministic index-order fold.
  obsx::Fnv1a acc;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const RunJob& job = report.jobs[i];
    const RunResult& result = report.results[i];
    acc.update(job.city).update(job.seed).update(job.point);
    if (result.ok()) {
      for (const std::string& cell : result.cells) acc.update(cell);
      report.metrics.merge(result.metrics);
    } else {
      acc.update("ERROR").update(result.error);
      ++report.errors;
    }
  }
  report.digest = acc.digest();
  return report;
}

}  // namespace citymesh::runx
