#include "viz/svg.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

namespace citymesh::viz {

SvgScene::SvgScene(geo::Rect world, double pixel_width)
    : world_(world),
      scale_(pixel_width / std::max(world.width(), 1e-9)),
      width_px_(pixel_width),
      height_px_(world.height() * scale_) {}

geo::Point SvgScene::to_pixels(geo::Point world) const {
  return {(world.x - world_.min.x) * scale_,
          height_px_ - (world.y - world_.min.y) * scale_};
}

void SvgScene::add_polygon(const geo::Polygon& poly, const std::string& fill,
                           const std::string& stroke, double stroke_width,
                           double opacity, const std::string& dash) {
  std::ostringstream os;
  os << "<polygon points=\"";
  for (const geo::Point v : poly.vertices()) {
    const geo::Point p = to_pixels(v);
    os << p.x << ',' << p.y << ' ';
  }
  os << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\" stroke-width=\""
     << stroke_width << "\" opacity=\"" << opacity << "\"";
  if (!dash.empty()) os << " stroke-dasharray=\"" << dash << "\"";
  os << "/>";
  elements_.push_back(os.str());
}

void SvgScene::add_cross(geo::Point center, double radius_px, const std::string& stroke,
                         double width_px, double opacity) {
  const geo::Point p = to_pixels(center);
  std::ostringstream os;
  os << "<path d=\"M" << p.x - radius_px << ' ' << p.y - radius_px << " L"
     << p.x + radius_px << ' ' << p.y + radius_px << " M" << p.x - radius_px << ' '
     << p.y + radius_px << " L" << p.x + radius_px << ' ' << p.y - radius_px
     << "\" stroke=\"" << stroke << "\" stroke-width=\"" << width_px
     << "\" opacity=\"" << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgScene::add_circle(geo::Point center, double radius_px, const std::string& fill,
                          double opacity) {
  const geo::Point p = to_pixels(center);
  std::ostringstream os;
  os << "<circle cx=\"" << p.x << "\" cy=\"" << p.y << "\" r=\"" << radius_px
     << "\" fill=\"" << fill << "\" opacity=\"" << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgScene::add_line(geo::Point a, geo::Point b, const std::string& stroke,
                        double width_px, double opacity) {
  const geo::Point pa = to_pixels(a);
  const geo::Point pb = to_pixels(b);
  std::ostringstream os;
  os << "<line x1=\"" << pa.x << "\" y1=\"" << pa.y << "\" x2=\"" << pb.x << "\" y2=\""
     << pb.y << "\" stroke=\"" << stroke << "\" stroke-width=\"" << width_px
     << "\" opacity=\"" << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgScene::add_polyline(const std::vector<geo::Point>& points, const std::string& stroke,
                            double width_px, double opacity) {
  if (points.size() < 2) return;
  std::ostringstream os;
  os << "<polyline points=\"";
  for (const geo::Point v : points) {
    const geo::Point p = to_pixels(v);
    os << p.x << ',' << p.y << ' ';
  }
  os << "\" fill=\"none\" stroke=\"" << stroke << "\" stroke-width=\"" << width_px
     << "\" opacity=\"" << opacity << "\"/>";
  elements_.push_back(os.str());
}

void SvgScene::add_text(geo::Point at, const std::string& text, double size_px,
                        const std::string& fill) {
  const geo::Point p = to_pixels(at);
  std::ostringstream os;
  os << "<text x=\"" << p.x << "\" y=\"" << p.y << "\" font-size=\"" << size_px
     << "\" font-family=\"sans-serif\" fill=\"" << fill << "\">" << text << "</text>";
  elements_.push_back(os.str());
}

void SvgScene::write(std::ostream& os) const {
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
     << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_px_
     << "\" height=\"" << height_px_ << "\" viewBox=\"0 0 " << width_px_ << ' '
     << height_px_ << "\">\n";
  os << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  for (const auto& e : elements_) os << e << '\n';
  os << "</svg>\n";
}

bool SvgScene::write_file(const std::string& path) const {
  std::ofstream file{path};
  if (!file) return false;
  write(file);
  return static_cast<bool>(file);
}

}  // namespace citymesh::viz
