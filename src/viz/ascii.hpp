// Terminal renderings of the paper's figures: CDF curves (Figure 1), whisker
// bars (Figure 2), and aligned tables (Table 1, Figure 6). Benchmarks print
// these so the reproduction is inspectable without a display.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace citymesh::viz {

/// One labeled series of raw samples for the CDF plot.
struct CdfSeries {
  std::string label;
  std::vector<double> values;
};

/// Render empirical CDFs of several series on a shared x axis.
void print_cdf(std::ostream& os, const std::string& title,
               const std::vector<CdfSeries>& series, const std::string& x_label,
               int width = 72, int height = 16);

/// A whisker row: label plus the 10/25/50/75/100% quantiles (Figure 2 style).
struct WhiskerRow {
  std::string label;
  double q10 = 0, q25 = 0, q50 = 0, q75 = 0, q100 = 0;
  std::size_t count = 0;
};

void print_whiskers(std::ostream& os, const std::string& title,
                    const std::vector<WhiskerRow>& rows, const std::string& x_label,
                    int width = 64);

/// Simple aligned table. `rows[i]` must have the same arity as `header`.
void print_table(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows);

/// Format helper: fixed-precision double.
std::string fmt(double v, int precision = 2);

}  // namespace citymesh::viz
