#include "viz/ascii.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "geo/stats.hpp"

namespace citymesh::viz {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void print_cdf(std::ostream& os, const std::string& title,
               const std::vector<CdfSeries>& series, const std::string& x_label,
               int width, int height) {
  os << "\n== " << title << " ==\n";
  double x_max = 0.0;
  for (const auto& s : series) {
    for (const double v : s.values) x_max = std::max(x_max, v);
  }
  if (x_max <= 0.0) {
    os << "(no data)\n";
    return;
  }

  // Each series gets a glyph; cells hold the first series to claim them.
  static constexpr char kGlyphs[] = "*o+x#@";
  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (std::size_t si = 0; si < series.size(); ++si) {
    auto cdf = citymesh::geo::empirical_cdf(series[si].values);
    for (const auto& pt : cdf) {
      const int col = std::min<int>(width - 1, static_cast<int>(pt.value / x_max * (width - 1)));
      const int row = std::min<int>(height - 1,
                                    static_cast<int>((1.0 - pt.fraction) * (height - 1)));
      if (canvas[row][col] == ' ') canvas[row][col] = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    }
  }
  os << "1.0 +" << std::string(width, '-') << "+\n";
  for (int r = 0; r < height; ++r) {
    os << "    |" << canvas[r] << "|\n";
  }
  os << "0.0 +" << std::string(width, '-') << "+\n";
  os << "    0" << std::setw(width + 1) << fmt(x_max, 0) << "  (" << x_label << ")\n";
  for (std::size_t si = 0; si < series.size(); ++si) {
    auto sorted = series[si].values;
    os << "    " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << ' ' << series[si].label
       << "  (n=" << series[si].values.size()
       << ", median=" << fmt(citymesh::geo::median(std::move(sorted)), 1) << ")\n";
  }
}

void print_whiskers(std::ostream& os, const std::string& title,
                    const std::vector<WhiskerRow>& rows, const std::string& x_label,
                    int width) {
  os << "\n== " << title << " ==\n";
  double x_max = 0.0;
  for (const auto& r : rows) x_max = std::max(x_max, r.q100);
  if (x_max <= 0.0) {
    os << "(no data)\n";
    return;
  }
  const auto col_of = [&](double v) {
    return std::min<int>(width - 1, static_cast<int>(v / x_max * (width - 1)));
  };
  std::size_t label_w = 0;
  for (const auto& r : rows) label_w = std::max(label_w, r.label.size());
  for (const auto& r : rows) {
    std::string bar(width, ' ');
    const int c10 = col_of(r.q10), c25 = col_of(r.q25), c50 = col_of(r.q50);
    const int c75 = col_of(r.q75), c100 = col_of(r.q100);
    for (int c = c10; c <= c100; ++c) bar[c] = '-';
    for (int c = c25; c <= c75; ++c) bar[c] = '=';
    bar[c50] = '|';
    os << std::left << std::setw(static_cast<int>(label_w)) << r.label << " [" << bar
       << "]  p50=" << fmt(r.q50, 1) << " max=" << fmt(r.q100, 0) << " n=" << r.count
       << '\n';
  }
  os << std::setw(static_cast<int>(label_w)) << ' ' << " 0" << std::setw(width)
     << fmt(x_max, 0) << "  (" << x_label << ")\n";
}

void print_table(std::ostream& os, const std::string& title,
                 const std::vector<std::string>& header,
                 const std::vector<std::vector<std::string>>& rows) {
  os << "\n== " << title << " ==\n";
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]))
         << (c < row.size() ? row[c] : "") << " | ";
    }
    os << '\n';
  };
  print_row(header);
  os << '|';
  for (const std::size_t w : widths) os << std::string(w + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows) print_row(row);
}

}  // namespace citymesh::viz
