// Minimal SVG scene writer for the rendered figures (5 and 7).
//
// Geometry is supplied in the city's meter frame; the writer flips the y
// axis (SVG y grows downward) and scales to the requested pixel width.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "geo/geometry.hpp"

namespace citymesh::viz {

class SvgScene {
 public:
  /// `world` is the visible region in meters; `pixel_width` sets the scale.
  SvgScene(geo::Rect world, double pixel_width = 1000.0);

  /// `dash` is an SVG stroke-dasharray (e.g. "6 3"); empty = solid stroke.
  void add_polygon(const geo::Polygon& poly, const std::string& fill,
                   const std::string& stroke = "none", double stroke_width = 0.0,
                   double opacity = 1.0, const std::string& dash = "");
  void add_circle(geo::Point center, double radius_px, const std::string& fill,
                  double opacity = 1.0);
  /// An x-shaped marker (dead APs in scenario overlays).
  void add_cross(geo::Point center, double radius_px, const std::string& stroke,
                 double width_px = 1.0, double opacity = 1.0);
  void add_line(geo::Point a, geo::Point b, const std::string& stroke,
                double width_px = 1.0, double opacity = 1.0);
  void add_polyline(const std::vector<geo::Point>& points, const std::string& stroke,
                    double width_px = 2.0, double opacity = 1.0);
  void add_text(geo::Point at, const std::string& text, double size_px = 14.0,
                const std::string& fill = "#222222");

  /// Serialize the scene as a complete SVG document.
  void write(std::ostream& os) const;

  /// Write to a file; returns false on I/O failure.
  bool write_file(const std::string& path) const;

 private:
  geo::Point to_pixels(geo::Point world) const;

  geo::Rect world_;
  double scale_;
  double width_px_;
  double height_px_;
  std::vector<std::string> elements_;
};

}  // namespace citymesh::viz
