// Island analysis and gap bridging.
//
// §4 observes that rivers, parks and highways fracture some cities (e.g.
// Washington D.C.) into "islands of connectivity" and proposes that "the
// addition of a small number of well-placed APs would serve to bridge
// connectivity between these islands". This module quantifies the islands
// and implements that proposal: a greedy planner that repeatedly connects
// the two largest islands with a chain of evenly spaced APs along the
// closest gap.
#pragma once

#include <vector>

#include "mesh/ap_network.hpp"

namespace citymesh::mesh {

struct IslandReport {
  std::size_t island_count = 0;
  std::vector<std::size_t> sizes;          ///< APs per island, descending
  double largest_fraction = 0.0;           ///< |largest island| / |APs|
};

IslandReport analyze_islands(const ApNetwork& network);

struct BridgePlan {
  /// Positions for the new gap-bridging APs, in placement order.
  std::vector<geo::Point> new_aps;
  /// Island count before/after applying the plan.
  std::size_t islands_before = 0;
  std::size_t islands_after = 0;
};

/// Plan bridge APs until at most `target_islands` islands remain (among
/// islands with at least `min_island_size` APs; stragglers of one or two
/// APs in odd buildings are not worth bridging) or `max_new_aps` is hit.
BridgePlan plan_bridges(const ApNetwork& network, std::size_t target_islands = 1,
                        std::size_t max_new_aps = 64,
                        std::size_t min_island_size = 8);

/// Apply a plan: returns a new network containing the original APs plus the
/// bridge APs (attributed to the nearest existing building).
ApNetwork apply_bridges(const ApNetwork& network, const BridgePlan& plan);

}  // namespace citymesh::mesh
