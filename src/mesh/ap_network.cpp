#include "mesh/ap_network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace citymesh::mesh {

namespace {

PlacementConfig disc_config(double range_m) {
  PlacementConfig cfg;
  cfg.transmission_range_m = range_m;
  cfg.link_model = LinkModel::kDisc;
  return cfg;
}

}  // namespace

ApNetwork::ApNetwork(std::vector<AccessPoint> aps, double range_m)
    : ApNetwork(std::move(aps), disc_config(range_m)) {}

ApNetwork::ApNetwork(std::vector<AccessPoint> aps, const PlacementConfig& config)
    : aps_(std::move(aps)),
      range_m_(config.transmission_range_m),
      grid_(std::max(config.transmission_range_m, 1.0)) {
  if (range_m_ <= 0.0) throw std::invalid_argument{"ApNetwork: range must be > 0"};
  if (config.link_model == LinkModel::kShadowed &&
      (config.shadow_certain_frac <= 0.0 ||
       config.shadow_max_frac < config.shadow_certain_frac)) {
    throw std::invalid_argument{"ApNetwork: invalid shadowing fractions"};
  }

  osmx::BuildingId max_building = 0;
  for (const auto& ap : aps_) max_building = std::max(max_building, ap.building);
  by_building_.resize(aps_.empty() ? 0 : max_building + 1);

  for (const auto& ap : aps_) {
    grid_.insert(ap.id, ap.position);
    by_building_[ap.building].push_back(ap.id);
  }

  // Build the connectivity graph: one edge per admitted pair. The grid
  // query returns both orderings; keep a < b to add each edge once. Link
  // admission is per the model; the shadowed draw is seeded so the realized
  // topology is reproducible.
  const double query_radius = config.link_model == LinkModel::kDisc
                                  ? range_m_
                                  : range_m_ * config.shadow_max_frac;
  geo::Rng link_rng{config.seed ^ 0x51AD0E5ULL};
  graphx::GraphBuilder builder{aps_.size()};
  for (const auto& ap : aps_) {
    grid_.for_each_in_radius(ap.position, query_radius, [&](std::uint32_t other, geo::Point p) {
      if (other <= ap.id) return;
      const double d = geo::distance(ap.position, p);
      bool linked = false;
      if (config.link_model == LinkModel::kDisc) {
        linked = d <= range_m_;
      } else {
        const double certain = range_m_ * config.shadow_certain_frac;
        const double max_d = range_m_ * config.shadow_max_frac;
        if (d <= certain) {
          linked = true;
        } else if (d < max_d) {
          const double p_link = (max_d - d) / (max_d - certain);
          linked = link_rng.chance(p_link);
        }
      }
      if (linked) builder.add_edge(ap.id, other, d);
    });
  }
  graph_ = builder.build();
  components_ = graphx::connected_components(graph_);
}

const std::vector<ApId>& ApNetwork::aps_of_building(osmx::BuildingId b) const {
  if (b >= by_building_.size()) return empty_;
  return by_building_[b];
}

std::optional<ApId> ApNetwork::representative_ap(const osmx::City& city,
                                                 osmx::BuildingId b) const {
  const auto& candidates = aps_of_building(b);
  if (candidates.empty()) return std::nullopt;
  const geo::Point centroid = city.building(b).centroid;
  ApId best = candidates.front();
  double best_d2 = geo::distance2(aps_[best].position, centroid);
  for (const ApId id : candidates) {
    const double d2 = geo::distance2(aps_[id].position, centroid);
    if (d2 < best_d2) {
      best = id;
      best_d2 = d2;
    }
  }
  return best;
}

std::optional<std::size_t> ApNetwork::min_hops(ApId from, ApId to) const {
  if (!connected(from, to)) return std::nullopt;
  const auto sp = graphx::bfs(graph_, from, to);
  if (!sp.reachable(to)) return std::nullopt;
  return static_cast<std::size_t>(sp.distance[to]);
}

ApNetwork place_aps(const osmx::City& city, const PlacementConfig& config) {
  if (config.density_per_m2 <= 0.0) {
    throw std::invalid_argument{"place_aps: density must be > 0"};
  }
  geo::Rng rng{config.seed};
  std::vector<AccessPoint> aps;

  for (const auto& building : city.buildings()) {
    const double expected = building.area_m2() * config.density_per_m2;
    // Integer part plus a Bernoulli draw for the fraction keeps the global
    // density exact in expectation without a full Poisson sampler.
    std::size_t count = static_cast<std::size_t>(expected);
    if (rng.chance(expected - std::floor(expected))) ++count;

    const auto bounds = building.footprint.bounds();
    if (!bounds) continue;
    for (std::size_t i = 0; i < count; ++i) {
      // Rejection-sample a point inside the footprint.
      geo::Point p;
      bool placed = false;
      for (int attempt = 0; attempt < 64; ++attempt) {
        p = {rng.uniform(bounds->min.x, bounds->max.x),
             rng.uniform(bounds->min.y, bounds->max.y)};
        if (building.footprint.contains(p)) {
          placed = true;
          break;
        }
      }
      if (!placed) p = building.centroid;  // degenerate footprint fallback
      aps.push_back({static_cast<ApId>(aps.size()), p, building.id});
    }
  }
  return ApNetwork{std::move(aps), config};
}

}  // namespace citymesh::mesh
