// AP placement and the AP connectivity graph.
//
// Reproduces the simulator substrate of §4: APs are placed uniformly at
// random *inside building footprints* at a configurable density (the paper
// uses 1 AP / 200 m^2) and connected whenever their distance is below the
// transmission range (50 m in the paper). The resulting ApNetwork is the
// ground truth the building-routing algorithm is evaluated against — the
// routing layer itself never reads it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "geo/rng.hpp"
#include "geo/spatial_grid.hpp"
#include "graphx/graph.hpp"
#include "graphx/shortest_path.hpp"
#include "osmx/building.hpp"

namespace citymesh::mesh {

using ApId = std::uint32_t;

struct AccessPoint {
  ApId id = 0;
  geo::Point position;
  osmx::BuildingId building = 0;  ///< footprint the AP was placed in
};

/// Radio link model used when building the AP graph.
enum class LinkModel : std::uint8_t {
  /// Hard disc: link iff distance <= transmission_range_m. The paper's §4
  /// simulator ("symmetric transmission range cutoff").
  kDisc,
  /// Log-distance shadowing (the §6 "higher fidelity" future-work item):
  /// links are certain below `shadow_certain_frac * range`, impossible above
  /// `shadow_max_frac * range`, and probabilistic in between with a linearly
  /// decaying success probability. Softens the disc model's percolation
  /// cliff the same way real fading does: some short links fail, some long
  /// ones succeed (cf. the paper's Figure 2, where APs are commonly heard
  /// beyond 100 m).
  kShadowed,
};

struct PlacementConfig {
  double density_per_m2 = 1.0 / 200.0;  ///< paper's sparse default
  double transmission_range_m = 50.0;
  LinkModel link_model = LinkModel::kDisc;
  double shadow_certain_frac = 0.6;  ///< below this fraction of range: P=1
  double shadow_max_frac = 1.8;      ///< above this fraction of range: P=0
  std::uint64_t seed = 1;
};

class ApNetwork {
 public:
  /// Disc-model network with the given symmetric range.
  ApNetwork(std::vector<AccessPoint> aps, double range_m);

  /// Network with an explicit link model (see LinkModel).
  ApNetwork(std::vector<AccessPoint> aps, const PlacementConfig& config);

  const std::vector<AccessPoint>& aps() const { return aps_; }
  std::size_t ap_count() const { return aps_.size(); }
  const AccessPoint& ap(ApId id) const { return aps_.at(id); }
  double transmission_range() const { return range_m_; }

  /// Symmetric connectivity graph (edge weight = distance in meters).
  const graphx::Graph& graph() const { return graph_; }

  /// Spatial index over AP positions.
  const geo::SpatialGrid& grid() const { return grid_; }

  /// APs owned by a building (possibly empty).
  const std::vector<ApId>& aps_of_building(osmx::BuildingId b) const;

  /// Any AP of the building, preferring the one closest to the centroid;
  /// nullopt when the building has no AP.
  std::optional<ApId> representative_ap(const osmx::City& city, osmx::BuildingId b) const;

  /// Connected components of the AP graph.
  const graphx::Components& components() const { return components_; }

  /// True if a multi-hop AP path exists between the two APs.
  bool connected(ApId a, ApId b) const {
    return components_.component_of[a] == components_.component_of[b];
  }

  /// Minimum hop count between APs (BFS); nullopt when disconnected. This is
  /// the denominator of the paper's transmission-overhead metric.
  std::optional<std::size_t> min_hops(ApId from, ApId to) const;

 private:
  std::vector<AccessPoint> aps_;
  double range_m_;
  graphx::Graph graph_;
  geo::SpatialGrid grid_;
  graphx::Components components_;
  std::vector<std::vector<ApId>> by_building_;
  std::vector<ApId> empty_;
};

/// Place APs inside the city's building footprints per the config.
ApNetwork place_aps(const osmx::City& city, const PlacementConfig& config);

}  // namespace citymesh::mesh
