#include "mesh/islands.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace citymesh::mesh {

IslandReport analyze_islands(const ApNetwork& network) {
  IslandReport report;
  auto sizes = network.components().sizes();
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  report.island_count = sizes.size();
  report.sizes = std::move(sizes);
  if (!report.sizes.empty() && network.ap_count() > 0) {
    report.largest_fraction =
        static_cast<double>(report.sizes.front()) / static_cast<double>(network.ap_count());
  }
  return report;
}

namespace {

/// Evenly sub-sample up to `limit` ids (keeps closest-pair search tractable
/// on large islands without biasing toward any region).
std::vector<ApId> sample_ids(const std::vector<ApId>& ids, std::size_t limit) {
  if (ids.size() <= limit) return ids;
  std::vector<ApId> out;
  out.reserve(limit);
  const double stride = static_cast<double>(ids.size()) / static_cast<double>(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    out.push_back(ids[static_cast<std::size_t>(i * stride)]);
  }
  return out;
}

struct ClosestPair {
  ApId a = 0;
  ApId b = 0;
  double dist = std::numeric_limits<double>::infinity();
};

ClosestPair closest_pair(const ApNetwork& net, const std::vector<ApId>& sa,
                         const std::vector<ApId>& sb) {
  ClosestPair best;
  for (const ApId ia : sa) {
    const geo::Point pa = net.ap(ia).position;
    for (const ApId ib : sb) {
      const double d = geo::distance(pa, net.ap(ib).position);
      if (d < best.dist) best = {ia, ib, d};
    }
  }
  return best;
}

}  // namespace

BridgePlan plan_bridges(const ApNetwork& network, std::size_t target_islands,
                        std::size_t max_new_aps, std::size_t min_island_size) {
  BridgePlan plan;
  const auto& comps = network.components();
  plan.islands_before = comps.count;

  // Collect member lists for islands worth bridging.
  std::vector<std::vector<ApId>> islands(comps.count);
  for (ApId id = 0; id < network.ap_count(); ++id) {
    islands[comps.component_of[id]].push_back(id);
  }
  std::erase_if(islands, [&](const auto& v) { return v.size() < min_island_size; });
  std::sort(islands.begin(), islands.end(),
            [](const auto& a, const auto& b) { return a.size() > b.size(); });
  plan.islands_after = islands.size();

  constexpr std::size_t kSampleLimit = 400;
  const double spacing = network.transmission_range() * 0.8;

  while (islands.size() > std::max<std::size_t>(target_islands, 1) &&
         plan.new_aps.size() < max_new_aps) {
    // Connect the second-largest island to the largest.
    auto& primary = islands[0];
    std::size_t best_other = 1;
    ClosestPair best;
    const auto sp = sample_ids(primary, kSampleLimit);
    for (std::size_t i = 1; i < islands.size(); ++i) {
      const auto cp = closest_pair(network, sp, sample_ids(islands[i], kSampleLimit));
      if (cp.dist < best.dist) {
        best = cp;
        best_other = i;
      }
    }
    if (!std::isfinite(best.dist)) break;

    const geo::Point from = network.ap(best.a).position;
    const geo::Point to = network.ap(best.b).position;
    const auto gap_hops = static_cast<std::size_t>(std::ceil(best.dist / spacing));
    for (std::size_t h = 1; h < gap_hops; ++h) {
      if (plan.new_aps.size() >= max_new_aps) break;
      plan.new_aps.push_back(
          geo::lerp(from, to, static_cast<double>(h) / static_cast<double>(gap_hops)));
    }

    // Merge the bridged island into the primary and continue.
    primary.insert(primary.end(), islands[best_other].begin(), islands[best_other].end());
    islands.erase(islands.begin() + static_cast<std::ptrdiff_t>(best_other));
    plan.islands_after = islands.size();
  }
  return plan;
}

ApNetwork apply_bridges(const ApNetwork& network, const BridgePlan& plan) {
  std::vector<AccessPoint> aps = network.aps();
  for (const geo::Point p : plan.new_aps) {
    // Attribute the bridge AP to the building of the nearest existing AP so
    // downstream building lookups stay well-defined.
    osmx::BuildingId owner = 0;
    double best = std::numeric_limits<double>::infinity();
    // Search an expanding radius; bridges are near island edges so the
    // nearest AP is close in practice.
    for (double r = network.transmission_range(); r < 1e7; r *= 4.0) {
      bool found = false;
      network.grid().for_each_in_radius(p, r, [&](std::uint32_t id, geo::Point q) {
        const double d = geo::distance(p, q);
        if (d < best) {
          best = d;
          owner = network.ap(id).building;
          found = true;
        }
      });
      if (found) break;
    }
    aps.push_back({static_cast<ApId>(aps.size()), p, owner});
  }
  return ApNetwork{std::move(aps), network.transmission_range()};
}

}  // namespace citymesh::mesh
