// Minimal JSON substrate for the observability layer (src/obsx).
//
// Writing: escape helper plus deterministic number formatting (shortest
// round-trip via std::to_chars), so two runs with identical state produce
// byte-identical documents — the property the manifest determinism tests
// pin down. Reading: a deliberately small parser for *flat* objects
// (string / number / bool / null values, no nesting), which is exactly the
// shape of one trace JSONL line; the CLI uses it to validate and filter
// recorded traces without growing a JSON library dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace citymesh::obsx {

/// Escape `s` for use inside a JSON string literal (quotes not included).
/// Control characters become \uXXXX (or the short \n, \t, ... forms);
/// UTF-8 multibyte sequences pass through unchanged.
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal form of `v` ("0.1", not "0.10000000000001").
/// Non-finite values render as null (JSON has no inf/nan).
std::string json_number(double v);
std::string json_number(std::uint64_t v);

/// One parsed scalar value of a flat JSON object.
struct JsonValue {
  enum class Kind : std::uint8_t { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string str;     ///< kString (unescaped)
  double num = 0.0;    ///< kNumber
  bool boolean = false;

  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
};

/// Parse a single flat JSON object: `{"key": scalar, ...}`. Returns nullopt
/// and sets `error` (when non-null) on malformed input, nesting, or
/// duplicate keys.
std::optional<std::map<std::string, JsonValue>> parse_flat_object(
    std::string_view text, std::string* error = nullptr);

}  // namespace citymesh::obsx
