#include "obsx/trace.hpp"

#include <array>
#include <cmath>
#include <istream>
#include <ostream>

#include "obsx/json.hpp"

namespace citymesh::obsx {

namespace {

struct KindName {
  TraceKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 19> kKindNames{{
    {TraceKind::kOriginate, "originate"},
    {TraceKind::kTx, "tx"},
    {TraceKind::kRx, "rx"},
    {TraceKind::kDupSuppressed, "dup-suppressed"},
    {TraceKind::kConduitReject, "conduit-reject"},
    {TraceKind::kRebroadcast, "rebroadcast"},
    {TraceKind::kPostboxStore, "postbox-store"},
    {TraceKind::kAck, "ack"},
    {TraceKind::kDropFaulted, "drop-faulted"},
    {TraceKind::kDropLoss, "drop-loss"},
    {TraceKind::kDeferred, "deferred"},
    {TraceKind::kDropQueue, "drop-queue"},
    {TraceKind::kApDown, "ap-down"},
    {TraceKind::kApUp, "ap-up"},
    {TraceKind::kRegionDegrade, "region-degrade"},
    {TraceKind::kRegionRestore, "region-restore"},
    {TraceKind::kMalformed, "malformed"},
    {TraceKind::kElected, "elected"},
    {TraceKind::kSuppressed, "suppressed"},
}};

}  // namespace

std::string_view to_string(TraceKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

std::optional<TraceKind> trace_kind_from(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (kn.name == name) return kn.kind;
  }
  return std::nullopt;
}

const char* payload_key(TraceKind kind) {
  switch (kind) {
    case TraceKind::kRx:
    case TraceKind::kDupSuppressed:
    case TraceKind::kDropLoss:
    case TraceKind::kDropFaulted:
    case TraceKind::kSuppressed:  // the overheard transmitter; absent when
                                  // the policy suppressed at election time
      return "peer";
    case TraceKind::kPostboxStore:
      return "count";
    case TraceKind::kRegionDegrade:
    case TraceKind::kRegionRestore:
      return "region";
    default:
      return nullptr;
  }
}

// ----------------------------------------------------------- TraceBuffer ---

TraceBuffer::TraceBuffer(std::size_t capacity, TraceOverflow overflow)
    : capacity_(capacity == 0 ? 1 : capacity), overflow_(overflow) {}

void TraceBuffer::enable(bool on) {
  enabled_ = on && compiled_in;
  if (enabled_ && buffer_.empty()) buffer_.resize(capacity_);
}

void TraceBuffer::clear() {
  head_ = 0;
  size_ = 0;
  recorded_ = 0;
  lost_ = 0;
}

void TraceBuffer::push(const TraceEvent& event) {
  if (size_ == capacity_) {
    if (overflow_ == TraceOverflow::kDropNewest) {
      ++lost_;
      return;
    }
    // Ring: overwrite the oldest slot.
    buffer_[head_] = event;
    head_ = (head_ + 1) % capacity_;
    ++recorded_;
    ++lost_;
    return;
  }
  buffer_[(head_ + size_) % capacity_] = event;
  ++size_;
  ++recorded_;
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(buffer_[(head_ + i) % capacity_]);
  }
  return out;
}

// ----------------------------------------------------------------- JSONL ---

std::string trace_line(const TraceEvent& event) {
  std::string out = "{\"t\":";
  out += json_number(event.time_s);
  out += ",\"kind\":\"";
  out += to_string(event.kind);
  out += '"';
  if (event.node != kTraceNone) {
    out += ",\"node\":";
    out += json_number(static_cast<std::uint64_t>(event.node));
  }
  if (event.packet != 0) {
    out += ",\"packet\":";
    out += json_number(static_cast<std::uint64_t>(event.packet));
  }
  if (const char* key = payload_key(event.kind);
      key != nullptr && event.payload.raw != kTraceNone) {
    out += ",\"";
    out += key;
    out += "\":";
    out += json_number(static_cast<std::uint64_t>(event.payload.raw));
  }
  out += '}';
  return out;
}

void write_trace_jsonl(std::ostream& os, std::span<const TraceEvent> events) {
  for (const TraceEvent& e : events) {
    os << trace_line(e) << '\n';
  }
}

void write_trace_jsonl(std::ostream& os, const TraceBuffer& buffer) {
  const auto events = buffer.events();
  write_trace_jsonl(os, events);
}

std::optional<TraceEvent> parse_trace_line(std::string_view line, std::string* error) {
  const auto obj = parse_flat_object(line, error);
  if (!obj) return std::nullopt;

  const auto number = [&](const char* key) -> std::optional<double> {
    const auto it = obj->find(key);
    if (it == obj->end()) return std::nullopt;
    if (!it->second.is_number()) return std::nullopt;
    return it->second.num;
  };

  TraceEvent e;
  const auto t = number("t");
  if (!t) {
    if (error) *error = "missing numeric \"t\"";
    return std::nullopt;
  }
  e.time_s = *t;

  const auto kind_it = obj->find("kind");
  if (kind_it == obj->end() || !kind_it->second.is_string()) {
    if (error) *error = "missing string \"kind\"";
    return std::nullopt;
  }
  const auto kind = trace_kind_from(kind_it->second.str);
  if (!kind) {
    if (error) *error = "unknown kind \"" + kind_it->second.str + "\"";
    return std::nullopt;
  }
  e.kind = *kind;

  if (const auto node = number("node")) e.node = static_cast<std::uint32_t>(*node);
  if (const auto packet = number("packet")) e.packet = static_cast<std::uint32_t>(*packet);
  if (const char* key = payload_key(e.kind)) {
    if (const auto payload = number(key)) {
      e.payload.raw = static_cast<std::uint32_t>(*payload);
    }
  }
  return e;
}

std::optional<std::vector<TraceEvent>> read_trace_jsonl(std::istream& is,
                                                        std::string* error) {
  std::vector<TraceEvent> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string why;
    const auto e = parse_trace_line(line, &why);
    if (!e) {
      if (error) *error = "line " + std::to_string(lineno) + ": " + why;
      return std::nullopt;
    }
    out.push_back(*e);
  }
  return out;
}

}  // namespace citymesh::obsx
