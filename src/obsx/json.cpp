#include "obsx/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <stdexcept>

namespace citymesh::obsx {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    const auto byte = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (byte < 0x20) {
          static constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[byte >> 4];
          out += kHex[byte & 0xf];
        } else {
          out += c;  // printable ASCII and UTF-8 continuation bytes
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), v);
  if (ec != std::errc{}) return "null";
  return std::string{buf.data(), ptr};
}

std::string json_number(std::uint64_t v) { return std::to_string(v); }

namespace {

class FlatParser {
 public:
  explicit FlatParser(std::string_view text) : text_(text) {}

  std::optional<std::map<std::string, JsonValue>> parse(std::string* error) {
    try {
      skip_ws();
      expect('{');
      std::map<std::string, JsonValue> out;
      skip_ws();
      if (peek() == '}') {
        ++pos_;
      } else {
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          skip_ws();
          JsonValue value = parse_scalar();
          if (!out.emplace(std::move(key), std::move(value)).second) {
            throw std::runtime_error{"duplicate key"};
          }
          skip_ws();
          const char c = take();
          if (c == '}') break;
          if (c != ',') throw std::runtime_error{"expected ',' or '}'"};
        }
      }
      skip_ws();
      if (pos_ != text_.size()) throw std::runtime_error{"trailing characters"};
      return out;
    } catch (const std::exception& e) {
      if (error) {
        *error = std::string{e.what()} + " at offset " + std::to_string(pos_);
      }
      return std::nullopt;
    }
  }

 private:
  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char take() {
    if (pos_ >= text_.size()) throw std::runtime_error{"unexpected end of input"};
    return text_[pos_++];
  }
  void expect(char c) {
    if (take() != c) throw std::runtime_error{std::string{"expected '"} + c + "'"};
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (c != '\\') {
        if (static_cast<unsigned char>(c) < 0x20) {
          throw std::runtime_error{"raw control character in string"};
        }
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else throw std::runtime_error{"bad \\u escape"};
          }
          // Encode the code point as UTF-8 (BMP only; surrogate pairs are
          // not produced by our writer and are rejected here).
          if (code >= 0xd800 && code <= 0xdfff) {
            throw std::runtime_error{"surrogate \\u escape unsupported"};
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default: throw std::runtime_error{"bad escape"};
      }
    }
  }

  JsonValue parse_scalar() {
    JsonValue v;
    const char c = peek();
    if (c == '"') {
      v.kind = JsonValue::Kind::kString;
      v.str = parse_string();
      return v;
    }
    if (c == '{' || c == '[') throw std::runtime_error{"nested values unsupported"};
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return v;
    }
    const char* begin = text_.data() + pos_;
    const char* end = text_.data() + text_.size();
    double num = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, num);
    if (ec != std::errc{} || ptr == begin) throw std::runtime_error{"bad scalar"};
    pos_ += static_cast<std::size_t>(ptr - begin);
    v.kind = JsonValue::Kind::kNumber;
    v.num = num;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<std::map<std::string, JsonValue>> parse_flat_object(
    std::string_view text, std::string* error) {
  return FlatParser{text}.parse(error);
}

}  // namespace citymesh::obsx
