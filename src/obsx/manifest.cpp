#include "obsx/manifest.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "obsx/json.hpp"

namespace citymesh::obsx {

std::string hex64(std::uint64_t v) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[v & 0xf];
    v >>= 4;
  }
  return out;
}

void RunManifest::set_param(std::string_view key, double value) {
  params[std::string{key}] = json_number(value);
}

void RunManifest::set_param(std::string_view key, std::uint64_t value) {
  params[std::string{key}] = json_number(value);
}

void RunManifest::set_param(std::string_view key, std::string_view value) {
  params[std::string{key}] = '"' + json_escape(value) + '"';
}

namespace {

// params values are pre-rendered JSON tokens; everything else is escaped here.
void write_string_map(std::ostream& os, const char* key,
                      const std::map<std::string, std::string>& m, bool raw_values) {
  os << "  \"" << key << "\": {";
  bool first = true;
  for (const auto& [k, v] : m) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(k) << "\": ";
    if (raw_values) {
      os << v;
    } else {
      os << '"' << json_escape(v) << '"';
    }
    first = false;
  }
  if (!first) os << "\n  ";
  os << '}';
}

}  // namespace

void RunManifest::write_json(std::ostream& os) const {
  os << "{\n";
  os << "  \"schema\": \"" << kManifestSchema << "\",\n";
  os << "  \"name\": \"" << json_escape(name) << "\",\n";
  os << "  \"city\": \"" << json_escape(city) << "\",\n";
  write_string_map(os, "params", params, /*raw_values=*/true);
  os << ",\n";
  os << "  \"seeds\": {";
  bool first = true;
  for (const auto& [k, v] : seeds) {
    os << (first ? "\n" : ",\n") << "    \"" << json_escape(k)
       << "\": " << json_number(v);
    first = false;
  }
  if (!first) os << "\n  ";
  os << "},\n";
  os << "  \"wall_clock_s\": " << json_number(wall_clock_s) << ",\n";
  os << "  \"digest\": \"" << hex64(digest) << "\",\n";
  os << "  \"metrics\": ";
  metrics.write_json(os, 2);
  if (!notes.empty()) {
    os << ",\n";
    write_string_map(os, "notes", notes, /*raw_values=*/false);
  }
  os << "\n}\n";
}

std::string RunManifest::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool RunManifest::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return static_cast<bool>(os);
}

}  // namespace citymesh::obsx
