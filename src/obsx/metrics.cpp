#include "obsx/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obsx/json.hpp"

namespace citymesh::obsx {

// -------------------------------------------------------------- Histogram ---

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw std::invalid_argument{"Histogram: no buckets"};
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument{"Histogram: bounds must ascend"};
  }
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::record(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  ++total_;
  sum_ += sum_quantum_ > 0.0 ? std::round(v / sum_quantum_) * sum_quantum_ : v;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
}

std::vector<double> linear_buckets(double first, double step, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(first + step * static_cast<double>(i));
  return out;
}

std::vector<double> exponential_buckets(double first, double ratio, std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double v = first;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(v);
    v *= ratio;
  }
  return out;
}

// -------------------------------------------------------- MetricsSnapshot ---

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, hist] : other.histograms) {
    const auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms.emplace(name, hist);
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bounds != hist.bounds) {
      throw std::invalid_argument{"MetricsSnapshot::merge: bounds mismatch for " + name};
    }
    for (std::size_t i = 0; i < mine.counts.size(); ++i) {
      mine.counts[i] += hist.counts[i];
    }
    mine.total += hist.total;
    mine.sum += hist.sum;
  }
}

namespace {

void write_indent(std::ostream& os, int indent) {
  for (int i = 0; i < indent; ++i) os << ' ';
}

void write_histogram_json(std::ostream& os, const HistogramSnapshot& h) {
  os << "{\"bounds\":[";
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    if (i) os << ',';
    os << json_number(h.bounds[i]);
  }
  os << "],\"counts\":[";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i) os << ',';
    os << json_number(h.counts[i]);
  }
  os << "],\"total\":" << json_number(h.total) << ",\"sum\":" << json_number(h.sum)
     << '}';
}

}  // namespace

void MetricsSnapshot::write_json(std::ostream& os, int indent) const {
  os << "{\n";
  write_indent(os, indent + 2);
  os << "\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    os << (first ? "\n" : ",\n");
    write_indent(os, indent + 4);
    os << '"' << json_escape(name) << "\": " << json_number(value);
    first = false;
  }
  if (!first) {
    os << '\n';
    write_indent(os, indent + 2);
  }
  os << "},\n";
  write_indent(os, indent + 2);
  os << "\"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms) {
    os << (first ? "\n" : ",\n");
    write_indent(os, indent + 4);
    os << '"' << json_escape(name) << "\": ";
    write_histogram_json(os, hist);
    first = false;
  }
  if (!first) {
    os << '\n';
    write_indent(os, indent + 2);
  }
  os << "}\n";
  write_indent(os, indent);
  os << '}';
}

std::string MetricsSnapshot::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

// -------------------------------------------------------- MetricsRegistry ---

Counter& MetricsRegistry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return *it->second;
  return *counters_.emplace(std::string{name}, std::make_unique<Counter>())
              .first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    if (!std::equal(bounds.begin(), bounds.end(), it->second->bounds().begin(),
                    it->second->bounds().end())) {
      throw std::invalid_argument{"MetricsRegistry: bounds mismatch for " +
                                  std::string{name}};
    }
    return *it->second;
  }
  return *histograms_
              .emplace(std::string{name}, std::make_unique<Histogram>(
                                              std::vector<double>{bounds.begin(),
                                                                  bounds.end()}))
              .first->second;
}

const Counter* MetricsRegistry::find_counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, hist] : histograms_) {
    snap.histograms.emplace(name, hist->snapshot());
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (auto& [name, counter] : counters_) counter->reset();
  for (auto& [name, hist] : histograms_) hist->reset();
}

}  // namespace citymesh::obsx
