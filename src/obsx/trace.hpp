// Packet-lifecycle tracing (src/obsx).
//
// Every interesting thing that happens to a packet in the simulated mesh —
// origination, broadcast, reception, duplicate suppression, the conduit
// rebroadcast decision, postbox delivery, acknowledgments, fault drops —
// plus the fault actions themselves (src/faultx) is one compact TraceEvent
// in a single time-ordered stream. The §4 evaluation *is* counting these
// events; recording them once and deriving every figure/metric from the
// stream replaces the per-bench bespoke instrumentation (Figure 7 renders
// straight from a recorded trace).
//
// Cost discipline: events land in a preallocated ring/append buffer — no
// per-event allocation — and the whole layer has a "disabled = near-zero
// cost" path: a disabled buffer rejects events on one branch, and building
// with CITYMESH_DISABLE_TRACE (-DCITYMESH_DISABLE_TRACE=ON at configure
// time) compiles record() away entirely.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace citymesh::obsx {

enum class TraceKind : std::uint8_t {
  kOriginate,      ///< sender's AP injects a fresh packet
  kTx,             ///< a broadcast actually put on the air
  kRx,             ///< one per-link delivery
  kDupSuppressed,  ///< receiver had seen the message id (or overhear-cancel)
  kConduitReject,  ///< received, outside every conduit: no rebroadcast
  kRebroadcast,    ///< conduit test passed; retransmission (possibly backoff-delayed)
  kPostboxStore,   ///< stored into hosted postbox(es)
  kAck,            ///< acknowledgment packet originated
  kDropFaulted,    ///< tx/rx swallowed because the node is down (faultx)
  kDropLoss,       ///< per-link random loss
  kDeferred,       ///< tx queued behind the AP's busy channel (trafficx)
  kDropQueue,      ///< tx dropped: transmit queue full (trafficx)
  kApDown,         ///< fault action: AP went down
  kApUp,           ///< fault action: AP restored
  kRegionDegrade,  ///< fault action: degraded-link region activated
  kRegionRestore,  ///< fault action: degraded-link region deactivated
  kMalformed,      ///< reception dropped: undecodable or corrupt header
  kElected,        ///< relay policy armed a delayed rebroadcast (src/relayx)
  kSuppressed,     ///< armed/considered rebroadcast suppressed before airing
};

std::string_view to_string(TraceKind kind);
std::optional<TraceKind> trace_kind_from(std::string_view name);

/// Sentinel for "no node" / "no payload" (a valid id never reaches 2^32-1).
constexpr std::uint32_t kTraceNone = 0xffffffffu;

struct TraceEvent {
  double time_s = 0.0;          ///< simulated time
  std::uint32_t node = kTraceNone;   ///< AP id (kTraceNone for global events)
  std::uint32_t packet = 0;     ///< message id (0 for fault actions)
  TraceKind kind = TraceKind::kTx;
  /// Kind-dependent payload; kTraceNone = absent.
  union Payload {
    std::uint32_t peer;    ///< kRx/kDupSuppressed/kDropLoss/kDropFaulted: transmitter
    std::uint32_t count;   ///< kPostboxStore: postboxes newly stored into
    std::uint32_t region;  ///< kRegionDegrade/kRegionRestore: region index
    std::uint32_t raw;
  } payload{kTraceNone};

  bool operator==(const TraceEvent& o) const {
    return time_s == o.time_s && node == o.node && packet == o.packet &&
           kind == o.kind && payload.raw == o.payload.raw;
  }
};

/// JSONL key the payload serializes under; nullptr when the kind carries none.
const char* payload_key(TraceKind kind);

/// What to do when the buffer is full.
enum class TraceOverflow : std::uint8_t {
  kWrap,        ///< ring: overwrite the oldest event (keep the latest window)
  kDropNewest,  ///< append: reject new events once full
};

/// Preallocated trace collector. Disabled (the default) it costs one branch
/// per record() call and holds no storage; enable() allocates the buffer
/// once and reuses it across clear() calls.
class TraceBuffer {
 public:
  explicit TraceBuffer(std::size_t capacity = 1u << 16,
                       TraceOverflow overflow = TraceOverflow::kWrap);

  bool enabled() const { return enabled_; }
  void enable(bool on = true);

  std::size_t capacity() const { return capacity_; }
  TraceOverflow overflow() const { return overflow_; }

#ifdef CITYMESH_DISABLE_TRACE
  static constexpr bool compiled_in = false;
  void record(const TraceEvent&) {}
  void record(TraceKind, double, std::uint32_t, std::uint32_t,
              std::uint32_t = kTraceNone) {}
#else
  static constexpr bool compiled_in = true;
  void record(const TraceEvent& event) {
    if (!enabled_) return;
    push(event);
  }
  void record(TraceKind kind, double time_s, std::uint32_t node,
              std::uint32_t packet, std::uint32_t payload = kTraceNone) {
    if (!enabled_) return;
    TraceEvent e;
    e.time_s = time_s;
    e.node = node;
    e.packet = packet;
    e.kind = kind;
    e.payload.raw = payload;
    push(e);
  }
#endif

  /// Events currently held (<= capacity).
  std::size_t size() const { return size_; }
  /// Total events accepted, including ones a wrap overwrote.
  std::uint64_t recorded() const { return recorded_; }
  /// Events rejected (kDropNewest) or overwritten (kWrap).
  std::uint64_t lost() const { return lost_; }

  /// Drop held events; keeps the allocation and the enabled state.
  void clear();

  /// Held events, oldest first (unwraps the ring).
  std::vector<TraceEvent> events() const;

 private:
  void push(const TraceEvent& event);

  std::size_t capacity_;
  TraceOverflow overflow_;
  bool enabled_ = false;
  std::vector<TraceEvent> buffer_;  ///< allocated on first enable()
  std::size_t head_ = 0;            ///< next write slot (kWrap)
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t lost_ = 0;
};

// ----------------------------------------------------------------- JSONL ---

/// Write events as JSON Lines: one flat object per event, `\n`-terminated.
void write_trace_jsonl(std::ostream& os, std::span<const TraceEvent> events);
void write_trace_jsonl(std::ostream& os, const TraceBuffer& buffer);

/// Serialize one event (no trailing newline).
std::string trace_line(const TraceEvent& event);

/// Parse one JSONL line. Returns nullopt and sets `error` on malformed
/// input, unknown kinds, or missing required keys.
std::optional<TraceEvent> parse_trace_line(std::string_view line,
                                           std::string* error = nullptr);

/// Parse a whole stream; empty lines are skipped. On error returns nullopt
/// and reports the 1-based line number in `error`.
std::optional<std::vector<TraceEvent>> read_trace_jsonl(std::istream& is,
                                                        std::string* error = nullptr);

}  // namespace citymesh::obsx
