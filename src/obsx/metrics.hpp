// Metrics registry (src/obsx): named monotonic counters and fixed-bucket
// histograms, registered once per subsystem and read everywhere.
//
// The §4 evaluation is built on counting what the mesh did; before this
// module the counts lived in ad-hoc member variables duplicated between
// sim::BroadcastMedium, core::CityMeshNetwork, and the benches. Subsystems
// now register their counters here (the medium's transmission/delivery tally
// is the single source of truth) and consumers take a MetricsSnapshot —
// a plain value that merges across runs/seeds and serializes into the run
// manifest (manifest.hpp).
//
// Handles returned by counter()/histogram() are stable for the registry's
// lifetime, so hot paths hold a pointer and pay one increment per event.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace citymesh::obsx {

/// A monotonically increasing event count. reset() exists for per-run reuse
/// of a long-lived registry (benches measuring deltas); within a run the
/// value only grows.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Snapshot of one histogram: `bounds` are ascending inclusive upper bucket
/// edges; `counts` has bounds.size()+1 entries, the last being the overflow
/// bucket (> bounds.back()). A value v lands in the first bucket with
/// v <= bounds[i].
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;

  double mean() const { return total ? sum / static_cast<double>(total) : 0.0; }
  bool operator==(const HistogramSnapshot&) const = default;
};

/// Fixed-bucket histogram. Buckets never reallocate, so record() is a
/// branchless-ish upper_bound plus two adds — cheap enough for per-packet
/// paths.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void record(double v);
  std::uint64_t total() const { return total_; }
  double sum() const { return sum_; }
  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  HistogramSnapshot snapshot() const { return {bounds_, counts_, total_, sum_}; }
  void reset();

  /// Accumulate `sum` in exact multiples of `q` (each recorded value is
  /// rounded to the nearest multiple before adding; bucket assignment still
  /// uses the raw value). Because every partial sum is then exactly
  /// representable (while it stays below 2^53 * q), addition is associative
  /// and the sum depends only on the multiset of recorded values — not on
  /// the order events happened to run in. The tiled engine (src/shardx)
  /// sets this on per-shard latency histograms so merged snapshots are
  /// identical for every shard count K >= 2. 0 (default) disables
  /// quantization — the legacy accumulate-in-arrival-order behavior.
  void set_sum_quantum(double q) { sum_quantum_ = q; }
  double sum_quantum() const { return sum_quantum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double sum_quantum_ = 0.0;
};

/// Evenly spaced bucket bounds: first, first+step, ..., n of them.
std::vector<double> linear_buckets(double first, double step, std::size_t n);
/// Geometric bucket bounds: first, first*ratio, ..., n of them.
std::vector<double> exponential_buckets(double first, double ratio, std::size_t n);

/// A mergeable, serializable value capture of a registry. Counters merge by
/// summation; histograms merge bucket-wise and require identical bounds.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Merge another run/seed into this one. Throws std::invalid_argument on
  /// histogram bound mismatches (merging incompatible runs is a bug).
  void merge(const MetricsSnapshot& other);

  /// Deterministic JSON object (keys sorted by std::map, numbers via
  /// shortest-round-trip formatting): same state => byte-identical output.
  void write_json(std::ostream& os, int indent = 0) const;
  std::string to_json() const;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Owner of named metrics. get-or-create semantics; re-requesting a
/// histogram with different bounds throws (two subsystems disagreeing about
/// a metric's shape is a bug, not a runtime condition).
class MetricsRegistry {
 public:
  Counter& counter(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  const Counter* find_counter(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  MetricsSnapshot snapshot() const;
  /// Zero every metric (per-run reuse); registrations survive.
  void reset();

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace citymesh::obsx
