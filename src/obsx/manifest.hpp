// Machine-readable run manifests (src/obsx).
//
// One JSON document per bench/CLI run: what was run (city profile, seeds,
// range/density/W parameters), how long it took, the metrics snapshot, and
// the run's determinism digest. Every bench emits one via `--json FILE`
// (bench_util.hpp wires the flag), so a perf trajectory is a directory of
// BENCH_<name>.json files instead of scraped stdout.
//
// Output is deterministic: std::map-ordered keys and shortest-round-trip
// number formatting, so same seed => byte-identical manifest modulo the
// wall-clock field.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "obsx/metrics.hpp"

namespace citymesh::obsx {

/// FNV-1a 64-bit accumulator — the determinism digest every bench prints
/// (two same-seed runs must produce the identical digest).
class Fnv1a {
 public:
  Fnv1a& update(std::string_view s) {
    for (const char c : s) {
      h_ ^= static_cast<unsigned char>(c);
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  Fnv1a& update(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ ^= (v >> (i * 8)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
    return *this;
  }
  std::uint64_t digest() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

/// Lower-case hex rendering of a 64-bit digest (fixed 16 chars).
std::string hex64(std::uint64_t v);

constexpr std::string_view kManifestSchema = "citymesh-manifest-v1";

struct RunManifest {
  std::string name;                ///< bench/run name, e.g. "fig6_cities"
  std::string city;                ///< profile name(s); empty when n/a
  std::map<std::string, std::string> params;  ///< stringified run parameters
  std::map<std::string, std::uint64_t> seeds;
  double wall_clock_s = 0.0;
  std::uint64_t digest = 0;        ///< determinism digest over the run's rows
  MetricsSnapshot metrics;
  std::map<std::string, std::string> notes;  ///< free-form extras

  void set_param(std::string_view key, double value);
  void set_param(std::string_view key, std::uint64_t value);
  void set_param(std::string_view key, std::string_view value);

  void write_json(std::ostream& os) const;
  std::string to_json() const;
  /// Write to `path`; false on I/O failure.
  bool write_file(const std::string& path) const;
};

}  // namespace citymesh::obsx
