// Cross-tile handoff events and the window worker pool (shardx).
//
// Execution model: the owning network runs the K tiles in rounds of
// conservative-lookahead windows [W, W + lookahead). During a window each
// tile's simulator runs alone on one worker — all state it touches is
// tile-local. Receptions crossing a cut edge are NOT delivered immediately;
// the transmitting tile computes the arrival time (the lookahead bound
// guarantees it lies at or beyond the window end) and appends an immutable
// Handoff to its outbox. At the window barrier the coordinator drains every
// outbox, sorts by (time, src_tile, seq) — a total order that does not
// depend on worker scheduling — and schedules each handoff into the
// receiving tile's simulator before the next window starts. That barrier
// exchange is the only cross-thread communication, and the pool's
// fork/join synchronization sequences it, so the engine is clean under
// TSan by construction rather than by fine-grained locking.
//
// The Handoff carries shared_ptr<const Packet>: packets are immutable after
// transmit (sim/medium packet contract; core::CompiledMessage), which is
// what makes handing the same object to another tile's thread safe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/medium.hpp"
#include "shardx/tiling.hpp"
#include "shardx/worker_pool.hpp"

namespace citymesh::shardx {

/// One reception crossing a tile boundary, created by the transmitting tile
/// and ingested by the receiving tile at the next window barrier.
template <typename Packet>
struct Handoff {
  double time = 0.0;       ///< arrival sim time at the receiver
  TileId src_tile = 0;     ///< transmitting tile (tie-break component)
  std::uint64_t seq = 0;   ///< creation order within src_tile (final tie-break)
  sim::NodeId to = 0;
  sim::NodeId from = 0;
  std::shared_ptr<const Packet> packet;
};

/// Deterministic barrier ordering: arrival time, then source tile, then
/// per-source creation order. Worker scheduling cannot perturb any key.
template <typename Packet>
bool handoff_before(const Handoff<Packet>& a, const Handoff<Packet>& b) {
  if (a.time != b.time) return a.time < b.time;
  if (a.src_tile != b.src_tile) return a.src_tile < b.src_tile;
  return a.seq < b.seq;
}

}  // namespace citymesh::shardx
