// Spatial tiling of one compiled city for intra-run parallelism (shardx).
//
// A run is partitioned into K tiles by laying a cols x rows grid over the
// building-centroid bounding box: every building falls in exactly one tile,
// and every AP inherits its building's tile (building-atomic tiling). That
// atomicity is what keeps the protocol's delivery semantics tile-local —
// unicast postbox stores, ack initiation, and ack-return delivery all happen
// at the addressed building (core/ap_agent), so they never span tiles.
//
// Each tile simulates only its internal topology edges; the edges the grid
// cuts are listed as directed CrossLinks and serviced by the owning network
// as handoff events (engine.hpp). The conservative-lookahead bound derives
// from those cut edges: a packet put on the air at time t cannot arrive
// across a cut edge before t + min(serialization + propagation), so tiles
// may run that far ahead of each other without ever receiving an event in
// their past.
//
// Tiles may be empty (a grid cell with no buildings); they cost one idle
// simulator per window and nothing else. shards larger than the building
// count therefore degrade gracefully.
#pragma once

#include <cstdint>
#include <vector>

#include "geo/spatial_grid.hpp"
#include "graphx/graph.hpp"
#include "mesh/ap_network.hpp"
#include "sim/simulator.hpp"

namespace citymesh::shardx {

using TileId = std::uint32_t;

/// One directed topology edge the tiling cut: `from` and `to` live in
/// different tiles. Both directions of an undirected edge appear.
struct CrossLink {
  mesh::ApId from;
  mesh::ApId to;
  double length_m;
};

struct TilePlan {
  std::size_t tile_count = 1;  ///< requested K, including empty tiles
  std::uint32_t grid_cols = 1;
  std::uint32_t grid_rows = 1;
  std::vector<TileId> building_tile;  ///< building id -> tile
  std::vector<TileId> ap_tile;        ///< AP id -> tile (its building's tile)
  std::vector<std::vector<mesh::ApId>> tile_aps;  ///< per tile, ascending AP ids
  std::vector<CrossLink> cross;       ///< every directed cut edge
  std::vector<bool> boundary_ap;      ///< AP has >= 1 cut edge (either direction)
};

/// How plan_tiles assigns buildings to tiles.
enum class TilingMode : std::uint8_t {
  /// Uniform cols x rows grid over the centroid bounding box. Simple and
  /// the historical default, but downtown cells carry far more APs (and
  /// radio edges, and therefore events) than suburban ones, so the densest
  /// tile dominates every window barrier.
  kGrid,
  /// Weighted rectilinear partition: buildings are cut into `cols` columns
  /// of roughly equal total weight (by centroid x), then each column into
  /// `rows` tiles likewise (by centroid y), where a building's weight is
  /// 1 + its APs' radio degrees — a static proxy for the event rate its
  /// receptions generate. Same cols x rows topology as kGrid, boundaries
  /// placed where the load is. Deterministic for a given city + shards.
  kAdaptive,
};

/// Partition the city into `shards` tiles. Deterministic for a given
/// city + shards + mode. Precondition: shards >= 1; building_count > 0 when
/// shards > 1.
TilePlan plan_tiles(const geo::SpatialGrid& centroid_grid, std::size_t building_count,
                    const mesh::ApNetwork& net, std::size_t shards,
                    TilingMode mode = TilingMode::kGrid);

/// The tile-internal subgraph over the FULL AP id space: vertices keep their
/// global ids (so one packet's node ids mean the same thing everywhere);
/// vertices owned by other tiles are simply isolated.
graphx::Graph tile_subgraph(const graphx::Graph& topology,
                            const std::vector<TileId>& ap_tile, TileId tile);

/// Conservative lookahead window, seconds: the minimum over every cut edge
/// of (min_serialization_s + prop_delay_s_per_m * length). A transmission at
/// time t arrives across a cut edge no earlier than t + lookahead, so tiles
/// synchronized at window barriers of this width never see a handoff in
/// their past. Returns sim::kForever when there are no cut edges (single
/// tile, or tiles radio-isolated from each other): one window covers the
/// whole run.
double lookahead_s(const std::vector<CrossLink>& cross, double min_serialization_s,
                   double prop_delay_s_per_m);

}  // namespace citymesh::shardx
