// A small persistent fork/join worker pool.
//
// One pool lives for the whole tiled run; each lookahead window forks one
// task per tile and joins at the barrier. Persistent threads matter because
// a metro-scale run executes tens of thousands of windows — spawning
// std::thread per window would dominate the wall clock the sharding is
// meant to win back. The calling thread participates as a worker, so
// `WorkerPool(0)` degrades to plain sequential execution (how a 1-core
// container runs K tiles: correct, just not faster).
//
// run() establishes full happens-before in both directions: task writes are
// visible to the caller after run() returns, and caller writes before run()
// are visible to every task — the property the window-barrier handoff
// exchange (engine.hpp) relies on.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace citymesh::shardx {

class WorkerPool {
 public:
  /// `threads` extra worker threads (the caller is always an implicit
  /// worker). Typically min(tiles, hardware_concurrency) - 1.
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Run fn(i) for every i in [0, n), distributed over the workers and the
  /// calling thread; returns once all n calls finished. The first exception
  /// thrown by any task is rethrown here (remaining tasks still complete).
  /// Not reentrant.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t thread_count() const { return threads_.size(); }

 private:
  void worker_loop();
  /// Claim-and-run loop shared by workers and the caller; claims are gated
  /// on `gen` so a late worker never touches a newer run()'s state.
  void drain(std::uint64_t gen);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new generation
  std::condition_variable done_cv_;  ///< caller waits for completion
  std::uint64_t generation_ = 0;
  std::size_t task_count_ = 0;
  std::size_t next_task_ = 0;
  std::size_t finished_ = 0;
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace citymesh::shardx
