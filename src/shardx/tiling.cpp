#include "shardx/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace citymesh::shardx {

namespace {

/// cols x rows = shards with cols >= rows and the grid as square as the
/// factorization allows: cols is the smallest divisor of shards that is
/// >= ceil(sqrt(shards)). Prime K degenerates to a K x 1 strip, which is
/// still a valid (if boundary-heavy) partition.
void grid_shape(std::size_t shards, std::uint32_t& cols, std::uint32_t& rows) {
  const auto root =
      static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(shards))));
  for (std::size_t c = root; c <= shards; ++c) {
    if (shards % c == 0) {
      cols = static_cast<std::uint32_t>(c);
      rows = static_cast<std::uint32_t>(shards / c);
      return;
    }
  }
  cols = static_cast<std::uint32_t>(shards);
  rows = 1;
}

/// Uniform cols x rows grid over the centroid bounding box.
void assign_grid(const geo::SpatialGrid& centroid_grid, std::size_t building_count,
                 TilePlan& plan) {
  double min_x = centroid_grid.position(0).x, max_x = min_x;
  double min_y = centroid_grid.position(0).y, max_y = min_y;
  for (std::uint32_t b = 1; b < building_count; ++b) {
    const geo::Point p = centroid_grid.position(b);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const double span_x = max_x - min_x;
  const double span_y = max_y - min_y;
  for (std::uint32_t b = 0; b < building_count; ++b) {
    const geo::Point p = centroid_grid.position(b);
    std::uint32_t col = 0, row = 0;
    if (span_x > 0.0) {
      col = static_cast<std::uint32_t>((p.x - min_x) / span_x * plan.grid_cols);
      col = std::min(col, plan.grid_cols - 1);
    }
    if (span_y > 0.0) {
      row = static_cast<std::uint32_t>((p.y - min_y) / span_y * plan.grid_rows);
      row = std::min(row, plan.grid_rows - 1);
    }
    plan.building_tile[b] = row * plan.grid_cols + col;
  }
}

/// Weighted rectilinear partition: cut buildings into cols columns of
/// roughly equal total weight by centroid x, then each column into rows
/// tiles by centroid y. A building's weight is the sum over its APs of
/// (1 + radio degree): each AP contributes its own event handling plus one
/// reception per in-range neighbor whenever anything nearby transmits — a
/// static proxy for the per-tile event rate the window barrier waits on.
/// Integer weights and (coordinate, id) sort keys keep the cuts exactly
/// reproducible across platforms.
void assign_adaptive(const geo::SpatialGrid& centroid_grid, std::size_t building_count,
                     const mesh::ApNetwork& net, TilePlan& plan) {
  std::vector<std::uint64_t> weight(building_count, 0);
  const graphx::Graph& topology = net.graph();
  for (const auto& ap : net.aps()) {
    weight[ap.building] += 1 + topology.degree(ap.id);
  }

  std::vector<std::uint32_t> order(building_count);
  for (std::uint32_t b = 0; b < building_count; ++b) order[b] = b;
  const auto by_x = [&](std::uint32_t a, std::uint32_t b) {
    const double xa = centroid_grid.position(a).x, xb = centroid_grid.position(b).x;
    if (xa != xb) return xa < xb;
    return a < b;
  };
  std::sort(order.begin(), order.end(), by_x);

  std::uint64_t total = 0;
  for (const std::uint64_t w : weight) total += w;

  // Greedy column cuts at cumulative targets total*(c+1)/cols: a column
  // closes once it reaches its share, so every column holds a contiguous
  // x-range and the weights differ from ideal by at most one building.
  std::vector<std::vector<std::uint32_t>> columns(plan.grid_cols);
  {
    std::uint64_t cum = 0;
    std::uint32_t col = 0;
    for (const std::uint32_t b : order) {
      columns[col].push_back(b);
      cum += weight[b];
      while (col + 1 < plan.grid_cols &&
             cum * plan.grid_cols >= total * (static_cast<std::uint64_t>(col) + 1)) {
        ++col;
      }
    }
  }

  for (std::uint32_t col = 0; col < plan.grid_cols; ++col) {
    std::vector<std::uint32_t>& members = columns[col];
    const auto by_y = [&](std::uint32_t a, std::uint32_t b) {
      const double ya = centroid_grid.position(a).y, yb = centroid_grid.position(b).y;
      if (ya != yb) return ya < yb;
      return a < b;
    };
    std::sort(members.begin(), members.end(), by_y);
    std::uint64_t col_total = 0;
    for (const std::uint32_t b : members) col_total += weight[b];
    std::uint64_t cum = 0;
    std::uint32_t row = 0;
    for (const std::uint32_t b : members) {
      plan.building_tile[b] = row * plan.grid_cols + col;
      cum += weight[b];
      while (row + 1 < plan.grid_rows &&
             cum * plan.grid_rows >= col_total * (static_cast<std::uint64_t>(row) + 1)) {
        ++row;
      }
    }
  }
}

}  // namespace

TilePlan plan_tiles(const geo::SpatialGrid& centroid_grid, std::size_t building_count,
                    const mesh::ApNetwork& net, std::size_t shards, TilingMode mode) {
  if (shards == 0) throw std::invalid_argument{"plan_tiles: shards must be >= 1"};
  if (shards > 1 && building_count == 0)
    throw std::invalid_argument{"plan_tiles: cannot tile a city with no buildings"};

  TilePlan plan;
  plan.tile_count = shards;
  grid_shape(shards, plan.grid_cols, plan.grid_rows);

  plan.building_tile.assign(building_count, 0);
  if (shards > 1) {
    if (mode == TilingMode::kAdaptive) {
      assign_adaptive(centroid_grid, building_count, net, plan);
    } else {
      assign_grid(centroid_grid, building_count, plan);
    }
  }

  const std::size_t ap_count = net.ap_count();
  plan.ap_tile.assign(ap_count, 0);
  plan.tile_aps.assign(shards, {});
  for (mesh::ApId ap = 0; ap < ap_count; ++ap) {
    const TileId tile = plan.building_tile.at(net.ap(ap).building);
    plan.ap_tile[ap] = tile;
    plan.tile_aps[tile].push_back(ap);  // ascending: ap ids iterate in order
  }

  plan.boundary_ap.assign(ap_count, false);
  const graphx::Graph& topology = net.graph();
  for (mesh::ApId ap = 0; ap < ap_count; ++ap) {
    for (const graphx::Edge& e : topology.neighbors(ap)) {
      if (plan.ap_tile[ap] != plan.ap_tile[e.to]) {
        plan.cross.push_back({ap, e.to, e.weight});
        plan.boundary_ap[ap] = true;
      }
    }
  }
  return plan;
}

graphx::Graph tile_subgraph(const graphx::Graph& topology,
                            const std::vector<TileId>& ap_tile, TileId tile) {
  graphx::GraphBuilder builder(topology.vertex_count());
  for (graphx::VertexId v = 0; v < topology.vertex_count(); ++v) {
    if (ap_tile[v] != tile) continue;
    for (const graphx::Edge& e : topology.neighbors(v)) {
      // Each undirected edge is visited from both endpoints; add it once.
      if (e.to > v && ap_tile[e.to] == tile) builder.add_edge(v, e.to, e.weight);
    }
  }
  return builder.build();
}

double lookahead_s(const std::vector<CrossLink>& cross, double min_serialization_s,
                   double prop_delay_s_per_m) {
  if (cross.empty()) return sim::kForever;
  double best = sim::kForever;
  for (const CrossLink& link : cross)
    best = std::min(best, min_serialization_s + prop_delay_s_per_m * link.length_m);
  return best;
}

}  // namespace citymesh::shardx
