#include "shardx/worker_pool.hpp"

namespace citymesh::shardx {

WorkerPool::WorkerPool(std::size_t threads) {
  threads_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::uint64_t gen;
  {
    std::lock_guard lock{mu_};
    gen = ++generation_;
    task_count_ = n;
    next_task_ = 0;
    finished_ = 0;
    task_ = &fn;
    first_error_ = nullptr;
  }
  work_cv_.notify_all();
  drain(gen);
  std::exception_ptr error;
  {
    std::unique_lock lock{mu_};
    done_cv_.wait(lock, [this] { return finished_ == task_count_; });
    task_ = nullptr;
    error = first_error_;
  }
  if (error) std::rethrow_exception(error);
}

void WorkerPool::drain(std::uint64_t gen) {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* fn;
    {
      std::lock_guard lock{mu_};
      // The generation gate stops a worker that raced past the previous
      // barrier from claiming tasks of a later run() with stale state.
      if (generation_ != gen || task_ == nullptr || next_task_ >= task_count_) return;
      index = next_task_++;
      fn = task_;
    }
    std::exception_ptr error;
    try {
      (*fn)(index);
    } catch (...) {
      error = std::current_exception();
    }
    std::lock_guard lock{mu_};
    if (error && !first_error_) first_error_ = error;
    if (++finished_ == task_count_) done_cv_.notify_all();
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    std::uint64_t gen;
    {
      std::unique_lock lock{mu_};
      work_cv_.wait(lock, [&] {
        return stop_ || (task_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      gen = seen_generation = generation_;
    }
    drain(gen);
  }
}

}  // namespace citymesh::shardx
