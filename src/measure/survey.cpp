#include "measure/survey.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "geo/spatial_grid.hpp"
#include "mesh/ap_network.hpp"

namespace citymesh::measure {

std::size_t SurveyDataset::unique_aps() const {
  std::unordered_set<BeaconId> ids;
  for (const auto& m : measurements) ids.insert(m.visible.begin(), m.visible.end());
  return ids.size();
}

BeaconPopulation place_beacons(const osmx::City& city, const SurveyConfig& config) {
  // Reuse the footprint-constrained placer; the transmission range it wants
  // is irrelevant here (we assign per-radio visibility below).
  mesh::PlacementConfig placement;
  placement.density_per_m2 = config.beacon_density_per_m2;
  placement.transmission_range_m = 1.0;
  placement.seed = config.seed * 31 + 7;
  const mesh::ApNetwork placed = mesh::place_aps(city, placement);

  BeaconPopulation pop;
  pop.positions.reserve(placed.ap_count());
  pop.visibility_m.reserve(placed.ap_count());
  pop.area.reserve(placed.ap_count());

  geo::Rng rng{config.seed * 97 + 3};
  for (const auto& ap : placed.aps()) {
    const osmx::AreaType area = city.building(ap.building).area;
    const auto it = config.areas.find(area);
    // Radios outside surveyed areas still beacon; give them the residential
    // propagation profile as the neutral default.
    const AreaParams params =
        it != config.areas.end()
            ? it->second
            : config.areas.count(osmx::AreaType::kResidential)
                  ? config.areas.at(osmx::AreaType::kResidential)
                  : AreaParams{};
    const double radius =
        params.visibility_mean_m * std::exp(params.visibility_sigma * rng.normal());
    pop.positions.push_back(ap.position);
    pop.visibility_m.push_back(radius);
    pop.area.push_back(area);
  }
  return pop;
}

namespace {

/// Serpentine waypoint path across a region: west-east passes separated by
/// `spacing`, clipped to the region. Models the paper's walk/bike coverage.
std::vector<geo::Point> serpentine(const geo::Rect& region, double spacing) {
  std::vector<geo::Point> waypoints;
  bool left_to_right = true;
  for (double y = region.min.y + spacing / 2.0; y < region.max.y; y += spacing) {
    const geo::Point a{left_to_right ? region.min.x : region.max.x, y};
    const geo::Point b{left_to_right ? region.max.x : region.min.x, y};
    waypoints.push_back(a);
    waypoints.push_back(b);
    left_to_right = !left_to_right;
  }
  return waypoints;
}

}  // namespace

std::vector<SurveyDataset> run_survey(const osmx::City& city, const SurveyConfig& config) {
  const BeaconPopulation beacons = place_beacons(city, config);
  double max_visibility = 0.0;
  for (const double v : beacons.visibility_m) max_visibility = std::max(max_visibility, v);
  const geo::SpatialGrid grid{std::max(50.0, max_visibility / 2.0), beacons.positions};

  std::vector<SurveyDataset> datasets;
  geo::Rng rng{config.seed};

  for (const auto& region : city.regions()) {
    const auto params_it = config.areas.find(region.type);
    if (params_it == config.areas.end()) continue;
    // The blanket residential region covers the whole city; survey only a
    // representative sub-rectangle so the trajectory matches a real outing.
    geo::Rect bounds = region.bounds;
    if (region.type == osmx::AreaType::kResidential) {
      const geo::Point c{bounds.min.x + bounds.width() * 0.78,
                         bounds.min.y + bounds.height() * 0.25};
      bounds = {{c.x - 450.0, c.y - 350.0}, {c.x + 450.0, c.y + 350.0}};
    }
    const AreaParams& params = params_it->second;

    SurveyDataset dataset;
    dataset.name = region.name;
    dataset.area = region.type;

    const auto waypoints = serpentine(bounds, config.pass_spacing_m);
    if (waypoints.size() < 2) continue;

    double time_s = 0.0;
    std::size_t wp = 0;
    geo::Point pos = waypoints[0];
    while (dataset.measurements.size() < params.target_samples) {
      // Advance along the waypoint path by one inter-sample distance.
      const double hz = rng.uniform(config.sample_hz_min, config.sample_hz_max);
      const double dt = 1.0 / hz;
      double remaining = config.speed_mps * dt;
      while (remaining > 0.0 && wp + 1 < waypoints.size()) {
        const geo::Point target = waypoints[wp + 1];
        const double leg = geo::distance(pos, target);
        if (leg <= remaining) {
          pos = target;
          remaining -= leg;
          ++wp;
        } else {
          pos = geo::lerp(pos, target, remaining / leg);
          remaining = 0.0;
        }
      }
      if (wp + 1 >= waypoints.size()) wp = 0;  // loop the route until quota met
      time_s += dt;

      // GPS jitter on the recorded location (a few meters, like the paper's
      // handheld receivers).
      Measurement m;
      m.time_s = time_s;
      m.location = {pos.x + rng.normal(0.0, 3.0), pos.y + rng.normal(0.0, 3.0)};
      if (city.in_water(m.location)) continue;  // can't stand in the river

      grid.for_each_in_radius(pos, max_visibility, [&](std::uint32_t id, geo::Point q) {
        if (geo::distance(pos, q) <= beacons.visibility_m[id]) {
          m.visible.push_back(id);
        }
      });
      std::sort(m.visible.begin(), m.visible.end());
      dataset.measurements.push_back(std::move(m));
    }
    datasets.push_back(std::move(dataset));
  }
  return datasets;
}

SurveyDataset merge_datasets(const std::vector<SurveyDataset>& datasets) {
  SurveyDataset all;
  all.name = "all";
  all.area = osmx::AreaType::kOther;
  for (const auto& d : datasets) {
    all.measurements.insert(all.measurements.end(), d.measurements.begin(),
                            d.measurements.end());
  }
  return all;
}

}  // namespace citymesh::measure
