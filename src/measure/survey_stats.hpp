// Statistics over survey datasets: the exact quantities plotted in the
// paper's Table 1, Figure 1a, Figure 1b, and Figure 2.
#pragma once

#include <vector>

#include "geo/stats.hpp"
#include "measure/survey.hpp"

namespace citymesh::measure {

/// Figure 1a input: number of MAC addresses seen at each measurement.
std::vector<double> macs_per_measurement(const SurveyDataset& dataset);

/// Figure 1b input: per unique AP, the spread (max distance between any two
/// locations where that AP was heard). APs heard only once have spread 0.
std::vector<double> spread_per_ap(const SurveyDataset& dataset);

/// One distance bin of Figure 2.
struct DistanceBin {
  double lo_m = 0.0;
  double hi_m = 0.0;
  std::size_t pair_count = 0;
  /// Quantiles of the common-AP count over pairs in this bin, matching the
  /// paper's whiskers: 10%, 25%, 50%, 75%, 100%.
  double q10 = 0.0, q25 = 0.0, q50 = 0.0, q75 = 0.0, q100 = 0.0;
};

struct CommonApConfig {
  double bin_width_m = 50.0;
  double max_distance_m = 500.0;
  /// Pair sampling cap. The paper brute-forces all pairs of a few thousand
  /// measurements; we sample uniformly when the pair count would exceed the
  /// cap, which leaves the per-bin distributions unchanged in expectation.
  std::size_t max_pairs = 400'000;
  std::uint64_t seed = 5;
};

/// Figure 2: distribution of the number of APs observed in common between
/// measurement pairs, binned by the pair's distance.
std::vector<DistanceBin> common_ap_bins(const SurveyDataset& dataset,
                                        const CommonApConfig& config);

/// Size of the intersection of two sorted id vectors.
std::size_t common_count(const std::vector<BeaconId>& a, const std::vector<BeaconId>& b);

}  // namespace citymesh::measure
