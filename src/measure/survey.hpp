// Synthetic wardriving survey (reproduction of §2's measurement study).
//
// The paper collected Wi-Fi beacon frames by walking/bicycling through four
// Boston-area datasets (downtown, campus, residential, river) at 0.2-0.4 Hz,
// recording GPS position + visible BSSIDs per sample. We reproduce the study
// against a synthetic city: a serpentine trajectory through each labeled
// survey region samples a *beacon population* of radios placed inside
// building footprints, with a per-radio visibility radius drawn from an
// area-dependent lognormal (open riverbanks propagate farther than a cluttered
// campus — this is what produces the paper's spread medians of 168 m vs 54 m).
//
// The beacon population is denser than the CityMesh AP mesh: a survey hears
// every radio, not just mesh participants.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "geo/rng.hpp"
#include "osmx/building.hpp"

namespace citymesh::measure {

using BeaconId = std::uint32_t;

/// One GPS sample: where we stood and which radios we heard.
struct Measurement {
  geo::Point location;
  double time_s = 0.0;
  std::vector<BeaconId> visible;  ///< sorted ascending
};

/// All samples collected in one survey area (one row of Table 1).
struct SurveyDataset {
  std::string name;
  osmx::AreaType area = osmx::AreaType::kOther;
  std::vector<Measurement> measurements;

  std::size_t measurement_count() const { return measurements.size(); }
  std::size_t unique_aps() const;
};

/// Per-area propagation/trajectory parameters.
struct AreaParams {
  std::size_t target_samples = 500;   ///< Table-1 measurement count to mimic
  double visibility_mean_m = 55.0;    ///< lognormal median of radio visibility
  double visibility_sigma = 0.35;     ///< lognormal sigma (log-space)
};

struct SurveyConfig {
  /// Beacon radios per m^2 of footprint (denser than the mesh density).
  double beacon_density_per_m2 = 1.0 / 35.0;
  /// Sampling frequency band (paper: 0.2-0.4 Hz) and movement speed.
  double sample_hz_min = 0.2;
  double sample_hz_max = 0.4;
  double speed_mps = 2.5;  ///< mix of walking and bicycling
  /// Serpentine pass spacing within the survey region.
  double pass_spacing_m = 60.0;
  std::unordered_map<osmx::AreaType, AreaParams> areas = {
      {osmx::AreaType::kDowntown, {2691, 68.0, 0.40}},
      {osmx::AreaType::kCampus, {726, 30.0, 0.30}},
      {osmx::AreaType::kResidential, {461, 52.0, 0.35}},
      {osmx::AreaType::kRiver, {550, 90.0, 0.45}},
  };
  std::uint64_t seed = 42;
};

/// The radios a survey can hear: position + per-radio visibility radius.
struct BeaconPopulation {
  std::vector<geo::Point> positions;
  std::vector<double> visibility_m;
  std::vector<osmx::AreaType> area;  ///< area type of the hosting building
};

/// Place the beacon population for a city.
BeaconPopulation place_beacons(const osmx::City& city, const SurveyConfig& config);

/// Run the survey over every configured region of the city; one dataset per
/// region with a matching AreaType.
std::vector<SurveyDataset> run_survey(const osmx::City& city, const SurveyConfig& config);

/// Aggregate "all" row of Table 1.
SurveyDataset merge_datasets(const std::vector<SurveyDataset>& datasets);

}  // namespace citymesh::measure
