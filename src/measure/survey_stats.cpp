#include "measure/survey_stats.hpp"

#include <algorithm>
#include <unordered_map>

#include "geo/geometry.hpp"

namespace citymesh::measure {

std::vector<double> macs_per_measurement(const SurveyDataset& dataset) {
  std::vector<double> out;
  out.reserve(dataset.measurements.size());
  for (const auto& m : dataset.measurements) {
    out.push_back(static_cast<double>(m.visible.size()));
  }
  return out;
}

std::vector<double> spread_per_ap(const SurveyDataset& dataset) {
  std::unordered_map<BeaconId, std::vector<geo::Point>> sightings;
  for (const auto& m : dataset.measurements) {
    for (const BeaconId id : m.visible) sightings[id].push_back(m.location);
  }
  std::vector<double> out;
  out.reserve(sightings.size());
  for (auto& [id, locations] : sightings) {
    out.push_back(geo::max_pairwise_distance(locations));
  }
  return out;
}

std::size_t common_count(const std::vector<BeaconId>& a, const std::vector<BeaconId>& b) {
  std::size_t count = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

std::vector<DistanceBin> common_ap_bins(const SurveyDataset& dataset,
                                        const CommonApConfig& config) {
  const auto& ms = dataset.measurements;
  const std::size_t n = ms.size();
  const std::size_t bin_count =
      static_cast<std::size_t>(std::ceil(config.max_distance_m / config.bin_width_m));
  std::vector<std::vector<double>> per_bin(bin_count);

  auto record_pair = [&](std::size_t i, std::size_t j) {
    const double d = geo::distance(ms[i].location, ms[j].location);
    if (d >= config.max_distance_m) return;
    const auto bin = static_cast<std::size_t>(d / config.bin_width_m);
    per_bin[bin].push_back(static_cast<double>(common_count(ms[i].visible, ms[j].visible)));
  };

  const std::size_t total_pairs = n > 1 ? n * (n - 1) / 2 : 0;
  if (total_pairs <= config.max_pairs) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) record_pair(i, j);
    }
  } else {
    geo::Rng rng{config.seed};
    for (std::size_t k = 0; k < config.max_pairs; ++k) {
      const std::size_t i = rng.uniform_int(n);
      std::size_t j = rng.uniform_int(n);
      while (j == i) j = rng.uniform_int(n);
      record_pair(i, j);
    }
  }

  std::vector<DistanceBin> bins;
  bins.reserve(bin_count);
  for (std::size_t b = 0; b < bin_count; ++b) {
    DistanceBin bin;
    bin.lo_m = static_cast<double>(b) * config.bin_width_m;
    bin.hi_m = bin.lo_m + config.bin_width_m;
    bin.pair_count = per_bin[b].size();
    if (!per_bin[b].empty()) {
      bin.q10 = geo::quantile(per_bin[b], 0.10);
      bin.q25 = geo::quantile(per_bin[b], 0.25);
      bin.q50 = geo::quantile(per_bin[b], 0.50);
      bin.q75 = geo::quantile(per_bin[b], 0.75);
      bin.q100 = geo::quantile(per_bin[b], 1.00);
    }
    bins.push_back(bin);
  }
  return bins;
}

}  // namespace citymesh::measure
