#include "qfgeo/qfgeo.hpp"

#include <algorithm>

namespace citymesh::qfgeo {

namespace {

/// Candidate inflation for the grid pre-filter, mirroring
/// core/compiled_message: the exact ellipse test decides membership, the
/// bounding-box query only has to be a superset, so a small margin absorbs
/// floating-point disagreement at the boundary.
constexpr double kBoundsMargin = 1e-3;

}  // namespace

Region make_region(geo::Point src, geo::Point dst, const RegionConfig& config) {
  Region region;
  region.src = src;
  region.dst = dst;
  const double d = geo::distance(src, dst);
  region.threshold_m = std::max(config.stretch * d, d + 2.0 * config.slack_m);
  return region;
}

std::unordered_set<std::uint32_t> region_members(const Region& region,
                                                 const geo::SpatialGrid& grid) {
  std::unordered_set<std::uint32_t> members;
  for (const std::uint32_t id :
       grid.query_rect(region.bounds().expanded(kBoundsMargin))) {
    if (region.contains(grid.position(id))) members.insert(id);
  }
  return members;
}

double forward_delay(const ForwarderConfig& config, double my_dist_m,
                     double from_dist_m, std::size_t queued) {
  // Progress in meters toward the destination, normalized by one radio hop:
  // 1 = a full hop of progress (earliest election), 0 = none (latest).
  // Meter-normalized spacing is what lets the winner's transmission
  // overhear-cancel runners-up: receivers a few meters apart in progress are
  // milliseconds apart in time, not microseconds. Clamped so a receiver
  // marginally farther than the transmitter (callers shouldn't pass one)
  // still gets a finite delay.
  const double norm = config.progress_norm_m > 0.0 ? config.progress_norm_m : 1.0;
  const double progress = std::clamp((from_dist_m - my_dist_m) / norm, 0.0, 1.0);
  const double spread = std::max(0.0, config.max_delay_s - config.base_delay_s);
  return config.base_delay_s + spread * (1.0 - progress) +
         config.capacity_penalty_s * static_cast<double>(queued);
}

}  // namespace citymesh::qfgeo
