// QF-Geo: capacity-aware bounded-region geographic routing (src/qfgeo).
//
// The paper's §5 claim — conduit-scoped flooding beats classical mesh
// routing at city scale — needs a live competitor, not just the static
// graph baselines in routing/baselines. QF-Geo (arXiv 2305.05718) is the
// structurally closest published relative of conduits: instead of flooding
// a corridor around a *planned* building route, it floods nothing at all —
// packets are forwarded greedily by distance to the destination, but only
// by nodes inside a *bounded forwarding region* (an ellipse/lens between
// source and destination, widened by a stretch factor), and each forwarding
// election is penalized by the candidate's queue occupancy (capacity
// awareness).
//
// This module is the protocol's pure-geometry/pure-arithmetic half, kept
// below core in the dependency order (core wires it into the simulator):
//
//   Region        the bounded forwarding region: an ellipse with foci at
//                 the source and destination points. p is inside iff
//                 d(p,src) + d(p,dst) <= threshold, with
//                 threshold = max(stretch * d(src,dst), d(src,dst) + 2*slack)
//                 — the stretch term widens long routes proportionally, the
//                 slack term gives short routes a usable region at all
//                 (a pure stretch factor collapses to the chord as d -> 0).
//
//   region_members  the compile-once membership set: building/point ids
//                 whose position lies inside the region, found by querying
//                 a SpatialGrid over the region's bounding box and refining
//                 with the exact ellipse test — the same
//                 grid-prefilter-then-exact-predicate shape as
//                 core::compile_message, so the per-reception membership
//                 check stays one hash lookup.
//
//   forward_delay  the greedy election: receiver-side contention-based
//                 forwarding (GeRaF/BLR style). Every in-region receiver
//                 that makes progress toward the destination arms a
//                 deterministic timer; receivers closer to the destination
//                 fire earlier, and each queued packet at the receiver adds
//                 a capacity penalty, so a congested best-positioned AP
//                 yields to an idle slightly-worse one. No RNG draws —
//                 the delay is a pure function of (geometry, queue depth),
//                 which keeps tiled (src/shardx) runs shard-invariant.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "geo/geometry.hpp"
#include "geo/spatial_grid.hpp"

namespace citymesh::qfgeo {

/// Shape parameters of the bounded forwarding region.
struct RegionConfig {
  /// Ellipse sum threshold as a multiple of the src-dst distance. 1.0 is
  /// the degenerate chord; QF-Geo's evaluation uses small stretches so the
  /// region hugs the straight line.
  double stretch = 1.25;
  /// Minimum widening in meters: threshold >= d + 2 * slack_m, so nearby
  /// pairs still get a region wider than one building.
  double slack_m = 60.0;
};

/// The bounded forwarding region between one source/destination pair.
/// Immutable after make_region; contains() is allocation-free.
struct Region {
  geo::Point src;
  geo::Point dst;
  /// Focal-sum threshold: p inside iff d(p,src) + d(p,dst) <= threshold_m.
  double threshold_m = 0.0;

  bool contains(geo::Point p) const {
    return geo::distance(p, src) + geo::distance(p, dst) <= threshold_m;
  }

  /// Loose axis-aligned bounds (a superset of the ellipse): every interior
  /// point lies within the semi-major axis a = threshold/2 of the center in
  /// each coordinate.
  geo::Rect bounds() const {
    const double a = threshold_m / 2.0;
    const geo::Point c{(src.x + dst.x) / 2.0, (src.y + dst.y) / 2.0};
    return geo::Rect{{c.x - a, c.y - a}, {c.x + a, c.y + a}};
  }
};

Region make_region(geo::Point src, geo::Point dst, const RegionConfig& config);

/// Ids (grid point indices — building ids when the grid indexes building
/// centroids) whose position lies inside the region: grid candidates over
/// the loose bounds, refined by the exact ellipse predicate.
std::unordered_set<std::uint32_t> region_members(const Region& region,
                                                 const geo::SpatialGrid& grid);

/// Greedy forwarding-election timing.
struct ForwarderConfig {
  /// Delay floor: even the best-positioned receiver waits this long, giving
  /// the medium a window to surface competing copies for overhear-cancel.
  double base_delay_s = 0.002;
  /// Delay ceiling for a receiver that made (almost) no progress. The
  /// receiver's *progress in meters* interpolates between max (no progress)
  /// and base (progress >= progress_norm_m). Normalizing by meters of
  /// progress — not by the remaining-distance ratio — is what makes the
  /// election discriminate: two receivers 5 m apart in progress are spaced
  /// (max - base) * 5 / progress_norm_m apart in time, enough for the
  /// winner's transmission to overhear-cancel the runner-up before it fires.
  double max_delay_s = 0.2;
  /// Progress that earns the minimum delay; the transmission range is the
  /// natural scale (no receiver can progress further than one radio hop).
  double progress_norm_m = 50.0;
  /// Capacity awareness — each packet sitting in the receiver's transmit
  /// queue pushes its election back by this much, so congested APs lose the
  /// election to idle ones (QF-Geo's queue-length penalty).
  double capacity_penalty_s = 0.004;
};

/// Deterministic election delay for one in-region receiver that made
/// positive progress. `my_dist_m`/`from_dist_m` are the receiver's and the
/// transmitter's distances to the destination (my_dist_m < from_dist_m);
/// `queued` is the receiver's current transmit-queue depth.
double forward_delay(const ForwarderConfig& config, double my_dist_m,
                     double from_dist_m, std::size_t queued);

}  // namespace citymesh::qfgeo
