#include "relayx/policy.hpp"

#include <array>
#include <cmath>
#include <string>

#include "geo/point.hpp"

namespace citymesh::relayx {

namespace {

struct KindName {
  PolicyKind kind;
  std::string_view name;
};

constexpr std::array<KindName, 4> kKindNames{{
    {PolicyKind::kFlood, "flood"},
    {PolicyKind::kBuildingBackoff, "building-backoff"},
    {PolicyKind::kCounterGossip, "counter-gossip"},
    {PolicyKind::kEtxPriority, "etx-priority"},
}};

/// Deterministic per-AP stream seed: mixes (seed, ap) through splitmix64 so
/// neighboring AP ids get uncorrelated streams.
std::uint64_t stream_seed(std::uint64_t seed, mesh::ApId ap) {
  std::uint64_t sm = seed ^ (0x9e3779b97f4a7c15ULL * (std::uint64_t{ap} + 1));
  return geo::splitmix64(sm);
}

std::vector<geo::Rng> make_streams(std::uint64_t seed, std::size_t ap_count) {
  std::vector<geo::Rng> streams;
  streams.reserve(ap_count);
  for (std::size_t ap = 0; ap < ap_count; ++ap) {
    streams.emplace_back(stream_seed(seed, static_cast<mesh::ApId>(ap)));
  }
  return streams;
}

/// Overheard copy from a sibling AP of the same building, close enough that
/// its transmission covers (nearly) the same area as ours would.
bool same_building_nearby(const mesh::ApNetwork& aps, const Reception& rx,
                          double radius_m) {
  const mesh::AccessPoint& self = aps.ap(rx.ap);
  const mesh::AccessPoint& peer = aps.ap(rx.from);
  return peer.building == self.building &&
         geo::distance(peer.position, self.position) <= radius_m;
}

// ------------------------------------------------------------------ flood ---

/// The paper's behavior: every elected AP relays immediately. No RNG draws,
/// no timers, no counters touched — byte-identical manifests to the
/// pre-relayx pipeline.
class FloodPolicy final : public RebroadcastPolicy {
 public:
  using RebroadcastPolicy::RebroadcastPolicy;

  Decision elect(const Reception&) override { return {Decision::Kind::kRelayNow, 0.0}; }
  bool cancel_on_overhear(const Reception&, std::uint32_t) override { return false; }
};

// ------------------------------------------------------- building-backoff ---

/// Random backoff; cancel on an overheard same-building copy within the
/// suppress radius. Promoted from the former inline
/// NetworkConfig::building_suppression path — draws come from one shared
/// stream seeded with the network seed, in election order, reproducing the
/// legacy draw sequence exactly (bench/ablation_suppression rows are
/// byte-equivalent).
class BuildingBackoffPolicy final : public RebroadcastPolicy {
 public:
  BuildingBackoffPolicy(const PolicyConfig& config, const mesh::ApNetwork& aps)
      : RebroadcastPolicy(config), aps_(aps), rng_(config.seed) {
    // Per-AP streams (config.per_ap_streams): each AP draws from its own
    // deterministic stream, so the draw an election makes depends only on
    // which AP elects for the how-many-th time — not on the global election
    // order, which tiled execution (src/shardx) makes shard-count-dependent.
    if (config.per_ap_streams) streams_ = make_streams(config.seed, aps.ap_count());
  }

  Decision elect(const Reception& rx) override {
    count_scheduled();
    geo::Rng& rng = streams_.empty() ? rng_ : streams_[rx.ap];
    return {Decision::Kind::kDelay, rng.uniform(0.0, config_.backoff_s)};
  }

  bool cancel_on_overhear(const Reception& rx, std::uint32_t) override {
    if (!same_building_nearby(aps_, rx, config_.suppress_radius_m)) return false;
    count_cancelled();
    return true;
  }

 private:
  const mesh::ApNetwork& aps_;
  geo::Rng rng_;  ///< shared backoff stream (legacy message_rng_ order)
  std::vector<geo::Rng> streams_;  ///< per-AP streams (per_ap_streams only)
};

// --------------------------------------------------------- counter-gossip ---

/// Classic counter-based gossip: relay with probability gossip_p; while the
/// backoff runs, cancel after cancel_copies overheard duplicates from
/// *anywhere* (the neighborhood is already saturated). Building-blind — it
/// needs no placement ground truth at all.
class CounterGossipPolicy final : public RebroadcastPolicy {
 public:
  CounterGossipPolicy(const PolicyConfig& config, const mesh::ApNetwork& aps)
      : RebroadcastPolicy(config),
        streams_(make_streams(config.seed, aps.ap_count())) {}

  Decision elect(const Reception& rx) override {
    geo::Rng& rng = streams_[rx.ap];
    if (config_.gossip_p < 1.0 && !rng.chance(config_.gossip_p)) {
      count_cancelled();
      return {Decision::Kind::kSuppress, 0.0};
    }
    count_scheduled();
    return {Decision::Kind::kDelay, rng.uniform(0.0, config_.backoff_s)};
  }

  bool cancel_on_overhear(const Reception&, std::uint32_t overheard) override {
    if (overheard < config_.cancel_copies) return false;
    count_cancelled();
    return true;
  }

 private:
  std::vector<geo::Rng> streams_;  ///< one stream per AP
};

// ----------------------------------------------------------- etx-priority ---

/// SignalRouting-style role priority from accumulated link quality. Every
/// reception bumps a per-directed-link counter (CSR-aligned with the AP
/// graph, so the update is a bounded neighbor scan); an AP's relay score is
/// the saturating sum of its links' delivery estimates c/(c+1) — many
/// well-heard links mark a hub that bridges coverage. High-score APs draw
/// shorter backoffs and tend to fire first; of the rest, only other
/// well-heard APs cancel on the overheard copies (same-building rule or
/// cancel_copies duplicates) while poorly-heard periphery always fires.
/// Before any traffic has been observed every score is zero and the policy
/// degrades to a plain random backoff — estimates sharpen as the run
/// progresses.
class EtxPriorityPolicy final : public RebroadcastPolicy {
 public:
  // The per-directed-link tables are indexed by the topology CSR's own
  // edge_offset(), so the policy carries no duplicate offset array — its
  // rows align one-to-one with the graph's packed adjacency.
  EtxPriorityPolicy(const PolicyConfig& config, const mesh::ApNetwork& aps)
      : RebroadcastPolicy(config),
        aps_(aps),
        streams_(make_streams(config.seed, aps.ap_count())) {
    rx_counts_.assign(aps.graph().directed_edge_count(), 0.0);
    last_rx_s_.assign(aps.graph().directed_edge_count(), 0.0);
  }

  void observe(const Reception& rx) override {
    const graphx::Graph& graph = aps_.graph();
    const auto links = graph.neighbors(rx.ap).ids();
    for (std::size_t i = 0; i < links.size(); ++i) {
      if (links[i] != rx.from) continue;
      const std::size_t slot = graph.edge_offset(rx.ap) + i;
      // Lazy exponential decay: age the accumulated mass to `now`, then add
      // this reception. Commutative for equal-time receptions, so the
      // estimate is a pure function of the link's reception *times*, never
      // of event-processing order (shard-count invariance, src/shardx).
      rx_counts_[slot] = aged(rx_counts_[slot], last_rx_s_[slot], rx.now_s) + 1.0;
      last_rx_s_[slot] = rx.now_s;
      count_etx_update();
      return;
    }
  }

  Decision elect(const Reception& rx) override {
    count_scheduled();
    const double s = score(rx.ap, rx.now_s);
    const double quality = s / (s + config_.etx_pivot);
    // Priority shapes a quarter of the window, jitter the rest: enough skew
    // that hubs fire earlier on average, enough randomness that a
    // peripheral bridge AP is not deterministically last (it would soak up
    // overheard copies until cancelled and the flood would never leave its
    // cluster — heavier skews measurably cost deliverability in fig11).
    const double unit = (1.0 - quality) * 0.25 + streams_[rx.ap].uniform() * 0.75;
    return {Decision::Kind::kDelay, config_.backoff_s * unit};
  }

  bool cancel_on_overhear(const Reception& rx, std::uint32_t overheard) override {
    // Only *well-heard* APs cancel at all. The priority backoff makes
    // low-quality APs wait longer on average, so a copy count that silences
    // them too strands the flood exactly at the cluster exits they guard —
    // they always fire (possibly redundantly; that residue is the price of
    // keeping the frontier alive).
    const double s = score(rx.ap, rx.now_s);
    const double quality = s / (s + config_.etx_pivot);
    if (quality < 0.5) return false;
    if (overheard < config_.cancel_copies &&
        !same_building_nearby(aps_, rx, config_.suppress_radius_m)) {
      return false;
    }
    count_cancelled();
    return true;
  }

 private:
  /// A link count aged from its last-update time to `now`; identity when
  /// decay is off or time has not advanced.
  double aged(double count, double last_s, double now_s) const {
    if (config_.decay_half_life_s <= 0.0 || count == 0.0 || now_s <= last_s)
      return count;
    return count * std::exp2(-(now_s - last_s) / config_.decay_half_life_s);
  }

  /// Saturating link-quality mass of one AP at time `now_s`: sum of c/(c+1)
  /// over its links, with each c aged to now (read-only; observe() owns the
  /// stored values).
  double score(mesh::ApId ap, double now_s) const {
    const graphx::Graph& graph = aps_.graph();
    const std::size_t begin = graph.edge_offset(ap);
    const std::size_t end = graph.edge_offset(ap + 1);
    double total = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const double c = aged(rx_counts_[i], last_rx_s_[i], now_s);
      total += c / (c + 1.0);
    }
    return total;
  }

  const mesh::ApNetwork& aps_;
  std::vector<geo::Rng> streams_;
  std::vector<double> rx_counts_;  ///< per directed link (ap <- from), CSR order
  std::vector<double> last_rx_s_;  ///< last reception time per link
};

}  // namespace

std::string_view to_string(PolicyKind kind) {
  for (const auto& kn : kKindNames) {
    if (kn.kind == kind) return kn.name;
  }
  return "unknown";
}

std::optional<PolicyKind> policy_kind_from(std::string_view name) {
  for (const auto& kn : kKindNames) {
    if (kn.name == name) return kn.kind;
  }
  return std::nullopt;
}

RebroadcastPolicy::RebroadcastPolicy(const PolicyConfig& config) : config_(config) {
  scheduled_ = &own_.counter("scheduled");
  cancelled_ = &own_.counter("cancelled");
  fired_ = &own_.counter("fired");
  etx_updates_ = &own_.counter("etx_updates");
}

RebroadcastPolicy::~RebroadcastPolicy() = default;

void RebroadcastPolicy::bind_metrics(obsx::MetricsRegistry& registry,
                                     std::string_view prefix) {
  const std::string p{prefix};
  scheduled_ = &registry.counter(p + ".scheduled");
  cancelled_ = &registry.counter(p + ".cancelled");
  fired_ = &registry.counter(p + ".fired");
  etx_updates_ = &registry.counter(p + ".etx_updates");
}

std::unique_ptr<RebroadcastPolicy> make_policy(const PolicyConfig& config,
                                               const mesh::ApNetwork& aps) {
  switch (config.kind) {
    case PolicyKind::kBuildingBackoff:
      return std::make_unique<BuildingBackoffPolicy>(config, aps);
    case PolicyKind::kCounterGossip:
      return std::make_unique<CounterGossipPolicy>(config, aps);
    case PolicyKind::kEtxPriority:
      return std::make_unique<EtxPriorityPolicy>(config, aps);
    case PolicyKind::kFlood:
      break;
  }
  return std::make_unique<FloodPolicy>(config);
}

}  // namespace citymesh::relayx
