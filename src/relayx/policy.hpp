// Pluggable rebroadcast-suppression policies (src/relayx).
//
// The paper concedes a 13x median transmission overhead from naive conduit
// flooding ("currently all the APs within a building rebroadcast ... we are
// confident that this overhead can be reduced"). This module is that
// reduction, behind a strategy interface: core::CityMeshNetwork consults a
// RebroadcastPolicy at the exact point where the compiled-message membership
// check used to trigger an unconditional rebroadcast, and the policy answers
// relay-now / relay-after-backoff / don't-relay. While a delayed rebroadcast
// is pending, every overheard duplicate is reported back and the policy may
// cancel the timer — coordinated relay election in the style of Meshtastic's
// SignalRouting (SNIPPETS.md snippet 3) and the authors' follow-up scalable-
// routing work (arXiv 2504.06406).
//
// Shipped policies:
//   flood            the paper's behavior: relay immediately, never cancel.
//                    Draws no randomness and emits no events — run manifests
//                    stay byte-identical to the pre-relayx pipeline (the
//                    golden digest gate verifies this).
//   building-backoff random backoff, cancel when a copy is overheard from an
//                    AP of the same building within suppress_radius_m (the
//                    former NetworkConfig::building_suppression path,
//                    promoted from bench/ablation_suppression.cpp).
//   counter-gossip   probabilistic rebroadcast (probability gossip_p) plus a
//                    copy counter: cancel after cancel_copies overheard
//                    duplicates inside the backoff window, building-blind.
//   etx-priority     ETX-style per-link delivery estimates accumulated from
//                    observed receptions; APs with more well-heard links are
//                    better-positioned relays and draw *shorter* backoffs
//                    (role priority), so they fire first and silence the
//                    redundant rest. Cancels like counter-gossip plus the
//                    same-building rule.
//
// Cost discipline: every per-decision path (observe / elect /
// cancel_on_overhear) is allocation-free — fixed per-AP and per-link arrays
// sized at construction, per-AP RNG streams seeded deterministically from
// (seed, ap). bench/micro_bench measures the flood and etx-priority decision
// cost. Counters (relayx.scheduled/cancelled/fired/etx_updates) live in the
// policy's own registry until bind_metrics() repoints them, following
// core::MessageCompiler's precedent: the network binds them only for
// non-flood policies so flood manifests serialize exactly the legacy key
// set.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "geo/rng.hpp"
#include "mesh/ap_network.hpp"
#include "obsx/metrics.hpp"

namespace citymesh::relayx {

enum class PolicyKind : std::uint8_t {
  kFlood,
  kBuildingBackoff,
  kCounterGossip,
  kEtxPriority,
};

/// Canonical CLI/spec name ("flood", "building-backoff", ...).
std::string_view to_string(PolicyKind kind);
std::optional<PolicyKind> policy_kind_from(std::string_view name);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kFlood;
  /// Maximum random backoff before an elected rebroadcast airs.
  double backoff_s = 0.02;
  /// Same-building overhear-cancel radius (building-backoff, etx-priority):
  /// an overheard copy from a sibling AP closer than this covers (nearly)
  /// the same area, so the pending copy is redundant. Without the radius a
  /// badly placed sibling can silence the one AP positioned to bridge to
  /// the next building and kill the flood.
  double suppress_radius_m = 15.0;
  /// Overheard-duplicate count that cancels a pending rebroadcast
  /// (counter-gossip, etx-priority). Counter-based gossip needs a high
  /// threshold in a narrow conduit: each overheard copy may come from
  /// *behind* the flood frontier, so small thresholds silence the APs that
  /// would push it forward and reachability collapses (the classic
  /// counter-scheme result — at 2 copies deliverability drops to 0.25).
  /// 5 keeps the fig11 deliverability loss within ~1pp of flood while still
  /// cutting the median overhead >= 3x.
  std::uint32_t cancel_copies = 5;
  /// Probability an elected AP rebroadcasts at all (counter-gossip).
  /// Default 1.0: the copy counter is the better-informed suppressor;
  /// lowering p trades deliverability for overhead blindly (a suppressed AP
  /// may be the only bridge out of its cluster).
  double gossip_p = 1.0;
  /// Link-quality mass at which the etx-priority backoff scaling halves:
  /// score/(score+pivot) with score = sum over incident links of c/(c+1)
  /// reception counts.
  double etx_pivot = 2.0;
  /// Half-life, seconds, of the etx-priority link-quality counts. With
  /// decay on, each count ages as c * 2^(-(now - last_rx)/half_life), so a
  /// link that fell silent (faultx churn: its AP went down, the region
  /// degraded) stops looking well-heard within a few half-lives instead of
  /// coasting on stale mass forever. 0 (default) disables decay — counts
  /// only grow, the pre-decay behavior exactly.
  double decay_half_life_s = 0.0;
  /// Building-backoff draw streams. false (default): one shared stream
  /// consumed in election order — the legacy draw sequence, byte-identical
  /// manifests. true: an independent deterministic stream per AP, required
  /// under tiled execution (src/shardx) where the global election order is
  /// shard-count-dependent but each AP's own election sequence is not.
  bool per_ap_streams = false;
  /// Base seed of the per-AP RNG streams (the network passes its own seed
  /// so policy draws follow the run's determinism contract).
  std::uint64_t seed = 99;
};

/// One physical reception, as the policy sees it.
struct Reception {
  mesh::ApId ap = 0;                ///< receiver (the AP deciding)
  mesh::ApId from = 0;              ///< transmitter it heard
  std::uint32_t message_id = 0;
  double now_s = 0.0;               ///< simulated time
};

/// A policy's answer to "this AP passed the membership check".
struct Decision {
  enum class Kind : std::uint8_t {
    kRelayNow,   ///< transmit immediately (flood)
    kDelay,      ///< arm a backoff timer for delay_s, cancelable on overhear
    kSuppress,   ///< do not relay at all (probabilistic gossip drop)
  };
  Kind kind = Kind::kRelayNow;
  double delay_s = 0.0;  ///< valid when kind == kDelay
};

/// Strategy interface. One instance per network; the network serializes all
/// calls (single-threaded event loop), so implementations keep plain state.
class RebroadcastPolicy {
 public:
  explicit RebroadcastPolicy(const PolicyConfig& config);
  virtual ~RebroadcastPolicy();

  RebroadcastPolicy(const RebroadcastPolicy&) = delete;
  RebroadcastPolicy& operator=(const RebroadcastPolicy&) = delete;

  PolicyKind kind() const { return config_.kind; }
  std::string_view name() const { return to_string(config_.kind); }
  const PolicyConfig& config() const { return config_; }

  /// Every non-malformed reception, duplicates included — the link-quality
  /// observation hook (etx-priority accumulates its per-link estimates
  /// here). Must be allocation-free; default no-op.
  virtual void observe(const Reception& rx) { (void)rx; }

  /// First accepted copy at an AP the membership check elected: decide how
  /// (whether) to relay. Called once per (message, ap).
  virtual Decision elect(const Reception& rx) = 0;

  /// A duplicate arrived while this AP's rebroadcast is pending.
  /// `overheard_copies` counts duplicates seen since the timer was armed
  /// (including this one). Return true to cancel the pending transmission.
  virtual bool cancel_on_overhear(const Reception& rx,
                                  std::uint32_t overheard_copies) = 0;

  /// The network reports a backoff timer that fired and transmitted.
  void count_fired() { fired_->inc(); }

  /// Repoint the counters into `registry` under `<prefix>.*`. The registry
  /// must outlive the policy. Left unbound (flood), they stay in the
  /// policy's own registry and out of run manifests.
  void bind_metrics(obsx::MetricsRegistry& registry, std::string_view prefix = "relayx");

  /// Current counter values (whichever registry they live in).
  std::uint64_t scheduled() const { return scheduled_->value(); }
  std::uint64_t cancelled() const { return cancelled_->value(); }
  std::uint64_t fired() const { return fired_->value(); }
  std::uint64_t etx_updates() const { return etx_updates_->value(); }

 protected:
  void count_scheduled() { scheduled_->inc(); }
  void count_cancelled() { cancelled_->inc(); }
  void count_etx_update() { etx_updates_->inc(); }

  PolicyConfig config_;

 private:
  obsx::MetricsRegistry own_;  ///< fallback registry until bind_metrics()
  obsx::Counter* scheduled_ = nullptr;    ///< rebroadcasts deferred on a timer
  obsx::Counter* cancelled_ = nullptr;    ///< suppressed before airing
  obsx::Counter* fired_ = nullptr;        ///< deferred rebroadcasts that aired
  obsx::Counter* etx_updates_ = nullptr;  ///< link-estimate updates
};

/// Build the configured policy over a city's realized AP placement. The
/// ApNetwork must outlive the policy (the network owns both via its shared
/// CompiledCity).
std::unique_ptr<RebroadcastPolicy> make_policy(const PolicyConfig& config,
                                               const mesh::ApNetwork& aps);

}  // namespace citymesh::relayx
