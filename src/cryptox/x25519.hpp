// X25519 Diffie-Hellman over Curve25519 (RFC 7748).
//
// Self-certifying CityMesh identities are X25519 key pairs: the postbox id
// is SHA-256 of the public key, and sealed messages derive their symmetric
// key from an ephemeral-static X25519 exchange (ECIES-style, see
// sealed.hpp). Field arithmetic uses 5x51-bit limbs with 128-bit products
// (the "donna-c64" representation). Verified against the RFC 7748 vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace citymesh::cryptox {

using X25519Key = std::array<std::uint8_t, 32>;

/// Scalar multiplication: out = scalar * point (u-coordinate form).
/// The scalar is clamped per RFC 7748 before use.
X25519Key x25519(const X25519Key& scalar, const X25519Key& u_point);

/// scalar * base point (u = 9); derives a public key from a private key.
X25519Key x25519_base(const X25519Key& scalar);

}  // namespace citymesh::cryptox
