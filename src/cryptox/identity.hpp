// Self-certifying identities (paper §1, "Security").
//
// Each CityMesh principal owns an X25519 key pair. Its *self-certifying id*
// is the SHA-256 hash of the public key: anyone holding the id can verify a
// presented public key offline, with no certificate authority — exactly the
// property the paper wants during an outage. The 32-bit *postbox tag*
// carried in packet headers is the first four bytes of the id.
#pragma once

#include <cstdint>
#include <string>

#include "cryptox/sha256.hpp"
#include "cryptox/x25519.hpp"

namespace citymesh::cryptox {

/// Full 256-bit self-certifying identifier.
struct SelfCertifyingId {
  Digest256 bytes{};

  bool operator==(const SelfCertifyingId&) const = default;

  /// Short tag carried in packet headers (collision-tolerant; the postbox
  /// re-checks the full id from the sealed payload).
  std::uint32_t tag() const {
    return (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
           (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
  }

  std::string hex() const { return to_hex(bytes); }
};

/// Derives the self-certifying id of a public key.
SelfCertifyingId id_of(const X25519Key& public_key);

class KeyPair {
 public:
  /// Deterministic key pair from a seed (simulations must be reproducible;
  /// a deployment would draw the seed from the OS entropy pool instead).
  static KeyPair from_seed(std::uint64_t seed);

  /// Key pair from explicit private-key bytes.
  static KeyPair from_private(const X25519Key& private_key);

  const X25519Key& public_key() const { return public_key_; }
  const X25519Key& private_key() const { return private_key_; }
  const SelfCertifyingId& id() const { return id_; }

  /// X25519 shared secret with a peer public key.
  X25519Key shared_secret(const X25519Key& peer_public) const;

 private:
  KeyPair(X25519Key priv, X25519Key pub)
      : private_key_(priv), public_key_(pub), id_(id_of(pub)) {}

  X25519Key private_key_;
  X25519Key public_key_;
  SelfCertifyingId id_;
};

}  // namespace citymesh::cryptox
