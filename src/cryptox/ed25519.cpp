#include "cryptox/ed25519.hpp"

#include <cstring>

#include "cryptox/fe25519.hpp"
#include "cryptox/sha512.hpp"
#include "geo/rng.hpp"

__extension__ using u128_ed = unsigned __int128;

namespace citymesh::cryptox {

namespace {

using fe::Fe;

// ---- Edwards points in extended homogeneous coordinates (X:Y:Z:T) --------

struct Point {
  Fe x;
  Fe y;
  Fe z;
  Fe t;
};

Point identity() { return {fe::zero(), fe::one(), fe::one(), fe::zero()}; }

Point base_point() { return {fe::kBaseX, fe::kBaseY, fe::one(), fe::kBaseT}; }

// Unified addition (RFC 8032 §5.1.4).
Point add(const Point& p, const Point& q) {
  const Fe a = fe::mul(fe::sub(p.y, p.x), fe::sub(q.y, q.x));
  const Fe b = fe::mul(fe::add(p.y, p.x), fe::add(q.y, q.x));
  const Fe c = fe::mul(fe::mul(p.t, fe::kD2), q.t);
  const Fe d = fe::mul_small(fe::mul(p.z, q.z), 2);
  const Fe e = fe::sub(b, a);
  const Fe f = fe::sub(d, c);
  const Fe g = fe::add(d, c);
  const Fe h = fe::add(b, a);
  return {fe::mul(e, f), fe::mul(g, h), fe::mul(f, g), fe::mul(e, h)};
}

Point dbl(const Point& p) {
  const Fe a = fe::sq(p.x);
  const Fe b = fe::sq(p.y);
  const Fe c = fe::mul_small(fe::sq(p.z), 2);
  const Fe h = fe::add(a, b);
  const Fe e = fe::sub(h, fe::sq(fe::add(p.x, p.y)));
  const Fe g = fe::sub(a, b);
  const Fe f = fe::add(c, g);
  return {fe::mul(e, f), fe::mul(g, h), fe::mul(f, g), fe::mul(e, h)};
}

// scalar (32 bytes little-endian, treated as a plain integer) * point.
Point scalar_mult(const std::array<std::uint8_t, 32>& scalar, const Point& p) {
  Point acc = identity();
  for (int i = 255; i >= 0; --i) {
    acc = dbl(acc);
    if ((scalar[i / 8] >> (i % 8)) & 1) acc = add(acc, p);
  }
  return acc;
}

std::array<std::uint8_t, 32> encode(const Point& p) {
  const Fe zinv = fe::invert(p.z);
  const Fe x = fe::mul(p.x, zinv);
  const Fe y = fe::mul(p.y, zinv);
  auto out = fe::tobytes(y);
  if (fe::is_negative(x)) out[31] |= 0x80;
  return out;
}

// Decompress per RFC 8032 §5.1.3; nullopt for invalid encodings.
std::optional<Point> decode(const std::array<std::uint8_t, 32>& bytes) {
  auto y_bytes = bytes;
  const bool x_sign = (y_bytes[31] & 0x80) != 0;
  y_bytes[31] &= 0x7F;
  const Fe y = fe::frombytes(y_bytes);
  // Reject non-canonical y (>= p). frombytes masks to 255 bits; re-encode
  // and compare to detect values in [p, 2^255).
  if (fe::tobytes(y) != y_bytes) return std::nullopt;

  // x^2 = (y^2 - 1) / (d y^2 + 1)
  const Fe y2 = fe::sq(y);
  const Fe u = fe::sub(y2, fe::one());
  const Fe v = fe::add(fe::mul(fe::kD, y2), fe::one());
  // candidate x = u v^3 (u v^7)^((p-5)/8)
  const Fe v3 = fe::mul(fe::sq(v), v);
  const Fe v7 = fe::mul(fe::sq(v3), v);
  Fe x = fe::mul(fe::mul(u, v3), fe::pow22523(fe::mul(u, v7)));

  const Fe vx2 = fe::mul(v, fe::sq(x));
  if (!fe::equal(vx2, u)) {
    if (fe::equal(vx2, fe::neg(u))) {
      x = fe::mul(x, fe::kSqrtM1);
    } else {
      return std::nullopt;  // not a square: invalid point
    }
  }
  if (fe::is_zero(x) && x_sign) return std::nullopt;  // -0 is non-canonical
  if (fe::is_negative(x) != x_sign) x = fe::neg(x);
  return Point{x, y, fe::one(), fe::mul(x, y)};
}

// ---- Scalar arithmetic modulo L = 2^252 + delta ---------------------------

constexpr std::array<std::uint64_t, 4> kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL,
                                             0x0ULL, 0x1000000000000000ULL};

using Sc = std::array<std::uint64_t, 4>;  // 256-bit little-endian limbs

bool sc_gte(const Sc& a, const Sc& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

void sc_sub_inplace(Sc& a, const Sc& b) {
  u128_ed borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128_ed diff = static_cast<u128_ed>(a[i]) - b[i] - borrow;
    a[i] = static_cast<std::uint64_t>(diff);
    borrow = (diff >> 64) & 1;  // two's-complement borrow
  }
}

/// Reduce an n-byte little-endian integer modulo L via binary long division.
/// Inputs are at most 512 bits; r stays below 2L < 2^254 throughout.
Sc sc_mod(std::span<const std::uint8_t> bytes) {
  Sc r{};
  for (std::size_t i = bytes.size() * 8; i-- > 0;) {
    // r <<= 1
    for (int limb = 3; limb > 0; --limb) {
      r[limb] = (r[limb] << 1) | (r[limb - 1] >> 63);
    }
    r[0] <<= 1;
    r[0] |= (bytes[i / 8] >> (i % 8)) & 1;
    if (sc_gte(r, kL)) sc_sub_inplace(r, kL);
  }
  return r;
}

std::array<std::uint8_t, 32> sc_tobytes(const Sc& s) {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[i * 8 + j] = static_cast<std::uint8_t>(s[i] >> (8 * j));
    }
  }
  return out;
}

Sc sc_frombytes(const std::array<std::uint8_t, 32>& b) {
  Sc s{};
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 8; ++j) {
      s[i] |= static_cast<std::uint64_t>(b[i * 8 + j]) << (8 * j);
    }
  }
  return s;
}

/// (a * b + c) mod L; all inputs already < 2^256.
Sc sc_muladd(const Sc& a, const Sc& b, const Sc& c) {
  // Schoolbook 4x4 multiply into 8 limbs.
  std::array<std::uint64_t, 8> prod{};
  for (int i = 0; i < 4; ++i) {
    u128_ed carry = 0;
    for (int j = 0; j < 4; ++j) {
      carry += static_cast<u128_ed>(a[i]) * b[j] + prod[i + j];
      prod[i + j] = static_cast<std::uint64_t>(carry);
      carry >>= 64;
    }
    prod[i + 4] = static_cast<std::uint64_t>(carry);
  }
  // Add c.
  u128_ed carry = 0;
  for (int i = 0; i < 8; ++i) {
    carry += prod[i];
    if (i < 4) carry += c[i];
    prod[i] = static_cast<std::uint64_t>(carry);
    carry >>= 64;
  }
  // Serialize and reduce.
  std::array<std::uint8_t, 64> bytes;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      bytes[i * 8 + j] = static_cast<std::uint8_t>(prod[i] >> (8 * j));
    }
  }
  return sc_mod(bytes);
}

std::array<std::uint8_t, 32> hash_mod_l(std::span<const std::uint8_t> a,
                                        std::span<const std::uint8_t> b,
                                        std::span<const std::uint8_t> c) {
  Sha512 h;
  h.update(a);
  h.update(b);
  h.update(c);
  const Digest512 digest = h.finish();
  return sc_tobytes(sc_mod(digest));
}

struct ExpandedSecret {
  std::array<std::uint8_t, 32> scalar;  // clamped s
  std::array<std::uint8_t, 32> prefix;
};

ExpandedSecret expand(const Ed25519Seed& seed) {
  const Digest512 h = Sha512::hash(seed);
  ExpandedSecret out;
  std::memcpy(out.scalar.data(), h.data(), 32);
  std::memcpy(out.prefix.data(), h.data() + 32, 32);
  out.scalar[0] &= 248;
  out.scalar[31] &= 63;
  out.scalar[31] |= 64;
  return out;
}

}  // namespace

Ed25519KeyPair Ed25519KeyPair::from_seed_bytes(const Ed25519Seed& seed) {
  Ed25519KeyPair kp;
  kp.seed_ = seed;
  const ExpandedSecret secret = expand(seed);
  kp.public_key_ = encode(scalar_mult(secret.scalar, base_point()));
  return kp;
}

Ed25519KeyPair Ed25519KeyPair::from_seed(std::uint64_t seed) {
  geo::Rng rng{seed ^ 0xED25519ULL};
  Ed25519Seed bytes{};
  for (std::size_t i = 0; i < bytes.size(); i += 8) {
    const std::uint64_t word = rng.next();
    for (std::size_t j = 0; j < 8; ++j) {
      bytes[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return from_seed_bytes(bytes);
}

Ed25519Signature Ed25519KeyPair::sign(std::span<const std::uint8_t> message) const {
  const ExpandedSecret secret = expand(seed_);

  // r = H(prefix || M) mod L;  R = rB.
  Sha512 hr;
  hr.update(secret.prefix);
  hr.update(message);
  const auto r = sc_tobytes(sc_mod(hr.finish()));
  const auto r_enc = encode(scalar_mult(r, base_point()));

  // k = H(R || A || M) mod L;  S = (r + k*s) mod L.
  const auto k = hash_mod_l(r_enc, public_key_, message);
  const Sc s_scalar = sc_frombytes(secret.scalar);
  const Sc big_s = sc_muladd(sc_frombytes(k), s_scalar, sc_frombytes(r));

  Ed25519Signature sig{};
  std::memcpy(sig.data(), r_enc.data(), 32);
  const auto s_bytes = sc_tobytes(big_s);
  std::memcpy(sig.data() + 32, s_bytes.data(), 32);
  return sig;
}

Ed25519Signature Ed25519KeyPair::sign(std::string_view message) const {
  return sign(std::span{reinterpret_cast<const std::uint8_t*>(message.data()),
                        message.size()});
}

bool ed25519_verify(const Ed25519PublicKey& public_key,
                    std::span<const std::uint8_t> message,
                    const Ed25519Signature& signature) {
  std::array<std::uint8_t, 32> r_enc;
  std::array<std::uint8_t, 32> s_bytes;
  std::memcpy(r_enc.data(), signature.data(), 32);
  std::memcpy(s_bytes.data(), signature.data() + 32, 32);

  // S must be canonical (< L).
  const Sc s = sc_frombytes(s_bytes);
  if (sc_gte(s, kL)) return false;

  const auto a_point = decode(public_key);
  if (!a_point) return false;
  const auto r_point = decode(r_enc);
  if (!r_point) return false;

  const auto k = hash_mod_l(r_enc, public_key, message);

  // Check S*B == R + k*A (cofactorless variant; fine for honestly generated
  // keys, which is all the simulation produces).
  const Point lhs = scalar_mult(s_bytes, base_point());
  const Point rhs = add(*r_point, scalar_mult(k, *a_point));
  return encode(lhs) == encode(rhs);
}

bool ed25519_verify(const Ed25519PublicKey& public_key, std::string_view message,
                    const Ed25519Signature& signature) {
  return ed25519_verify(
      public_key,
      std::span{reinterpret_cast<const std::uint8_t*>(message.data()), message.size()},
      signature);
}

}  // namespace citymesh::cryptox
