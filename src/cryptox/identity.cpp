#include "cryptox/identity.hpp"

#include "geo/rng.hpp"

namespace citymesh::cryptox {

SelfCertifyingId id_of(const X25519Key& public_key) {
  return {Sha256::hash(public_key)};
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
  geo::Rng rng{seed};
  X25519Key priv{};
  for (std::size_t i = 0; i < priv.size(); i += 8) {
    const std::uint64_t word = rng.next();
    for (std::size_t j = 0; j < 8; ++j) {
      priv[i + j] = static_cast<std::uint8_t>(word >> (8 * j));
    }
  }
  return from_private(priv);
}

KeyPair KeyPair::from_private(const X25519Key& private_key) {
  return KeyPair{private_key, x25519_base(private_key)};
}

X25519Key KeyPair::shared_secret(const X25519Key& peer_public) const {
  return x25519(private_key_, peer_public);
}

}  // namespace citymesh::cryptox
