// Ed25519 signatures (RFC 8032).
//
// Self-certifying CityMesh identities authenticate *messages* with the
// X25519+HMAC sealed format (sealed.hpp), but emergency bulletins need
// third-party verifiability: anyone holding the authority's public key (or
// its hash, distributed out-of-band pre-disaster) must be able to check a
// broadcast nobody encrypted for them. That is a signature scheme, so this
// module implements Ed25519 from its specification — Edwards-curve point
// arithmetic in extended coordinates over the shared fe25519 field, SHA-512
// hashing, and scalar arithmetic modulo the group order L.
//
// Scalar multiplication is straightforward double-and-add: inside the
// simulator there is no side-channel adversary, and the test suite pins
// correctness to the RFC 8032 vectors.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>

namespace citymesh::cryptox {

using Ed25519Seed = std::array<std::uint8_t, 32>;
using Ed25519PublicKey = std::array<std::uint8_t, 32>;
using Ed25519Signature = std::array<std::uint8_t, 64>;

class Ed25519KeyPair {
 public:
  /// Deterministic key pair from explicit seed bytes (RFC 8032 "secret key").
  static Ed25519KeyPair from_seed_bytes(const Ed25519Seed& seed);

  /// Convenience: seed derived from a 64-bit value via the simulation RNG.
  static Ed25519KeyPair from_seed(std::uint64_t seed);

  const Ed25519PublicKey& public_key() const { return public_key_; }
  const Ed25519Seed& seed() const { return seed_; }

  Ed25519Signature sign(std::span<const std::uint8_t> message) const;
  Ed25519Signature sign(std::string_view message) const;

 private:
  Ed25519Seed seed_{};
  Ed25519PublicKey public_key_{};
};

/// Verify a signature. Returns false for malformed points, non-canonical
/// scalars, or a failed equation check.
bool ed25519_verify(const Ed25519PublicKey& public_key,
                    std::span<const std::uint8_t> message,
                    const Ed25519Signature& signature);
bool ed25519_verify(const Ed25519PublicKey& public_key, std::string_view message,
                    const Ed25519Signature& signature);

}  // namespace citymesh::cryptox
