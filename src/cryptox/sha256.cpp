#include "cryptox/sha256.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <stdexcept>

namespace citymesh::cryptox {

namespace {

constexpr std::array<std::uint32_t, 64> kRoundConstants = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) { return std::rotr(x, n); }

std::uint32_t load_be32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
             0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19},
      buffer_{} {}

void Sha256::process_block(const std::uint8_t* block) {
  std::array<std::uint32_t, 64> w;
  for (int i = 0; i < 16; ++i) w[i] = load_be32(block + i * 4);
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 = rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 = rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  auto [a, b, c, d, e, f, g, h] = state_;
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kRoundConstants[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha256::update(std::span<const std::uint8_t> data) {
  if (finished_) throw std::logic_error{"Sha256: update after finish"};
  total_len_ += data.size();
  std::size_t offset = 0;
  if (buffer_len_ > 0) {
    const std::size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    offset = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (offset + 64 <= data.size()) {
    process_block(data.data() + offset);
    offset += 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_.data(), data.data() + offset, data.size() - offset);
    buffer_len_ = data.size() - offset;
  }
}

void Sha256::update(std::string_view s) {
  update(std::span{reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
}

Digest256 Sha256::finish() {
  if (finished_) throw std::logic_error{"Sha256: finish called twice"};
  finished_ = true;
  const std::uint64_t bit_len = total_len_ * 8;
  // Padding: 0x80, zeros, 64-bit big-endian length.
  std::uint8_t pad[72] = {0x80};
  const std::size_t rem = buffer_len_;
  const std::size_t pad_len = (rem < 56) ? (56 - rem) : (120 - rem);
  finished_ = false;  // allow the padding updates
  update(std::span{pad, pad_len});
  std::uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(std::span{len_bytes, 8});
  finished_ = true;

  Digest256 digest;
  for (int i = 0; i < 8; ++i) store_be32(digest.data() + i * 4, state_[i]);
  return digest;
}

Digest256 Sha256::hash(std::span<const std::uint8_t> data) {
  Sha256 h;
  h.update(data);
  return h.finish();
}

Digest256 Sha256::hash(std::string_view s) {
  Sha256 h;
  h.update(s);
  return h.finish();
}

Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> data) {
  std::array<std::uint8_t, 64> k{};
  if (key.size() > 64) {
    const Digest256 kd = Sha256::hash(key);
    std::memcpy(k.data(), kd.data(), kd.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }
  std::array<std::uint8_t, 64> ipad;
  std::array<std::uint8_t, 64> opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Digest256 inner_digest = inner.finish();
  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

std::vector<std::uint8_t> hkdf_sha256(std::span<const std::uint8_t> ikm,
                                      std::string_view info, std::size_t length) {
  if (length > 255 * 32) throw std::invalid_argument{"hkdf_sha256: length too large"};
  // Extract with zero salt.
  const std::array<std::uint8_t, 32> salt{};
  const Digest256 prk = hmac_sha256(salt, ikm);
  // Expand.
  std::vector<std::uint8_t> out;
  out.reserve(length);
  std::vector<std::uint8_t> t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    std::vector<std::uint8_t> block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    const Digest256 d = hmac_sha256(prk, block);
    t.assign(d.begin(), d.end());
    const std::size_t take = std::min<std::size_t>(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(data.size() * 2);
  for (const std::uint8_t b : data) {
    s.push_back(kHex[b >> 4]);
    s.push_back(kHex[b & 0xF]);
  }
  return s;
}

}  // namespace citymesh::cryptox
