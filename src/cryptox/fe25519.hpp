// Field arithmetic modulo p = 2^255 - 19, shared by X25519 (Montgomery
// ladder) and Ed25519 (Edwards curve signatures).
//
// Internal header: elements are 5 limbs of 51 bits ("donna-c64"
// representation); products use 128-bit accumulators. Functions are
// branch-free where the protocols require it (cswap); the reductions keep
// limbs below 2^52 between operations. Verified indirectly through the RFC
// 7748 and RFC 8032 test vectors in the crypto test suite.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>

namespace citymesh::cryptox::fe {

using Fe = std::array<std::uint64_t, 5>;
__extension__ using u128 = unsigned __int128;
using Bytes32 = std::array<std::uint8_t, 32>;

constexpr std::uint64_t kMask51 = (std::uint64_t{1} << 51) - 1;

inline std::uint64_t load_le64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;  // host is little-endian on all supported targets
}

inline Fe frombytes(const Bytes32& s) {
  Fe h;
  h[0] = load_le64(s.data() + 0) & kMask51;
  h[1] = (load_le64(s.data() + 6) >> 3) & kMask51;
  h[2] = (load_le64(s.data() + 12) >> 6) & kMask51;
  h[3] = (load_le64(s.data() + 19) >> 1) & kMask51;
  h[4] = (load_le64(s.data() + 24) >> 12) & kMask51;
  return h;
}

/// Fully reduce modulo p and serialize little-endian.
inline Bytes32 tobytes(const Fe& in) {
  Fe t = in;
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51; t[0] &= kMask51;
    t[2] += t[1] >> 51; t[1] &= kMask51;
    t[3] += t[2] >> 51; t[2] &= kMask51;
    t[4] += t[3] >> 51; t[3] &= kMask51;
    t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  }
  // Offset by +19, carry, then add p and discard bit 255: canonicalizes.
  t[0] += 19;
  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;

  t[0] += (std::uint64_t{1} << 51) - 19;
  t[1] += (std::uint64_t{1} << 51) - 1;
  t[2] += (std::uint64_t{1} << 51) - 1;
  t[3] += (std::uint64_t{1} << 51) - 1;
  t[4] += (std::uint64_t{1} << 51) - 1;
  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[4] &= kMask51;

  Bytes32 out{};
  const std::uint64_t w0 = t[0] | (t[1] << 51);
  const std::uint64_t w1 = (t[1] >> 13) | (t[2] << 38);
  const std::uint64_t w2 = (t[2] >> 26) | (t[3] << 25);
  const std::uint64_t w3 = (t[3] >> 39) | (t[4] << 12);
  std::memcpy(out.data() + 0, &w0, 8);
  std::memcpy(out.data() + 8, &w1, 8);
  std::memcpy(out.data() + 16, &w2, 8);
  std::memcpy(out.data() + 24, &w3, 8);
  return out;
}

constexpr Fe zero() { return {0, 0, 0, 0, 0}; }
constexpr Fe one() { return {1, 0, 0, 0, 0}; }

inline Fe add(const Fe& a, const Fe& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3], a[4] + b[4]};
}

/// One carry pass: brings limbs below 2^51 + epsilon for inputs whose limbs
/// fit in 64 bits. Needed before operations with tight limb preconditions.
inline Fe carried(Fe t) {
  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  t[1] += t[0] >> 51; t[0] &= kMask51;
  return t;
}

/// a - b with an 8p bias so limbs stay non-negative.
/// Precondition: b's limbs are below 2^54 - 152 (true for outputs of mul/sq
/// and for one add/sub of such outputs; carry `b` first otherwise).
inline Fe sub(const Fe& a, const Fe& b) {
  constexpr std::uint64_t two54m152 = (std::uint64_t{1} << 54) - 152;  // 8*(2^51-19)
  constexpr std::uint64_t two54m8 = (std::uint64_t{1} << 54) - 8;      // 8*(2^51-1)
  return {a[0] + two54m152 - b[0], a[1] + two54m8 - b[1], a[2] + two54m8 - b[2],
          a[3] + two54m8 - b[3], a[4] + two54m8 - b[4]};
}

/// -a. Carries first: `a` may be an unreduced add/sub chain whose limbs
/// would otherwise underflow the 8p bias.
inline Fe neg(const Fe& a) { return sub(zero(), carried(a)); }

inline Fe mul(const Fe& a, const Fe& b) {
  const u128 m0 = static_cast<u128>(a[0]) * b[0] +
                  static_cast<u128>(19) * (static_cast<u128>(a[1]) * b[4] +
                                           static_cast<u128>(a[2]) * b[3] +
                                           static_cast<u128>(a[3]) * b[2] +
                                           static_cast<u128>(a[4]) * b[1]);
  const u128 m1 = static_cast<u128>(a[0]) * b[1] + static_cast<u128>(a[1]) * b[0] +
                  static_cast<u128>(19) * (static_cast<u128>(a[2]) * b[4] +
                                           static_cast<u128>(a[3]) * b[3] +
                                           static_cast<u128>(a[4]) * b[2]);
  const u128 m2 = static_cast<u128>(a[0]) * b[2] + static_cast<u128>(a[1]) * b[1] +
                  static_cast<u128>(a[2]) * b[0] +
                  static_cast<u128>(19) * (static_cast<u128>(a[3]) * b[4] +
                                           static_cast<u128>(a[4]) * b[3]);
  const u128 m3 = static_cast<u128>(a[0]) * b[3] + static_cast<u128>(a[1]) * b[2] +
                  static_cast<u128>(a[2]) * b[1] + static_cast<u128>(a[3]) * b[0] +
                  static_cast<u128>(19) * (static_cast<u128>(a[4]) * b[4]);
  const u128 m4 = static_cast<u128>(a[0]) * b[4] + static_cast<u128>(a[1]) * b[3] +
                  static_cast<u128>(a[2]) * b[2] + static_cast<u128>(a[3]) * b[1] +
                  static_cast<u128>(a[4]) * b[0];

  Fe r;
  std::uint64_t carry;
  r[0] = static_cast<std::uint64_t>(m0) & kMask51;
  carry = static_cast<std::uint64_t>(m0 >> 51);
  const u128 m1c = m1 + carry;
  r[1] = static_cast<std::uint64_t>(m1c) & kMask51;
  carry = static_cast<std::uint64_t>(m1c >> 51);
  const u128 m2c = m2 + carry;
  r[2] = static_cast<std::uint64_t>(m2c) & kMask51;
  carry = static_cast<std::uint64_t>(m2c >> 51);
  const u128 m3c = m3 + carry;
  r[3] = static_cast<std::uint64_t>(m3c) & kMask51;
  carry = static_cast<std::uint64_t>(m3c >> 51);
  const u128 m4c = m4 + carry;
  r[4] = static_cast<std::uint64_t>(m4c) & kMask51;
  carry = static_cast<std::uint64_t>(m4c >> 51);
  r[0] += carry * 19;
  r[1] += r[0] >> 51;
  r[0] &= kMask51;
  return r;
}

inline Fe sq(const Fe& a) { return mul(a, a); }

/// Multiply by a small scalar.
inline Fe mul_small(const Fe& a, std::uint64_t s) {
  Fe r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 5; ++i) {
    const u128 m = static_cast<u128>(a[i]) * s + carry;
    r[i] = static_cast<std::uint64_t>(m) & kMask51;
    carry = static_cast<std::uint64_t>(m >> 51);
  }
  r[0] += carry * 19;
  r[1] += r[0] >> 51;
  r[0] &= kMask51;
  return r;
}

/// z^(2^250 - 1): shared prefix of the inversion and pow22523 chains.
inline Fe pow_2_250_minus_1(const Fe& z, Fe& z11_out) {
  Fe z2 = sq(z);
  Fe t = sq(z2);
  t = sq(t);
  Fe z9 = mul(t, z);
  Fe z11 = mul(z9, z2);
  z11_out = z11;
  t = sq(z11);
  Fe z2_5_0 = mul(t, z9);
  t = sq(z2_5_0);
  for (int i = 0; i < 4; ++i) t = sq(t);
  Fe z2_10_0 = mul(t, z2_5_0);
  t = sq(z2_10_0);
  for (int i = 0; i < 9; ++i) t = sq(t);
  Fe z2_20_0 = mul(t, z2_10_0);
  t = sq(z2_20_0);
  for (int i = 0; i < 19; ++i) t = sq(t);
  t = mul(t, z2_20_0);
  t = sq(t);
  for (int i = 0; i < 9; ++i) t = sq(t);
  Fe z2_50_0 = mul(t, z2_10_0);
  t = sq(z2_50_0);
  for (int i = 0; i < 49; ++i) t = sq(t);
  Fe z2_100_0 = mul(t, z2_50_0);
  t = sq(z2_100_0);
  for (int i = 0; i < 99; ++i) t = sq(t);
  t = mul(t, z2_100_0);
  t = sq(t);
  for (int i = 0; i < 49; ++i) t = sq(t);
  return mul(t, z2_50_0);  // z^(2^250 - 1)
}

/// z^(p-2) = z^-1 (Fermat).
inline Fe invert(const Fe& z) {
  Fe z11;
  Fe t = pow_2_250_minus_1(z, z11);
  for (int i = 0; i < 5; ++i) t = sq(t);  // 2^255 - 32
  return mul(t, z11);                     // 2^255 - 21 = p - 2
}

/// z^((p-5)/8) = z^(2^252 - 3), used for square roots in decompression.
inline Fe pow22523(const Fe& z) {
  Fe z11;
  Fe t = pow_2_250_minus_1(z, z11);
  t = sq(t);                // 2^251 - 2
  t = sq(t);                // 2^252 - 4
  return mul(t, z);         // 2^252 - 3
}

/// Constant-time conditional swap: swap iff bit == 1.
inline void cswap(Fe& a, Fe& b, std::uint64_t bit) {
  const std::uint64_t mask = 0 - bit;
  for (int i = 0; i < 5; ++i) {
    const std::uint64_t x = mask & (a[i] ^ b[i]);
    a[i] ^= x;
    b[i] ^= x;
  }
}

inline bool equal(const Fe& a, const Fe& b) { return tobytes(a) == tobytes(b); }

inline bool is_zero(const Fe& a) { return tobytes(a) == Bytes32{}; }

/// Sign bit of the canonical encoding (x mod 2).
inline bool is_negative(const Fe& a) { return tobytes(a)[0] & 1; }

// ---- Curve constants (derived offline; see tools comment in ed25519.cpp) --

/// Edwards d = -121665/121666 mod p.
constexpr Fe kD = {0x34dca135978a3, 0x1a8283b156ebd, 0x5e7a26001c029,
                   0x739c663a03cbb, 0x52036cee2b6ff};
/// 2d.
constexpr Fe kD2 = {0x69b9426b2f159, 0x35050762add7a, 0x3cf44c0038052,
                    0x6738cc7407977, 0x2406d9dc56dff};
/// sqrt(-1) = 2^((p-1)/4).
constexpr Fe kSqrtM1 = {0x61b274a0ea0b0, 0xd5a5fc8f189d, 0x7ef5e9cbd0c60,
                        0x78595a6804c9e, 0x2b8324804fc1d};
/// Base point B = (x, 4/5) with x even.
constexpr Fe kBaseX = {0x62d608f25d51a, 0x412a4b4f6592a, 0x75b7171a4b31d,
                       0x1ff60527118fe, 0x216936d3cd6e5};
constexpr Fe kBaseY = {0x6666666666658, 0x4cccccccccccc, 0x1999999999999,
                       0x3333333333333, 0x6666666666666};
constexpr Fe kBaseT = {0x68ab3a5b7dda3, 0xeea2a5eadbb, 0x2af8df483c27e,
                       0x332b375274732, 0x67875f0fd78b7};

}  // namespace citymesh::cryptox::fe
