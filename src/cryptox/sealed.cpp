#include "cryptox/sealed.hpp"

#include <algorithm>
#include <cstring>

namespace citymesh::cryptox {

namespace {

constexpr std::string_view kKdfLabel = "citymesh-seal-v1";

struct DerivedKeys {
  ChaChaKey key;
  ChaChaNonce nonce;
};

DerivedKeys derive_keys(const X25519Key& shared) {
  const auto material = hkdf_sha256(shared, kKdfLabel, 44);
  DerivedKeys d;
  std::memcpy(d.key.data(), material.data(), 32);
  std::memcpy(d.nonce.data(), material.data() + 32, 12);
  return d;
}

Digest256 compute_tag(const ChaChaKey& key, const SealedMessage& msg) {
  std::vector<std::uint8_t> mac_input;
  mac_input.reserve(32 + 32 + 32 + msg.ciphertext.size());
  mac_input.insert(mac_input.end(), msg.ephemeral_public.begin(), msg.ephemeral_public.end());
  mac_input.insert(mac_input.end(), msg.sender_id.bytes.begin(), msg.sender_id.bytes.end());
  mac_input.insert(mac_input.end(), msg.recipient_id.bytes.begin(),
                   msg.recipient_id.bytes.end());
  mac_input.insert(mac_input.end(), msg.ciphertext.begin(), msg.ciphertext.end());
  return hmac_sha256(key, mac_input);
}

bool constant_time_equal(const Digest256& a, const Digest256& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

}  // namespace

std::vector<std::uint8_t> SealedMessage::serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + 32 + 32 + 32 + ciphertext.size());
  out.insert(out.end(), ephemeral_public.begin(), ephemeral_public.end());
  out.insert(out.end(), sender_id.bytes.begin(), sender_id.bytes.end());
  out.insert(out.end(), recipient_id.bytes.begin(), recipient_id.bytes.end());
  out.insert(out.end(), tag.begin(), tag.end());
  out.insert(out.end(), ciphertext.begin(), ciphertext.end());
  return out;
}

std::optional<SealedMessage> SealedMessage::deserialize(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kFixed = 32 * 4;
  if (bytes.size() < kFixed) return std::nullopt;
  SealedMessage m;
  std::copy_n(bytes.begin(), 32, m.ephemeral_public.begin());
  std::copy_n(bytes.begin() + 32, 32, m.sender_id.bytes.begin());
  std::copy_n(bytes.begin() + 64, 32, m.recipient_id.bytes.begin());
  std::copy_n(bytes.begin() + 96, 32, m.tag.begin());
  m.ciphertext.assign(bytes.begin() + kFixed, bytes.end());
  return m;
}

SealedMessage seal(const KeyPair& sender, const X25519Key& recipient_public,
                   std::span<const std::uint8_t> plaintext, std::uint64_t ephemeral_seed) {
  const KeyPair ephemeral = KeyPair::from_seed(ephemeral_seed);
  const X25519Key shared = ephemeral.shared_secret(recipient_public);
  const DerivedKeys keys = derive_keys(shared);

  SealedMessage msg;
  msg.ephemeral_public = ephemeral.public_key();
  msg.sender_id = sender.id();
  msg.recipient_id = id_of(recipient_public);
  msg.ciphertext = chacha20_xor(keys.key, keys.nonce, 1, plaintext);
  msg.tag = compute_tag(keys.key, msg);
  return msg;
}

SealedMessage seal(const KeyPair& sender, const X25519Key& recipient_public,
                   std::string_view plaintext, std::uint64_t ephemeral_seed) {
  return seal(sender, recipient_public,
              std::span{reinterpret_cast<const std::uint8_t*>(plaintext.data()),
                        plaintext.size()},
              ephemeral_seed);
}

std::optional<std::vector<std::uint8_t>> unseal(const KeyPair& recipient,
                                                const SealedMessage& msg) {
  if (!(msg.recipient_id == recipient.id())) return std::nullopt;
  const X25519Key shared = recipient.shared_secret(msg.ephemeral_public);
  const DerivedKeys keys = derive_keys(shared);
  if (!constant_time_equal(compute_tag(keys.key, msg), msg.tag)) return std::nullopt;
  return chacha20_xor(keys.key, keys.nonce, 1, msg.ciphertext);
}

std::optional<std::string> unseal_text(const KeyPair& recipient, const SealedMessage& msg) {
  const auto bytes = unseal(recipient, msg);
  if (!bytes) return std::nullopt;
  return std::string{bytes->begin(), bytes->end()};
}

}  // namespace citymesh::cryptox
