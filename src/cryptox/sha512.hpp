// SHA-512 (FIPS 180-4). Required by Ed25519 (RFC 8032), which hashes with
// SHA-512 throughout. Verified against the NIST test vectors in the suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

namespace citymesh::cryptox {

using Digest512 = std::array<std::uint8_t, 64>;

class Sha512 {
 public:
  Sha512();

  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Finalize and return the digest. The object must not be reused after.
  Digest512 finish();

  static Digest512 hash(std::span<const std::uint8_t> data);
  static Digest512 hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint64_t, 8> state_;
  std::array<std::uint8_t, 128> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;  // bytes; messages > 2^61 bytes unsupported
  bool finished_ = false;
};

}  // namespace citymesh::cryptox
