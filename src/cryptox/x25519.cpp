#include "cryptox/x25519.hpp"

#include "cryptox/fe25519.hpp"

namespace citymesh::cryptox {

X25519Key x25519(const X25519Key& scalar, const X25519Key& u_point) {
  using fe::Fe;

  X25519Key e = scalar;
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  const Fe x1 = fe::frombytes(u_point);
  Fe x2 = fe::one();
  Fe z2 = fe::zero();
  Fe x3 = x1;
  Fe z3 = fe::one();

  std::uint64_t swap = 0;
  for (int t = 254; t >= 0; --t) {
    const std::uint64_t k_t = (e[t / 8] >> (t % 8)) & 1;
    swap ^= k_t;
    fe::cswap(x2, x3, swap);
    fe::cswap(z2, z3, swap);
    swap = k_t;

    const Fe a = fe::add(x2, z2);
    const Fe aa = fe::sq(a);
    const Fe b = fe::sub(x2, z2);
    const Fe bb = fe::sq(b);
    const Fe e_ = fe::sub(aa, bb);
    const Fe c = fe::add(x3, z3);
    const Fe d = fe::sub(x3, z3);
    const Fe da = fe::mul(d, a);
    const Fe cb = fe::mul(c, b);
    x3 = fe::sq(fe::add(da, cb));
    z3 = fe::mul(x1, fe::sq(fe::sub(da, cb)));
    x2 = fe::mul(aa, bb);
    z2 = fe::mul(e_, fe::add(aa, fe::mul_small(e_, 121665)));
  }
  fe::cswap(x2, x3, swap);
  fe::cswap(z2, z3, swap);

  return fe::tobytes(fe::mul(x2, fe::invert(z2)));
}

X25519Key x25519_base(const X25519Key& scalar) {
  X25519Key base{};
  base[0] = 9;
  return x25519(scalar, base);
}

}  // namespace citymesh::cryptox
