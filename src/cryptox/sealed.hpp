// Sealed (encrypted + authenticated) CityMesh message payloads.
//
// ECIES-style construction over the primitives in this module:
//   1. The sender generates an ephemeral X25519 key pair.
//   2. shared = X25519(ephemeral_private, recipient_public)
//   3. key material = HKDF-SHA256(shared, "citymesh-seal-v1", 44)
//      -> 32-byte ChaCha20 key + 12-byte nonce
//   4. ciphertext = ChaCha20(key, nonce, counter=1) XOR plaintext
//   5. tag = HMAC-SHA256(key, ephemeral_public || sender_id || recipient_id
//                              || ciphertext)  (encrypt-then-MAC)
//
// The recipient recomputes `shared` from its private key and the ephemeral
// public key carried in the sealed blob, verifies the tag, and decrypts.
// The sender's full self-certifying id rides inside so the postbox can
// attribute the message without any on-path metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cryptox/chacha20.hpp"
#include "cryptox/identity.hpp"

namespace citymesh::cryptox {

struct SealedMessage {
  X25519Key ephemeral_public{};
  SelfCertifyingId sender_id{};
  SelfCertifyingId recipient_id{};
  std::vector<std::uint8_t> ciphertext;
  Digest256 tag{};

  /// Flat byte serialization (fixed-size fields then ciphertext).
  std::vector<std::uint8_t> serialize() const;
  static std::optional<SealedMessage> deserialize(std::span<const std::uint8_t> bytes);

  bool operator==(const SealedMessage&) const = default;
};

/// Seal `plaintext` from `sender` to the holder of `recipient_public`.
/// `ephemeral_seed` feeds the deterministic ephemeral key (simulation
/// reproducibility; a deployment uses OS entropy).
SealedMessage seal(const KeyPair& sender, const X25519Key& recipient_public,
                   std::span<const std::uint8_t> plaintext,
                   std::uint64_t ephemeral_seed);

SealedMessage seal(const KeyPair& sender, const X25519Key& recipient_public,
                   std::string_view plaintext, std::uint64_t ephemeral_seed);

/// Verify and decrypt. Returns nullopt when the tag fails, the recipient id
/// doesn't match, or the blob is malformed.
std::optional<std::vector<std::uint8_t>> unseal(const KeyPair& recipient,
                                                const SealedMessage& msg);

/// Convenience: unseal and interpret as text.
std::optional<std::string> unseal_text(const KeyPair& recipient, const SealedMessage& msg);

}  // namespace citymesh::cryptox
