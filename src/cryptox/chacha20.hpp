// ChaCha20 stream cipher (RFC 8439).
//
// Sealed CityMesh messages are encrypted with ChaCha20 under a key derived
// from an X25519 shared secret (see sealed.hpp). Verified against the RFC
// 8439 test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace citymesh::cryptox {

using ChaChaKey = std::array<std::uint8_t, 32>;
using ChaChaNonce = std::array<std::uint8_t, 12>;

/// One 64-byte keystream block for the given counter.
std::array<std::uint8_t, 64> chacha20_block(const ChaChaKey& key,
                                            const ChaChaNonce& nonce,
                                            std::uint32_t counter);

/// XOR `data` with the keystream starting at block `initial_counter`.
/// Encryption and decryption are the same operation.
std::vector<std::uint8_t> chacha20_xor(const ChaChaKey& key, const ChaChaNonce& nonce,
                                       std::uint32_t initial_counter,
                                       std::span<const std::uint8_t> data);

}  // namespace citymesh::cryptox
