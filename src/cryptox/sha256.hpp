// SHA-256 (FIPS 180-4) and HMAC-SHA256 (RFC 2104).
//
// CityMesh uses SHA-256 for self-certifying names (§1 "Security": each
// identifier is the hash of the entity's public key) and HMAC for message
// integrity at the postbox. Implemented from scratch and verified against
// the NIST/RFC test vectors in the test suite.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace citymesh::cryptox {

using Digest256 = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Absorb more input. May be called any number of times.
  void update(std::span<const std::uint8_t> data);
  void update(std::string_view s);

  /// Finalize and return the digest. The object must not be reused after.
  Digest256 finish();

  /// One-shot helpers.
  static Digest256 hash(std::span<const std::uint8_t> data);
  static Digest256 hash(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finished_ = false;
};

/// HMAC-SHA256 over `data` with `key`.
Digest256 hmac_sha256(std::span<const std::uint8_t> key,
                      std::span<const std::uint8_t> data);

/// HKDF-SHA256 (RFC 5869) expand-only convenience: derives `length` bytes
/// from input keying material and an info label (extract uses a zero salt).
std::vector<std::uint8_t> hkdf_sha256(std::span<const std::uint8_t> ikm,
                                      std::string_view info, std::size_t length);

/// Hex rendering, for ids and logs.
std::string to_hex(std::span<const std::uint8_t> data);

}  // namespace citymesh::cryptox
