#!/usr/bin/env sh
# Tier-1 verification gate: configure, build, run the full test suite, then
# smoke-check the observability layer (trace capture -> validation, bench
# manifest emission) and re-run the obsx tests under ASan+UBSan.
# Exits nonzero on the first failure — the entry point a CI workflow calls.
#
# Usage: tools/check.sh [build-dir] [extra cmake args...]
#   tools/check.sh                       # default build/ tree
#   tools/check.sh build-asan -DCITYMESH_SANITIZE=ON
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
[ $# -gt 0 ] && shift

cmake -B "${build_dir}" -S "${repo_root}" "$@"
cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"

# --- Observability smoke: a traced delivery must round-trip through the
# JSONL file and validate, and a bench must emit a parseable manifest.
smoke_dir=$(mktemp -d)
trap 'rm -rf "${smoke_dir}"' EXIT

cli="${build_dir}/tools/citymesh"
"${cli}" send boston 10 200 --trace "${smoke_dir}/send.jsonl" >/dev/null || true
[ -s "${smoke_dir}/send.jsonl" ] || {
  echo "check.sh: citymesh send --trace wrote no events" >&2; exit 1; }
"${cli}" trace "${smoke_dir}/send.jsonl" | grep -q "originate" || {
  echo "check.sh: trace validation found no originate event" >&2; exit 1; }

"${build_dir}/bench/ablation_width" --json "${smoke_dir}/bench.json" >/dev/null
for key in '"schema"' '"citymesh-manifest-v1"' '"digest"' '"metrics"' \
           '"medium.transmissions"' '"net.delivered"' '"wall_clock_s"'; do
  grep -q -- "${key}" "${smoke_dir}/bench.json" || {
    echo "check.sh: bench manifest missing ${key}" >&2; exit 1; }
done
echo "check.sh: obsx smoke (trace round-trip + bench manifest) OK"

# --- trafficx smoke: a tiny workload must run through `citymesh load` and
# two same-seed runs must emit byte-identical manifests (the determinism
# digest covers the schedule and the capacity summary).
cat > "${smoke_dir}/load.spec" <<'EOF'
name check-smoke
seed 11
duration 4
rate 2
spatial hotspot bias 8
payload 64 128
EOF
"${cli}" load boston --spec "${smoke_dir}/load.spec" \
  --json "${smoke_dir}/load1.json" >/dev/null || {
  echo "check.sh: citymesh load failed" >&2; exit 1; }
"${cli}" load boston --spec "${smoke_dir}/load.spec" \
  --json "${smoke_dir}/load2.json" >/dev/null
cmp -s "${smoke_dir}/load1.json" "${smoke_dir}/load2.json" || {
  echo "check.sh: citymesh load manifests differ across same-seed runs" >&2
  exit 1; }
grep -q '"medium.airtime_us"' "${smoke_dir}/load1.json" || {
  echo "check.sh: load manifest missing contention counters" >&2; exit 1; }
echo "check.sh: trafficx smoke (citymesh load + manifest digest) OK"

# --- runx smoke: a sweep grid must produce byte-identical merged manifests
# (including the determinism digest) no matter how many worker threads
# execute it — the engine's core contract.
cat > "${smoke_dir}/sweep.spec" <<'EOF'
name check-sweep
cities cambridge
seeds 1 2
pairs 20
deliver 2
point eval
EOF
"${cli}" sweep "${smoke_dir}/sweep.spec" --jobs 1 \
  --json "${smoke_dir}/sweep1.json" >/dev/null || {
  echo "check.sh: citymesh sweep failed" >&2; exit 1; }
"${cli}" sweep "${smoke_dir}/sweep.spec" --jobs 4 \
  --json "${smoke_dir}/sweep4.json" >/dev/null
cmp -s "${smoke_dir}/sweep1.json" "${smoke_dir}/sweep4.json" || {
  echo "check.sh: sweep manifests differ between --jobs 1 and --jobs 4" >&2
  exit 1; }
grep -q '"digest"' "${smoke_dir}/sweep1.json" || {
  echo "check.sh: sweep manifest missing digest" >&2; exit 1; }
echo "check.sh: runx smoke (sweep digest identical across --jobs) OK"

# --- Golden digest-identity gate: the committed manifest in tools/golden was
# produced by the pre-compile-once packet pipeline. Any behavioral drift in
# decode, conduit reconstruction, rebroadcast membership, RNG draw order, or
# event ordering changes the determinism digest and fails the byte compare —
# refactors may move *when* work happens, never *what* the protocol does.
"${cli}" sweep "${repo_root}/tools/golden/fig6_smoke.spec" --jobs 1 \
  --json "${smoke_dir}/golden.json" >/dev/null || {
  echo "check.sh: golden sweep failed" >&2; exit 1; }
cmp -s "${repo_root}/tools/golden/fig6_smoke.json" "${smoke_dir}/golden.json" || {
  echo "check.sh: sweep manifest drifted from tools/golden/fig6_smoke.json" >&2
  exit 1; }
echo "check.sh: golden digest-identity gate OK"

# --- Scheduler gate: the same golden spec through the non-default event
# queue (--scheduler heap vs the calendar default) must produce the
# byte-identical manifest — the two queue kinds realize one total order.
"${cli}" sweep "${repo_root}/tools/golden/fig6_smoke.spec" --jobs 1 \
  --scheduler heap --json "${smoke_dir}/golden_heap.json" >/dev/null || {
  echo "check.sh: golden sweep with --scheduler heap failed" >&2; exit 1; }
cmp -s "${smoke_dir}/golden.json" "${smoke_dir}/golden_heap.json" || {
  echo "check.sh: golden manifest differs between schedulers" >&2; exit 1; }
echo "check.sh: scheduler gate (heap == calendar on golden spec) OK"

# --- relayx smoke: the fig11 overhead/deliverability frontier must run its
# quick grid and produce the same determinism digest across two same-seed
# runs (the digest folds every policy row, so any nondeterminism in the
# suppression timers or per-AP RNG streams shows up here; the full-file
# bytes legitimately differ in wall_clock_s, unlike the CLI manifests).
"${build_dir}/bench/fig11_frontier" --quick --json "${smoke_dir}/fig11a.json" \
  >/dev/null || { echo "check.sh: fig11_frontier --quick failed" >&2; exit 1; }
"${build_dir}/bench/fig11_frontier" --quick --json "${smoke_dir}/fig11b.json" \
  >/dev/null
fig11_digest() { grep -o '"digest": "[0-9a-f]*"' "$1"; }
[ -n "$(fig11_digest "${smoke_dir}/fig11a.json")" ] || {
  echo "check.sh: fig11 manifest missing digest" >&2; exit 1; }
[ "$(fig11_digest "${smoke_dir}/fig11a.json")" = \
  "$(fig11_digest "${smoke_dir}/fig11b.json")" ] || {
  echo "check.sh: fig11_frontier digests differ across same-seed runs" >&2
  exit 1; }
echo "check.sh: relayx smoke (fig11 quick-grid digest deterministic) OK"

# --- shardx smoke: the tiled parallel engine must be invisible in every
# determinism digest. Re-running the golden spec with --shards 2 and 4 must
# reproduce the golden run's digest (the digest folds every behavioral row
# cell; only the jitter-dependent latency *sum* inside the metrics block may
# differ between the sequential RNG streams and the hashed shard-invariant
# draws), the two K >= 2 manifests must be byte-identical to each other, and
# the fig10 scaling bench self-asserts that each shard count reproduces
# K=1's behavioral cells, exiting nonzero on the first divergence.
shard_digest() { grep -o '"digest": "[0-9a-f]*"' "$1"; }
for k in 2 4; do
  "${cli}" sweep "${repo_root}/tools/golden/fig6_smoke.spec" --jobs 1 \
    --shards "$k" --json "${smoke_dir}/golden_shards${k}.json" >/dev/null || {
    echo "check.sh: golden sweep with --shards $k failed" >&2; exit 1; }
  [ "$(shard_digest "${smoke_dir}/golden_shards${k}.json")" = \
    "$(shard_digest "${smoke_dir}/golden.json")" ] || {
    echo "check.sh: golden digest differs at --shards $k" >&2; exit 1; }
done
cmp -s "${smoke_dir}/golden_shards2.json" "${smoke_dir}/golden_shards4.json" || {
  echo "check.sh: golden manifests differ between --shards 2 and --shards 4" >&2
  exit 1; }
"${build_dir}/bench/fig10_scale" --quick >/dev/null || {
  echo "check.sh: fig10_scale shard-count invariance failed" >&2; exit 1; }

# Tiling gate: the event-rate-adaptive tiler moves tile boundaries, never
# behavior. The fig10 quick ladder under both partitioners must emit the
# same behavioral digest (memory/wall/idle columns stay outside it).
fig10_digest() { grep -o '"digest": "[0-9a-f]*"' "$1"; }
"${build_dir}/bench/fig10_scale" --quick --tiling adaptive \
  --json "${smoke_dir}/fig10_adaptive.json" >/dev/null || {
  echo "check.sh: fig10_scale --tiling adaptive failed" >&2; exit 1; }
"${build_dir}/bench/fig10_scale" --quick --tiling grid \
  --json "${smoke_dir}/fig10_grid.json" >/dev/null || {
  echo "check.sh: fig10_scale --tiling grid failed" >&2; exit 1; }
[ -n "$(fig10_digest "${smoke_dir}/fig10_adaptive.json")" ] || {
  echo "check.sh: fig10 manifest missing digest" >&2; exit 1; }
[ "$(fig10_digest "${smoke_dir}/fig10_adaptive.json")" = \
  "$(fig10_digest "${smoke_dir}/fig10_grid.json")" ] || {
  echo "check.sh: fig10 digest differs between adaptive and grid tiling" >&2
  exit 1; }
echo "check.sh: tiling gate (adaptive == grid behavioral digest) OK"

# fig8/fig9-style points (a faultx scenario and a trafficx workload) in the
# draw-free regime (--jitter 0, zero loss): the determinism digest must be
# identical for every shard count including the sequential engine, and the
# K >= 2 manifests must additionally be byte-identical to each other (K=1's
# manifest may differ in the last ulp of the unquantized latency sum).
cat > "${smoke_dir}/shard_quake.spec" <<'EOF'
name shard-quake
seed 5
blackout rect 200 200 700 600 at 0.0 restore 40 stages 2 every 10
EOF
cat > "${smoke_dir}/shard_load.spec" <<'EOF'
name shard-load
seed 11
duration 4
rate 2
spatial hotspot bias 8
payload 64 128
EOF
cat > "${smoke_dir}/shard_smoke.spec" <<EOF
name shard-smoke
cities cambridge
seeds 1 2
pairs 20
deliver 2
point scenario ${smoke_dir}/shard_quake.spec
point workload ${smoke_dir}/shard_load.spec
EOF
shard_digest() { grep -o '"digest": "[0-9a-f]*"' "$1"; }
for k in 1 2 4 8; do
  "${cli}" sweep "${smoke_dir}/shard_smoke.spec" --jitter 0 --shards "$k" \
    --json "${smoke_dir}/shard_k${k}.json" >/dev/null || {
    echo "check.sh: shard smoke sweep failed at --shards $k" >&2; exit 1; }
  [ "$(shard_digest "${smoke_dir}/shard_k${k}.json")" = \
    "$(shard_digest "${smoke_dir}/shard_k1.json")" ] || {
    echo "check.sh: shard smoke digest differs at --shards $k" >&2; exit 1; }
done
cmp -s "${smoke_dir}/shard_k2.json" "${smoke_dir}/shard_k4.json" \
  && cmp -s "${smoke_dir}/shard_k4.json" "${smoke_dir}/shard_k8.json" || {
  echo "check.sh: shard smoke manifests differ between K >= 2 shard counts" >&2
  exit 1; }
echo "check.sh: shardx smoke (tiled-engine digest identity) OK"

# --- qfgeo smoke: the fig12 conduit-vs-QF-Geo quick grid must emit the same
# determinism digest no matter how many workers or shards execute it (the
# bench pins the draw-free regime, so the tiled engine reproduces the
# sequential one; wall_clock_s makes full-file compares meaningless here,
# like fig11).
fig12_digest() { grep -o '"digest": "[0-9a-f]*"' "$1"; }
"${build_dir}/bench/fig12_baselines" --quick --jobs 1 \
  --json "${smoke_dir}/fig12_j1.json" >/dev/null || {
  echo "check.sh: fig12_baselines --quick failed" >&2; exit 1; }
"${build_dir}/bench/fig12_baselines" --quick --jobs 4 \
  --json "${smoke_dir}/fig12_j4.json" >/dev/null
"${build_dir}/bench/fig12_baselines" --quick --jobs 4 --shards 4 \
  --json "${smoke_dir}/fig12_k4.json" >/dev/null || {
  echo "check.sh: fig12_baselines --shards 4 failed" >&2; exit 1; }
[ -n "$(fig12_digest "${smoke_dir}/fig12_j1.json")" ] || {
  echo "check.sh: fig12 manifest missing digest" >&2; exit 1; }
for v in j4 k4; do
  [ "$(fig12_digest "${smoke_dir}/fig12_${v}.json")" = \
    "$(fig12_digest "${smoke_dir}/fig12_j1.json")" ] || {
    echo "check.sh: fig12 digest differs at variant ${v}" >&2; exit 1; }
done
echo "check.sh: qfgeo smoke (fig12 digest identical across --jobs/--shards) OK"

# --- The obsx buffer/JSONL code is pointer-heavy, the trafficx runner
# threads raw pointers through scheduled closures, the medium fans shared
# immutable packets through queues and backoff closures, and the compiled-
# message layer shares read-only CompiledMessages across receptions, and the
# relayx policies keep per-AP state the backoff closures point into, the
# shardx tiles hand shared immutable packets across thread boundaries, and
# the qfgeo election timers capture per-reception state into medium
# closures, and the scheduler/pool layer recycles event and packet blocks
# through freelists, and the metro-memory slabs (CSR views, agent-state
# stripes, medium transmit rings) index shared flat arrays; run all nine
# suites under ASan+UBSan in a separate tree (skipped if that tree's
# configure fails, e.g. no sanitizer runtime on minimal images).
san_dir="${build_dir}-asan"
if cmake -B "${san_dir}" -S "${repo_root}" -DCITYMESH_SANITIZE=ON >/dev/null; then
  cmake --build "${san_dir}" -j "$(nproc 2>/dev/null || echo 4)" \
    --target test_obsx --target test_trafficx --target test_sim \
    --target test_compiled --target test_relayx --target test_shardx \
    --target test_qfgeo --target test_scheduler --target test_metromem
  "${san_dir}/tests/test_obsx"
  "${san_dir}/tests/test_trafficx"
  "${san_dir}/tests/test_sim"
  "${san_dir}/tests/test_compiled"
  "${san_dir}/tests/test_relayx"
  "${san_dir}/tests/test_shardx"
  "${san_dir}/tests/test_qfgeo"
  "${san_dir}/tests/test_scheduler"
  "${san_dir}/tests/test_metromem"
  echo "check.sh: test_obsx + test_trafficx + test_sim + test_compiled + test_relayx + test_shardx + test_qfgeo + test_scheduler + test_metromem clean under ASan+UBSan"
else
  echo "check.sh: sanitizer configure failed; skipping ASan+UBSan pass" >&2
fi

# --- The runx engine shares compiled cities across worker threads, the
# compile-once refactor additionally shares immutable CompiledMessages, and
# the shardx worker pool runs tile simulators concurrently inside one run,
# and the qfgeo sweep tests drive the protocol axis across worker threads,
# and the tiled engine's shared agent-state slab stripes its dup filter by
# tile (each stripe touched by exactly one worker thread); run those tests
# (plus the event engine they drive) under TSan in a third tree to catch
# data races the determinism digest can't see.
tsan_dir="${build_dir}-tsan"
if cmake -B "${tsan_dir}" -S "${repo_root}" -DCITYMESH_SANITIZE=thread >/dev/null; then
  cmake --build "${tsan_dir}" -j "$(nproc 2>/dev/null || echo 4)" \
    --target test_runx --target test_sim --target test_compiled \
    --target test_relayx --target test_shardx --target test_qfgeo \
    --target test_scheduler --target test_metromem
  "${tsan_dir}/tests/test_runx"
  "${tsan_dir}/tests/test_sim"
  "${tsan_dir}/tests/test_compiled"
  "${tsan_dir}/tests/test_relayx"
  "${tsan_dir}/tests/test_shardx"
  "${tsan_dir}/tests/test_qfgeo"
  "${tsan_dir}/tests/test_scheduler"
  "${tsan_dir}/tests/test_metromem"
  echo "check.sh: test_runx + test_sim + test_compiled + test_relayx + test_shardx + test_qfgeo + test_scheduler + test_metromem clean under TSan"
else
  echo "check.sh: TSan configure failed; skipping thread-sanitizer pass" >&2
fi
