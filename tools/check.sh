#!/usr/bin/env sh
# Tier-1 verification gate: configure, build, run the full test suite.
# Exits nonzero on the first failure — the entry point a CI workflow calls.
#
# Usage: tools/check.sh [build-dir] [extra cmake args...]
#   tools/check.sh                       # default build/ tree
#   tools/check.sh build-asan -DCITYMESH_SANITIZE=ON
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"${repo_root}/build"}
[ $# -gt 0 ] && shift

cmake -B "${build_dir}" -S "${repo_root}" "$@"
cmake --build "${build_dir}" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc 2>/dev/null || echo 4)"
