// citymesh - command-line driver for the CityMesh library.
//
// Subcommands:
//   profiles                     list the built-in city profiles
//   evaluate <city> [opts]       run the Figure-6 protocol on one city
//   survey <city>                run the wardriving study (Table-1 style)
//   render <city> <out.svg>      render footprints + AP mesh
//   islands <city> [--bridge]    island analysis, optionally plan bridges
//   send <city> <from> <to>      simulate one end-to-end sealed message
//   scenario <city> [opts]       replay a disaster scenario (src/faultx)
//   load <city> [opts]           run a traffic workload (src/trafficx)
//   sweep <spec-file> [opts]     run an experiment sweep grid (src/runx)
//   trace <file.jsonl> [opts]    validate / summarize / filter a trace
//
// Common options:
//   --range METERS        transmission range        (default 50)
//   --density M2          m^2 of footprint per AP   (default 200)
//   --width METERS        conduit width W           (default 50)
//   --pairs N             reachability pairs        (default 1000)
//   --deliver N           deliverability pairs      (default 50)
//   --seed N              placement seed            (default 1)
//   --suppression         enable same-building rebroadcast suppression
//   --policy NAME         rebroadcast policy: flood (default),
//                         building-backoff, counter-gossip, etx-priority
//   --protocol NAME       live protocol family: conduit (default, the
//                         paper's corridor flood) or qfgeo (capacity-aware
//                         bounded-region greedy forwarding, src/qfgeo)
//   --shadowed            use the shadowed link model instead of the disc
//   --osm FILE            load an OSM XML extract instead of a profile
//
// Scenario options:
//   --spec FILE           scenario spec (see src/faultx/spec.hpp); without
//                         it a demo downtown blackout with staged
//                         restoration runs
//   --svg FILE            render the worst checkpoint's fault state + one
//                         traced delivery attempt
//
// Load options:
//   --spec FILE           workload spec (see src/trafficx/spec.hpp); without
//                         it a downtown-biased demo workload runs
//   --scenario FILE       faultx scenario installed live into the same
//                         simulation, so faults interleave with the traffic
//   --bitrate BPS         shared-channel bitrate (default 50000)
//   --queue N             per-AP transmit queue slots (default 8)
//   --json FILE           write the run manifest (obsx) to FILE
//
// Sweep options:
//   --jobs N              worker threads (default 1; 0 = all cores). The
//                         merged report and manifest are byte-identical for
//                         any N.
//   --shards N            tiled parallel engine (src/shardx) inside each run:
//                         partition the city into N tiles with their own
//                         event queues, synchronized by conservative
//                         lookahead. Composes with --jobs (N tiles per run x
//                         --jobs concurrent runs). Digests are invariant
//                         across every N >= 2; N=1 is the sequential legacy
//                         engine.
//   --json FILE           write the merged sweep manifest to FILE
//
// Trace options:
//   --trace FILE          (send/scenario/load) record every packet/fault
//                         event into FILE as JSON Lines (src/obsx/trace.hpp)
//   --kind K --node N --packet P
//                         (trace) keep only matching events; matches are
//                         reprinted as JSONL before the summary
#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/evaluation.hpp"
#include "faultx/engine.hpp"
#include "faultx/render.hpp"
#include "faultx/scenario_eval.hpp"
#include "faultx/spec.hpp"
#include "geo/stats.hpp"
#include "cryptox/sealed.hpp"
#include "measure/survey.hpp"
#include "measure/survey_stats.hpp"
#include "mesh/islands.hpp"
#include "obsx/trace.hpp"
#include "obsx/manifest.hpp"
#include "osmx/citygen.hpp"
#include "osmx/osm_xml.hpp"
#include "relayx/policy.hpp"
#include "runx/city_cache.hpp"
#include "runx/sweep.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/spec.hpp"
#include "trafficx/workload.hpp"
#include "viz/ascii.hpp"
#include "viz/svg.hpp"

using namespace citymesh;

namespace {

struct Options {
  double range_m = 50.0;
  double m2_per_ap = 200.0;
  double width_m = 50.0;
  std::size_t pairs = 1000;
  std::size_t deliver = 50;
  std::uint64_t seed = 1;
  bool suppression = false;
  std::string policy;  // relayx policy name; empty = flood (paper default)
  std::string protocol;  // core protocol name; empty = conduit (paper default)
  bool shadowed = false;
  std::string osm_file;
  std::string spec_file;
  std::string scenario_file;
  std::string svg_file;
  std::string trace_file;
  std::string json_file;
  double bitrate_bps = 50e3;
  std::optional<double> jitter_s;
  std::size_t queue_slots = 8;
  std::size_t sweep_jobs = 1;
  std::size_t shards = 1;
  sim::SchedulerKind scheduler = sim::kDefaultScheduler;
  std::string kind_filter;
  std::optional<std::uint32_t> node_filter;
  std::optional<std::uint32_t> packet_filter;
  std::vector<std::string> positional;
};

int usage() {
  std::cerr <<
      "usage: citymesh <subcommand> [options]\n"
      "  profiles                   list built-in city profiles\n"
      "  evaluate <city>            reachability/deliverability/overhead\n"
      "  survey <city>              wardriving study summary + CDFs\n"
      "  render <city> <out.svg>    footprints + AP mesh render\n"
      "  islands <city> [--bridge]  island analysis / gap bridging\n"
      "  send <city> <from> <to>    one sealed end-to-end message\n"
      "  scenario <city>            replay a disaster scenario (faultx)\n"
      "  load <city>                run a traffic workload (trafficx)\n"
      "  sweep <spec-file>          run an experiment sweep grid (runx)\n"
      "  trace <file.jsonl>         validate / summarize / filter a trace\n"
      "options: --range M --density M2 --width M --pairs N --deliver N\n"
      "         --seed N --suppression --policy NAME --protocol NAME\n"
      "         --shadowed --osm FILE\n"
      "         --spec FILE --svg FILE (scenario)\n"
      "         --spec FILE --scenario FILE --bitrate BPS --queue N\n"
      "         --json FILE (load)\n"
      "         --jobs N --json FILE (sweep)\n"
      "         --shards N (tiled parallel engine; 1 = sequential legacy)\n"
      "         --scheduler heap|calendar (event queue; digests identical)\n"
      "         --jitter S (per-delivery jitter seconds; 0 = draw-free)\n"
      "         --trace FILE (send/scenario/load)\n"
      "         --kind K --node N --packet P (trace)\n";
  return 2;
}

bool parse_double(const std::string& s, double& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

bool parse_u64(const std::string& s, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

std::optional<Options> parse_options(int argc, char** argv, int first) {
  Options opts;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string{argv[++i]};
    };
    if (arg == "--range") {
      const auto v = next();
      if (!v || !parse_double(*v, opts.range_m)) return std::nullopt;
    } else if (arg == "--density") {
      const auto v = next();
      if (!v || !parse_double(*v, opts.m2_per_ap)) return std::nullopt;
    } else if (arg == "--width") {
      const auto v = next();
      if (!v || !parse_double(*v, opts.width_m)) return std::nullopt;
    } else if (arg == "--pairs") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n)) return std::nullopt;
      opts.pairs = n;
    } else if (arg == "--deliver") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n)) return std::nullopt;
      opts.deliver = n;
    } else if (arg == "--seed") {
      const auto v = next();
      if (!v || !parse_u64(*v, opts.seed)) return std::nullopt;
    } else if (arg == "--bridge") {
      opts.positional.push_back("bridge");
    } else if (arg == "--suppression") {
      opts.suppression = true;
    } else if (arg == "--policy") {
      const auto v = next();
      if (!v || !relayx::policy_kind_from(*v)) {
        std::cerr << "--policy must be one of flood, building-backoff, "
                     "counter-gossip, etx-priority\n";
        return std::nullopt;
      }
      opts.policy = *v;
    } else if (arg == "--protocol") {
      const auto v = next();
      if (!v || !core::protocol_from(*v)) {
        std::cerr << "--protocol must be one of conduit, qfgeo\n";
        return std::nullopt;
      }
      opts.protocol = *v;
    } else if (arg == "--shadowed") {
      opts.shadowed = true;
    } else if (arg == "--osm") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.osm_file = *v;
    } else if (arg == "--spec") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.spec_file = *v;
    } else if (arg == "--scenario") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.scenario_file = *v;
    } else if (arg == "--json") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.json_file = *v;
    } else if (arg == "--bitrate") {
      const auto v = next();
      if (!v || !parse_double(*v, opts.bitrate_bps)) return std::nullopt;
    } else if (arg == "--jitter") {
      double j = 0.0;
      const auto v = next();
      if (!v || !parse_double(*v, j) || j < 0.0) return std::nullopt;
      opts.jitter_s = j;
    } else if (arg == "--queue") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n)) return std::nullopt;
      opts.queue_slots = n;
    } else if (arg == "--jobs") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n)) return std::nullopt;
      opts.sweep_jobs = n;
    } else if (arg == "--shards") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n) || n == 0) return std::nullopt;
      opts.shards = n;
    } else if (arg == "--scheduler") {
      const auto v = next();
      if (!v) return std::nullopt;
      const auto kind = sim::scheduler_from(*v);
      if (!kind) return std::nullopt;
      opts.scheduler = *kind;
    } else if (arg == "--svg") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.svg_file = *v;
    } else if (arg == "--trace") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.trace_file = *v;
    } else if (arg == "--kind") {
      const auto v = next();
      if (!v) return std::nullopt;
      opts.kind_filter = *v;
    } else if (arg == "--node" || arg == "--packet") {
      std::uint64_t n = 0;
      const auto v = next();
      if (!v || !parse_u64(*v, n) || n > 0xffffffffull) return std::nullopt;
      (arg == "--node" ? opts.node_filter : opts.packet_filter) =
          static_cast<std::uint32_t>(n);
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << '\n';
      return std::nullopt;
    } else {
      opts.positional.push_back(arg);
    }
  }
  return opts;
}

std::optional<osmx::City> load_city(const Options& opts, std::size_t index = 0) {
  if (!opts.osm_file.empty()) {
    std::ifstream file{opts.osm_file};
    if (!file) {
      std::cerr << "cannot open " << opts.osm_file << '\n';
      return std::nullopt;
    }
    return osmx::load_osm_xml(file, opts.osm_file);
  }
  if (index >= opts.positional.size()) {
    std::cerr << "missing city name (or --osm FILE)\n";
    return std::nullopt;
  }
  try {
    return osmx::generate_city(osmx::profile_by_name(opts.positional[index]));
  } catch (const std::out_of_range&) {
    std::cerr << "unknown profile '" << opts.positional[index] << "'; see `citymesh profiles`\n";
    return std::nullopt;
  }
}

core::NetworkConfig network_config(const Options& opts) {
  core::NetworkConfig cfg;
  cfg.placement.density_per_m2 = 1.0 / opts.m2_per_ap;
  cfg.placement.transmission_range_m = opts.range_m;
  cfg.placement.seed = opts.seed;
  cfg.placement.link_model =
      opts.shadowed ? mesh::LinkModel::kShadowed : mesh::LinkModel::kDisc;
  cfg.graph.transmission_range_m = opts.range_m;
  cfg.conduit.width_m = opts.width_m;
  cfg.building_suppression = opts.suppression;
  cfg.shards = opts.shards;
  cfg.scheduler = opts.scheduler;
  if (opts.jitter_s) cfg.medium.jitter_s = *opts.jitter_s;
  if (!opts.policy.empty()) {
    cfg.relay.kind = *relayx::policy_kind_from(opts.policy);
  }
  if (!opts.protocol.empty()) {
    cfg.protocol = *core::protocol_from(opts.protocol);
  }
  return cfg;
}

// Flush a network's recorded trace to disk (send/scenario --trace FILE).
int write_trace_file(const core::CityMeshNetwork& net, const std::string& path) {
  std::ofstream out{path};
  if (out) obsx::write_trace_jsonl(out, net.trace());
  if (!out) {
    std::cerr << "cannot write " << path << '\n';
    return 1;
  }
  std::cout << "wrote " << path << " (" << net.trace().size() << " trace events";
  if (net.trace().lost() > 0) {
    std::cout << ", " << net.trace().lost() << " oldest lost to ring wrap";
  }
  std::cout << ")\n";
  return 0;
}

int cmd_profiles() {
  viz::print_table(std::cout, "Built-in city profiles",
                   {"name", "extent (km)", "rivers", "notes"},
                   [] {
                     std::vector<std::vector<std::string>> rows;
                     for (const auto& p : osmx::default_profiles()) {
                       rows.push_back(
                           {p.name,
                            viz::fmt(p.width_m / 1000.0, 1) + " x " +
                                viz::fmt(p.height_m / 1000.0, 1),
                            std::to_string(p.rivers.size()),
                            p.rivers.empty()
                                ? "contiguous fabric"
                                : (p.rivers[0].bridges.empty() ? "unbridged water"
                                                               : "bridged water")});
                     }
                     return rows;
                   }());
  return 0;
}

int cmd_evaluate(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;
  core::EvaluationConfig cfg;
  cfg.reachability_pairs = opts.pairs;
  cfg.deliverability_pairs = opts.deliver;
  cfg.network = network_config(opts);
  const auto eval = core::evaluate_city(*city, cfg);
  viz::print_table(
      std::cout, "Evaluation: " + eval.city,
      {"metric", "value"},
      {{"buildings", std::to_string(eval.buildings)},
       {"APs", std::to_string(eval.aps)},
       {"islands (major)", std::to_string(eval.ap_major_islands)},
       {"reachability", viz::fmt(eval.reachability(), 3)},
       {"deliverability", viz::fmt(eval.deliverability(), 3)},
       {"overhead (median)",
        eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1) + "x"},
       {"header bits (median)",
        eval.header_bits.empty() ? "-" : viz::fmt(eval.median_header_bits(), 0)}});
  return 0;
}

int cmd_survey(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;
  const auto datasets = measure::run_survey(*city, {});
  if (datasets.empty()) {
    std::cout << "no labeled survey regions in this city\n";
    return 0;
  }
  std::vector<std::vector<std::string>> rows;
  for (const auto& d : datasets) {
    const auto macs = measure::macs_per_measurement(d);
    const auto spreads = measure::spread_per_ap(d);
    rows.push_back({d.name, std::to_string(d.measurement_count()),
                    std::to_string(d.unique_aps()), viz::fmt(geo::median(macs), 0),
                    viz::fmt(geo::median(spreads), 0) + " m"});
  }
  viz::print_table(std::cout, "Survey: " + city->name(),
                   {"area", "# meas", "# unique APs", "med MACs/meas", "med spread"},
                   rows);
  return 0;
}

int cmd_render(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;
  if (opts.positional.size() < 2) {
    std::cerr << "usage: citymesh render <city> <out.svg>\n";
    return 2;
  }
  const std::string out_path = opts.positional[1];
  mesh::PlacementConfig placement = network_config(opts).placement;
  const auto net = mesh::place_aps(*city, placement);

  viz::SvgScene scene{city->extent(), 1200.0};
  for (const auto& water : city->water()) scene.add_polygon(water, "#a8c8e8");
  for (const auto& park : city->parks()) scene.add_polygon(park, "#cde6c8");
  for (const auto& b : city->buildings()) scene.add_polygon(b.footprint, "#c0392b");
  for (const auto& ap : net.aps()) {
    for (const auto& e : net.graph().neighbors(ap.id)) {
      if (e.to < ap.id) continue;
      scene.add_line(ap.position, net.ap(e.to).position, "#999999", 0.4, 0.5);
    }
  }
  for (const auto& ap : net.aps()) scene.add_circle(ap.position, 1.0, "#222222", 0.8);
  if (!scene.write_file(out_path)) {
    std::cerr << "cannot write " << out_path << '\n';
    return 1;
  }
  std::cout << "wrote " << out_path << " (" << city->building_count() << " buildings, "
            << net.ap_count() << " APs, " << net.graph().edge_count() << " links)\n";
  return 0;
}

int cmd_islands(const Options& opts, bool bridge) {
  const auto city = load_city(opts);
  if (!city) return 1;
  const auto net = mesh::place_aps(*city, network_config(opts).placement);
  const auto report = mesh::analyze_islands(net);
  std::cout << net.ap_count() << " APs in " << report.island_count
            << " islands; largest holds " << viz::fmt(report.largest_fraction * 100, 1)
            << "%\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(8, report.sizes.size()); ++i) {
    std::cout << "  island " << i << ": " << report.sizes[i] << " APs\n";
  }
  if (bridge && report.island_count > 1) {
    const auto plan = mesh::plan_bridges(net);
    std::cout << "bridge plan: " << plan.new_aps.size() << " new APs\n";
    const auto fixed = mesh::apply_bridges(net, plan);
    std::cout << "after bridging: largest island holds "
              << viz::fmt(mesh::analyze_islands(fixed).largest_fraction * 100, 1) << "%\n";
  }
  return 0;
}

int cmd_send(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;
  if (opts.positional.size() < 3) {
    std::cerr << "usage: citymesh send <city> <from-building> <to-building>\n";
    return 2;
  }
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  if (!parse_u64(opts.positional[1], from) || !parse_u64(opts.positional[2], to) ||
      from >= city->building_count() || to >= city->building_count()) {
    std::cerr << "building ids must be < " << city->building_count() << '\n';
    return 2;
  }
  core::CityMeshNetwork net{*city, network_config(opts)};
  if (!opts.trace_file.empty()) net.trace().enable();
  const auto alice = cryptox::KeyPair::from_seed(opts.seed + 1);
  const auto bob = cryptox::KeyPair::from_seed(opts.seed + 2);
  const auto info = core::PostboxInfo::for_key(bob, static_cast<osmx::BuildingId>(to));
  const auto box = net.register_postbox(info);
  if (!box) {
    std::cerr << "destination building has no APs\n";
    return 1;
  }
  const auto sealed = cryptox::seal(alice, info.public_key, "cli test message", opts.seed);
  const auto blob = sealed.serialize();
  const auto outcome =
      net.send(static_cast<osmx::BuildingId>(from), info, {blob.data(), blob.size()});
  std::cout << "route found: " << (outcome.route_found ? "yes" : "no") << '\n';
  if (outcome.route_found) {
    std::cout << "  buildings " << outcome.route.buildings.size() << " -> waypoints "
              << outcome.route.waypoints.size() << " (" << outcome.header_bits
              << " header bits)\n"
              << "  delivered: " << (outcome.delivered ? "yes" : "no") << " in "
              << viz::fmt(outcome.delivery_time_s * 1000, 1) << " ms, "
              << outcome.transmissions << " broadcasts";
    if (const auto oh = outcome.overhead()) std::cout << " (" << viz::fmt(*oh, 1) << "x)";
    std::cout << '\n';
    // Compile-once evidence: decodes/compiles track distinct messages (one
    // here, two with an ack), not the per-AP receptions of the flood.
    std::cout << "  hot path: " << net.compiler().header_decodes()
              << " header decodes, " << net.compiler().msg_compiles()
              << " msg compiles, " << net.compiler().membership_lookups()
              << " membership lookups\n";
  }
  if (!opts.trace_file.empty() && write_trace_file(net, opts.trace_file) != 0) {
    return 1;
  }
  return outcome.delivered ? 0 : 1;
}

// The demo disaster when no --spec is given: a blackout over the downtown
// core at t=10 s, restored feeder-by-feeder in 3 stages starting at t=300 s.
faultx::ParsedScenario demo_scenario(const osmx::City& city) {
  geo::Rect core{};
  bool have_core = false;
  for (const auto& region : city.regions()) {
    if (region.type == osmx::AreaType::kDowntown) {
      core = region.bounds;
      have_core = true;
      break;
    }
  }
  if (!have_core) {
    const geo::Rect& e = city.extent();
    core = {{e.min.x + e.width() * 0.25, e.min.y + e.height() * 0.25},
            {e.max.x - e.width() * 0.25, e.max.y - e.height() * 0.25}};
  }
  faultx::ParsedScenario parsed;
  parsed.scenario.name = "demo-downtown-blackout";
  faultx::BlackoutEvent blackout;
  blackout.region = geo::Polygon::rectangle(core);
  blackout.at_s = 10.0;
  blackout.restore_at_s = 300.0;
  blackout.restore_stages = 3;
  blackout.stage_interval_s = 60.0;
  parsed.scenario.blackouts.push_back(std::move(blackout));
  parsed.checkpoints = {0.0, 30.0, 120.0, 300.0, 360.0, 420.0, 480.0};
  return parsed;
}

int cmd_scenario(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;

  faultx::ParsedScenario parsed;
  if (!opts.spec_file.empty()) {
    std::ifstream file{opts.spec_file};
    if (!file) {
      std::cerr << "cannot open " << opts.spec_file << '\n';
      return 1;
    }
    std::string error;
    const auto spec = faultx::parse_scenario(file, &error);
    if (!spec) {
      std::cerr << opts.spec_file << ": " << error << '\n';
      return 1;
    }
    parsed = *spec;
  } else {
    parsed = demo_scenario(*city);
  }
  if (parsed.checkpoints.empty()) parsed.checkpoints = {0.0};

  faultx::ScenarioEvalConfig cfg;
  cfg.checkpoints = parsed.checkpoints;
  cfg.snapshot.pairs = opts.pairs;
  cfg.snapshot.deliver_pairs = opts.deliver;

  core::CityMeshNetwork network{*city, network_config(opts)};
  if (!opts.trace_file.empty()) network.trace().enable();
  const auto trace = faultx::evaluate_scenario(network, parsed.scenario, cfg);

  std::cout << "scenario '" << trace.scenario << "' on " << city->name() << ": "
            << trace.actions_total << " fault actions over " << trace.aps_affected
            << " APs\n";
  std::vector<std::vector<std::string>> rows;
  for (const auto& snap : trace.snapshots) {
    rows.push_back({viz::fmt(snap.at_s, 0) + " s",
                    std::to_string(snap.aps_up) + "/" + std::to_string(snap.aps_total),
                    viz::fmt(snap.up_fraction(), 3), viz::fmt(snap.reachability(), 3),
                    viz::fmt(snap.deliverability(), 3),
                    std::to_string(snap.rescues_succeeded) + "/" +
                        std::to_string(snap.rescues_attempted),
                    viz::fmt(snap.deliverability_with_rescue(), 3)});
  }
  viz::print_table(std::cout, "Checkpoint replay: " + trace.scenario,
                   {"t", "APs up", "up frac", "reach", "deliver", "rescued",
                    "deliver+rescue"},
                   rows);

  if (!opts.trace_file.empty() &&
      write_trace_file(network, opts.trace_file) != 0) {
    return 1;
  }

  if (opts.svg_file.empty()) return 0;

  // Render the *worst* checkpoint (fewest live APs) on a fresh network: the
  // evaluation above left this one at the end of the timeline, typically
  // after restoration.
  sim::SimTime worst_t = 0.0;
  std::size_t worst_up = std::numeric_limits<std::size_t>::max();
  for (const auto& snap : trace.snapshots) {
    if (snap.aps_up < worst_up) {
      worst_up = snap.aps_up;
      worst_t = snap.at_s;
    }
  }
  core::CityMeshNetwork frame{*city, network_config(opts)};
  faultx::ScenarioEngine engine{frame, parsed.scenario};
  engine.apply_until(worst_t);

  // One traced delivery across the city: west-most to east-most building
  // that still has a live AP.
  std::optional<osmx::BuildingId> west, east;
  for (const auto& b : city->buildings()) {
    if (!frame.live_ap(b.id)) continue;
    if (!west || b.centroid.x < city->building(*west).centroid.x) west = b.id;
    if (!east || b.centroid.x > city->building(*east).centroid.x) east = b.id;
  }
  const core::SendOutcome* outcome_ptr = nullptr;
  core::SendOutcome outcome;
  if (west && east && *west != *east) {
    const auto bob = cryptox::KeyPair::from_seed(opts.seed + 2);
    const auto info = core::PostboxInfo::for_key(bob, *east);
    if (frame.register_postbox(info)) {
      static constexpr std::string_view kPayload = "scenario trace";
      core::SendOptions send_opts;
      send_opts.collect_trace = true;
      outcome = frame.send(
          *west, info,
          {reinterpret_cast<const std::uint8_t*>(kPayload.data()), kPayload.size()},
          send_opts);
      outcome_ptr = &outcome;
    }
  }
  if (!faultx::render_scenario_svg(frame, engine.scenario().outage_regions,
                                   outcome_ptr, opts.svg_file)) {
    std::cerr << "cannot write " << opts.svg_file << '\n';
    return 1;
  }
  std::cout << "wrote " << opts.svg_file << " (t=" << viz::fmt(worst_t, 0) << " s, "
            << frame.aps_up() << "/" << frame.aps().ap_count() << " APs up, trace "
            << (outcome_ptr ? (outcome.delivered ? "delivered" : "not delivered")
                            : "skipped")
            << ")\n";
  return 0;
}

// Run a trafficx workload against the airtime-contention medium, optionally
// with a faultx scenario installed live into the same simulation so AP
// failures interleave with the traffic. Prints the capacity summary and a
// determinism digest; `--json FILE` writes an obsx run manifest.
int cmd_load(const Options& opts) {
  const auto city = load_city(opts);
  if (!city) return 1;

  trafficx::WorkloadSpec spec;
  if (!opts.spec_file.empty()) {
    std::ifstream file{opts.spec_file};
    if (!file) {
      std::cerr << "cannot open " << opts.spec_file << '\n';
      return 1;
    }
    std::string error;
    const auto parsed = trafficx::parse_workload(file, &error);
    if (!parsed) {
      std::cerr << opts.spec_file << ": " << error << '\n';
      return 1;
    }
    spec = *parsed;
  } else {
    // Demo workload: 10 s of downtown-biased traffic at 4 flows/s.
    spec.name = "demo-load";
    spec.seed = opts.seed;
    spec.duration_s = 10.0;
    spec.rate_per_s = 4.0;
    spec.spatial = trafficx::SpatialMode::kHotspot;
  }

  core::NetworkConfig cfg = network_config(opts);
  cfg.medium.bitrate_bps = opts.bitrate_bps;
  cfg.medium.tx_queue_capacity = opts.queue_slots;
  core::CityMeshNetwork network{*city, cfg};
  if (!opts.trace_file.empty()) network.trace().enable();

  // A scenario given via --scenario runs live: its fault timeline is
  // scheduled into the same simulator the workload injections use.
  std::optional<faultx::ScenarioEngine> engine;
  std::string scenario_name;
  if (!opts.scenario_file.empty()) {
    std::ifstream file{opts.scenario_file};
    if (!file) {
      std::cerr << "cannot open " << opts.scenario_file << '\n';
      return 1;
    }
    std::string error;
    const auto parsed = faultx::parse_scenario(file, &error);
    if (!parsed) {
      std::cerr << opts.scenario_file << ": " << error << '\n';
      return 1;
    }
    scenario_name = parsed->scenario.name;
    engine.emplace(network, parsed->scenario);
    engine->install();
  }

  const auto schedule = trafficx::compile(spec, *city);
  const auto result = trafficx::run_workload(network, schedule);
  const core::CapacitySummary& s = result.summary;

  std::cout << "workload '" << spec.name << "' on " << city->name() << ": "
            << schedule.flows.size() << " flows over "
            << viz::fmt(spec.duration_s, 0) << " s ("
            << trafficx::to_string(spec.spatial) << ", "
            << viz::fmt(spec.rate_per_s, 1) << "/s offered)";
  if (engine) {
    std::cout << " + scenario '" << scenario_name << "' (" << engine->applied()
              << "/" << engine->scenario().actions.size() << " actions applied)";
  }
  std::cout << '\n';

  const std::vector<std::vector<std::string>> rows = {
      {"offered", std::to_string(s.flows_offered)},
      {"injected", std::to_string(s.flows_injected)},
      {"delivered", std::to_string(s.flows_delivered)},
      {"delivery rate", viz::fmt(s.delivery_rate(), 3)},
      {"goodput", viz::fmt(s.goodput_bytes_per_s, 1) + " B/s"},
      {"latency p50", viz::fmt(s.latency_p50_s * 1e3, 2) + " ms"},
      {"latency p99", viz::fmt(s.latency_p99_s * 1e3, 2) + " ms"},
      {"deferrals", std::to_string(s.deferrals)},
      {"queue drops", std::to_string(s.queue_drops)},
      {"airtime", viz::fmt(s.airtime_s, 2) + " s"}};
  viz::print_table(std::cout, "Capacity summary: " + spec.name,
                   {"metric", "value"}, rows);

  obsx::Fnv1a acc;
  acc.update(schedule.digest());
  for (const auto& row : rows) {
    for (const auto& cell : row) acc.update(cell);
  }
  const std::uint64_t digest = acc.digest();
  std::cout << "determinism digest: " << obsx::hex64(digest)
            << "  (same seed => same digest across runs)\n";

  if (!opts.json_file.empty()) {
    obsx::RunManifest manifest;
    manifest.name = "citymesh-load";
    manifest.city = city->name();
    manifest.seeds["workload"] = spec.seed;
    manifest.seeds["placement"] = cfg.placement.seed;
    manifest.set_param("spec", spec.name);
    manifest.set_param("spatial", trafficx::to_string(spec.spatial));
    manifest.set_param("duration_s", spec.duration_s);
    manifest.set_param("rate_per_s", spec.rate_per_s);
    manifest.set_param("bitrate_bps", cfg.medium.bitrate_bps);
    manifest.set_param("queue_slots",
                       static_cast<std::uint64_t>(cfg.medium.tx_queue_capacity));
    if (!scenario_name.empty()) manifest.set_param("scenario", scenario_name);
    manifest.digest = digest;
    manifest.metrics = result.metrics;
    // wall_clock_s stays 0 so same-seed manifests are byte-identical.
    if (!manifest.write_file(opts.json_file)) {
      std::cerr << "cannot write " << opts.json_file << '\n';
      return 1;
    }
    std::cout << "wrote " << opts.json_file << '\n';
  }

  if (!opts.trace_file.empty() &&
      write_trace_file(network, opts.trace_file) != 0) {
    return 1;
  }
  return 0;
}

// Run a sweep spec (src/runx): expand cities x seeds x points, execute on
// --jobs worker threads sharing one compiled-city cache, print the merged
// table + digest. The digest and the --json manifest are byte-identical for
// any --jobs value.
int cmd_sweep(const Options& opts) {
  if (opts.positional.empty()) {
    std::cerr << "usage: citymesh sweep <spec-file> [--jobs N] [--shards N] [--json FILE]\n";
    return 2;
  }
  const std::string& path = opts.positional[0];
  std::ifstream file{path};
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  std::string error;
  const auto spec = runx::parse_sweep(file, &error);
  if (!spec) {
    std::cerr << path << ": " << error << '\n';
    return 1;
  }

  runx::SweepRunConfig cfg;
  cfg.jobs = opts.sweep_jobs;
  cfg.network = network_config(opts);
  cfg.network.medium.bitrate_bps = opts.bitrate_bps;
  cfg.network.medium.tx_queue_capacity = opts.queue_slots;

  runx::CityCache cache;
  runx::SweepReport report;
  try {
    report = runx::run_sweep(*spec, cache, cfg);
  } catch (const std::exception& e) {
    std::cerr << e.what() << '\n';
    return 1;
  }

  std::cout << "sweep '" << spec->name << "': " << report.jobs.size()
            << " runs over " << spec->cities.size() << " cities ("
            << cache.compiles() << " compiled), jobs="
            << runx::resolve_jobs(opts.sweep_jobs);
  if (opts.shards > 1) std::cout << ", shards=" << opts.shards;
  std::cout << '\n';
  viz::print_table(std::cout, "Sweep: " + spec->name, runx::sweep_headers(*spec),
                   report.rows());
  if (report.errors > 0) {
    std::cout << report.errors << " of " << report.jobs.size()
              << " runs failed (see ERROR rows)\n";
  }
  std::cout << "determinism digest: " << report.digest_hex()
            << "  (same spec => same digest for any --jobs)\n";

  if (!opts.json_file.empty()) {
    const auto manifest = runx::sweep_manifest(*spec, report);
    if (!manifest.write_file(opts.json_file)) {
      std::cerr << "cannot write " << opts.json_file << '\n';
      return 1;
    }
    std::cout << "wrote " << opts.json_file << '\n';
  }
  return report.errors == 0 ? 0 : 1;
}

// Validate a recorded JSONL trace, optionally filter it, and summarize.
// Matching events are reprinted as JSONL (pipe them into another file to
// extract one packet's story); the summary counts events per kind.
int cmd_trace(const Options& opts) {
  if (opts.positional.empty()) {
    std::cerr << "usage: citymesh trace <file.jsonl> [--kind K] [--node N] "
                 "[--packet P]\n";
    return 2;
  }
  const std::string& path = opts.positional[0];
  std::ifstream file{path};
  if (!file) {
    std::cerr << "cannot open " << path << '\n';
    return 1;
  }
  std::string error;
  const auto events = obsx::read_trace_jsonl(file, &error);
  if (!events) {
    std::cerr << path << ": " << error << '\n';
    return 1;
  }

  std::optional<obsx::TraceKind> kind;
  if (!opts.kind_filter.empty()) {
    kind = obsx::trace_kind_from(opts.kind_filter);
    if (!kind) {
      std::cerr << "unknown event kind '" << opts.kind_filter << "'\n";
      return 2;
    }
  }
  const bool filtering = kind || opts.node_filter || opts.packet_filter;

  std::map<obsx::TraceKind, std::size_t> per_kind;
  std::set<std::uint32_t> nodes;
  std::set<std::uint32_t> packets;
  double t_min = 0.0;
  double t_max = 0.0;
  std::size_t matched = 0;
  for (const auto& e : *events) {
    if (kind && e.kind != *kind) continue;
    if (opts.node_filter && e.node != *opts.node_filter) continue;
    if (opts.packet_filter && e.packet != *opts.packet_filter) continue;
    if (matched == 0) t_min = t_max = e.time_s;
    t_min = std::min(t_min, e.time_s);
    t_max = std::max(t_max, e.time_s);
    ++matched;
    ++per_kind[e.kind];
    if (e.node != obsx::kTraceNone) nodes.insert(e.node);
    if (e.packet != 0) packets.insert(e.packet);
    if (filtering) std::cout << obsx::trace_line(e) << '\n';
  }

  std::vector<std::vector<std::string>> rows;
  for (const auto& [k, count] : per_kind) {
    rows.push_back({std::string{obsx::to_string(k)}, std::to_string(count)});
  }
  viz::print_table(std::cout,
                   path + ": " + std::to_string(matched) +
                       (filtering ? " matching" : "") + " of " +
                       std::to_string(events->size()) + " events",
                   {"kind", "count"}, rows);
  if (matched > 0) {
    std::cout << "  time span: " << viz::fmt(t_min, 6) << " .. "
              << viz::fmt(t_max, 6) << " s\n";
  }
  std::cout << "  nodes: " << nodes.size() << "  packets: " << packets.size()
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const auto opts = parse_options(argc, argv, 2);
  if (!opts) return usage();

  if (cmd == "profiles") return cmd_profiles();
  if (cmd == "evaluate") return cmd_evaluate(*opts);
  if (cmd == "survey") return cmd_survey(*opts);
  if (cmd == "render") return cmd_render(*opts);
  if (cmd == "islands") {
    const bool bridge = std::any_of(opts->positional.begin(), opts->positional.end(),
                                    [](const std::string& s) { return s == "bridge"; });
    return cmd_islands(*opts, bridge);
  }
  if (cmd == "send") return cmd_send(*opts);
  if (cmd == "scenario") return cmd_scenario(*opts);
  if (cmd == "load") return cmd_load(*opts);
  if (cmd == "sweep") return cmd_sweep(*opts);
  if (cmd == "trace") return cmd_trace(*opts);
  return usage();
}
