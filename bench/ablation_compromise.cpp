// Security evaluation: deliverability under compromised nodes.
//
// The paper's security agenda (§1) sets the bar: "A successful routing
// protocol for a DFN should find a path between two nodes wishing to
// communicate if there exists a path that does not traverse a compromised
// node." This bench measures how the *current* CityMesh protocol fares
// against that bar: buildings are compromised at random (their APs silently
// swallow packets) and deliverability is measured as the fraction rises.
//
// Expected shape: the conduit's parallel-building redundancy rides through
// scattered compromise (a few percent) with little loss, but deliverability
// decays well before the fraction where no clean path exists — CityMesh has
// no detection or rerouting, which the paper explicitly leaves as agenda.
#include <iostream>

#include "bench_util.hpp"
#include "cryptox/identity.hpp"
#include "geo/rng.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;
namespace cryptox = citymesh::cryptox;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_compromise", argc, argv};
  std::cout << "CityMesh security - deliverability vs compromised-building fraction\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();
  emit.manifest().seeds["compromise_rng"] = 999;
  emit.manifest().seeds["pair_rng"] = 2024;

  std::vector<std::vector<std::string>> rows;
  for (const double fraction : {0.0, 0.01, 0.03, 0.05, 0.10, 0.20}) {
    core::NetworkConfig net_cfg;
    core::CityMeshNetwork net{city, net_cfg};

    // Compromise a random building subset.
    geo::Rng rng{999};
    std::size_t compromised = 0;
    for (const auto& b : city.buildings()) {
      if (rng.chance(fraction)) {
        net.compromise_building(b.id, core::AgentBehavior::kCompromisedDrop);
        ++compromised;
      }
    }

    // Deliverability over reachable pairs with honest endpoints.
    geo::Rng pairs{2024};
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    int guard = 0;
    while (attempted < 40 && ++guard < 600) {
      const auto a = static_cast<core::BuildingId>(pairs.uniform_int(city.building_count()));
      const auto b = static_cast<core::BuildingId>(pairs.uniform_int(city.building_count()));
      if (a == b) continue;
      const auto ap_a = net.aps().representative_ap(city, a);
      const auto ap_b = net.aps().representative_ap(city, b);
      if (!ap_a || !ap_b || !net.aps().connected(*ap_a, *ap_b)) continue;
      const auto keys = cryptox::KeyPair::from_seed(5000 + attempted);
      const auto info = core::PostboxInfo::for_key(keys, b);
      if (!net.register_postbox(info)) continue;
      ++attempted;
      static constexpr std::string_view kPayload = "compromise-sweep";
      const std::span<const std::uint8_t> payload{
          reinterpret_cast<const std::uint8_t*>(kPayload.data()), kPayload.size()};
      if (net.send(a, info, payload).delivered) ++delivered;
    }
    emit.add_metrics(net.metrics().snapshot());
    rows.push_back({viz::fmt(fraction * 100, 0) + "%", std::to_string(compromised),
                    viz::fmt(attempted ? static_cast<double>(delivered) / attempted : 0.0,
                             2)});
    std::cout << "  " << fraction * 100 << "% done" << std::endl;
  }

  viz::print_table(std::cout, "Compromised-building sweep (ablation-town)",
                   {"compromised", "buildings", "deliverability"}, rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: near-baseline deliverability at 1-3% (conduit\n"
            << "redundancy), visible decay by 10-20%. Detection and clean-path\n"
            << "rerouting remain the paper's open agenda items.\n";
  return emit.finish();
}
