// Ablation: building-graph edge weights (DESIGN.md §5, item 1).
//
// §3 step 2 assigns *cubed* distance weights "to prioritize shorter edges
// for connectivity between buildings through their APs". This sweep compares
// linear / squared / cubed: linear weights happily route over long, sparsely
// backed building-to-building hops that the realized AP mesh cannot serve,
// hurting deliverability; cubing buys reliability for a modest route-length
// (and header) cost.
#include <iostream>

#include "bench_util.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace viz = citymesh::viz;

namespace {

const char* name_of(core::EdgeWeight w) {
  switch (w) {
    case core::EdgeWeight::kLinear: return "linear";
    case core::EdgeWeight::kSquared: return "squared";
    case core::EdgeWeight::kCubed: return "cubed (paper)";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_weights", argc, argv};
  std::cout << "CityMesh ablation - edge-weight policy sweep\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();
  emit.manifest().set_param("connect_factor", 1.3);

  std::vector<std::vector<std::string>> rows;
  for (const auto weight :
       {core::EdgeWeight::kLinear, core::EdgeWeight::kSquared, core::EdgeWeight::kCubed}) {
    auto cfg = citymesh::benchutil::sweep_config();
    cfg.network.graph.weight = weight;
    // A generous connectivity prediction makes the difference visible: with
    // connect_factor > 1 the graph contains long optimistic edges that only
    // cubed weights reliably avoid.
    cfg.network.graph.connect_factor = 1.3;
    const auto eval = core::evaluate_city(city, cfg);
    emit.add_metrics(eval.metrics);
    rows.push_back({name_of(weight), viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
                    eval.header_bits.empty() ? "-"
                                             : viz::fmt(eval.median_header_bits(), 0)});
    std::cout << "  " << name_of(weight) << " done" << std::endl;
  }

  viz::print_table(std::cout, "Edge-weight ablation (ablation-town, connect_factor 1.3)",
                   {"weights", "reach", "deliver", "overhead(med)", "hdr bits(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: cubed >= squared >= linear on deliverability;\n"
            << "reachability is identical (it is a property of the AP mesh, not\n"
            << "the route planner).\n";
  return emit.finish();
}
