// Ablation: AP density (DESIGN.md §5; §4 calls 1 AP / 200 m^2 "relatively
// sparse"). Sweeps the deployment density and reports how mesh connectivity
// (reachability), routing success (deliverability) and overhead respond.
#include <iostream>

#include "bench_util.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_density", argc, argv};
  std::cout << "CityMesh ablation - AP density sweep\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();

  std::vector<std::vector<std::string>> rows;
  for (const double m2_per_ap : {800.0, 400.0, 200.0, 100.0, 50.0}) {
    auto cfg = citymesh::benchutil::sweep_config();
    cfg.network.placement.density_per_m2 = 1.0 / m2_per_ap;
    const auto eval = core::evaluate_city(city, cfg);
    emit.add_metrics(eval.metrics);
    rows.push_back({"1/" + viz::fmt(m2_per_ap, 0) + " m^2", std::to_string(eval.aps),
                    std::to_string(eval.ap_islands), viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1)});
    std::cout << "  density 1/" << m2_per_ap << " m^2 done" << std::endl;
  }

  viz::print_table(std::cout, "AP density ablation (ablation-town)",
                   {"density", "APs", "islands", "reach", "deliver", "overhead(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: reachability collapses below a percolation-like\n"
            << "density threshold (many islands); above it, extra density mainly\n"
            << "buys overhead (more in-conduit APs rebroadcast). The paper's\n"
            << "1/200 m^2 sits above the threshold for contiguous fabric.\n";
  return emit.finish();
}
