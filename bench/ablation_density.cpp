// Ablation: AP density (DESIGN.md §5; §4 calls 1 AP / 200 m^2 "relatively
// sparse"). Sweeps the deployment density and reports how mesh connectivity
// (reachability), routing success (deliverability) and overhead respond.
// `--jobs N` runs the density points on N worker threads. The AP density is
// a *placement* parameter, so each point compiles its own mesh (the cache
// keys on it) — the parallelism covers both compilation and evaluation.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace runx = citymesh::runx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_density", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  std::cout << "CityMesh ablation - AP density sweep ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";
  const auto profile = citymesh::benchutil::ablation_profile();
  emit.manifest().city = profile.name;
  const std::vector<double> densities = {800.0, 400.0, 200.0, 100.0, 50.0};

  std::vector<runx::RunJob> grid;
  for (const double m2_per_ap : densities) {
    runx::RunJob job;
    job.city = profile.name;
    job.seed = profile.seed;
    job.point = "1/" + viz::fmt(m2_per_ap, 0);
    grid.push_back(std::move(job));
  }
  runx::CityCache cache;
  const auto base = citymesh::benchutil::sweep_config();
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    auto cfg = base;
    cfg.network.placement.density_per_m2 = 1.0 / densities[job.index];
    const auto eval = core::evaluate_city(cache.get(profile, cfg.network), cfg);
    runx::RunResult result;
    result.cells = {"1/" + viz::fmt(densities[job.index], 0) + " m^2",
                    std::to_string(eval.aps), std::to_string(eval.ap_islands),
                    viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1)};
    result.metrics = eval.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].point, "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout, "AP density ablation (ablation-town)",
                   {"density", "APs", "islands", "reach", "deliver", "overhead(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: reachability collapses below a percolation-like\n"
            << "density threshold (many islands); above it, extra density mainly\n"
            << "buys overhead (more in-conduit APs rebroadcast). The paper's\n"
            << "1/200 m^2 sits above the threshold for contiguous fabric.\n";
  return emit.finish();
}
