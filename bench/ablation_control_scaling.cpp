// The §5 scaling argument, quantified: steady-state control-plane load of
// proactive (DSDV/OLSR-family) and reactive (AODV-family) routing vs
// CityMesh, on realized AP meshes of growing city size.
//
// Paper claims reproduced: proactive updates "increase proportionally with
// network size" (O(N^2) network-wide per round => the per-hour column grows
// quadratically), reactive discovery is "a burst of control packets ...
// through the city-scale network" per route, and CityMesh "exchanges no
// metadata about their existence, addresses, link state, etc." — zero
// control transmissions, with per-node state being the static map cache.
#include <iostream>

#include "bench_util.hpp"
#include "mesh/ap_network.hpp"
#include "osmx/citygen.hpp"
#include "routing/control_overhead.hpp"
#include "viz/ascii.hpp"

namespace osmx = citymesh::osmx;
namespace mesh = citymesh::mesh;
namespace routing = citymesh::routing;
namespace viz = citymesh::viz;

namespace {

std::string engineering(double v) {
  if (v >= 1e9) return viz::fmt(v / 1e9, 1) + "G";
  if (v >= 1e6) return viz::fmt(v / 1e6, 1) + "M";
  if (v >= 1e3) return viz::fmt(v / 1e3, 1) + "k";
  return viz::fmt(v, 0);
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_control_scaling", argc, argv};
  std::cout << "CityMesh - control-plane load vs city size (the §5 argument)\n"
            << "proactive: 5 s update interval; reactive: 2 discoveries/node/hour\n";
  emit.manifest().city = "scale-sweep";
  emit.manifest().seeds["city"] = 42;

  std::vector<std::vector<std::string>> rows;
  for (const double km : {0.5, 1.0, 2.0, 3.0}) {
    osmx::CityProfile p;
    p.name = "scale-" + viz::fmt(km, 1);
    p.width_m = km * 1000.0;
    p.height_m = km * 1000.0;
    p.park_fraction = 0.0;
    p.seed = 42;
    const auto city = osmx::generate_city(p);
    const auto net = mesh::place_aps(city, {});

    const auto proactive = routing::proactive_control_load(net.graph(), {});
    const auto reactive = routing::reactive_control_load(net.graph(), {});
    const auto citymesh = routing::citymesh_control_load(city.building_count());

    rows.push_back({viz::fmt(km, 1) + " km^2*", std::to_string(net.ap_count()),
                    engineering(proactive.control_tx_per_hour),
                    engineering(reactive.control_tx_per_hour),
                    engineering(citymesh.control_tx_per_hour),
                    engineering(proactive.per_node_state_entries),
                    engineering(citymesh.per_node_state_entries)});
    std::cout << "  " << km << " km done" << std::endl;
  }

  viz::print_table(std::cout,
                   "Control transmissions per hour (network-wide) and per-node state",
                   {"city", "APs", "proactive tx/h", "reactive tx/h", "citymesh tx/h",
                    "proactive state", "citymesh state"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\n(* square city of that side length)\n"
            << "Expected shape: proactive load grows ~quadratically with AP count\n"
            << "(every node floods every interval), reactive linearly in the\n"
            << "session rate but with component-sized bursts; CityMesh stays at\n"
            << "zero - its only per-node state is the static building map, which\n"
            << "grows with the *city*, not with the number of radios.\n";
  return emit.finish();
}
