// Figure 2 reproduction: "The distance between each pair of measurements and
// the number of APs observed by both measurement samples." Whiskers mark the
// 10%, 25%, 50%, 75% and 100% quantiles per distance bin.
//
// The paper's takeaway: many APs are observed in common from locations 100 m
// apart (and some beyond, especially downtown), implying mutual visibility
// that can form a connected mesh at < 100 m spacing.
#include <iostream>

#include "bench_util.hpp"
#include "measure/survey.hpp"
#include "measure/survey_stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace osmx = citymesh::osmx;
namespace measure = citymesh::measure;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig2_common_aps", argc, argv};
  std::cout << "CityMesh reproduction - Figure 2 (common APs vs pair distance)\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  const auto city = osmx::generate_city(profile);
  const auto datasets = measure::run_survey(city, {});

  measure::CommonApConfig cfg;
  cfg.bin_width_m = 50.0;
  cfg.max_distance_m = 500.0;
  emit.manifest().set_param("bin_width_m", cfg.bin_width_m);
  emit.manifest().set_param("max_distance_m", cfg.max_distance_m);

  for (const auto& d : datasets) {
    const auto bins = measure::common_ap_bins(d, cfg);
    std::vector<viz::WhiskerRow> rows;
    for (const auto& b : bins) {
      if (b.pair_count == 0) continue;
      rows.push_back({viz::fmt(b.lo_m, 0) + "-" + viz::fmt(b.hi_m, 0) + "m",
                      b.q10, b.q25, b.q50, b.q75, b.q100, b.pair_count});
      emit.row(d.name);
      emit.row(rows.back().label);
      emit.row(viz::fmt(b.q50, 3));
    }
    viz::print_whiskers(std::cout, "Figure 2 [" + d.name + "]", rows,
                        "# common APs");
  }

  std::cout << "\nExpected shape: the common-AP count decays with distance but\n"
            << "remains non-zero past 100 m, most prominently downtown - the\n"
            << "mutual-visibility evidence behind CityMesh's feasibility claim.\n";
  return emit.finish();
}
