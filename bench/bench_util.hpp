// Shared helpers for the ablation benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>

#include "core/evaluation.hpp"
#include "obsx/manifest.hpp"
#include "osmx/citygen.hpp"

namespace citymesh::benchutil {

/// Uniform `--json [FILE]` support for every bench binary: construct one at
/// the top of main (it strips --json from argv so the bench's own flag
/// parsing stays oblivious), fold printed rows into the determinism digest
/// with row(), attach metrics snapshots, and `return emit.finish();`.
/// Bare `--json` writes the canonical BENCH_<name>.json in the CWD.
/// With no --json flag this costs a clock read and writes nothing.
class ManifestEmitter {
 public:
  ManifestEmitter(std::string name, int& argc, char** argv)
      : start_(std::chrono::steady_clock::now()) {
    manifest_.name = std::move(name);
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--json") {
        if (i + 1 < argc && argv[i + 1][0] != '-') {
          path_ = argv[++i];
        } else {
          path_ = "BENCH_" + manifest_.name + ".json";
        }
      } else if (arg.rfind("--json=", 0) == 0) {
        path_ = std::string{arg.substr(7)};
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
  }

  bool enabled() const { return !path_.empty(); }
  obsx::RunManifest& manifest() { return manifest_; }
  obsx::Fnv1a& digest() { return digest_; }
  std::string digest_hex() const { return obsx::hex64(digest_.digest()); }

  /// Fold one printed result row into the determinism digest.
  void row(std::string_view line) { digest_.update(line); }

  /// Merge a run's metrics snapshot into the manifest (mergeable across
  /// cities/seeds).
  void add_metrics(const obsx::MetricsSnapshot& snap) {
    manifest_.metrics.merge(snap);
  }

  /// Stamp wall clock + digest and write the manifest when --json was
  /// given. Returns `code`, or 1 when the manifest could not be written.
  int finish(int code = 0) {
    manifest_.wall_clock_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
            .count();
    manifest_.digest = digest_.digest();
    if (!path_.empty() && !manifest_.write_file(path_)) {
      std::fprintf(stderr, "error: failed to write manifest %s\n", path_.c_str());
      return 1;
    }
    return code;
  }

 private:
  std::chrono::steady_clock::time_point start_;
  obsx::RunManifest manifest_;
  obsx::Fnv1a digest_;
  std::string path_;
};

/// Process memory from /proc/self/status, kiB. vm_hwm_kib is the peak
/// resident set since process start (monotonic — deltas around a phase give
/// that phase's *additional* peak); vm_rss_kib is the current resident set.
/// Both 0 on platforms without procfs (columns then read 0, digests are
/// unaffected: memory cells never fold into a manifest digest).
struct MemUsage {
  std::uint64_t vm_hwm_kib = 0;
  std::uint64_t vm_rss_kib = 0;
};

inline MemUsage read_mem_usage() {
  MemUsage mem;
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return mem;
  char line[256];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      mem.vm_hwm_kib = std::strtoull(line + 6, nullptr, 10);
    } else if (std::strncmp(line, "VmRSS:", 6) == 0) {
      mem.vm_rss_kib = std::strtoull(line + 6, nullptr, 10);
    }
  }
  std::fclose(f);
  return mem;
}

/// Strip `--jobs N` / `--jobs=N` from argv the way ManifestEmitter strips
/// --json, so the bench's own positional arguments stay oblivious. Returns
/// the runx worker-thread count (default `def`; 0 = all hardware threads).
/// The merged rows and digest are identical for any value — --jobs trades
/// wall clock only.
inline std::size_t parse_jobs(int& argc, char** argv, std::size_t def = 1) {
  std::size_t jobs = def;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[i] + 7, nullptr, 10));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  argv[argc] = nullptr;
  return jobs;
}

/// Fold a whole results table (row-major cells) into the digest.
inline void digest_rows(ManifestEmitter& emit,
                        const std::vector<std::vector<std::string>>& rows) {
  for (const auto& r : rows) {
    for (const auto& cell : r) emit.row(cell);
  }
}

/// A mid-size city used by ablations: structurally a downtown-plus-
/// residential fabric with one bridged river, small enough that a parameter
/// sweep of full evaluations completes in seconds per point.
inline osmx::CityProfile ablation_profile() {
  osmx::CityProfile p;
  p.name = "ablation-town";
  p.width_m = 1600;
  p.height_m = 1400;
  p.rivers.push_back({.position_frac = 0.7, .width_m = 110.0, .vertical = false,
                      .bridges = {0.5}});
  p.seed = 71;
  return p;
}

inline osmx::City ablation_city() { return osmx::generate_city(ablation_profile()); }

/// Evaluation protocol shrunk for sweeps (the headline Figure-6 bench runs
/// the paper's full 1000/50 protocol).
inline core::EvaluationConfig sweep_config() {
  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 300;
  cfg.deliverability_pairs = 25;
  return cfg;
}

}  // namespace citymesh::benchutil
