// Shared helpers for the ablation benches.
#pragma once

#include "core/evaluation.hpp"
#include "osmx/citygen.hpp"

namespace citymesh::benchutil {

/// A mid-size city used by ablations: structurally a downtown-plus-
/// residential fabric with one bridged river, small enough that a parameter
/// sweep of full evaluations completes in seconds per point.
inline osmx::City ablation_city() {
  osmx::CityProfile p;
  p.name = "ablation-town";
  p.width_m = 1600;
  p.height_m = 1400;
  p.rivers.push_back({.position_frac = 0.7, .width_m = 110.0, .vertical = false,
                      .bridges = {0.5}});
  p.seed = 71;
  return osmx::generate_city(p);
}

/// Evaluation protocol shrunk for sweeps (the headline Figure-6 bench runs
/// the paper's full 1000/50 protocol).
inline core::EvaluationConfig sweep_config() {
  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 300;
  cfg.deliverability_pairs = 25;
  return cfg;
}

}  // namespace citymesh::benchutil
