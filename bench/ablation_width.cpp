// Ablation: conduit width W (DESIGN.md §5, item 2).
//
// The paper fixes W ~ the Wi-Fi transmission range (50 m). This sweep shows
// the tradeoff the choice balances: a narrow conduit misses the real AP path
// (deliverability drops), a wide conduit inflates the rebroadcast set
// (transmission overhead grows) while adding little deliverability.
#include <iostream>

#include "bench_util.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_width", argc, argv};
  std::cout << "CityMesh ablation - conduit width W sweep\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();

  std::vector<std::vector<std::string>> rows;
  for (const double width : {10.0, 20.0, 30.0, 50.0, 80.0, 120.0}) {
    auto cfg = citymesh::benchutil::sweep_config();
    cfg.network.conduit.width_m = width;
    const auto eval = core::evaluate_city(city, cfg);
    emit.add_metrics(eval.metrics);
    rows.push_back({viz::fmt(width, 0) + " m", viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
                    eval.header_bits.empty() ? "-"
                                             : viz::fmt(eval.median_header_bits(), 0)});
    std::cout << "  W=" << width << " done" << std::endl;
  }

  viz::print_table(std::cout, "Conduit width ablation (ablation-town)",
                   {"width W", "reach", "deliver", "overhead(med)", "hdr bits(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: deliverability rises steeply until W ~ the\n"
            << "transmission range (50 m), then saturates while overhead keeps\n"
            << "growing - the paper's choice of W ~ range sits at the knee.\n";
  return emit.finish();
}
