// Ablation: conduit width W (DESIGN.md §5, item 2).
//
// The paper fixes W ~ the Wi-Fi transmission range (50 m). This sweep shows
// the tradeoff the choice balances: a narrow conduit misses the real AP path
// (deliverability drops), a wide conduit inflates the rebroadcast set
// (transmission overhead grows) while adding little deliverability.
// `--jobs N` runs the width points on N worker threads; the conduit width
// does not key the compiled city, so every point shares one compiled mesh.
#include <iostream>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "runx/engine.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace runx = citymesh::runx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_width", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  std::cout << "CityMesh ablation - conduit width W sweep ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";
  const std::vector<double> widths = {10.0, 20.0, 30.0, 50.0, 80.0, 120.0};

  // Compile the ablation city once, share it read-only across points: the
  // conduit width is a routing parameter, not a compilation input.
  const auto base = citymesh::benchutil::sweep_config();
  const auto compiled =
      core::compile_city(citymesh::benchutil::ablation_city(), base.network);
  emit.manifest().city = compiled->city.name();

  std::vector<runx::RunJob> grid;
  for (const double width : widths) {
    runx::RunJob job;
    job.city = compiled->city.name();
    job.seed = base.seed;
    job.point = "W=" + viz::fmt(width, 0);
    grid.push_back(std::move(job));
  }
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    auto cfg = base;
    cfg.network.conduit.width_m = widths[job.index];
    const auto eval = core::evaluate_city(compiled, cfg);
    runx::RunResult result;
    result.cells = {viz::fmt(widths[job.index], 0) + " m",
                    viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
                    eval.header_bits.empty() ? "-"
                                             : viz::fmt(eval.median_header_bits(), 0)};
    result.metrics = eval.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].point, "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout, "Conduit width ablation (ablation-town)",
                   {"width W", "reach", "deliver", "overhead(med)", "hdr bits(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: deliverability rises steeply until W ~ the\n"
            << "transmission range (50 m), then saturates while overhead keeps\n"
            << "growing - the paper's choice of W ~ range sits at the knee.\n";
  return emit.finish();
}
