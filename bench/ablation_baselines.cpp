// Baseline comparison (§5): CityMesh's conduit flood vs unrestricted
// flooding, greedy geographic forwarding, and AODV-style reactive discovery,
// all over the *same* realized AP mesh and the same source/destination
// pairs.
//
// What each column demonstrates:
//   flood   - delivers whenever reachable but transmits from (nearly) every
//             AP in the component: the no-state upper bound on cost.
//   greedy  - near-optimal transmissions when it works, but dead-ends at
//             local minima (the in-building imprecision argument of §5).
//   aodv    - data path is shortest, but every route request floods the
//             component with control packets: the per-route burst that does
//             not scale to city-size networks.
//   citymesh- no control packets ever, transmissions bounded by the conduit.
#include <iostream>

#include "bench_util.hpp"
#include "cryptox/identity.hpp"
#include "geo/rng.hpp"
#include "geo/stats.hpp"
#include "routing/baselines.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace geo = citymesh::geo;
namespace routing = citymesh::routing;
namespace viz = citymesh::viz;
namespace cryptox = citymesh::cryptox;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_baselines", argc, argv};
  std::cout << "CityMesh baseline comparison (same mesh, same pairs)\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();
  emit.manifest().seeds["pair_rng"] = 2025;
  core::NetworkConfig net_cfg;
  core::CityMeshNetwork net{city, net_cfg};
  const auto& aps = net.aps();

  std::vector<geo::Point> positions;
  positions.reserve(aps.ap_count());
  for (const auto& ap : aps.aps()) positions.push_back(ap.position);

  struct Tally {
    std::size_t attempted = 0;
    std::size_t delivered = 0;
    std::vector<double> data_tx;
    std::vector<double> control_tx;
  };
  Tally citymesh_t, flood_t, greedy_t, aodv_t;

  geo::Rng rng{2025};
  const std::size_t kPairs = 30;
  std::size_t done = 0;
  std::size_t attempts = 0;
  while (done < kPairs && attempts < 400) {
    ++attempts;
    const auto from = static_cast<core::BuildingId>(rng.uniform_int(city.building_count()));
    const auto to = static_cast<core::BuildingId>(rng.uniform_int(city.building_count()));
    if (from == to) continue;
    const auto src_ap = aps.representative_ap(city, from);
    const auto dst_ap = aps.representative_ap(city, to);
    if (!src_ap || !dst_ap || !aps.connected(*src_ap, *dst_ap)) continue;
    ++done;

    // CityMesh conduit flood (full event simulation).
    const auto keys = cryptox::KeyPair::from_seed(9000 + done);
    const auto info = core::PostboxInfo::for_key(keys, to);
    if (net.register_postbox(info)) {
      static constexpr std::string_view kPayload = "baseline-compare";
      const std::span<const std::uint8_t> payload{
          reinterpret_cast<const std::uint8_t*>(kPayload.data()), kPayload.size()};
      const auto outcome = net.send(from, info, payload);
      ++citymesh_t.attempted;
      if (outcome.delivered) {
        ++citymesh_t.delivered;
        citymesh_t.data_tx.push_back(static_cast<double>(outcome.transmissions));
        citymesh_t.control_tx.push_back(0.0);
      }
    }

    // Unrestricted flood.
    const auto f = routing::flood_route(aps.graph(), *src_ap, *dst_ap, 10000);
    ++flood_t.attempted;
    if (f.delivered) {
      ++flood_t.delivered;
      flood_t.data_tx.push_back(static_cast<double>(f.data_transmissions));
      flood_t.control_tx.push_back(0.0);
    }

    // Greedy geographic forwarding.
    const auto g = routing::greedy_geo_route(aps.graph(), positions, *src_ap, *dst_ap);
    ++greedy_t.attempted;
    if (g.delivered) {
      ++greedy_t.delivered;
      greedy_t.data_tx.push_back(static_cast<double>(g.data_transmissions));
      greedy_t.control_tx.push_back(0.0);
    }

    // AODV-style reactive.
    const auto a = routing::aodv_route(aps.graph(), *src_ap, *dst_ap);
    ++aodv_t.attempted;
    if (a.delivered) {
      ++aodv_t.delivered;
      aodv_t.data_tx.push_back(static_cast<double>(a.data_transmissions));
      aodv_t.control_tx.push_back(static_cast<double>(a.control_transmissions));
    }
  }

  const auto row = [](const char* name, const Tally& t) {
    std::vector<std::string> r;
    r.emplace_back(name);
    r.push_back(viz::fmt(t.attempted
                             ? static_cast<double>(t.delivered) / t.attempted
                             : 0.0,
                         3));
    r.push_back(t.data_tx.empty() ? "-" : viz::fmt(geo::median(t.data_tx), 0));
    r.push_back(t.control_tx.empty() ? "-" : viz::fmt(geo::median(t.control_tx), 0));
    return r;
  };

  const std::vector<std::vector<std::string>> rows{
      row("citymesh (conduit flood)", citymesh_t), row("flood", flood_t),
      row("greedy geographic", greedy_t), row("aodv (reactive)", aodv_t)};
  viz::print_table(std::cout,
                   "Baselines over " + std::to_string(done) + " reachable pairs (" +
                       std::to_string(aps.ap_count()) + " APs)",
                   {"protocol", "delivery rate", "data tx (med)", "control tx (med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  emit.manifest().set_param("pairs", static_cast<std::uint64_t>(done));
  emit.add_metrics(net.metrics().snapshot());

  std::cout << "\nExpected shape: flood delivers everything at the highest data\n"
            << "cost; greedy is cheapest but drops pairs at dead ends; AODV's\n"
            << "data path is optimal but its control burst is component-sized;\n"
            << "CityMesh delivers nearly everything with zero control packets\n"
            << "and data cost far below flood.\n";
  return emit.finish();
}
