// Header-size statistics (§4 in-text result): "in a typical city simulation,
// the median and 90%ile packet header for the compressed source route are
// 175 and 225 bits."
//
// Plans 1000 random routes over the Boston profile, reports the encoded
// header size distribution with and without conduit compression, and the
// route-length statistics behind it.
#include <iostream>

#include "bench_util.hpp"
#include "core/route_planner.hpp"
#include "geo/rng.hpp"
#include "geo/stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"header_stats", argc, argv};
  std::cout << "CityMesh reproduction - compressed route header statistics\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  emit.manifest().seeds["route_rng"] = 404;
  const auto city = osmx::generate_city(profile);
  const core::BuildingGraph map{city, {}};
  const core::RoutePlanner planner{map, {}};

  geo::Rng rng{404};
  std::vector<double> compressed_bits;
  std::vector<double> raw_bits;
  std::vector<double> route_len;
  std::vector<double> waypoint_count;
  std::size_t attempts = 0;
  while (compressed_bits.size() < 1000 && attempts < 20000) {
    ++attempts;
    const auto a = static_cast<core::BuildingId>(rng.uniform_int(map.building_count()));
    const auto b = static_cast<core::BuildingId>(rng.uniform_int(map.building_count()));
    if (a == b) continue;
    const auto compressed = planner.plan(a, b);
    if (!compressed) continue;
    const auto raw = planner.plan_uncompressed(a, b);
    compressed_bits.push_back(static_cast<double>(compressed->header_bits));
    raw_bits.push_back(static_cast<double>(raw->header_bits));
    route_len.push_back(static_cast<double>(compressed->buildings.size()));
    waypoint_count.push_back(static_cast<double>(compressed->waypoints.size()));
  }

  const auto q = [](const std::vector<double>& v, double p) {
    return geo::quantile(v, p);
  };

  viz::print_table(
      std::cout, "Header size over 1000 planned routes (bits)",
      {"variant", "p50", "p90", "p99", "max"},
      {{"compressed (conduit waypoints)", viz::fmt(q(compressed_bits, 0.5), 0),
        viz::fmt(q(compressed_bits, 0.9), 0), viz::fmt(q(compressed_bits, 0.99), 0),
        viz::fmt(q(compressed_bits, 1.0), 0)},
       {"uncompressed (full building list)", viz::fmt(q(raw_bits, 0.5), 0),
        viz::fmt(q(raw_bits, 0.9), 0), viz::fmt(q(raw_bits, 0.99), 0),
        viz::fmt(q(raw_bits, 1.0), 0)}});

  std::cout << "  paper: median 175 bits, 90%ile 225 bits (compressed)\n";

  viz::print_table(
      std::cout, "Route shape",
      {"metric", "p50", "p90"},
      {{"route length (buildings)", viz::fmt(q(route_len, 0.5), 0),
        viz::fmt(q(route_len, 0.9), 0)},
       {"waypoints after compression", viz::fmt(q(waypoint_count, 0.5), 0),
        viz::fmt(q(waypoint_count, 0.9), 0)}});

  const double ratio = geo::median(raw_bits) / geo::median(compressed_bits);
  for (const double p : {0.5, 0.9, 0.99, 1.0}) {
    emit.row(viz::fmt(q(compressed_bits, p), 0));
    emit.row(viz::fmt(q(raw_bits, p), 0));
  }
  emit.row(viz::fmt(ratio, 1));
  emit.manifest().set_param("routes",
                            static_cast<std::uint64_t>(compressed_bits.size()));
  std::cout << "\nCompression shrinks the median header " << viz::fmt(ratio, 1)
            << "x vs encoding the full building route.\n";
  return emit.finish();
}
