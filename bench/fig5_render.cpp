// Figure 5 reproduction: a rendered section of a downtown area.
//  (a) building footprints,
//  (b) the same region with APs as dots and sub-50m links as gray lines,
//      at the paper's parameters (50 m range, 1 AP / 200 m^2).
// Writes fig5a_footprints.svg and fig5b_apgraph.svg and prints the mesh
// statistics of the rendered section.
#include <iostream>

#include "bench_util.hpp"
#include "mesh/ap_network.hpp"
#include "osmx/citygen.hpp"
#include "viz/svg.hpp"

namespace osmx = citymesh::osmx;
namespace mesh = citymesh::mesh;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig5_render", argc, argv};
  std::cout << "CityMesh reproduction - Figure 5 (downtown section render)\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  const auto city = osmx::generate_city(profile);
  mesh::PlacementConfig placement;  // paper defaults: 1/200 m^2, 50 m
  const auto net = mesh::place_aps(city, placement);

  // The downtown survey region is the rendered section.
  geo::Rect section = city.extent();
  for (const auto& region : city.regions()) {
    if (region.type == osmx::AreaType::kDowntown) {
      section = region.bounds;
      break;
    }
  }

  // (a) footprints in red, like the paper's left panel.
  viz::SvgScene a{section, 900.0};
  std::size_t buildings_in_section = 0;
  for (const auto& b : city.buildings()) {
    if (!section.contains(b.centroid)) continue;
    a.add_polygon(b.footprint, "#c0392b");
    ++buildings_in_section;
  }
  const bool a_ok = a.write_file("fig5a_footprints.svg");

  // (b) dark background, footprints dimmed, APs as white dots, links gray.
  viz::SvgScene b{section, 900.0};
  b.add_polygon(geo::Polygon::rectangle(section), "#1a1a2e");
  for (const auto& bd : city.buildings()) {
    if (!section.contains(bd.centroid)) continue;
    b.add_polygon(bd.footprint, "#5b2333", "none", 0.0, 0.9);
  }
  std::size_t aps_in_section = 0;
  std::size_t links_in_section = 0;
  for (const auto& ap : net.aps()) {
    if (!section.contains(ap.position)) continue;
    ++aps_in_section;
    for (const auto& e : net.graph().neighbors(ap.id)) {
      if (e.to < ap.id) continue;  // draw each link once
      const geo::Point other = net.ap(e.to).position;
      if (!section.contains(other)) continue;
      b.add_line(ap.position, other, "#888888", 0.5, 0.6);
      ++links_in_section;
    }
  }
  for (const auto& ap : net.aps()) {
    if (section.contains(ap.position)) b.add_circle(ap.position, 1.6, "#ffffff");
  }
  const bool b_ok = b.write_file("fig5b_apgraph.svg");

  std::cout << "  section: " << section.width() << " x " << section.height()
            << " m of downtown\n"
            << "  buildings rendered: " << buildings_in_section << '\n'
            << "  APs rendered:       " << aps_in_section << '\n'
            << "  links rendered:     " << links_in_section << '\n'
            << "  fig5a_footprints.svg " << (a_ok ? "written" : "FAILED") << '\n'
            << "  fig5b_apgraph.svg    " << (b_ok ? "written" : "FAILED") << '\n';

  std::cout << "\nWhole-city mesh at paper parameters (range 50 m, 1 AP/200 m^2):\n"
            << "  total APs:   " << net.ap_count() << '\n'
            << "  total links: " << net.graph().edge_count() << '\n'
            << "  mean degree: "
            << (net.ap_count()
                    ? 2.0 * static_cast<double>(net.graph().edge_count()) /
                          static_cast<double>(net.ap_count())
                    : 0.0)
            << '\n'
            << "  islands:     " << net.components().count << '\n';
  for (const std::size_t value :
       {buildings_in_section, aps_in_section, links_in_section,
        static_cast<std::size_t>(net.ap_count()),
        static_cast<std::size_t>(net.graph().edge_count()),
        static_cast<std::size_t>(net.components().count)}) {
    emit.row(std::to_string(value));
  }
  return emit.finish((a_ok && b_ok) ? 0 : 1);
}
