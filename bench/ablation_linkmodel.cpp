// Ablation: radio link model (the §6 "improve the fidelity of our
// simulations" future-work item).
//
// The paper's simulator uses a hard symmetric disc cutoff and itself calls
// the resulting range assumptions "conservative". This bench re-runs the
// Figure-6 protocol under a log-distance shadowing model (links certain
// below 0.6x range, impossible above 1.8x, linearly decaying between) on
// the cities where the disc model's percolation cliff bites hardest.
#include <iostream>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace mesh = citymesh::mesh;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_linkmodel", argc, argv};
  std::cout << "CityMesh ablation - disc vs shadowed link model\n";

  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 400;
  cfg.deliverability_pairs = 25;
  emit.manifest().set_param("reachability_pairs",
                            static_cast<std::uint64_t>(cfg.reachability_pairs));
  emit.manifest().set_param("deliverability_pairs",
                            static_cast<std::uint64_t>(cfg.deliverability_pairs));

  std::vector<std::vector<std::string>> rows;
  for (const std::string name : {"san_francisco", "seattle", "boston"}) {
    const auto profile = osmx::profile_by_name(name);
    emit.manifest().seeds[name] = profile.seed;
    const auto city = osmx::generate_city(profile);
    for (const auto model : {mesh::LinkModel::kDisc, mesh::LinkModel::kShadowed}) {
      cfg.network.placement.link_model = model;
      const auto eval = core::evaluate_city(city, cfg);
      emit.add_metrics(eval.metrics);
      rows.push_back({name, model == mesh::LinkModel::kDisc ? "disc" : "shadowed",
                      viz::fmt(eval.reachability(), 3),
                      viz::fmt(eval.deliverability(), 3),
                      eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1)});
    }
    std::cout << "  [" << name << "] done" << std::endl;
  }

  viz::print_table(std::cout, "Link-model ablation (range 50 m, 1 AP/200 m^2)",
                   {"city", "model", "reach", "deliver", "overhead(med)"}, rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: shadowing raises deliverability on the cities\n"
            << "where disc-model failures were 51-56 m near-miss street gaps\n"
            << "(san_francisco, seattle) - evidence the conservative cutoff, not\n"
            << "the routing algorithm, caused those losses.\n";
  return emit.finish();
}
