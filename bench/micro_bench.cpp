// Microbenchmarks (google-benchmark) for the hot paths of the CityMesh
// stack: route planning, conduit compression, the per-packet rebroadcast
// decision, header codec, spatial queries, the event engine, and the crypto
// primitives. These are the operations a real AP agent or sender executes
// per packet, so their costs bound achievable forwarding rates.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "core/ap_agent.hpp"
#include "core/building_graph.hpp"
#include "core/compiled_message.hpp"
#include "core/conduit.hpp"
#include "core/packet_pool.hpp"
#include "core/route_planner.hpp"
#include "cryptox/chacha20.hpp"
#include "cryptox/sealed.hpp"
#include "cryptox/sha256.hpp"
#include "geo/rng.hpp"
#include "geo/spatial_grid.hpp"
#include "graphx/graph.hpp"
#include "mesh/ap_network.hpp"
#include "osmx/citygen.hpp"
#include "qfgeo/qfgeo.hpp"
#include "relayx/policy.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "shardx/tiling.hpp"
#include "sim/medium.hpp"
#include "sim/simulator.hpp"
#include "trafficx/workload.hpp"
#include "wire/packet.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace geo = citymesh::geo;
namespace graphx = citymesh::graphx;
namespace wire = citymesh::wire;
namespace cryptox = citymesh::cryptox;

namespace {

const osmx::City& boston() {
  static const osmx::City city = osmx::generate_city(osmx::profile_by_name("boston"));
  return city;
}

const core::BuildingGraph& boston_map() {
  static const core::BuildingGraph map{boston(), {}};
  return map;
}

wire::PacketHeader typical_header() {
  wire::PacketHeader h;
  h.message_id = 0x1234abcd;
  h.postbox_tag = 0x9876fedc;
  h.waypoints = {40210, 40180, 39920, 39410, 38900, 38350, 38100};
  return h;
}

}  // namespace

// ------------------------------------------------------------- planning ---

static void BM_RoutePlan(benchmark::State& state) {
  const core::RoutePlanner planner{boston_map(), {}};
  geo::Rng rng{1};
  const auto n = boston_map().building_count();
  for (auto _ : state) {
    const auto a = static_cast<core::BuildingId>(rng.uniform_int(n));
    const auto b = static_cast<core::BuildingId>(rng.uniform_int(n));
    benchmark::DoNotOptimize(planner.plan(a, b));
  }
}
BENCHMARK(BM_RoutePlan)->Unit(benchmark::kMillisecond);

static void BM_ConduitCompress(benchmark::State& state) {
  const auto& map = boston_map();
  // One long fixed route.
  geo::Rng rng{2};
  std::vector<core::BuildingId> route;
  const core::RoutePlanner planner{map, {}};
  while (route.size() < 20) {
    const auto a = static_cast<core::BuildingId>(rng.uniform_int(map.building_count()));
    const auto b = static_cast<core::BuildingId>(rng.uniform_int(map.building_count()));
    const auto planned = planner.plan_uncompressed(a, b);
    if (planned) route = planned->buildings;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compress_route(route, map, {}));
  }
  state.SetLabel(std::to_string(route.size()) + " buildings");
}
BENCHMARK(BM_ConduitCompress);

static void BM_RebroadcastDecision(benchmark::State& state) {
  const auto& map = boston_map();
  // A real cross-town route's header so the conduit count is representative.
  // The very last ids can sit across the river from building 0; walk back
  // until a spanning route exists.
  const core::RoutePlanner planner{map, {}};
  std::optional<core::PlannedRoute> route;
  for (auto target = static_cast<core::BuildingId>(map.building_count() - 1);
       target > 0 && (!route || route->waypoints.size() < 4); --target) {
    route = planner.plan(0, target);
  }
  wire::PacketHeader h = typical_header();
  if (route) h.waypoints = route->waypoints;
  const auto building = static_cast<core::BuildingId>(map.building_count() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::should_rebroadcast(h, map, building));
  }
  state.SetLabel(std::to_string(h.waypoints.size()) + " waypoints");
}
BENCHMARK(BM_RebroadcastDecision);

namespace {

// Shared setup for the per-reception cost comparison: a real cross-town
// route's header (same construction as BM_RebroadcastDecision).
wire::PacketHeader crosstown_header() {
  const auto& map = boston_map();
  const core::RoutePlanner planner{map, {}};
  std::optional<core::PlannedRoute> route;
  for (auto target = static_cast<core::BuildingId>(map.building_count() - 1);
       target > 0 && (!route || route->waypoints.size() < 4); --target) {
    route = planner.plan(0, target);
  }
  wire::PacketHeader h = typical_header();
  if (route) h.waypoints = route->waypoints;
  return h;
}

}  // namespace

// The full per-reception pipeline the pre-compile ApAgent ran on every hop:
// decode the header bytes, rebuild the ConduitPath, point-test the centroid.
static void BM_RebroadcastDecisionLegacy(benchmark::State& state) {
  const auto& map = boston_map();
  const wire::PacketHeader h = crosstown_header();
  const auto enc = wire::encode_header(h);
  const auto building = static_cast<core::BuildingId>(map.building_count() / 2);
  for (auto _ : state) {
    const wire::PacketHeader decoded = wire::decode_header(enc.bytes);
    benchmark::DoNotOptimize(core::should_rebroadcast(decoded, map, building));
  }
  state.SetLabel(std::to_string(h.waypoints.size()) + " waypoints");
}
BENCHMARK(BM_RebroadcastDecisionLegacy);

// The same decision against a shared CompiledMessage: one hash-set lookup,
// zero allocations. The ratio to Legacy is the per-reception win the
// compile-once refactor banks on every hop of a flood.
static void BM_RebroadcastDecisionCompiled(benchmark::State& state) {
  const auto& map = boston_map();
  const core::CompiledMessage msg = core::compile_message(crosstown_header(), map);
  const auto building = static_cast<core::BuildingId>(map.building_count() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.conduit_member(building));
  }
  state.SetLabel(std::to_string(msg.members.size()) + " member buildings");
}
BENCHMARK(BM_RebroadcastDecisionCompiled);

// The one-time price of compiling a message (decode + conduit rebuild +
// grid-driven member-set construction): paid once per distinct message,
// amortized over every reception that previously paid Legacy.
static void BM_MessageCompile(benchmark::State& state) {
  const auto& map = boston_map();
  core::MessageCompiler compiler{map};
  const auto enc = wire::encode_header(crosstown_header());
  for (auto _ : state) {
    compiler.clear_memo();  // force a real compile, not a memo hit
    benchmark::DoNotOptimize(compiler.compile_bytes(enc.bytes));
  }
}
BENCHMARK(BM_MessageCompile);

// ---------------------------------------------------------------- qfgeo ---

// One-time QF-Geo region plan for a cross-town pair: ellipse construction +
// grid-prefiltered member-set build (src/qfgeo). The qfgeo counterpart of
// BM_MessageCompile — paid once per distinct message, amortized over every
// reception.
static void BM_QfgeoRegionPlan(benchmark::State& state) {
  const auto& map = boston_map();
  const geo::Point src = map.centroid(0);
  const geo::Point dst = map.centroid(
      static_cast<core::BuildingId>(map.building_count() - 1));
  std::size_t members = 0;
  for (auto _ : state) {
    const auto region = citymesh::qfgeo::make_region(src, dst, {});
    const auto set = citymesh::qfgeo::region_members(region, map.centroid_grid());
    members = set.size();
    benchmark::DoNotOptimize(set.size());
  }
  state.SetLabel(std::to_string(members) + " member buildings");
}
BENCHMARK(BM_QfgeoRegionPlan);

// The per-reception in-region membership check under protocol=qfgeo: same
// one-hash-lookup collapse as BM_RebroadcastDecisionCompiled, against the
// ellipse member set instead of the conduit corridor.
static void BM_QfgeoMembershipCheck(benchmark::State& state) {
  const auto& map = boston_map();
  wire::PacketHeader h = typical_header();
  h.waypoints = {0, static_cast<core::BuildingId>(map.building_count() - 1)};
  const core::CompiledMessage msg = core::compile_message_qfgeo(h, map, {});
  const auto building = static_cast<core::BuildingId>(map.building_count() / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.conduit_member(building));
  }
  state.SetLabel(std::to_string(msg.members.size()) + " member buildings");
}
BENCHMARK(BM_QfgeoMembershipCheck);

// The greedy next-hop election entry: the pure-arithmetic delay every
// in-region progress-making receiver computes per reception (no RNG, no
// allocation — it must stay in the ns regime like the flood elect).
static void BM_QfgeoForwardDelay(benchmark::State& state) {
  const citymesh::qfgeo::ForwarderConfig config;
  double my = 480.0;
  std::size_t queued = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        citymesh::qfgeo::forward_delay(config, my, 500.0, queued));
    my = my > 460.0 ? my - 1.0 : 480.0;
    queued = (queued + 1) % 4;
  }
}
BENCHMARK(BM_QfgeoForwardDelay);

// --------------------------------------------------------------- relayx ---

namespace {

const citymesh::mesh::ApNetwork& boston_aps() {
  static const citymesh::mesh::ApNetwork net =
      citymesh::mesh::place_aps(boston(), {});
  return net;
}

// Receptions cycling over real (ap, neighbor) link pairs, so observe() pays
// a representative CSR neighbor scan and elect() a representative score sum.
std::vector<citymesh::relayx::Reception> link_receptions() {
  const auto& net = boston_aps();
  std::vector<citymesh::relayx::Reception> rx;
  for (citymesh::mesh::ApId ap = 0; ap < net.ap_count() && rx.size() < 4096; ++ap) {
    for (const auto& edge : net.graph().neighbors(ap)) {
      rx.push_back({ap, static_cast<citymesh::mesh::ApId>(edge.to), 1, 0.0});
      if (rx.size() >= 4096) break;
    }
  }
  return rx;
}

}  // namespace

// The flood fast path: the per-reception policy cost the golden-gated
// default pipeline adds over the bare membership check. Must stay in the
// low-ns regime (it is a virtual call returning a constant).
static void BM_RelayPolicyFloodElect(benchmark::State& state) {
  const auto policy = citymesh::relayx::make_policy({}, boston_aps());
  const auto rx = link_receptions();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->elect(rx[i]));
    if (++i == rx.size()) i = 0;
  }
}
BENCHMARK(BM_RelayPolicyFloodElect);

// etx-priority election: per-AP link-quality score (CSR row scan) + one RNG
// draw. The most expensive shipped decision path; bounds the rate at which
// a loaded AP can arm rebroadcast timers.
static void BM_RelayPolicyEtxElect(benchmark::State& state) {
  citymesh::relayx::PolicyConfig config;
  config.kind = citymesh::relayx::PolicyKind::kEtxPriority;
  const auto policy = citymesh::relayx::make_policy(config, boston_aps());
  const auto rx = link_receptions();
  for (const auto& r : rx) policy->observe(r);  // warm the link estimates
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy->elect(rx[i]));
    if (++i == rx.size()) i = 0;
  }
}
BENCHMARK(BM_RelayPolicyEtxElect);

// etx-priority link-estimate update: runs on *every* reception, duplicates
// included, so it must stay cheaper than the elect path.
static void BM_RelayPolicyEtxObserve(benchmark::State& state) {
  citymesh::relayx::PolicyConfig config;
  config.kind = citymesh::relayx::PolicyKind::kEtxPriority;
  const auto policy = citymesh::relayx::make_policy(config, boston_aps());
  const auto rx = link_receptions();
  std::size_t i = 0;
  for (auto _ : state) {
    policy->observe(rx[i]);
    if (++i == rx.size()) i = 0;
  }
}
BENCHMARK(BM_RelayPolicyEtxObserve);

static void BM_BuildingGraphConstruction(benchmark::State& state) {
  for (auto _ : state) {
    const core::BuildingGraph map{boston(), {}};
    benchmark::DoNotOptimize(map.graph().edge_count());
  }
  state.SetLabel(std::to_string(boston().building_count()) + " buildings");
}
BENCHMARK(BM_BuildingGraphConstruction)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------- codec ---

static void BM_HeaderEncode(benchmark::State& state) {
  const auto h = typical_header();
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::encode_header(h));
  }
}
BENCHMARK(BM_HeaderEncode);

static void BM_HeaderDecode(benchmark::State& state) {
  const auto enc = wire::encode_header(typical_header());
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::decode_header(enc.bytes));
  }
}
BENCHMARK(BM_HeaderDecode);

// -------------------------------------------------------------- spatial ---

static void BM_SpatialGridQuery(benchmark::State& state) {
  geo::Rng rng{3};
  std::vector<geo::Point> pts;
  for (int i = 0; i < 20000; ++i) {
    pts.push_back({rng.uniform(0, 3000), rng.uniform(0, 3000)});
  }
  const geo::SpatialGrid grid{50.0, pts};
  for (auto _ : state) {
    const geo::Point c{rng.uniform(0, 3000), rng.uniform(0, 3000)};
    benchmark::DoNotOptimize(grid.query_radius(c, 50.0));
  }
}
BENCHMARK(BM_SpatialGridQuery);

// --------------------------------------------------------------- engine ---

static void BM_EventEngineThroughput(benchmark::State& state) {
  for (auto _ : state) {
    citymesh::sim::Simulator s;
    int count = 0;
    std::function<void()> tick = [&] {
      if (++count < 10000) s.schedule_in(1e-3, tick);
    };
    s.schedule_at(0.0, tick);
    s.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventEngineThroughput)->Unit(benchmark::kMillisecond);

// Hold model (the classic calendar-queue benchmark): keep N events pending
// and repeatedly pop-then-push, so cost per operation is measured at a
// steady queue depth. Arg is the pending-set size; one run per scheduler
// kind at 10^3..10^6 shows where the heap's log N starts to bite.
//
// The mean ns/op hides the calendar's occupancy-rebuild tail: a resize
// redistributes every pending event in one push, so a single op can cost
// O(N) while the amortized figure stays flat. A probe lap after the timed
// loop times each op individually and keeps the worst one; the maxima land
// in the per-run counters and, via main(), in the manifest params (outside
// the digest — they are machine-dependent).
static std::map<std::string, double> g_hold_max_ns;

static void BM_SchedulerHold(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? citymesh::sim::SchedulerKind::kHeap
                                        : citymesh::sim::SchedulerKind::kCalendar;
  const std::size_t pending = static_cast<std::size_t>(state.range(1));
  citymesh::sim::EventQueue q{kind};
  geo::Rng rng{7};
  double now = 0.0;
  std::uint64_t seq = 0;
  const double window = 2.0 / static_cast<double>(pending);
  // Prime at the equilibrium distribution (all pending within one recycling
  // window) and run one warmup lap outside the timing loop, so the measured
  // cost is the steady state, not the adaptive width converging.
  for (std::size_t i = 0; i < pending; ++i)
    q.push({rng.uniform(0.0, window), seq++, nullptr, citymesh::sim::InlineFn{}});
  const auto hold_op = [&] {
    citymesh::sim::EventRecord ev = q.pop();
    now = ev.time;
    ev.time = now + rng.uniform(0.0, window) + 1e-6;
    ev.seq = seq++;
    q.push(std::move(ev));
  };
  for (std::size_t i = 0; i < pending; ++i) hold_op();
  for (auto _ : state) hold_op();
  // Probe lap: 2N ops timed one by one (outside the benchmark loop, so the
  // clock reads never distort the ns/op figure). 2N guarantees the pending
  // set fully recycles at least once, which is what trips a calendar
  // rebuild if the width has drifted.
  double max_ns = 0.0;
  for (std::size_t i = 0; i < 2 * pending; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    hold_op();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    max_ns = std::max(max_ns, ns);
  }
  state.counters["max_op_ns"] = benchmark::Counter(max_ns);
  const std::string key = "hold_max_ns." +
                          std::string{citymesh::sim::to_string(kind)} + "." +
                          std::to_string(pending);
  g_hold_max_ns[key] = std::max(g_hold_max_ns[key], max_ns);
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(std::string{citymesh::sim::to_string(kind)});
}
BENCHMARK(BM_SchedulerHold)
    ->ArgsProduct({{0, 1}, {1'000, 10'000, 100'000, 1'000'000}});

// Packet materialization: the pooled allocate_shared path each send/ack
// takes versus the make_shared it replaced.
static void BM_PacketAlloc(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  citymesh::core::PacketPool pool{1024};
  const std::vector<std::uint8_t> header(48, 0xab);
  for (auto _ : state) {
    std::shared_ptr<const citymesh::core::MeshPacket> p;
    if (pooled) {
      p = pool.make(citymesh::core::MeshPacket{header, {}, 1, nullptr});
    } else {
      p = std::make_shared<const citymesh::core::MeshPacket>(
          citymesh::core::MeshPacket{header, {}, 1, nullptr});
    }
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pooled ? "pooled" : "make_shared");
}
BENCHMARK(BM_PacketAlloc)->Arg(0)->Arg(1);

// One broadcast through the medium fan-out: per-reception scheduling versus
// the batched single-queue-node path, on a degree-~10 star topology.
static void BM_MediumFanout(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  graphx::GraphBuilder b{11};
  for (graphx::VertexId v = 1; v <= 10; ++v) b.add_edge(0, v, 30.0 + v);
  const graphx::Graph topo = b.build();
  struct P {
    std::uint32_t id;
  };
  for (auto _ : state) {
    citymesh::sim::Simulator s;
    citymesh::sim::MediumConfig cfg;
    cfg.jitter_s = 0.0;
    cfg.batched_delivery = batched;
    citymesh::sim::BroadcastMedium<P> medium{s, topo, cfg};
    std::size_t seen = 0;
    medium.set_delivery_handler(
        [&seen](citymesh::sim::NodeId, citymesh::sim::NodeId,
                const std::shared_ptr<const P>&) { ++seen; });
    const auto packet = std::make_shared<const P>(P{1});
    for (int i = 0; i < 100; ++i) {
      s.schedule_at(static_cast<double>(i) * 1e-3,
                    [&medium, packet] { medium.transmit(0, packet); });
    }
    s.run();
    benchmark::DoNotOptimize(seen);
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // 100 tx x 10 receptions
  state.SetLabel(batched ? "batched" : "per-reception");
}
BENCHMARK(BM_MediumFanout)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------- shardx ---

// The per-barrier handoff exchange primitive the tiled engine (src/shardx +
// core::CityMeshNetwork::run_tiled) pays per cross-tile reception: sort the
// drained outboxes into the deterministic (time, src_tile, seq) ingestion
// order, then schedule each into the destination tile's simulator without
// touching the latency histogram. Bounds the cost of chatty tile cuts.
static void BM_ShardxHandoffEnqueue(benchmark::State& state) {
  constexpr std::size_t kBatch = 512;
  struct Handoff {
    double time_s;
    std::uint32_t src_tile;
    std::uint64_t seq;
  };
  geo::Rng rng{11};
  std::vector<Handoff> outbox;
  for (std::size_t i = 0; i < kBatch; ++i) {
    outbox.push_back({1.0 + rng.uniform(0.0, 1e-3),
                      static_cast<std::uint32_t>(rng.uniform_int(8)), i});
  }
  std::vector<Handoff> batch;
  for (auto _ : state) {
    citymesh::sim::Simulator dst;
    batch = outbox;
    std::sort(batch.begin(), batch.end(), [](const Handoff& a, const Handoff& b) {
      if (a.time_s != b.time_s) return a.time_s < b.time_s;
      if (a.src_tile != b.src_tile) return a.src_tile < b.src_tile;
      return a.seq < b.seq;
    });
    for (const auto& h : batch) dst.schedule_at_unrecorded(h.time_s, [] {});
    benchmark::DoNotOptimize(dst.next_time());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ShardxHandoffEnqueue);

// Tiling + lookahead-window computation for a real city: the one-time setup
// price of the tiled engine (grid partition, cut-edge enumeration, min cut
// delay). Paid once per network construction, amortized over the whole run.
static void BM_ShardxPlanAndLookahead(benchmark::State& state) {
  const core::BuildingGraph& map = boston_map();
  const auto& net = boston_aps();
  const std::size_t shards = static_cast<std::size_t>(state.range(0));
  std::size_t cuts = 0;
  for (auto _ : state) {
    const auto plan = citymesh::shardx::plan_tiles(
        map.centroid_grid(), map.building_count(), net, shards);
    cuts = plan.cross.size();
    benchmark::DoNotOptimize(
        citymesh::shardx::lookahead_s(plan.cross, 1e-3, 3.34e-9));
  }
  state.SetLabel(std::to_string(cuts) + " cut edges");
}
BENCHMARK(BM_ShardxPlanAndLookahead)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

// -------------------------------------------------------------- traffic ---

static void BM_FlowScheduleCompile(benchmark::State& state) {
  citymesh::trafficx::WorkloadSpec spec;
  spec.seed = 9;
  spec.duration_s = 20.0;
  spec.rate_per_s = 64.0;
  spec.spatial = citymesh::trafficx::SpatialMode::kHotspot;
  std::size_t flows = 0;
  for (auto _ : state) {
    const auto schedule = citymesh::trafficx::compile(spec, boston());
    flows = schedule.flows.size();
    benchmark::DoNotOptimize(schedule.digest());
  }
  state.SetLabel(std::to_string(flows) + " flows");
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_FlowScheduleCompile)->Unit(benchmark::kMillisecond);

// The per-packet cost a saturated AP pays: a transmit that finds the channel
// busy takes the deferral fast path (queue push, no event scheduled). The
// drain at the end amortizes the completion/fan-out machinery over the batch.
static void BM_MediumBusyChannelDefer(benchmark::State& state) {
  using Medium = citymesh::sim::BroadcastMedium<int>;
  constexpr int kBatch = 64;
  citymesh::graphx::GraphBuilder builder{2};
  builder.add_edge(0, 1, 10.0);
  const citymesh::graphx::Graph topology = builder.build();
  citymesh::sim::MediumConfig config;
  config.prop_delay_s_per_m = 0.0;
  config.jitter_s = 0.0;
  config.bitrate_bps = 1e6;
  config.frame_overhead_bits = 1000;
  config.tx_queue_capacity = kBatch;
  const auto packet = std::make_shared<const int>(7);
  for (auto _ : state) {
    citymesh::sim::Simulator s;
    Medium medium{s, topology, config};
    // First transmit claims the channel; the rest hit the busy path.
    for (int i = 0; i < kBatch; ++i) medium.transmit(0, packet);
    s.run();
    benchmark::DoNotOptimize(medium.deferrals());
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_MediumBusyChannelDefer);

// ----------------------------------------------------------------- runx ---

namespace {

// A small town keeps the compile benches fast while still exercising the
// full citygen -> building graph -> AP placement pipeline.
osmx::CityProfile cache_bench_profile() {
  osmx::CityProfile p;
  p.name = "cache-bench-town";
  p.width_m = 800;
  p.height_m = 800;
  p.seed = 17;
  return p;
}

}  // namespace

// Cold compile: the price every grid point of a sweep would pay without the
// shared compiled-city cache.
static void BM_CityCacheColdCompile(benchmark::State& state) {
  const auto profile = cache_bench_profile();
  for (auto _ : state) {
    citymesh::runx::CityCache cache;
    benchmark::DoNotOptimize(cache.get(profile, {}));
  }
}
BENCHMARK(BM_CityCacheColdCompile)->Unit(benchmark::kMillisecond);

// Cache hit: the lookup every subsequent same-city grid point pays instead.
static void BM_CityCacheHit(benchmark::State& state) {
  const auto profile = cache_bench_profile();
  citymesh::runx::CityCache cache;
  cache.get(profile, {});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(profile, {}));
  }
}
BENCHMARK(BM_CityCacheHit);

// Engine dispatch overhead: 256 no-op jobs, so the measured cost is grid
// setup + the atomic work cursor + the index-order merge fold (plus thread
// spawn/join at arg > 1). Real runs amortize this over seconds of
// simulation per job.
static void BM_RunxDispatch(benchmark::State& state) {
  constexpr std::size_t kJobs = 256;
  const citymesh::runx::RunFn noop = [](const citymesh::runx::RunJob& job) {
    citymesh::runx::RunResult r;
    r.cells = {std::to_string(job.index)};
    return r;
  };
  const std::size_t workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<citymesh::runx::RunJob> grid(kJobs);
    const auto report = citymesh::runx::run_jobs(std::move(grid), noop, {workers});
    benchmark::DoNotOptimize(report.digest);
  }
  state.SetItemsProcessed(state.iterations() * kJobs);
}
BENCHMARK(BM_RunxDispatch)->Arg(1)->Arg(4);

// --------------------------------------------------------------- crypto ---

static void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryptox::Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

static void BM_ChaCha20_1KiB(benchmark::State& state) {
  const cryptox::ChaChaKey key{1, 2, 3};
  const cryptox::ChaChaNonce nonce{4, 5};
  std::vector<std::uint8_t> data(1024, 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cryptox::chacha20_xor(key, nonce, 1, data));
  }
  state.SetBytesProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ChaCha20_1KiB);

static void BM_X25519SharedSecret(benchmark::State& state) {
  const auto a = cryptox::KeyPair::from_seed(1);
  const auto b = cryptox::KeyPair::from_seed(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.shared_secret(b.public_key()));
  }
}
BENCHMARK(BM_X25519SharedSecret);

static void BM_SealUnseal(benchmark::State& state) {
  const auto alice = cryptox::KeyPair::from_seed(1);
  const auto bob = cryptox::KeyPair::from_seed(2);
  const std::string msg(256, 'm');
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto sealed = cryptox::seal(alice, bob.public_key(), msg, ++seed);
    benchmark::DoNotOptimize(cryptox::unseal(bob, sealed));
  }
}
BENCHMARK(BM_SealUnseal);

// Custom main instead of benchmark_main: the ManifestEmitter peels its
// --json flag off argv before google-benchmark sees (and rejects) it.
int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"micro_bench", argc, argv};
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const std::size_t ran = benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  // Hold-model tail latencies (one param per scheduler kind x pending
  // size). Machine-dependent, so they live in the manifest params, never in
  // the digest row.
  for (const auto& [key, max_ns] : g_hold_max_ns) {
    emit.manifest().set_param(key, max_ns);
  }
  emit.manifest().set_param("benchmarks_run", static_cast<std::uint64_t>(ran));
  emit.row(std::to_string(ran));
  return emit.finish();
}
