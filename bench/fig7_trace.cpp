// Figure 7 reproduction: a single simulation trace rendered as SVG.
//
// Unlike the other figure benches this one goes through the obsx trace
// layer end to end: the delivery is recorded into the network's TraceBuffer,
// written out as fig7_trace.jsonl, read *back* from that file, and the
// figure is rendered purely from the recorded event stream (roles derived
// with core::roles_from_trace) — proving a stored trace carries everything
// the figure needs.
//
// Green line: the building route selected by CityMesh's route algorithm.
// Light blue dots: APs inside the rebroadcast conduit that transmitted.
// Red dots: APs that received the packet but did not rebroadcast (outside
// the conduit). Writes fig7_trace.svg and prints the delivery statistics.
#include <fstream>
#include <iostream>
#include <sstream>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "cryptox/sealed.hpp"
#include "obsx/trace.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"
#include "viz/svg.hpp"

namespace core = citymesh::core;
namespace obsx = citymesh::obsx;
namespace osmx = citymesh::osmx;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;
namespace cryptox = citymesh::cryptox;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig7_trace", argc, argv};
  std::cout << "CityMesh reproduction - Figure 7 (single simulation trace)\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  const auto city = osmx::generate_city(profile);
  core::NetworkConfig cfg;  // paper defaults
  core::CityMeshNetwork net{city, cfg};

  // A cross-town pair: lower-left quadrant to upper-right quadrant.
  const geo::Point extent{city.extent().max};
  core::BuildingId src = 0;
  core::BuildingId dst = 0;
  double best_src = 1e18;
  double best_dst = 1e18;
  for (const auto& b : city.buildings()) {
    const double d_src = geo::distance(b.centroid, {extent.x * 0.18, extent.y * 0.2});
    const double d_dst = geo::distance(b.centroid, {extent.x * 0.82, extent.y * 0.66});
    if (d_src < best_src) {
      best_src = d_src;
      src = b.id;
    }
    if (d_dst < best_dst) {
      best_dst = d_dst;
      dst = b.id;
    }
  }

  const auto bob = cryptox::KeyPair::from_seed(2024);
  const auto info = core::PostboxInfo::for_key(bob, dst);
  if (!net.register_postbox(info)) {
    std::cerr << "destination building has no APs; rerun with another seed\n";
    return 1;
  }

  // Record the whole delivery into the network's trace buffer.
  net.trace().enable();
  const auto alice = cryptox::KeyPair::from_seed(2025);
  const auto sealed = cryptox::seal(alice, info.public_key, "fig7 payload", 7);
  const auto outcome = net.send(src, info, sealed.serialize());

  // Persist the event stream, then reload it: the figure below is rendered
  // only from what survived the JSONL round trip.
  const char* jsonl_path = "fig7_trace.jsonl";
  {
    std::ofstream out{jsonl_path};
    obsx::write_trace_jsonl(out, net.trace());
    if (!out) {
      std::cerr << "failed to write " << jsonl_path << '\n';
      return 1;
    }
  }
  std::ifstream in{jsonl_path};
  std::string error;
  const auto events = obsx::read_trace_jsonl(in, &error);
  if (!events) {
    std::cerr << "failed to re-read trace: " << error << '\n';
    return 1;
  }
  const core::TraceRoles roles =
      core::roles_from_trace(*events, outcome.message_id);

  std::cout << "  route: " << outcome.route.buildings.size() << " buildings -> "
            << outcome.route.waypoints.size() << " waypoints ("
            << outcome.header_bits << " header bits)\n"
            << "  delivered: " << (outcome.delivered ? "yes" : "NO") << " after "
            << viz::fmt(outcome.delivery_time_s * 1000.0, 1) << " ms\n"
            << "  trace events:       " << events->size() << " (from " << jsonl_path
            << ")\n"
            << "  rebroadcasting APs: " << roles.rebroadcast.size() << '\n'
            << "  receive-only APs:   " << roles.received_only.size() << '\n';
  if (outcome.min_hops) {
    std::cout << "  ideal unicast hops: " << *outcome.min_hops << '\n';
  }
  if (const auto oh = outcome.overhead()) {
    std::cout << "  transmission overhead: " << viz::fmt(*oh, 1)
              << "x  (paper reports 13x median)\n";
  }

  emit.manifest().set_param("trace_events",
                            static_cast<std::uint64_t>(events->size()));
  emit.manifest().set_param("message_id",
                            static_cast<std::uint64_t>(outcome.message_id));
  for (const auto& e : *events) emit.row(obsx::trace_line(e));
  emit.add_metrics(net.metrics().snapshot());

  // Render — from the reloaded trace roles, not from the live outcome.
  viz::SvgScene scene{city.extent(), 1100.0};
  for (const auto& water : city.water()) scene.add_polygon(water, "#a8c8e8");
  for (const auto& b : city.buildings()) scene.add_polygon(b.footprint, "#e0e0e0");

  for (const auto ap : roles.received_only) {
    scene.add_circle(net.aps().ap(ap).position, 1.4, "#d62728", 0.8);  // red
  }
  for (const auto ap : roles.rebroadcast) {
    scene.add_circle(net.aps().ap(ap).position, 1.6, "#56b4e9");  // light blue
  }
  std::vector<geo::Point> route_line;
  for (const auto b : outcome.route.buildings) {
    route_line.push_back(city.building(b).centroid);
  }
  scene.add_polyline(route_line, "#2ca02c", 2.5);  // green
  scene.add_circle(city.building(src).centroid, 5.0, "#2ca02c");
  scene.add_circle(city.building(dst).centroid, 5.0, "#9467bd");
  scene.add_text({20, city.extent().max.y - 30},
                 "green: building route; blue: conduit APs (rebroadcast); "
                 "red: received only");

  const bool ok = scene.write_file("fig7_trace.svg");
  std::cout << "  fig7_trace.svg " << (ok ? "written" : "FAILED") << '\n';
  return emit.finish(ok && outcome.delivered ? 0 : 1);
}
