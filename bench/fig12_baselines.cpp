// Figure 12 (extension): conduit flooding vs QF-Geo bounded-region greedy
// forwarding as *live* protocol families (src/qfgeo).
//
// The paper's §5 argument dismisses classical mesh routing on state-
// maintenance grounds but never runs a stateless geographic competitor.
// QF-Geo (arXiv 2305.05718) is the closest published relative: no planned
// route, no per-node routing state — packets are forwarded greedily by
// distance to the destination, but only inside a bounded ellipse between
// source and destination, with each forwarding election penalized by the
// candidate's transmit-queue depth (capacity awareness).
//
// This bench re-runs the repo's three headline cells with the protocol as a
// grid axis:
//   eval       the Figure-6 reachability/deliverability/overhead protocol
//   blackout   the Figure-8 shape: a standing central blackout, then the
//              snapshot protocol over the surviving mesh (override the
//              built-in scenario with --scenario FILE)
//   load@R     the Figure-9 shape: an airtime-contention workload at two
//              offered rates spanning the capacity knee
//
// Expected shape: conduit wins overhead (the corridor scopes the flood
// tighter than the ellipse scopes the election), QF-Geo wins deliverability
// at the margins — its region needs no plannable building route, so it
// delivers where the planner's corridor misses, and under load its queue
// penalty routes around the saturating hotspot.
//
// Composes with --jobs N (worker threads), --shards N (tiled engine inside
// each run), --policy NAME (relayx policy: the conduit rebroadcast decision,
// and QF-Geo's fallback-flood/geo-broadcast path), --scenario FILE, and
// --quick. Rows and digest are byte-identical for any --jobs and --shards.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "core/network.hpp"
#include "faultx/engine.hpp"
#include "faultx/scenario.hpp"
#include "faultx/spec.hpp"
#include "geo/geometry.hpp"
#include "osmx/citygen.hpp"
#include "relayx/policy.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/workload.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace faultx = citymesh::faultx;
namespace geo = citymesh::geo;
namespace osmx = citymesh::osmx;
namespace relayx = citymesh::relayx;
namespace runx = citymesh::runx;
namespace trafficx = citymesh::trafficx;
namespace viz = citymesh::viz;

namespace {

constexpr core::Protocol kProtocols[] = {core::Protocol::kConduit,
                                         core::Protocol::kQfgeo};
constexpr double kRates[] = {2.0, 10.0};
constexpr double kQuickRates[] = {4.0};
constexpr double kDurationS = 15.0;
constexpr double kQuickDurationS = 5.0;
constexpr double kBitrateBps = 125e3;
constexpr std::size_t kQueueSlots = 2;
constexpr std::size_t kPairs = 300;
constexpr std::size_t kDeliver = 25;
constexpr std::size_t kQuickPairs = 120;
constexpr std::size_t kQuickDeliver = 10;
constexpr std::uint64_t kWorkloadSeed = 1212;
constexpr double kBlackoutFraction = 0.25;

core::NetworkConfig network_config(core::Protocol protocol,
                                   std::optional<relayx::PolicyKind> policy,
                                   std::size_t shards) {
  core::NetworkConfig config;
  config.placement.seed = 7;
  config.seed = 99;
  config.medium.bitrate_bps = kBitrateBps;
  config.medium.tx_queue_capacity = kQueueSlots;
  // Draw-free regime (the fig10 discipline): zero jitter and zero loss is
  // what makes rows identical across every --shards count, tiled or legacy.
  config.medium.jitter_s = 0.0;
  config.medium.loss_probability = 0.0;
  config.protocol = protocol;
  config.shards = shards;
  if (policy) config.relay.kind = *policy;
  return config;
}

trafficx::WorkloadSpec workload_spec(double rate_per_s, double duration_s) {
  trafficx::WorkloadSpec spec;
  spec.name = "fig12";
  spec.seed = kWorkloadSeed;
  spec.duration_s = duration_s;
  spec.rate_per_s = rate_per_s;
  spec.spatial = trafficx::SpatialMode::kHotspot;
  spec.hotspot_bias = 16.0;
  spec.payload_min_bytes = 256;
  spec.payload_max_bytes = 512;
  return spec;
}

// The central block of the city extent, blacked out at t=0 (the fig11
// standing-outage shape); --scenario FILE replaces it.
faultx::Scenario blackout_scenario(const osmx::City& city) {
  const geo::Rect& e = city.extent();
  const geo::Point c{(e.min.x + e.max.x) / 2.0, (e.min.y + e.max.y) / 2.0};
  const double s = std::sqrt(kBlackoutFraction);
  const double hw = e.width() * s / 2.0;
  const double hh = e.height() * s / 2.0;
  faultx::Scenario scenario;
  scenario.name = "fig12-blackout";
  scenario.seed = 812;
  faultx::BlackoutEvent blackout;
  blackout.region =
      geo::Polygon::rectangle({{c.x - hw, c.y - hh}, {c.x + hw, c.y + hh}});
  blackout.at_s = 0.0;
  scenario.blackouts.push_back(std::move(blackout));
  return scenario;
}

/// The three cell kinds of the matrix; load appears once per rate.
enum class Cell : std::uint8_t { kEval, kBlackout, kLoad };

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig12_baselines", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  bool quick = false;
  std::size_t shards = 1;
  std::optional<relayx::PolicyKind> policy;
  std::string scenario_file;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        quick = true;
      } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
        shards = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
        if (shards == 0) shards = 1;
      } else if (std::strcmp(argv[i], "--policy") == 0 && i + 1 < argc) {
        policy = relayx::policy_kind_from(argv[++i]);
        if (!policy) {
          std::cerr << "unknown --policy " << argv[i] << '\n';
          return 2;
        }
      } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
        scenario_file = argv[++i];
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
  }
  const double duration_s = quick ? kQuickDurationS : kDurationS;
  const std::size_t pairs = quick ? kQuickPairs : kPairs;
  const std::size_t deliver = quick ? kQuickDeliver : kDeliver;
  const std::span<const double> rates =
      quick ? std::span<const double>{kQuickRates} : std::span<const double>{kRates};

  // An explicit scenario file is parsed once, up front, on this thread.
  std::optional<faultx::Scenario> file_scenario;
  if (!scenario_file.empty()) {
    std::ifstream file{scenario_file};
    if (!file) {
      std::cerr << "cannot open " << scenario_file << '\n';
      return 1;
    }
    std::string error;
    const auto parsed = faultx::parse_scenario(file, &error);
    if (!parsed) {
      std::cerr << scenario_file << ": " << error << '\n';
      return 1;
    }
    file_scenario = parsed->scenario;
  }

  std::cout << "CityMesh extension - Figure 12 (conduit vs QF-Geo baselines)\n"
            << "both live protocol families over the eval / blackout / load"
               " matrix (" << runx::resolve_jobs(n_jobs) << " worker thread(s)"
            << (shards > 1 ? ", " + std::to_string(shards) + " tiles/run" : "")
            << (quick ? ", --quick grid" : "") << ")\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    profiles.push_back(osmx::profile_by_name("boston"));
  }

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().seeds["workload"] = kWorkloadSeed;
  emit.manifest().set_param("duration_s", duration_s);
  emit.manifest().set_param("bitrate_bps", kBitrateBps);
  emit.manifest().set_param("pairs", static_cast<std::uint64_t>(pairs));
  emit.manifest().set_param("deliver", static_cast<std::uint64_t>(deliver));
  emit.manifest().set_param("quick", quick ? std::uint64_t{1} : std::uint64_t{0});
  if (policy) emit.manifest().set_param("policy", relayx::to_string(*policy));
  if (!scenario_file.empty()) emit.manifest().set_param("scenario", scenario_file);
  // --jobs and --shards are deliberately NOT recorded: manifests from any
  // worker/tile count must stay byte-identical (wall_clock_s aside).

  // One run per (city, protocol, cell). The compiled mesh is shared through
  // the cache (neither the protocol nor the relay policy keys the compile);
  // each run owns a fresh network.
  std::vector<Cell> cells{Cell::kEval, Cell::kBlackout};
  std::vector<double> cell_rates{0.0, 0.0};
  for (const double rate : rates) {
    cells.push_back(Cell::kLoad);
    cell_rates.push_back(rate);
  }
  const std::size_t n_points = std::size(kProtocols) * cells.size();
  std::vector<runx::RunJob> grid;
  for (const auto& profile : profiles) {
    emit.manifest().seeds[profile.name] = profile.seed;
    for (const auto protocol : kProtocols) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        runx::RunJob job;
        job.city = profile.name;
        job.seed = kWorkloadSeed;
        job.point = std::string{core::to_string(protocol)} + " " +
                    (cells[c] == Cell::kEval       ? std::string{"eval"}
                     : cells[c] == Cell::kBlackout ? std::string{"blackout"}
                                                   : "load@" + viz::fmt(cell_rates[c], 1));
        grid.push_back(std::move(job));
      }
    }
  }
  runx::CityCache cache;
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto& profile = profiles[job.index / n_points];
    const std::size_t local = job.index % n_points;
    const auto protocol = kProtocols[local / cells.size()];
    const std::size_t c = local % cells.size();
    const Cell cell = cells[c];

    const core::NetworkConfig config = network_config(protocol, policy, shards);
    const auto compiled = cache.get(profile, config);

    runx::RunResult result;
    result.cells = {profile.name, std::string{core::to_string(protocol)}};
    switch (cell) {
      case Cell::kEval: {
        core::EvaluationConfig cfg;
        cfg.reachability_pairs = pairs;
        cfg.deliverability_pairs = deliver;
        cfg.network = config;
        cfg.seed = kWorkloadSeed;
        const core::CityEvaluation eval = core::evaluate_city(compiled, cfg);
        result.cells.insert(
            result.cells.end(),
            {std::string{"eval"}, std::to_string(eval.aps),
             viz::fmt(eval.reachability(), 3), viz::fmt(eval.deliverability(), 3),
             eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
             eval.header_bits.empty() ? "-"
                                      : viz::fmt(eval.median_header_bits(), 0),
             "-", "-"});
        result.metrics = eval.metrics;
        break;
      }
      case Cell::kBlackout: {
        core::CityMeshNetwork network{compiled, config};
        faultx::ScenarioEngine engine{
            network, file_scenario ? *file_scenario
                                   : blackout_scenario(compiled->city)};
        engine.apply_all();
        core::SnapshotConfig snap_cfg;
        snap_cfg.pairs = pairs;
        snap_cfg.deliver_pairs = deliver;
        snap_cfg.seed = kWorkloadSeed;
        const core::NetworkSnapshot snap = core::evaluate_snapshot(network, snap_cfg);
        result.cells.insert(
            result.cells.end(),
            {std::string{"blackout"},
             std::to_string(snap.aps_up) + "/" + std::to_string(snap.aps_total),
             viz::fmt(snap.reachability(), 3), viz::fmt(snap.deliverability(), 3),
             "-", "-",
             std::to_string(snap.rescues_succeeded) + "/" +
                 std::to_string(snap.rescues_attempted),
             "-"});
        result.metrics = network.merged_metrics();
        break;
      }
      case Cell::kLoad: {
        core::CityMeshNetwork network{compiled, config};
        const auto schedule = trafficx::compile(
            workload_spec(cell_rates[c], duration_s), compiled->city);
        trafficx::RunConfig run_config;
        run_config.measure_overhead = true;
        const auto run = trafficx::run_workload(network, schedule, run_config);
        const core::CapacitySummary& s = run.summary;
        result.cells.insert(
            result.cells.end(),
            {"load@" + viz::fmt(cell_rates[c], 1), std::to_string(s.flows_offered),
             "-", viz::fmt(s.delivery_rate(), 3), viz::fmt(s.overhead_median, 1),
             "-", std::to_string(s.queue_drops),
             viz::fmt(s.latency_p50_s * 1e3, 1)});
        result.metrics = run.metrics;
        break;
      }
    }
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].city << " " << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].city, report.jobs[i].point,
                      "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout,
                   "Figure 12: conduit vs QF-Geo (eval / blackout / load matrix)",
                   {"city", "protocol", "cell", "APs|offered", "reach", "deliver",
                    "overhead", "hdr bits", "rescued|drops", "p50 ms"},
                   rows);

  // Head-to-head summary: QF-Geo vs the conduit run of the same (city, cell).
  std::vector<std::vector<std::string>> duel;
  for (std::size_t ci = 0; ci < profiles.size(); ++ci) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const std::size_t conduit_i = ci * n_points + c;
      const std::size_t qfgeo_i = ci * n_points + cells.size() + c;
      if (!report.results[conduit_i].ok() || !report.results[qfgeo_i].ok()) continue;
      const auto& cc = report.results[conduit_i].cells;
      const auto& qc = report.results[qfgeo_i].cells;
      const double d_deliver = (std::stod(qc[5]) - std::stod(cc[5])) * 100.0;
      std::string overhead = "-";
      if (cc[6] != "-" && qc[6] != "-") {
        const double q = std::stod(qc[6]);
        overhead = q > 0.0 ? viz::fmt(std::stod(cc[6]) / q, 2) + "x" : "-";
      }
      duel.push_back({cc[0], cc[2],
                      (d_deliver >= 0.0 ? "+" : "") + viz::fmt(d_deliver, 1) + "pp",
                      overhead});
    }
  }
  viz::print_table(std::cout,
                   "QF-Geo vs conduit (deliverability delta, conduit/qfgeo overhead)",
                   {"city", "cell", "deliver delta", "overhead ratio"}, duel);

  citymesh::benchutil::digest_rows(emit, rows);
  citymesh::benchutil::digest_rows(emit, duel);
  std::cout << "\nDeterminism digest: " << emit.digest_hex()
            << "  (same seed => same digest for any --jobs/--shards)\n"
            << "Expected shape: conduit's corridor scopes the flood tighter\n"
            << "(lower overhead); QF-Geo's plan-free region delivers where the\n"
            << "corridor misses and its queue penalty defers around hotspots.\n";
  return emit.finish();
}
