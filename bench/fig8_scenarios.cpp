// Figure 8 (extension): deliverability under regional blackouts.
//
// The paper motivates CityMesh as a *fallback* network for infrastructure
// failures (§1) but evaluates only healthy meshes. This bench quantifies the
// fallback story: a downtown blackout polygon grows from 0% to 60% of the
// downtown core's area, and at each outage size we re-run the Fig-6
// reachability/deliverability protocol over the surviving mesh — including
// `send_reliable` width-escalation rescues of first-try failures.
//
// Expected shape: reachability degrades gracefully while the outage stays
// inside the core (floods detour around it through the surrounding fabric);
// once the dead zone spans the core, pairs straddling downtown lose every
// conduit and deliverability collapses. Rescue widths recover some of the
// grazing failures but cannot cross a fully dead region.
//
// Everything is seeded (placement, scenario expansion, pair sampling), so a
// second run of this binary prints byte-identical rows; the determinism
// digest at the bottom makes the comparison a one-line diff.
//
// Pass city names as arguments to restrict the run (default: boston,
// chicago, washington_dc). Writes fig8_scenario.svg: the first city's mesh
// under the 30% blackout with one traced delivery attempt.
#include <cmath>
#include <cstdint>
#include <iostream>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "core/network.hpp"
#include "faultx/engine.hpp"
#include "faultx/render.hpp"
#include "faultx/scenario.hpp"
#include "osmx/citygen.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace faultx = citymesh::faultx;
namespace geo = citymesh::geo;
namespace osmx = citymesh::osmx;
namespace runx = citymesh::runx;
namespace viz = citymesh::viz;

namespace {

constexpr double kOutageFractions[] = {0.0, 0.1, 0.2, 0.3, 0.45, 0.6};
constexpr double kSvgFraction = 0.3;

// The downtown core of a generated city: the labeled kDowntown region when
// present, otherwise the central block of the extent (downtown_radius_frac
// defaults put the core roughly in the middle half).
geo::Rect downtown_bounds(const osmx::City& city) {
  for (const auto& region : city.regions()) {
    if (region.type == osmx::AreaType::kDowntown) return region.bounds;
  }
  const geo::Rect& e = city.extent();
  const geo::Point c{(e.min.x + e.max.x) / 2.0, (e.min.y + e.max.y) / 2.0};
  return {{c.x - e.width() * 0.25, c.y - e.height() * 0.25},
          {c.x + e.width() * 0.25, c.y + e.height() * 0.25}};
}

// A blackout rectangle covering `fraction` of the downtown core's area,
// concentric with it (both sides scale by sqrt(fraction)).
geo::Polygon blackout_region(const geo::Rect& downtown, double fraction) {
  const double s = std::sqrt(fraction);
  const geo::Point c{(downtown.min.x + downtown.max.x) / 2.0,
                     (downtown.min.y + downtown.max.y) / 2.0};
  const double hw = downtown.width() * s / 2.0;
  const double hh = downtown.height() * s / 2.0;
  return geo::Polygon::rectangle({{c.x - hw, c.y - hh}, {c.x + hw, c.y + hh}});
}

faultx::Scenario blackout_scenario(const std::string& city, double fraction,
                                   const geo::Rect& downtown) {
  faultx::Scenario scenario;
  scenario.name = city + "/blackout-" + viz::fmt(fraction * 100.0, 0) + "%";
  scenario.seed = 811;
  if (fraction > 0.0) {
    faultx::BlackoutEvent blackout;
    blackout.region = blackout_region(downtown, fraction);
    blackout.at_s = 0.0;
    scenario.blackouts.push_back(std::move(blackout));
  }
  return scenario;
}

core::NetworkConfig network_config() {
  core::NetworkConfig config;
  config.placement.seed = 7;
  config.seed = 99;
  return config;
}

// Fraction of downtown-core buildings that still have a live AP — the
// in-outage counterpart to the city-wide reachability column (the blackout
// is a small fraction of the whole city, so this is where the collapse
// actually shows).
double core_service_fraction(const core::CityMeshNetwork& network,
                             const geo::Rect& downtown) {
  std::size_t total = 0;
  std::size_t served = 0;
  for (const auto& b : network.city().buildings()) {
    if (!downtown.contains(b.centroid)) continue;
    ++total;
    if (network.live_ap(b.id)) ++served;
  }
  return total ? static_cast<double>(served) / static_cast<double>(total) : 0.0;
}

// One traced delivery across the blackout: the west-most and east-most
// buildings that still have a live AP. The planned conduit either detours
// around the dead zone or is severed by it — both render meaningfully.
void render_scenario(const osmx::CityProfile& profile, const std::string& path) {
  const osmx::City city = osmx::generate_city(profile);
  core::CityMeshNetwork network{city, network_config()};
  const geo::Rect downtown = downtown_bounds(city);
  faultx::ScenarioEngine engine{
      network, blackout_scenario(profile.name, kSvgFraction, downtown)};
  engine.apply_all();

  std::optional<osmx::BuildingId> west, east;
  for (const auto& b : city.buildings()) {
    if (!network.live_ap(b.id)) continue;
    if (!west || b.centroid.x < city.building(*west).centroid.x) west = b.id;
    if (!east || b.centroid.x > city.building(*east).centroid.x) east = b.id;
  }
  const core::SendOutcome* trace = nullptr;
  core::SendOutcome outcome;
  if (west && east && *west != *east) {
    const auto key = citymesh::cryptox::KeyPair::from_seed(31337);
    const core::PostboxInfo to = core::PostboxInfo::for_key(key, *east);
    network.register_postbox(to);
    const std::uint8_t payload[] = {'f', 'i', 'g', '8'};
    core::SendOptions opts;
    opts.collect_trace = true;
    outcome = network.send(*west, to, payload, opts);
    trace = &outcome;
  }

  if (faultx::render_scenario_svg(network, engine.scenario().outage_regions,
                                  trace, path)) {
    std::cout << "\nWrote " << path << " (" << profile.name << ", "
              << viz::fmt(kSvgFraction * 100.0, 0) << "% downtown blackout, "
              << (trace && outcome.delivered ? "delivered" : "not delivered")
              << ")\n";
  } else {
    std::cout << "\nFailed to write " << path << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig8_scenarios", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  std::cout << "CityMesh extension - Figure 8 (deliverability vs outage size)\n"
            << "blackout polygon grows over the downtown core; Fig-6 protocol\n"
            << "re-measured on the surviving mesh at each size ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    for (const char* name : {"boston", "chicago", "washington_dc"}) {
      profiles.push_back(osmx::profile_by_name(name));
    }
  }

  core::SnapshotConfig snapshot;
  snapshot.pairs = 400;
  snapshot.deliver_pairs = 25;
  snapshot.reliable_rescue = true;
  snapshot.seed = 4242;

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().seeds["snapshot"] = snapshot.seed;
  emit.manifest().seeds["scenario"] = 811;
  emit.manifest().set_param("pairs", static_cast<std::uint64_t>(snapshot.pairs));
  emit.manifest().set_param("deliver_pairs",
                            static_cast<std::uint64_t>(snapshot.deliver_pairs));

  // One run per (city, outage fraction) on the runx engine. Every point of a
  // city shares the same compiled mesh through the cache (the placement is
  // seeded and identical); each run builds its own fresh network over it so
  // the sweep varies only the outage size.
  const std::size_t n_fractions = std::size(kOutageFractions);
  std::vector<runx::RunJob> grid;
  for (const auto& profile : profiles) {
    emit.manifest().seeds[profile.name] = profile.seed;
    for (const double fraction : kOutageFractions) {
      runx::RunJob job;
      job.city = profile.name;
      job.seed = profile.seed;
      job.point = viz::fmt(fraction * 100.0, 0) + "%";
      grid.push_back(std::move(job));
    }
  }
  runx::CityCache cache;
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto& profile = profiles[job.index / n_fractions];
    const double fraction = kOutageFractions[job.index % n_fractions];
    const auto compiled = cache.get(profile, network_config());
    const geo::Rect downtown = downtown_bounds(compiled->city);
    core::CityMeshNetwork network{compiled, network_config()};
    faultx::ScenarioEngine engine{
        network, blackout_scenario(profile.name, fraction, downtown)};
    engine.apply_all();
    const core::NetworkSnapshot snap = core::evaluate_snapshot(network, snapshot);
    runx::RunResult result;
    result.cells = {profile.name, viz::fmt(fraction * 100.0, 0) + "%",
                    std::to_string(snap.aps_total - snap.aps_up),
                    viz::fmt(snap.up_fraction(), 3),
                    viz::fmt(core_service_fraction(network, downtown), 3),
                    viz::fmt(snap.reachability(), 3),
                    viz::fmt(snap.deliverability(), 3),
                    std::to_string(snap.rescues_succeeded) + "/" +
                        std::to_string(snap.rescues_attempted),
                    viz::fmt(snap.deliverability_with_rescue(), 3)};
    result.metrics = network.metrics().snapshot();
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].city << " " << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].city, report.jobs[i].point,
                      "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout,
                   "Figure 8: downtown blackout sweep (0-60% of core area)",
                   {"city", "outage", "APs down", "up frac", "core srv", "reach",
                    "deliver", "rescued", "deliver+rescue"},
                   rows);

  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nDeterminism digest: " << emit.digest_hex()
            << "  (same seed => same digest across runs)\n"
            << "Expected shape: graceful reachability decay while the outage\n"
            << "stays inside the core, collapse once it spans downtown; wider\n"
            << "rescue conduits recover grazing failures only.\n";

  render_scenario(profiles.front(), "fig8_scenario.svg");
  return emit.finish();
}
