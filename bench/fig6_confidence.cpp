// Statistical companion to the Figure-6 reproduction: re-runs the protocol
// over several independent AP placements per city and reports mean +/- std
// for each metric. The paper evaluates one realization per city; this bench
// shows how much of the headline table is placement variance (answer: very
// little for reachability and overhead, a few points for deliverability).
// `--jobs N` runs the per-city replications on N worker threads (identical
// rows and digest for any N).
#include <iostream>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "osmx/citygen.hpp"
#include "runx/engine.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace runx = citymesh::runx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig6_confidence", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::cout << "CityMesh - Figure 6 with " << seeds << "-seed confidence ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";
  emit.manifest().set_param("placements", static_cast<std::uint64_t>(seeds));

  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 500;
  cfg.deliverability_pairs = 25;

  const auto pm = [](const citymesh::geo::RunningStats& s, int prec) {
    return viz::fmt(s.mean(), prec) + " +/- " + viz::fmt(s.stddev(), prec);
  };

  // One run per city. evaluate_city_seeds re-places APs per replication, so
  // the compiled-city cache does not apply; each run generates its own city
  // (deterministic in the profile) and owns all mutable state.
  const std::vector<std::string> names = {"boston", "washington_dc", "new_york",
                                          "miami"};
  std::vector<runx::RunJob> grid;
  for (const auto& name : names) {
    const auto profile = osmx::profile_by_name(name);
    emit.manifest().seeds[name] = profile.seed;
    runx::RunJob job;
    job.city = name;
    job.seed = profile.seed;
    job.point = "confidence";
    grid.push_back(std::move(job));
  }
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto city = osmx::generate_city(osmx::profile_by_name(job.city));
    const auto multi = core::evaluate_city_seeds(city, cfg, seeds);
    runx::RunResult result;
    result.cells = {job.city, pm(multi.reachability, 3), pm(multi.deliverability, 3),
                    pm(multi.median_overhead, 1), pm(multi.median_header_bits, 0)};
    result.metrics = multi.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << names[i] << "] failed: " << report.results[i].error << '\n';
      rows.push_back({names[i], "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout,
                   "Figure 6 metrics, mean +/- std over " + std::to_string(seeds) +
                       " placements",
                   {"city", "reach", "deliver", "overhead(med)", "hdr bits(med)"}, rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nReading: city-to-city differences in Figure 6 (e.g. the DC\n"
            << "fracture) are far larger than the placement noise within a city,\n"
            << "so the paper's single-realization table is representative.\n";
  return emit.finish();
}
