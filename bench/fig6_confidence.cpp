// Statistical companion to the Figure-6 reproduction: re-runs the protocol
// over several independent AP placements per city and reports mean +/- std
// for each metric. The paper evaluates one realization per city; this bench
// shows how much of the headline table is placement variance (answer: very
// little for reachability and overhead, a few points for deliverability).
#include <iostream>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig6_confidence", argc, argv};
  const std::size_t seeds = argc > 1 ? std::stoul(argv[1]) : 5;
  std::cout << "CityMesh - Figure 6 with " << seeds << "-seed confidence\n";
  emit.manifest().set_param("placements", static_cast<std::uint64_t>(seeds));

  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 500;
  cfg.deliverability_pairs = 25;

  const auto pm = [](const citymesh::geo::RunningStats& s, int prec) {
    return viz::fmt(s.mean(), prec) + " +/- " + viz::fmt(s.stddev(), prec);
  };

  std::vector<std::vector<std::string>> rows;
  for (const std::string name : {"boston", "washington_dc", "new_york", "miami"}) {
    const auto profile = osmx::profile_by_name(name);
    emit.manifest().seeds[name] = profile.seed;
    const auto city = osmx::generate_city(profile);
    const auto multi = core::evaluate_city_seeds(city, cfg, seeds);
    emit.add_metrics(multi.metrics);
    rows.push_back({name, pm(multi.reachability, 3), pm(multi.deliverability, 3),
                    pm(multi.median_overhead, 1), pm(multi.median_header_bits, 0)});
    std::cout << "  [" << name << "] done" << std::endl;
  }

  viz::print_table(std::cout,
                   "Figure 6 metrics, mean +/- std over " + std::to_string(seeds) +
                       " placements",
                   {"city", "reach", "deliver", "overhead(med)", "hdr bits(med)"}, rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nReading: city-to-city differences in Figure 6 (e.g. the DC\n"
            << "fracture) are far larger than the placement noise within a city,\n"
            << "so the paper's single-realization table is representative.\n";
  return emit.finish();
}
