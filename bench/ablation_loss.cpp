// Robustness: deliverability vs per-link loss probability.
//
// The conduit flood is redundant by construction - every in-conduit
// building's APs rebroadcast - so moderate link loss should barely dent
// delivery, unlike a unicast path where per-hop loss compounds. This sweep
// quantifies that redundancy margin (and shows where it runs out).
#include <cmath>
#include <iostream>

#include "bench_util.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_loss", argc, argv};
  std::cout << "CityMesh robustness - deliverability vs link loss\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();

  std::vector<std::vector<std::string>> rows;
  for (const double loss : {0.0, 0.05, 0.10, 0.20, 0.30, 0.50}) {
    auto cfg = citymesh::benchutil::sweep_config();
    cfg.network.medium.loss_probability = loss;
    const auto eval = core::evaluate_city(city, cfg);
    emit.add_metrics(eval.metrics);
    // A 20-hop unicast path at this loss rate, for contrast.
    const double unicast20 = std::pow(1.0 - loss, 20);
    rows.push_back({viz::fmt(loss * 100, 0) + "%", viz::fmt(eval.deliverability(), 2),
                    viz::fmt(unicast20, 2),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1)});
    std::cout << "  loss " << loss * 100 << "% done" << std::endl;
  }

  viz::print_table(std::cout, "Link-loss sweep (ablation-town)",
                   {"per-link loss", "conduit deliver", "20-hop unicast", "overhead(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: the conduit flood holds near-baseline delivery\n"
            << "through 20-30% loss while an un-retransmitted 20-hop unicast path\n"
            << "would already be hopeless - the redundancy the paper buys with\n"
            << "its 13x transmission overhead.\n";
  return emit.finish();
}
