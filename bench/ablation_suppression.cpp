// Ablation: same-building rebroadcast suppression (the paper's §4 remark
// that the 13x overhead exists "because currently all the APs within a
// building rebroadcast ... we are confident that this overhead can be
// reduced").
//
// With suppression on (the relayx building-backoff policy), an AP delays
// its rebroadcast by a random backoff and cancels it when it overhears a
// copy from another AP of its own building. The sweep shows the overhead
// saving grows with AP density (more same-building duplicates to cancel) at
// essentially unchanged deliverability.
#include <iostream>

#include "bench_util.hpp"
#include "relayx/policy.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace relayx = citymesh::relayx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"ablation_suppression", argc, argv};
  std::cout << "CityMesh ablation - same-building rebroadcast suppression\n";
  const auto city = citymesh::benchutil::ablation_city();
  emit.manifest().city = city.name();

  std::vector<std::vector<std::string>> rows;
  for (const double m2_per_ap : {200.0, 100.0, 50.0}) {
    double deliver[2] = {0.0, 0.0};
    double overhead[2] = {0.0, 0.0};
    for (int suppressed = 0; suppressed < 2; ++suppressed) {
      auto cfg = citymesh::benchutil::sweep_config();
      cfg.network.placement.density_per_m2 = 1.0 / m2_per_ap;
      cfg.network.relay.kind = suppressed == 1 ? relayx::PolicyKind::kBuildingBackoff
                                               : relayx::PolicyKind::kFlood;
      const auto eval = core::evaluate_city(city, cfg);
      emit.add_metrics(eval.metrics);
      deliver[suppressed] = eval.deliverability();
      overhead[suppressed] = eval.overheads.empty() ? 0.0 : eval.median_overhead();
    }
    rows.push_back({"1/" + viz::fmt(m2_per_ap, 0) + " m^2", viz::fmt(deliver[0], 2),
                    viz::fmt(overhead[0], 1), viz::fmt(deliver[1], 2),
                    viz::fmt(overhead[1], 1),
                    overhead[1] > 0.0
                        ? viz::fmt((1.0 - overhead[1] / overhead[0]) * 100.0, 0) + "%"
                        : "-"});
    std::cout << "  density 1/" << m2_per_ap << " m^2 done" << std::endl;
  }

  viz::print_table(std::cout, "Suppression ablation (ablation-town)",
                   {"density", "deliver", "overhead", "deliver(sup)", "overhead(sup)",
                    "saving"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nExpected shape: suppression cuts overhead progressively more as\n"
            << "density grows (more same-building duplicates), with deliverability\n"
            << "essentially unchanged - implementing the reduction the paper\n"
            << "anticipates.\n";
  return emit.finish();
}
