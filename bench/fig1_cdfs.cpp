// Figure 1 reproduction.
//  (a) CDF of the number of MAC addresses seen in each measurement.
//      Paper medians: river 60 (worst), downtown 218 (best).
//  (b) CDF of the spread of locations where each MAC address was seen.
//      Paper medians: campus 54 m (smallest), river 168 m (largest),
//      i.e. transmission radii of 27 m and 84 m.
#include <iostream>

#include "bench_util.hpp"
#include "geo/stats.hpp"
#include "measure/survey.hpp"
#include "measure/survey_stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace osmx = citymesh::osmx;
namespace measure = citymesh::measure;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig1_cdfs", argc, argv};
  std::cout << "CityMesh reproduction - Figure 1 (survey CDFs)\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  const auto city = osmx::generate_city(profile);
  const auto datasets = measure::run_survey(city, {});

  std::vector<viz::CdfSeries> macs;
  std::vector<viz::CdfSeries> spreads;
  for (const auto& d : datasets) {
    macs.push_back({d.name, measure::macs_per_measurement(d)});
    spreads.push_back({d.name, measure::spread_per_ap(d)});
  }

  viz::print_cdf(std::cout, "Figure 1a: CDF of MAC addresses per measurement", macs,
                 "# MAC addresses");
  std::cout << "  paper medians: downtown 218 (best case), river 60 (worst case)\n";

  viz::print_cdf(std::cout, "Figure 1b: CDF of per-AP location spread", spreads,
                 "spread (m)");
  std::cout << "  paper medians: campus 54 m (smallest), river 168 m (largest)\n";

  std::cout << "\nDerived transmission radii (median spread / 2):\n";
  for (auto& s : spreads) {
    const std::string radius = viz::fmt(geo::median(s.values) / 2.0, 1);
    emit.row(s.label);
    emit.row(radius);
    std::cout << "  " << s.label << ": " << radius << " m\n";
  }
  for (auto& m : macs) {
    emit.row(m.label);
    emit.row(viz::fmt(geo::median(m.values), 1));
  }
  std::cout << "  paper: campus 27 m, river 84 m\n";
  return emit.finish();
}
