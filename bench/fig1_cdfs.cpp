// Figure 1 reproduction.
//  (a) CDF of the number of MAC addresses seen in each measurement.
//      Paper medians: river 60 (worst), downtown 218 (best).
//  (b) CDF of the spread of locations where each MAC address was seen.
//      Paper medians: campus 54 m (smallest), river 168 m (largest),
//      i.e. transmission radii of 27 m and 84 m.
#include <iostream>

#include "geo/stats.hpp"
#include "measure/survey.hpp"
#include "measure/survey_stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace osmx = citymesh::osmx;
namespace measure = citymesh::measure;
namespace geo = citymesh::geo;
namespace viz = citymesh::viz;

int main() {
  std::cout << "CityMesh reproduction - Figure 1 (survey CDFs)\n";

  const auto city = osmx::generate_city(osmx::profile_by_name("boston"));
  const auto datasets = measure::run_survey(city, {});

  std::vector<viz::CdfSeries> macs;
  std::vector<viz::CdfSeries> spreads;
  for (const auto& d : datasets) {
    macs.push_back({d.name, measure::macs_per_measurement(d)});
    spreads.push_back({d.name, measure::spread_per_ap(d)});
  }

  viz::print_cdf(std::cout, "Figure 1a: CDF of MAC addresses per measurement", macs,
                 "# MAC addresses");
  std::cout << "  paper medians: downtown 218 (best case), river 60 (worst case)\n";

  viz::print_cdf(std::cout, "Figure 1b: CDF of per-AP location spread", spreads,
                 "spread (m)");
  std::cout << "  paper medians: campus 54 m (smallest), river 168 m (largest)\n";

  std::cout << "\nDerived transmission radii (median spread / 2):\n";
  for (auto& s : spreads) {
    std::cout << "  " << s.label << ": " << viz::fmt(geo::median(s.values) / 2.0, 1)
              << " m\n";
  }
  std::cout << "  paper: campus 27 m, river 84 m\n";
  return 0;
}
