// Figure 11 (extension): the overhead/deliverability frontier of
// rebroadcast-suppression policies (src/relayx).
//
// The paper reports a 13x median transmission overhead for the conduit
// flood and conjectures it "can be reduced" (§4). This bench quantifies the
// trade: every relayx policy runs the same city-scale workload (src/
// trafficx, airtime-contention medium) at increasing offered load, with and
// without a downtown blackout (src/faultx), and reports where each policy
// lands on the overhead-vs-deliverability plane. Overhead is the paper's
// ratio measured per flow under concurrency: attributed broadcasts divided
// by the ideal unicast hop count (trafficx::RunConfig::measure_overhead).
//
// Expected shape: flood anchors the frontier at maximal overhead;
// building-backoff trims the same-building duplicates; counter-gossip and
// etx-priority cut the median by >=3x at light load while giving up at most
// a couple of points of deliverability. Under load the ranking *flips in
// flood's disfavor*: the redundant rebroadcasts saturate the shared channel,
// so suppression buys deliverability back (fewer deferrals and drops).
//
// Counter-gossip runs as a mini-axis of its own (kVariants): the
// cancel_copies suppression threshold (3/5/8 overheard copies) and the
// assessment window (250 ms vs 80 ms) sweep the policy along the frontier —
// lower thresholds and shorter windows trade residual overhead against
// deliverability at the loaded end.
//
// Everything is seeded; `--quick` shrinks the grid for smoke/CI runs and
// the determinism digest makes the two-run comparison a one-line diff.
// Pass city names as arguments to change the default (boston).
#include <cmath>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "core/network.hpp"
#include "faultx/engine.hpp"
#include "faultx/scenario.hpp"
#include "geo/geometry.hpp"
#include "osmx/citygen.hpp"
#include "relayx/policy.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/workload.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace faultx = citymesh::faultx;
namespace geo = citymesh::geo;
namespace osmx = citymesh::osmx;
namespace relayx = citymesh::relayx;
namespace runx = citymesh::runx;
namespace trafficx = citymesh::trafficx;
namespace viz = citymesh::viz;

namespace {

constexpr double kRates[] = {2.0, 16.0};
constexpr double kQuickRates[] = {4.0};
constexpr const char* kScenarios[] = {"clear", "blackout"};
constexpr double kDurationS = 20.0;
constexpr double kQuickDurationS = 6.0;
constexpr double kBitrateBps = 125e3;
constexpr std::size_t kQueueSlots = 2;
constexpr std::uint64_t kWorkloadSeed = 1111;
constexpr double kBlackoutFraction = 0.25;
// Assessment window for the overhearing policies. Cancel-on-overhear only
// sees copies that finished serializing inside the window, so it must span
// several serialization times (a 300-550 B packet takes ~20-35 ms at
// 125 kbps); the building-backoff policy keeps its legacy 0.02 s backoff —
// the golden-equivalent configuration — and pays for it with fewer cancels
// on a serializing channel.
constexpr double kAssessWindowS = 0.25;

// A policy point on the frontier grid. For counter-gossip the suppression
// threshold (`cancel_copies`) and assessment window are themselves axes:
// a smaller threshold suppresses earlier (cheaper, riskier), a shorter
// window sees fewer serialized copies before the relay decision fires.
// Zero fields mean "keep the policy's legacy default".
struct PolicyVariant {
  relayx::PolicyKind kind;
  std::size_t cancel_copies;  ///< 0 = policy default
  double assess_window_s;     ///< 0 = legacy 0.02 s backoff
  const char* label;
};
constexpr PolicyVariant kVariants[] = {
    {relayx::PolicyKind::kFlood, 0, 0.0, "flood"},
    {relayx::PolicyKind::kBuildingBackoff, 0, 0.0, "building-backoff"},
    {relayx::PolicyKind::kCounterGossip, 3, kAssessWindowS, "cgossip c3/w250"},
    {relayx::PolicyKind::kCounterGossip, 5, kAssessWindowS, "cgossip c5/w250"},
    {relayx::PolicyKind::kCounterGossip, 8, kAssessWindowS, "cgossip c8/w250"},
    {relayx::PolicyKind::kCounterGossip, 5, 0.08, "cgossip c5/w80"},
    {relayx::PolicyKind::kEtxPriority, 0, kAssessWindowS, "etx-priority"},
};

core::NetworkConfig network_config(const PolicyVariant& variant) {
  core::NetworkConfig config;
  config.placement.seed = 7;
  // The paper's 13x-overhead regime: one AP per ~50 m^2 of footprint. At
  // the default sparse placement the flood's median overhead is only ~4x
  // and there is little redundancy left to suppress; Figure 11 measures the
  // frontier where the redundancy actually lives.
  config.placement.density_per_m2 = 1.0 / 50.0;
  config.seed = 99;
  config.medium.bitrate_bps = kBitrateBps;
  config.medium.tx_queue_capacity = kQueueSlots;
  config.relay.kind = variant.kind;
  if (variant.assess_window_s > 0.0) {
    config.relay.backoff_s = variant.assess_window_s;
  }
  if (variant.cancel_copies > 0) {
    config.relay.cancel_copies = variant.cancel_copies;
  }
  return config;
}

trafficx::WorkloadSpec workload_spec(double rate_per_s, double duration_s) {
  trafficx::WorkloadSpec spec;
  spec.name = "fig11";
  spec.seed = kWorkloadSeed;
  spec.duration_s = duration_s;
  spec.rate_per_s = rate_per_s;
  spec.spatial = trafficx::SpatialMode::kHotspot;
  spec.hotspot_bias = 16.0;
  spec.payload_min_bytes = 256;
  spec.payload_max_bytes = 512;
  return spec;
}

// The central block of the city extent, blacked out at t=0 for the
// "blackout" scenario axis (no restoration: the workload rides through a
// standing partial outage).
faultx::Scenario blackout_scenario(const osmx::City& city) {
  const geo::Rect& e = city.extent();
  const geo::Point c{(e.min.x + e.max.x) / 2.0, (e.min.y + e.max.y) / 2.0};
  const double s = std::sqrt(kBlackoutFraction);
  const double hw = e.width() * s / 2.0;
  const double hh = e.height() * s / 2.0;
  faultx::Scenario scenario;
  scenario.name = "fig11-blackout";
  scenario.seed = 811;
  faultx::BlackoutEvent blackout;
  blackout.region =
      geo::Polygon::rectangle({{c.x - hw, c.y - hh}, {c.x + hw, c.y + hh}});
  blackout.at_s = 0.0;
  scenario.blackouts.push_back(std::move(blackout));
  return scenario;
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig11_frontier", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  bool quick = false;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        quick = true;
      } else {
        argv[out++] = argv[i];
      }
    }
    argc = out;
    argv[argc] = nullptr;
  }
  const double duration_s = quick ? kQuickDurationS : kDurationS;
  const std::span<const double> rates =
      quick ? std::span<const double>{kQuickRates} : std::span<const double>{kRates};

  std::cout << "CityMesh extension - Figure 11 (overhead/deliverability frontier)\n"
            << "relayx rebroadcast policies under offered load, with and without\n"
            << "a downtown blackout (" << runx::resolve_jobs(n_jobs)
            << " worker thread(s)" << (quick ? ", --quick grid" : "") << ")\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    profiles.push_back(osmx::profile_by_name("boston"));
  }

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().seeds["workload"] = kWorkloadSeed;
  emit.manifest().set_param("duration_s", duration_s);
  emit.manifest().set_param("bitrate_bps", kBitrateBps);
  emit.manifest().set_param("blackout_fraction", kBlackoutFraction);
  emit.manifest().set_param("quick", quick ? std::uint64_t{1} : std::uint64_t{0});

  // One run per (city, policy, rate, scenario). All points of a city share
  // the compiled mesh through the cache (the relay policy is not part of the
  // compile key); each run owns a fresh network so only policy/load/faults
  // vary.
  const std::size_t n_scen = std::size(kScenarios);
  const std::size_t n_points = std::size(kVariants) * rates.size() * n_scen;
  std::vector<runx::RunJob> grid;
  for (const auto& profile : profiles) {
    emit.manifest().seeds[profile.name] = profile.seed;
    for (const auto& variant : kVariants) {
      for (const double rate : rates) {
        for (const char* scenario : kScenarios) {
          runx::RunJob job;
          job.city = profile.name;
          job.seed = kWorkloadSeed;
          job.point = std::string{variant.label} + " " + viz::fmt(rate, 1) +
                      "/s " + scenario;
          grid.push_back(std::move(job));
        }
      }
    }
  }
  runx::CityCache cache;
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto& profile = profiles[job.index / n_points];
    const std::size_t local = job.index % n_points;
    const auto& variant = kVariants[local / (rates.size() * n_scen)];
    const double rate = rates[(local / n_scen) % rates.size()];
    const bool blackout = local % n_scen == 1;

    const core::NetworkConfig config = network_config(variant);
    const auto compiled = cache.get(profile, config);
    core::CityMeshNetwork network{compiled, config};

    std::optional<faultx::ScenarioEngine> engine;
    if (blackout) {
      engine.emplace(network, blackout_scenario(compiled->city));
      engine->install();
    }

    const auto schedule = trafficx::compile(workload_spec(rate, duration_s),
                                            compiled->city);
    trafficx::RunConfig run_config;
    run_config.measure_overhead = true;
    const auto run = trafficx::run_workload(network, schedule, run_config);
    const core::CapacitySummary& s = run.summary;
    const relayx::RebroadcastPolicy& relay = network.relay_policy();

    runx::RunResult result;
    result.cells = {profile.name,
                    std::string{variant.label},
                    viz::fmt(rate, 1),
                    blackout ? "blackout" : "clear",
                    std::to_string(s.flows_offered),
                    viz::fmt(s.delivery_rate(), 3),
                    viz::fmt(s.overhead_median, 1),
                    std::to_string(s.transmissions),
                    std::to_string(relay.cancelled()),
                    std::to_string(s.deferrals),
                    std::to_string(s.queue_drops),
                    viz::fmt(s.latency_p50_s * 1e3, 1)};
    result.metrics = run.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].city << " " << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].city, report.jobs[i].point,
                      "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout,
                   "Figure 11: overhead/deliverability frontier (relayx policies)",
                   {"city", "policy", "rate/s", "scenario", "offered", "deliver",
                    "overhead", "tx", "cancelled", "deferrals", "drops", "p50 ms"},
                   rows);

  // Frontier summary: each policy vs the flood anchor of its (city, rate,
  // scenario) cell — overhead reduction factor and deliverability delta.
  std::vector<std::vector<std::string>> frontier;
  const std::size_t per_policy = rates.size() * n_scen;
  for (std::size_t c = 0; c < profiles.size(); ++c) {
    for (std::size_t p = 1; p < std::size(kVariants); ++p) {
      for (std::size_t k = 0; k < per_policy; ++k) {
        const std::size_t flood_i = c * n_points + k;
        const std::size_t policy_i = c * n_points + p * per_policy + k;
        if (!report.results[flood_i].ok() || !report.results[policy_i].ok()) continue;
        const auto& fc = report.results[flood_i].cells;
        const auto& pc = report.results[policy_i].cells;
        const double flood_overhead = std::stod(fc[6]);
        const double policy_overhead = std::stod(pc[6]);
        const double d_deliver = (std::stod(pc[5]) - std::stod(fc[5])) * 100.0;
        frontier.push_back(
            {fc[0], pc[1], fc[2], fc[3],
             policy_overhead > 0.0 ? viz::fmt(flood_overhead / policy_overhead, 1) + "x"
                                   : "-",
             (d_deliver >= 0.0 ? "+" : "") + viz::fmt(d_deliver, 1) + "pp"});
      }
    }
  }
  viz::print_table(std::cout, "Frontier vs flood (overhead cut, deliverability delta)",
                   {"city", "policy", "rate/s", "scenario", "overhead cut",
                    "deliver delta"},
                   frontier);

  citymesh::benchutil::digest_rows(emit, rows);
  citymesh::benchutil::digest_rows(emit, frontier);
  std::cout << "\nDeterminism digest: " << emit.digest_hex()
            << "  (same seed => same digest across runs)\n"
            << "Expected shape: flood anchors the frontier at maximal overhead;\n"
            << "counter-gossip and etx-priority cut the median >=3x at a\n"
            << "deliverability cost within a couple of points, and past the\n"
            << "contention knee suppression wins deliverability back outright.\n";
  return emit.finish();
}
