// Figure 6 reproduction: reachability, deliverability, and transmission
// overhead between pairs of buildings across the ten city profiles.
//
// Protocol (matching §4): 50 m symmetric transmission range, 1 AP / 200 m^2.
// 1000 random building pairs test reachability over the AP graph; 50 of the
// reachable pairs run through the full event simulation for deliverability
// and transmission overhead.
//
// Paper shape to reproduce: most cities have high reachability and, given
// reachability, high deliverability; water-fractured cities (Washington
// D.C.) show depressed reachability; median overhead is O(10x) (the paper
// reports 13x) against the ideal unicast path.
//
// Pass city names as arguments to restrict the run (default: all ten).
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "geo/stats.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig6_cities", argc, argv};
  std::cout << "CityMesh reproduction - Figure 6 (per-city evaluation)\n"
            << "range 50 m, density 1 AP/200 m^2, 1000 reachability pairs,\n"
            << "50 deliverability pairs per city\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    profiles = osmx::default_profiles();
  }

  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 1000;
  cfg.deliverability_pairs = 50;

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().set_param("reachability_pairs",
                            static_cast<std::uint64_t>(cfg.reachability_pairs));
  emit.manifest().set_param("deliverability_pairs",
                            static_cast<std::uint64_t>(cfg.deliverability_pairs));
  emit.manifest().set_param("cities", static_cast<std::uint64_t>(profiles.size()));

  std::vector<std::vector<std::string>> rows;
  std::vector<double> all_overheads;
  for (const auto& profile : profiles) {
    const auto city = osmx::generate_city(profile);
    const auto eval = core::evaluate_city(city, cfg);
    emit.manifest().seeds[profile.name] = profile.seed;
    emit.add_metrics(eval.metrics);
    rows.push_back({eval.city, std::to_string(eval.buildings), std::to_string(eval.aps),
                    std::to_string(eval.ap_major_islands), viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
                    eval.header_bits.empty() ? "-"
                                             : viz::fmt(eval.median_header_bits(), 0)});
    all_overheads.insert(all_overheads.end(), eval.overheads.begin(),
                         eval.overheads.end());
    std::cout << "  [" << eval.city << "] done: reach=" << viz::fmt(eval.reachability(), 3)
              << " deliver=" << viz::fmt(eval.deliverability(), 3) << std::endl;
  }

  viz::print_table(std::cout,
                   "Figure 6: reachability / deliverability / overhead per city",
                   {"city", "buildings", "APs", "islands", "reach", "deliver",
                    "overhead(med)", "hdr bits(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);

  if (!all_overheads.empty()) {
    std::cout << "\nPooled median transmission overhead: "
              << viz::fmt(citymesh::geo::median(all_overheads), 1)
              << "x  (paper: 13x vs the ideal unicast route)\n";
  }
  std::cout << "Expected shape: near-1.0 reachability and >0.8 deliverability for\n"
            << "contiguous cities; washington_dc fractured by its unbridged river\n"
            << "(depressed reachability, more islands).\n";
  return emit.finish();
}
