// Figure 6 reproduction: reachability, deliverability, and transmission
// overhead between pairs of buildings across the ten city profiles.
//
// Protocol (matching §4): 50 m symmetric transmission range, 1 AP / 200 m^2.
// 1000 random building pairs test reachability over the AP graph; 50 of the
// reachable pairs run through the full event simulation for deliverability
// and transmission overhead.
//
// Paper shape to reproduce: most cities have high reachability and, given
// reachability, high deliverability; water-fractured cities (Washington
// D.C.) show depressed reachability; median overhead is O(10x) (the paper
// reports 13x) against the ideal unicast path.
//
// Pass city names as arguments to restrict the run (default: all ten);
// `--jobs N` evaluates cities on N worker threads (same rows and digest for
// any N — the runx engine merges in city order).
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "geo/stats.hpp"
#include "osmx/citygen.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace runx = citymesh::runx;
namespace viz = citymesh::viz;

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig6_cities", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  std::cout << "CityMesh reproduction - Figure 6 (per-city evaluation)\n"
            << "range 50 m, density 1 AP/200 m^2, 1000 reachability pairs,\n"
            << "50 deliverability pairs per city ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    profiles = osmx::default_profiles();
  }

  core::EvaluationConfig cfg;
  cfg.reachability_pairs = 1000;
  cfg.deliverability_pairs = 50;

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().set_param("reachability_pairs",
                            static_cast<std::uint64_t>(cfg.reachability_pairs));
  emit.manifest().set_param("deliverability_pairs",
                            static_cast<std::uint64_t>(cfg.deliverability_pairs));
  emit.manifest().set_param("cities", static_cast<std::uint64_t>(profiles.size()));

  // One run per city, executed on the runx engine. Each run compiles its
  // city through the shared cache and evaluates it against its own network;
  // per-run overheads land in a preallocated slot (index-disjoint writes are
  // race-free), so pooled statistics stay deterministic.
  std::vector<runx::RunJob> grid;
  for (const auto& profile : profiles) {
    runx::RunJob job;
    job.city = profile.name;
    job.seed = profile.seed;
    job.point = "fig6";
    grid.push_back(std::move(job));
  }
  std::vector<std::vector<double>> per_city_overheads(profiles.size());
  runx::CityCache cache;
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto compiled = cache.get(profiles[job.index], cfg.network);
    const auto eval = core::evaluate_city(compiled, cfg);
    per_city_overheads[job.index] = eval.overheads;
    runx::RunResult result;
    result.cells = {eval.city, std::to_string(eval.buildings), std::to_string(eval.aps),
                    std::to_string(eval.ap_major_islands), viz::fmt(eval.reachability(), 3),
                    viz::fmt(eval.deliverability(), 3),
                    eval.overheads.empty() ? "-" : viz::fmt(eval.median_overhead(), 1),
                    eval.header_bits.empty() ? "-"
                                             : viz::fmt(eval.median_header_bits(), 0)};
    result.metrics = eval.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  std::vector<double> all_overheads;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    emit.manifest().seeds[profiles[i].name] = profiles[i].seed;
    if (!report.results[i].ok()) {
      std::cerr << "  [" << profiles[i].name << "] failed: " << report.results[i].error
                << '\n';
      rows.push_back({profiles[i].name, "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
    all_overheads.insert(all_overheads.end(), per_city_overheads[i].begin(),
                         per_city_overheads[i].end());
  }

  viz::print_table(std::cout,
                   "Figure 6: reachability / deliverability / overhead per city",
                   {"city", "buildings", "APs", "islands", "reach", "deliver",
                    "overhead(med)", "hdr bits(med)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);

  if (!all_overheads.empty()) {
    std::cout << "\nPooled median transmission overhead: "
              << viz::fmt(citymesh::geo::median(all_overheads), 1)
              << "x  (paper: 13x vs the ideal unicast route)\n";
  }
  std::cout << "Expected shape: near-1.0 reachability and >0.8 deliverability for\n"
            << "contiguous cities; washington_dc fractured by its unbridged river\n"
            << "(depressed reachability, more islands).\n";
  return emit.finish();
}
