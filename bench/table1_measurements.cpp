// Table 1 reproduction: "Summary of collected data for measurements."
//
// Runs the synthetic wardriving survey over the Boston profile and prints
// per-dataset measurement and unique-AP counts, next to the paper's numbers.
//
// Paper (Boston-area wardriving):
//   downtown    2,691 measurements   26,532 unique APs
//   campus        726                 2,399
//   residential   461                10,333
//   river         550                 4,794
//   all         4,428                40,158
#include <iostream>

#include "bench_util.hpp"
#include "measure/survey.hpp"
#include "osmx/citygen.hpp"
#include "viz/ascii.hpp"

namespace osmx = citymesh::osmx;
namespace measure = citymesh::measure;
namespace viz = citymesh::viz;

namespace {

std::string paper_row(osmx::AreaType t) {
  switch (t) {
    case osmx::AreaType::kDowntown: return "2691 / 26532";
    case osmx::AreaType::kCampus: return "726 / 2399";
    case osmx::AreaType::kResidential: return "461 / 10333";
    case osmx::AreaType::kRiver: return "550 / 4794";
    default: return "4428 / 40158";
  }
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"table1_measurements", argc, argv};
  std::cout << "CityMesh reproduction - Table 1 (measurement-study summary)\n"
            << "City model: synthetic 'boston' profile (see DESIGN.md for the\n"
            << "OSM-data substitution rationale).\n";

  const auto profile = osmx::profile_by_name("boston");
  emit.manifest().city = profile.name;
  emit.manifest().seeds[profile.name] = profile.seed;
  const auto city = osmx::generate_city(profile);
  const measure::SurveyConfig config;
  const auto datasets = measure::run_survey(city, config);
  const auto all = measure::merge_datasets(datasets);

  std::vector<std::vector<std::string>> rows;
  for (const auto& d : datasets) {
    rows.push_back({d.name, std::to_string(d.measurement_count()),
                    std::to_string(d.unique_aps()), paper_row(d.area)});
  }
  rows.push_back({"all", std::to_string(all.measurement_count()),
                  std::to_string(all.unique_aps()), paper_row(osmx::AreaType::kOther)});

  viz::print_table(std::cout, "Table 1: collected data per survey area",
                   {"Dataset", "# Measurements", "# Unique APs",
                    "paper (# meas / # APs)"},
                   rows);
  citymesh::benchutil::digest_rows(emit, rows);

  std::cout << "\nExpected shape: measurement counts match the paper's quotas by\n"
            << "construction; unique-AP counts scale with area density, with\n"
            << "downtown >> campus and the ordering downtown > residential-area\n"
            << "rates preserved.\n";
  return emit.finish();
}
