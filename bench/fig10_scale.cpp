// Figure 10 (extension): scaling one metro-scale run with tiled parallel
// simulation (src/shardx).
//
// The paper simulates each city sequentially; a metro-scale fabric (tens of
// thousands of APs under offered load) makes one run the bottleneck rather
// than the sweep grid. This bench runs the same airtime-contention workload
// on a ladder of growing synthetic cities with the engine partitioned into
// K = 1/2/4/8 building-atomic tiles under conservative lookahead, and
// reports wall clock, speedup over the sequential engine, and the number of
// cross-tile handoffs exchanged at window barriers.
//
// Correctness is part of the bench: the workload runs in the draw-free
// regime (no jitter, no loss, flood relay), where every shard count must
// produce identical behavior. Each row's behavioral cells (offered flows,
// delivery rate, transmissions, p50 latency) fold into a per-shard-count
// digest, and the bench *fails* (exit 1) if any K disagrees with K=1 on the
// same city. Wall clock and speedup columns stay out of the digest — they
// are the only cells allowed to vary between machines and shard counts.
//
// Expected shape: >=2x speedup at 4 shards on >=4 hardware threads for the
// larger rungs; on fewer cores the speedup column flattens toward 1x while
// the digest check still bites. `--quick` shrinks the ladder for smoke/CI.
//
// Metro-memory columns: every row also reports the process peak RSS
// (VmHWM), the row's additional peak bytes per AP, and the cumulative
// barrier idle time (workers waiting for the slowest tile each window).
// `--tiling grid|adaptive` selects the partitioner (default adaptive);
// behavioral digests are invariant across modes, so the choice trades
// barrier idle and wall clock only. VmHWM is monotonic, so on the full
// ladder only the first row that lifts the process peak shows a nonzero
// B/AP; `--rung NAME` restricts the ladder to one rung for a clean
// fresh-process memory measurement of that city size.
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/network.hpp"
#include "osmx/citygen.hpp"
#include "shardx/tiling.hpp"
#include "runx/city_cache.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/workload.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace runx = citymesh::runx;
namespace trafficx = citymesh::trafficx;
namespace viz = citymesh::viz;

namespace {

constexpr std::size_t kShardCounts[] = {1, 2, 4, 8};
constexpr std::uint64_t kWorkloadSeed = 1010;
constexpr double kBitrateBps = 250e3;
constexpr double kRatePerS = 4.0;
constexpr double kDurationS = 12.0;
constexpr double kQuickDurationS = 4.0;

struct Rung {
  const char* name;
  double width_m;
  double height_m;
};
constexpr Rung kLadder[] = {{"metro-s", 900, 700},
                            {"metro-m", 1500, 1100},
                            {"metro-l", 2200, 1600},
                            {"metro-xl", 3000, 2200},
                            {"metro-xxl", 4200, 3100}};
constexpr Rung kQuickLadder[] = {{"metro-s", 900, 700}};

osmx::CityProfile rung_profile(const Rung& rung) {
  osmx::CityProfile p;
  p.name = rung.name;
  p.width_m = rung.width_m;
  p.height_m = rung.height_m;
  p.seed = 101;
  return p;
}

// Draw-free regime: serialization timing is deterministic (finite bitrate,
// zero jitter), nothing is lost, and the flood policy draws no randomness —
// so the tiled engine must reproduce the sequential engine event for event.
core::NetworkConfig network_config(std::size_t shards,
                                   citymesh::shardx::TilingMode tiling) {
  core::NetworkConfig config;
  config.placement.seed = 7;
  config.placement.density_per_m2 = 1.0 / 60.0;
  config.seed = 99;
  config.shards = shards;
  config.tiling = tiling;
  config.medium.bitrate_bps = kBitrateBps;
  config.medium.jitter_s = 0.0;
  config.medium.loss_probability = 0.0;
  return config;
}

trafficx::WorkloadSpec workload_spec(double duration_s) {
  trafficx::WorkloadSpec spec;
  spec.name = "fig10";
  spec.seed = kWorkloadSeed;
  spec.duration_s = duration_s;
  spec.rate_per_s = kRatePerS;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig10_scale", argc, argv};
  bool quick = false;
  // Adaptive (event-rate-balanced) tiling is the default; --tiling grid
  // selects the uniform centroid grid. The behavioral digest is invariant
  // across modes — check.sh pins that by diffing the two.
  citymesh::shardx::TilingMode tiling = citymesh::shardx::TilingMode::kAdaptive;
  const char* tiling_name = "adaptive";
  const char* rung_filter = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--rung") == 0 && i + 1 < argc) {
      rung_filter = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--tiling") == 0 && i + 1 < argc) {
      if (std::strcmp(argv[i + 1], "grid") == 0) {
        tiling = citymesh::shardx::TilingMode::kGrid;
        tiling_name = "grid";
      } else if (std::strcmp(argv[i + 1], "adaptive") == 0) {
        tiling = citymesh::shardx::TilingMode::kAdaptive;
        tiling_name = "adaptive";
      } else {
        std::cerr << "fig10_scale: unknown --tiling mode '" << argv[i + 1]
                  << "' (grid|adaptive)\n";
        return 2;
      }
    }
  }
  const double duration_s = quick ? kQuickDurationS : kDurationS;
  std::vector<Rung> ladder;
  for (const Rung& rung :
       quick ? std::span<const Rung>{kQuickLadder} : std::span<const Rung>{kLadder}) {
    if (rung_filter == nullptr || std::strcmp(rung.name, rung_filter) == 0) {
      ladder.push_back(rung);
    }
  }
  if (ladder.empty()) {
    std::cerr << "fig10_scale: --rung '" << rung_filter
              << "' matches no ladder rung\n";
    return 2;
  }

  std::cout << "CityMesh extension - Figure 10 (tiled parallel scaling)\n"
            << "one workload per (city size, shard count); draw-free regime so\n"
            << "every shard count must reproduce the sequential engine ("
            << std::thread::hardware_concurrency() << " hardware thread(s), "
            << tiling_name << " tiling" << (quick ? ", --quick ladder" : "")
            << ")\n";

  emit.manifest().city = "ladder";
  emit.manifest().seeds["workload"] = kWorkloadSeed;
  emit.manifest().set_param("duration_s", duration_s);
  emit.manifest().set_param("bitrate_bps", kBitrateBps);
  emit.manifest().set_param("quick", quick ? std::uint64_t{1} : std::uint64_t{0});
  emit.manifest().set_param("tiling_adaptive",
                            tiling == citymesh::shardx::TilingMode::kAdaptive
                                ? std::uint64_t{1}
                                : std::uint64_t{0});

  runx::CityCache cache;
  std::vector<std::vector<std::string>> rows;
  bool digest_ok = true;
  for (const Rung& rung : ladder) {
    const osmx::CityProfile profile = rung_profile(rung);
    emit.manifest().seeds[profile.name] = profile.seed;
    // The compiled city is shard-count independent; all K share one compile.
    const auto compiled = cache.get(profile, network_config(1, tiling));
    const auto schedule =
        trafficx::compile(workload_spec(duration_s), compiled->city);

    std::string baseline_digest;
    double baseline_wall_s = 0.0;
    for (const std::size_t shards : kShardCounts) {
      const core::NetworkConfig config = network_config(shards, tiling);
      // VmHWM delta across build + run = this row's additional peak RSS.
      // The ladder ascends, so each rung's K=1 row grows the process peak
      // and its bytes/AP is meaningful; repeat-K rows on the same rung fit
      // inside the already-reached peak and read ~0. Memory cells (like
      // wall clock) stay out of the behavioral digest.
      const auto mem_before = citymesh::benchutil::read_mem_usage();
      core::CityMeshNetwork network{compiled, config};
      const auto t0 = std::chrono::steady_clock::now();
      const auto run = trafficx::run_workload(network, schedule);
      const double wall_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const auto mem_after = citymesh::benchutil::read_mem_usage();
      const std::uint64_t hwm_delta_kib =
          mem_after.vm_hwm_kib - mem_before.vm_hwm_kib;
      const double bytes_per_ap =
          static_cast<double>(hwm_delta_kib) * 1024.0 /
          static_cast<double>(compiled->aps.ap_count());
      const core::CapacitySummary& s = run.summary;

      // Behavioral cells only — identical across shard counts by contract.
      const std::vector<std::string> behavior = {
          profile.name,
          std::to_string(compiled->aps.ap_count()),
          std::to_string(s.flows_offered),
          viz::fmt(s.delivery_rate(), 3),
          std::to_string(s.transmissions),
          viz::fmt(s.latency_p50_s * 1e3, 2)};
      citymesh::obsx::Fnv1a row_digest;
      for (const auto& cell : behavior) row_digest.update(cell);
      const std::string hex = citymesh::obsx::hex64(row_digest.digest());
      if (shards == kShardCounts[0]) {
        baseline_digest = hex;
        baseline_wall_s = wall_s;
      } else if (hex != baseline_digest) {
        digest_ok = false;
        std::cerr << "fig10_scale: " << profile.name << " shards=" << shards
                  << " behavior digest " << hex << " != shards="
                  << kShardCounts[0] << " digest " << baseline_digest << '\n';
      }
      for (const auto& cell : behavior) emit.row(cell);
      emit.add_metrics(run.metrics);

      std::vector<std::string> row = behavior;
      row.insert(row.begin() + 2, std::to_string(shards));
      row.push_back(std::to_string(network.handoffs_exchanged()));
      row.push_back(viz::fmt(wall_s, 3));
      row.push_back(wall_s > 0.0 ? viz::fmt(baseline_wall_s / wall_s, 2) + "x"
                                 : "-");
      row.push_back(viz::fmt(static_cast<double>(mem_after.vm_hwm_kib) / 1024.0, 1));
      row.push_back(viz::fmt(bytes_per_ap, 0));
      row.push_back(viz::fmt(network.barrier_idle_s(), 3));
      rows.push_back(std::move(row));
    }
  }

  viz::print_table(std::cout, "Figure 10: tiled parallel scaling (shardx)",
                   {"city", "aps", "shards", "offered", "deliver", "tx",
                    "p50 ms", "handoffs", "wall s", "speedup", "peak MiB",
                    "B/AP", "idle s"},
                   rows);

  std::cout << "\nDeterminism digest: " << emit.digest_hex()
            << "  (behavioral cells only; identical for every shard count)\n"
            << (digest_ok
                    ? "Shard-count invariance: OK (every K matched K=1)\n"
                    : "Shard-count invariance: FAILED (see stderr)\n")
            << "Expected shape: speedup grows with city size and shard count up\n"
            << "to the hardware thread count; handoffs grow with the cut size\n"
            << "while the behavioral columns never move.\n";
  return emit.finish(digest_ok ? 0 : 1);
}
