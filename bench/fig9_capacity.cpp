// Figure 9 (extension): capacity of the mesh under city-scale traffic.
//
// The paper evaluates one message at a time, so airtime is free and the
// mesh never saturates. This bench puts the §4 conduit flood under offered
// load: a downtown-biased Poisson workload (src/trafficx) runs against the
// airtime-contention medium (sim/medium bitrate model) and the offered rate
// doubles per point until past the capacity knee. Reported per point:
// delivery rate, goodput, p50/p99 delivery latency, and the contention
// evidence (deferrals, queue drops, summed airtime).
//
// Expected shape: at light load every flow delivers, latency sits near the
// serialization floor, and queue drops are zero. Past the knee goodput
// flattens while p99 latency blows up and the transmit queues start
// dropping — the flood's redundant rebroadcasts, free in the paper's
// regime, are exactly what saturates the shared channel.
//
// Everything is seeded (placement, workload schedule), so a second run
// prints byte-identical rows; the determinism digest makes the comparison a
// one-line diff. Pass city names as arguments to change the default
// (boston).
#include <cstdint>
#include <iostream>
#include <iterator>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/evaluation.hpp"
#include "core/network.hpp"
#include "osmx/citygen.hpp"
#include "runx/city_cache.hpp"
#include "runx/engine.hpp"
#include "trafficx/runner.hpp"
#include "trafficx/workload.hpp"
#include "viz/ascii.hpp"

namespace core = citymesh::core;
namespace osmx = citymesh::osmx;
namespace runx = citymesh::runx;
namespace trafficx = citymesh::trafficx;
namespace viz = citymesh::viz;

namespace {

constexpr double kRates[] = {1.0, 4.0, 16.0, 64.0, 128.0};
constexpr double kDurationS = 20.0;
constexpr double kBitrateBps = 12.5e3;  ///< low-power long-range channel
constexpr std::size_t kQueueSlots = 2;
constexpr std::uint64_t kWorkloadSeed = 909;

core::NetworkConfig network_config() {
  core::NetworkConfig config;
  config.placement.seed = 7;
  config.seed = 99;
  config.medium.bitrate_bps = kBitrateBps;
  config.medium.tx_queue_capacity = kQueueSlots;
  return config;
}

trafficx::WorkloadSpec workload_spec(double rate_per_s) {
  trafficx::WorkloadSpec spec;
  spec.name = "fig9";
  spec.seed = kWorkloadSeed;
  spec.duration_s = kDurationS;
  spec.rate_per_s = rate_per_s;
  spec.spatial = trafficx::SpatialMode::kHotspot;
  spec.hotspot_bias = 16.0;
  spec.payload_min_bytes = 256;
  spec.payload_max_bytes = 512;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  citymesh::benchutil::ManifestEmitter emit{"fig9_capacity", argc, argv};
  const std::size_t n_jobs = citymesh::benchutil::parse_jobs(argc, argv);
  std::cout << "CityMesh extension - Figure 9 (goodput/latency vs offered load)\n"
            << "downtown-biased Poisson workload on the airtime-contention\n"
            << "medium; the offered rate doubles per point past the knee ("
            << runx::resolve_jobs(n_jobs) << " worker thread(s))\n";

  std::vector<osmx::CityProfile> profiles;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) profiles.push_back(osmx::profile_by_name(argv[i]));
  } else {
    profiles.push_back(osmx::profile_by_name("boston"));
  }

  emit.manifest().city = profiles.size() == 1 ? profiles.front().name : "all";
  emit.manifest().seeds["workload"] = kWorkloadSeed;
  emit.manifest().set_param("duration_s", kDurationS);
  emit.manifest().set_param("bitrate_bps", kBitrateBps);
  emit.manifest().set_param("queue_slots", static_cast<std::uint64_t>(kQueueSlots));

  // One run per (city, offered rate) on the runx engine. All points of a
  // city share the compiled mesh through the cache (identical seeded
  // placement); each run owns a fresh network so only the load varies.
  const std::size_t n_rates = std::size(kRates);
  std::vector<runx::RunJob> grid;
  for (const auto& profile : profiles) {
    emit.manifest().seeds[profile.name] = profile.seed;
    for (const double rate : kRates) {
      runx::RunJob job;
      job.city = profile.name;
      job.seed = kWorkloadSeed;
      job.point = viz::fmt(rate, 1) + "/s";
      grid.push_back(std::move(job));
    }
  }
  runx::CityCache cache;
  const runx::RunFn fn = [&](const runx::RunJob& job) {
    const auto& profile = profiles[job.index / n_rates];
    const double rate = kRates[job.index % n_rates];
    const auto compiled = cache.get(profile, network_config());
    core::CityMeshNetwork network{compiled, network_config()};
    const auto schedule = trafficx::compile(workload_spec(rate), compiled->city);
    const auto run = trafficx::run_workload(network, schedule);
    const core::CapacitySummary& s = run.summary;
    runx::RunResult result;
    result.cells = {profile.name, viz::fmt(rate, 1),
                    std::to_string(s.flows_offered),
                    std::to_string(s.flows_delivered),
                    viz::fmt(s.delivery_rate(), 3),
                    viz::fmt(s.goodput_bytes_per_s, 1),
                    viz::fmt(s.latency_p50_s * 1e3, 1),
                    viz::fmt(s.latency_p99_s * 1e3, 1),
                    std::to_string(s.deferrals),
                    std::to_string(s.queue_drops),
                    viz::fmt(s.airtime_s, 1)};
    result.metrics = run.metrics;
    return result;
  };
  const runx::SweepReport report = runx::run_jobs(std::move(grid), fn, {n_jobs});

  std::vector<std::vector<std::string>> rows;
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    if (!report.results[i].ok()) {
      std::cerr << "  [" << report.jobs[i].city << " " << report.jobs[i].point
                << "] failed: " << report.results[i].error << '\n';
      rows.push_back({report.jobs[i].city, report.jobs[i].point,
                      "ERROR: " + report.results[i].error});
      continue;
    }
    emit.add_metrics(report.results[i].metrics);
    rows.push_back(report.results[i].cells);
  }

  viz::print_table(std::cout,
                   "Figure 9: capacity sweep (offered load doubles per point)",
                   {"city", "rate/s", "offered", "delivered", "rate", "goodput B/s",
                    "p50 ms", "p99 ms", "deferrals", "drops", "airtime s"},
                   rows);

  citymesh::benchutil::digest_rows(emit, rows);
  std::cout << "\nDeterminism digest: " << emit.digest_hex()
            << "  (same seed => same digest across runs)\n"
            << "Expected shape: full delivery and flat latency at light load;\n"
            << "past the knee goodput flattens, p99 latency blows up, and the\n"
            << "transmit queues start dropping.\n";
  return emit.finish();
}
